/**
 * @file
 * micro_serve: the seer-optd load generator.
 *
 * Runs an in-process OptServer (or targets an external daemon via
 * --socket) and replays the nine paper benchmarks from N concurrent
 * clients for R rounds over real unix-socket connections. Round 1 hits
 * a cold cache; later rounds replay the same requests against the warm
 * shared store — the daemon's amortization claim measured end to end:
 *
 *   - per-round p50/p99 request latency and requests/sec,
 *   - the cache-hit trajectory cold -> warm,
 *   - a byte-identity check: every round's output per benchmark must
 *     equal round 1's (the shared-cache determinism contract).
 *
 * The workload mirrors micro_passes: control rules only (external
 * passes dominate) with a thorough validation gate, so the warm rounds
 * isolate exactly the cost the shared cache exists to amortize.
 * tools/bench_to_json.py --mode serve wraps the --out JSON into
 * BENCH_serve.json.
 */
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <vector>

#include <unistd.h>

#include "benchmarks/benchmarks.h"
#include "core/server.h"
#include "core/session.h"
#include "support/json.h"
#include "support/socket.h"
#include "support/worker_pool.h"
#include "tools/cli_common.h"

using namespace seer;

namespace {

struct BenchOptions
{
    std::string socket;   // empty: run an in-process server
    std::string out_file; // empty: stdout summary only
    unsigned clients = 4;
    unsigned rounds = 3;
    int validation_runs = 32;
    unsigned server_workers = 2;
    bool quiet = false;
};

void
usage()
{
    std::cerr <<
        "usage: micro_serve [options]\n"
        "\n"
        "options (value-taking flags accept both '--flag V' and "
        "'--flag=V'):\n"
        "  --socket PATH       target an already-running seer-optd\n"
        "                      (default: spin up an in-process server\n"
        "                      on a private socket)\n"
        "  --clients N         concurrent client threads (default 4)\n"
        "  --rounds N          replay rounds; round 1 is cold\n"
        "                      (default 3)\n"
        "  --validation-runs N co-simulation runs per validation\n"
        "                      (default 32: the external-eval-dominant\n"
        "                      regime)\n"
        "  --workers N         in-process server session workers\n"
        "                      (default 2)\n"
        "  --out FILE          write the machine-readable report\n"
        "                      ('-' = stdout)\n"
        "  --quiet             suppress per-round progress\n";
}

bool
parseArgs(int argc, char **argv, BenchOptions &options)
{
    cli::ArgCursor args("micro_serve", argc, argv);
    while (args.nextArg()) {
        const std::string &arg = args.arg();
        if (arg == "--socket") {
            options.socket = args.value();
        } else if (arg == "--clients") {
            options.clients = static_cast<unsigned>(
                args.positiveValue("client count"));
        } else if (arg == "--rounds") {
            options.rounds = static_cast<unsigned>(
                args.positiveValue("round count"));
        } else if (arg == "--validation-runs") {
            options.validation_runs = static_cast<int>(
                args.positiveValue("validation runs"));
        } else if (arg == "--workers") {
            options.server_workers = static_cast<unsigned>(
                args.positiveValue("worker count"));
        } else if (arg == "--out") {
            options.out_file = args.value();
        } else if (arg == "--quiet") {
            options.quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            std::exit(0);
        } else {
            args.fail("unknown option " + arg);
        }
        if (!args.endArg())
            return false;
    }
    return true;
}

struct RequestResult
{
    double seconds = 0;
    int exit_code = -1;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evals = 0;
    std::string output;
    std::string error;
};

RequestResult
oneRequest(const std::string &socket, const core::ServeRequest &request)
{
    RequestResult result;
    auto begin = std::chrono::steady_clock::now();
    std::string error;
    net::Fd sock = net::connectUnix(socket, &error);
    if (!sock.valid()) {
        result.error = error;
        return result;
    }
    if (net::sendFrame(sock.get(), core::serializeRequest(request),
                       &error) != net::IoStatus::Ok) {
        result.error = error;
        return result;
    }
    std::string payload;
    if (net::recvFrame(sock.get(), payload, &error) !=
        net::IoStatus::Ok) {
        result.error = error.empty() ? "connection closed" : error;
        return result;
    }
    core::ServeResponse response;
    if (!core::parseResponse(payload, &response, &error)) {
        result.error = error;
        return result;
    }
    result.seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - begin)
                         .count();
    result.exit_code = response.exit_code;
    result.hits = response.pass_cache_hits;
    result.misses = response.pass_cache_misses;
    result.evals = response.evaluations;
    result.output = std::move(response.output_ir);
    result.error = std::move(response.error);
    return result;
}

double
percentile(std::vector<double> sorted, double p)
{
    if (sorted.empty())
        return 0;
    std::sort(sorted.begin(), sorted.end());
    double rank = p * static_cast<double>(sorted.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions options;
    if (!parseArgs(argc, argv, options)) {
        usage();
        return 2;
    }

    // An in-process server unless pointed at an external daemon: the
    // numbers include the full socket + framing + session path either
    // way, and CI needs no process choreography.
    std::unique_ptr<core::OptServer> server;
    std::string socket = options.socket;
    if (socket.empty()) {
        core::ServerOptions server_options;
        socket = "/tmp/seer-micro-serve-" +
                 std::to_string(::getpid()) + ".sock";
        server_options.socket_path = socket;
        server_options.workers = options.server_workers;
        server_options.quiet = true;
        server = std::make_unique<core::OptServer>(server_options);
        std::string error;
        if (!server->start(&error)) {
            std::cerr << "micro_serve: " << error << "\n";
            return 1;
        }
    }

    const std::vector<bench::Benchmark> &suite =
        bench::allBenchmarks();
    std::vector<core::ServeRequest> requests;
    for (const bench::Benchmark &benchmark : suite) {
        core::ServeRequest request;
        request.func = benchmark.func;
        request.ir_text = benchmark.source;
        // The micro_passes regime: control rules only + a thorough
        // validation gate, so external evaluation dominates and the
        // warm rounds measure exactly what the shared cache amortizes.
        request.use_rover = false;
        request.validation_runs = options.validation_runs;
        request.unroll_max_trip = benchmark.unroll_max_trip;
        // Deterministic exploration: the default 10s egg-runner limit
        // makes the explored set depend on machine speed and cache
        // warmth (a warm run reaches further in the same seconds, so
        // "warm" rounds would keep discovering work — and diverge).
        // Saturation must run to its iteration/node budget instead.
        request.time_limit_seconds = 1e6;
        requests.push_back(std::move(request));
    }

    json::Value rounds_json{json::Array{}};
    std::vector<std::string> first_outputs(requests.size());
    bool deterministic = true;
    bool failed = false;
    double cold_p50 = 0, warm_p50 = 0;

    for (unsigned round = 0; round < options.rounds; ++round) {
        std::vector<RequestResult> results(requests.size());
        auto begin = std::chrono::steady_clock::now();
        parallelFor(requests.size(), options.clients, [&](size_t i) {
            results[i] = oneRequest(socket, requests[i]);
        });
        double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - begin)
                          .count();

        std::vector<double> latencies;
        uint64_t hits = 0, misses = 0, evals = 0;
        for (size_t i = 0; i < results.size(); ++i) {
            const RequestResult &r = results[i];
            if (r.exit_code != 0) {
                std::cerr << "micro_serve: " << suite[i].name
                          << " failed (exit " << r.exit_code << "): "
                          << r.error << "\n";
                failed = true;
                continue;
            }
            latencies.push_back(r.seconds);
            hits += r.hits;
            misses += r.misses;
            evals += r.evals;
            if (first_outputs[i].empty()) {
                // Round 1 normally; later if that round's request
                // failed (the failure is already reported above).
                first_outputs[i] = r.output;
            } else if (r.output != first_outputs[i]) {
                deterministic = false;
                std::cerr << "micro_serve: " << suite[i].name
                          << ": round " << (round + 1)
                          << " output diverged from the first "
                          << "successful round\n";
            }
        }
        double p50 = percentile(latencies, 0.50);
        double p99 = percentile(latencies, 0.99);
        double hit_rate =
            hits + misses == 0
                ? 0
                : static_cast<double>(hits) /
                      static_cast<double>(hits + misses);
        if (round == 0)
            cold_p50 = p50;
        warm_p50 = p50; // last round wins

        json::Value entry{json::Object{}};
        entry.set("round", static_cast<int64_t>(round + 1));
        entry.set("cold", round == 0);
        entry.set("requests",
                  static_cast<int64_t>(latencies.size()));
        entry.set("wall_s", wall);
        entry.set("requests_per_s",
                  wall > 0 ? static_cast<double>(latencies.size()) /
                                 wall
                           : 0.0);
        entry.set("p50_ms", p50 * 1e3);
        entry.set("p99_ms", p99 * 1e3);
        entry.set("pass_cache_hits", hits);
        entry.set("pass_cache_misses", misses);
        entry.set("evaluations", evals);
        entry.set("hit_rate", hit_rate);
        rounds_json.push(std::move(entry));

        if (!options.quiet) {
            std::cerr << "; round " << (round + 1) << "/"
                      << options.rounds << (round == 0 ? " (cold)" : "")
                      << ": p50 " << p50 * 1e3 << " ms, p99 "
                      << p99 * 1e3 << " ms, hit rate " << hit_rate
                      << ", " << evals << " evals\n";
        }
    }

    double speedup = warm_p50 > 0 ? cold_p50 / warm_p50 : 0;
    std::cerr << "; serve: cold p50 " << cold_p50 * 1e3
              << " ms -> warm p50 " << warm_p50 * 1e3 << " ms ("
              << speedup << "x), outputs "
              << (deterministic ? "byte-identical" : "DIVERGED")
              << " across rounds\n";

    json::Value report{json::Object{}};
    report.set("mode", "serve");
    report.set("clients", options.clients);
    report.set("rounds", options.rounds);
    report.set("validation_runs",
               static_cast<int64_t>(options.validation_runs));
    json::Value names{json::Array{}};
    for (const bench::Benchmark &benchmark : suite)
        names.push(benchmark.name);
    report.set("benchmarks", std::move(names));
    report.set("rounds_data", std::move(rounds_json));
    report.set("cold_p50_ms", cold_p50 * 1e3);
    report.set("warm_p50_ms", warm_p50 * 1e3);
    report.set("warm_speedup", speedup);
    report.set("deterministic", deterministic);

    if (!options.out_file.empty()) {
        std::string text = report.dump(2) + "\n";
        if (options.out_file == "-") {
            std::cout << text;
        } else {
            std::ofstream out(options.out_file, std::ios::trunc);
            if (!out) {
                std::cerr << "micro_serve: cannot open "
                          << options.out_file << "\n";
                return 1;
            }
            out << text;
        }
    }

    if (server)
        server->stop();
    return failed || !deterministic ? 1 : 0;
}
