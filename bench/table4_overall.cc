/**
 * @file
 * Table 4 / Figure 14 reproduction: the full suite under Baseline /
 * ROVER / SEER, reporting Area, Total Cycles, Critical Path and Power,
 * with the normalized geomean row and per-benchmark area-delay
 * products. `--ablation` additionally compares SEER's design choices:
 * greedy vs exact datapath extraction and approximation laws vs the
 * schedule oracle.
 */
#include <cmath>
#include <cstring>
#include <iostream>

#include "common.h"
#include "support/table.h"

using namespace seer;
using namespace seer::benchx;

namespace {

const char *kSuite[] = {"seq_loops",   "kmp",        "gemm_blocked",
                        "gemm_ncubed", "md_grid",    "md_knn",
                        "sort_merge",  "sort_radix"};

struct Geo
{
    double area = 1, cycles = 1, cp = 1, power = 1, adp = 1;
    int n = 0;

    void
    accumulate(const hls::HlsReport &r, const hls::HlsReport &base)
    {
        area *= r.area_um2 / base.area_um2;
        cycles *= static_cast<double>(r.total_cycles) /
                  static_cast<double>(base.total_cycles);
        cp *= r.critical_path_ns / base.critical_path_ns;
        power *= r.power_mw / base.power_mw;
        adp *= r.adp / base.adp;
        ++n;
    }

    double
    geo(double product) const
    {
        return n == 0 ? 1 : std::pow(product, 1.0 / n);
    }
};

} // namespace

int
main(int argc, char **argv)
{
    bool ablation = argc > 1 && std::strcmp(argv[1], "--ablation") == 0;

    TextTable table("Table 4: Baseline / ROVER / SEER across the suite");
    table.setHeader({"Benchmark", "Flow", "Area (um2)", "Cycles",
                     "CP (ns)", "Power (mW)", "ADP vs base"});
    Geo rover_geo, seer_geo;

    for (const char *name : kSuite) {
        const bench::Benchmark &benchmark = bench::findBenchmark(name);
        hls::HlsReport base =
            evaluateDesign(baselineModule(benchmark), benchmark, false);
        core::SeerResult rover = roverOnlyFlow(benchmark);
        hls::HlsReport rover_report =
            evaluateDesign(rover.module, benchmark, false);
        core::SeerResult seer = seerFlow(benchmark);
        hls::HlsReport seer_report =
            evaluateDesign(seer.module, benchmark, true);

        rover_geo.accumulate(rover_report, base);
        seer_geo.accumulate(seer_report, base);

        auto row = [&](const char *flow, const hls::HlsReport &r) {
            table.addRow({name, flow, fmt(r.area_um2, 4),
                          fmtInt(r.total_cycles),
                          fmt(r.critical_path_ns), fmt(r.power_mw),
                          ratio(r.adp, base.adp)});
        };
        row("Baseline", base);
        row("ROVER", rover_report);
        row("SEER", seer_report);
        table.addSeparator();
    }
    table.addRow({"geomean", "ROVER",
                  ratio(rover_geo.geo(rover_geo.area), 1),
                  ratio(rover_geo.geo(rover_geo.cycles), 1),
                  ratio(rover_geo.geo(rover_geo.cp), 1),
                  ratio(rover_geo.geo(rover_geo.power), 1),
                  ratio(rover_geo.geo(rover_geo.adp), 1)});
    table.addRow({"geomean", "SEER",
                  ratio(seer_geo.geo(seer_geo.area), 1),
                  ratio(seer_geo.geo(seer_geo.cycles), 1),
                  ratio(seer_geo.geo(seer_geo.cp), 1),
                  ratio(seer_geo.geo(seer_geo.power), 1),
                  ratio(seer_geo.geo(seer_geo.adp), 1)});
    table.print(std::cout);
    std::cout << "\nExpected shape (paper Table 4 / Fig 14): SEER cuts "
                 "cycles on every benchmark by\nenabling pipelining "
                 "(geomean speedup of a few x) at a small area/power "
                 "overhead;\nROVER alone only trims datapath area; "
                 "sort_radix shows the marginal-speedup,\nhigh-power "
                 "corner the paper calls out.\n";

    if (ablation) {
        TextTable ab("Ablation: SEER design choices (area of the "
                     "extracted design, um2)");
        ab.setHeader({"Benchmark", "exact ILP + laws", "greedy datapath",
                      "oracle (no laws)"});
        for (const char *name : kSuite) {
            const bench::Benchmark &benchmark =
                bench::findBenchmark(name);
            core::SeerOptions exact;
            core::SeerOptions greedy;
            greedy.exact_datapath = false;
            core::SeerOptions oracle;
            oracle.use_laws = false;
            double a_exact =
                evaluateDesign(seerFlow(benchmark, exact).module,
                               benchmark, true)
                    .area_um2;
            double a_greedy =
                evaluateDesign(seerFlow(benchmark, greedy).module,
                               benchmark, true)
                    .area_um2;
            double a_oracle =
                evaluateDesign(seerFlow(benchmark, oracle).module,
                               benchmark, true)
                    .area_um2;
            ab.addRow({name, fmt(a_exact, 5), fmt(a_greedy, 5),
                       fmt(a_oracle, 5)});
        }
        ab.print(std::cout);
    }
    return 0;
}
