/**
 * @file
 * Figure 7 reproduction: for each control-flow transformation, the
 * number of the nine benchmarks it was successfully applied to. Two
 * columns: standalone (the pass run directly on the original source)
 * and within SEER's exploration (counted from the rewrite records),
 * where interplay with other rules unlocks additional applications —
 * e.g. fusion on seq_loops only fires after the datapath rules recover
 * the affine index (Figure 9).
 */
#include <iostream>
#include <map>
#include <set>

#include "benchmarks/benchmarks.h"
#include "common.h"
#include "ir/verifier.h"
#include "passes/passes.h"
#include "support/error.h"
#include "support/table.h"

using namespace seer;
using namespace seer::benchx;

int
main()
{
    // Column 1: standalone application on the original source.
    std::map<std::string, std::set<std::string>> standalone;
    for (const std::string &pass_name : passes::allPassNames()) {
        for (const bench::Benchmark &benchmark :
             bench::allBenchmarks()) {
            ir::Module module = bench::parseBenchmark(benchmark);
            ir::Operation *func = module.firstFunc();
            passes::canonicalize(*func);
            bool changed = false;
            try {
                changed = passes::createPass(pass_name)->run(*func);
                if (changed)
                    ir::verifyOrDie(module);
            } catch (const seer::FatalError &) {
                changed = false;
            }
            if (changed)
                standalone[pass_name].insert(benchmark.name);
        }
    }

    // Column 2: applications inside the SEER exploration.
    std::map<std::string, std::set<std::string>> in_seer;
    for (const bench::Benchmark &benchmark : bench::allBenchmarks()) {
        core::SeerResult result = seerFlow(benchmark);
        for (const auto &record : result.stats.records) {
            for (const std::string &pass_name : passes::allPassNames()) {
                if (record.rule == pass_name)
                    in_seer[pass_name].insert(benchmark.name);
            }
        }
    }

    TextTable table(
        "Figure 7: benchmarks each control transformation applies to");
    table.setHeader({"Pass", "Standalone", "Within SEER",
                     "Benchmarks (within SEER)"});
    for (const std::string &pass_name : passes::allPassNames()) {
        std::string names;
        for (const std::string &name : in_seer[pass_name])
            names += (names.empty() ? "" : ", ") + name;
        table.addRow({pass_name,
                      std::to_string(standalone[pass_name].size()),
                      std::to_string(in_seer[pass_name].size()), names});
    }
    table.print(std::cout);
    std::cout << "\nExpected shape (paper Figure 7): every "
                 "transformation applies to at least one\nbenchmark "
                 "within SEER; fusion and memory-forward apply more "
                 "often inside SEER than\nstandalone because other "
                 "rewrites unlock them (the Figure 9 interplay).\n";
    return 0;
}
