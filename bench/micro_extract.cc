/**
 * @file
 * Microbenchmarks for incremental analysis-driven extraction
 * (google-benchmark). Each workload has two arms selected by the
 * `naive` arg: naive:1 runs the from-scratch reference bounds
 * (`ExtractOptions::naive`), naive:0 the maintained cost-bound
 * analysis. Both arms produce bit-identical terms and costs, so the
 * ratio isolates the bound-computation path.
 */
#include <benchmark/benchmark.h>

#include "egraph/extract.h"

using namespace seer;
using namespace seer::eg;

namespace {

/** Deterministic cost over the workload op pool; named so the
 *  registered cost-bound analysis binds to it. */
class MicroCost final : public CostModel
{
  public:
    double
    nodeCost(const ENode &node) const override
    {
        const std::string &op = node.op.str();
        if (op == "f")
            return 2.25;
        if (op == "h")
            return 4;
        if (op == "g")
            return 1.5;
        return 1; // leaves
    }
    std::string name() const override { return "micro-extract"; }
};

const MicroCost kCost;

/** Balanced reduction over `n` leaves where every internal class holds
 *  two alternative nodes (f and h with swapped children), so extraction
 *  has genuine choices and merged classes to rank. */
EClassId
buildReduction(EGraph &eg, int n, std::vector<EClassId> &leaves)
{
    for (int i = 0; i < n; ++i)
        leaves.push_back(
            eg.add(ENode{Symbol("leaf" + std::to_string(i)), {}}));
    std::vector<EClassId> layer = leaves;
    while (layer.size() > 1) {
        std::vector<EClassId> next;
        for (size_t i = 0; i + 1 < layer.size(); i += 2) {
            EClassId cls =
                eg.add(ENode{Symbol("f"), {layer[i], layer[i + 1]}});
            eg.merge(cls, eg.add(ENode{Symbol("h"),
                                       {layer[i + 1], layer[i]}}));
            next.push_back(cls);
        }
        if (layer.size() % 2)
            next.push_back(layer.back());
        layer = std::move(next);
    }
    // As after saturation in the real pipeline: the root class also
    // holds a cheap small implementation, so the optimal term is a tiny
    // subgraph of a huge cone and the bound computation dominates.
    eg.merge(layer[0], eg.add(ENode{Symbol("g"), {leaves[0]}}));
    eg.rebuild();
    return eg.find(layer[0]);
}

/**
 * The tentpole benchmark: repeated greedy extraction interleaved with
 * small local mutations. The naive arm recomputes the whole root cone's
 * bounds on every extraction; the incremental arm re-drains only the
 * mutated cone (amortized O(changed classes)) and then reads the
 * maintained table.
 */
void
BM_RepeatedGreedyExtract(benchmark::State &state)
{
    bool naive = state.range(0) == 1;
    EGraph eg;
    std::vector<EClassId> leaves;
    EClassId root = buildReduction(eg, 4096, leaves);
    if (!naive)
        registerCostBound(eg, kCost);
    ExtractStats stats;
    ExtractOptions options;
    options.naive = naive;
    options.stats = &stats;
    size_t tick = 0;
    for (auto _ : state) {
        // One local mutation: a new unary alternative on a leaf class.
        EClassId a = leaves[tick % leaves.size()];
        EClassId b = leaves[(tick * 7 + 3) % leaves.size()];
        eg.merge(eg.add(ENode{Symbol("u"), {a}}), b);
        eg.rebuild();
        ++tick;
        // Eight extractions per mutation: the read path dominates.
        double acc = 0;
        for (int r = 0; r < 8; ++r) {
            auto extraction = extractGreedy(eg, root, kCost, options);
            acc += extraction->dag_cost;
        }
        benchmark::DoNotOptimize(acc);
    }
    state.counters["recomputed"] =
        static_cast<double>(stats.classes_recomputed);
    state.counters["visited"] =
        static_cast<double>(stats.classes_visited);
    state.SetLabel(std::to_string(eg.numClasses()) + " classes");
}
BENCHMARK(BM_RepeatedGreedyExtract)->Arg(0)->Arg(1)->ArgNames({"naive"});

/**
 * Exact (branch-and-bound) extraction at a fixed search budget over a
 * deep chain of two-node classes whose child sets differ — the worst
 * case for the weak pending-only bound. naive:1 uses the weak bound,
 * naive:0 the inevitable-children closure bound; the counters expose
 * how much earlier the stronger bound cuts the search.
 */
void
BM_ExactBoundedSearch(benchmark::State &state)
{
    bool naive = state.range(0) == 1;
    EGraph eg;
    EClassId a = eg.add(ENode{Symbol("leaf0"), {}});
    EClassId b = eg.add(ENode{Symbol("leaf1"), {}});
    EClassId d = eg.add(ENode{Symbol("leaf2"), {}});
    EClassId root = a;
    for (int i = 0; i < 16; ++i) {
        EClassId next = eg.add(ENode{Symbol("f"), {root, b}});
        eg.merge(next, eg.add(ENode{Symbol("h"), {root, d}}));
        eg.rebuild();
        root = eg.find(next);
    }
    if (!naive)
        registerCostBound(eg, kCost);
    ExtractStats stats;
    for (auto _ : state) {
        ExtractStats one;
        ExtractOptions options;
        options.naive = naive;
        options.budget = 20000;
        options.stats = &one;
        auto extraction = extractExact(eg, root, kCost, options);
        benchmark::DoNotOptimize(extraction->dag_cost);
        stats = one;
    }
    state.counters["prunes"] = static_cast<double>(stats.bound_prunes);
    state.counters["expansions"] =
        static_cast<double>(stats.expansions);
    state.counters["exhausted"] = stats.budget_exhausted ? 1 : 0;
}
BENCHMARK(BM_ExactBoundedSearch)->Arg(0)->Arg(1)->ArgNames({"naive"});

} // namespace

BENCHMARK_MAIN();
