/**
 * @file
 * Table 5 reproduction: e-graph size and search-time split ("time in
 * MLIR" = inside wrapped passes and translation, "time in egg" = the
 * rest of the e-graph exploration) for each benchmark, plus the
 * per-rule scheduler statistics the runner now tracks (matches,
 * applications, bans, search/apply seconds).
 *
 * `--json PATH` additionally writes the full machine-readable
 * trajectory (per-benchmark per-rule and per-iteration stats) so runs
 * can be tracked over time.
 */
#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <vector>

#include "common.h"
#include "support/json.h"
#include "support/table.h"

using namespace seer;
using namespace seer::benchx;

int
main(int argc, char **argv)
{
    // --threads N exercises the parallel e-matching mode (the paper's
    // future-work item); exploration is identical, only wall-clock
    // changes. --json PATH dumps the machine-readable stats.
    unsigned threads = 1;
    const char *json_path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
            threads = static_cast<unsigned>(std::stoul(argv[i + 1]));
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[i + 1];
    }
    const char *suite[] = {"byte_enable_calc", "seq_loops",
                           "kmp",              "gemm_blocked",
                           "gemm_ncubed",      "md_grid",
                           "md_knn",           "sort_merge",
                           "sort_radix"};

    TextTable table("Table 5: e-graph sizes and search times");
    table.setHeader({"Benchmark", "Nodes", "Classes", "Unions",
                     "Time in MLIR (s)", "Time in egg (s)",
                     "Total (s)"});

    std::vector<eg::RuleStats> suite_rules;
    json::Value doc{json::Object{}};
    json::Value benchmarks_json{json::Array{}};

    for (const char *name : suite) {
        const bench::Benchmark &benchmark = bench::findBenchmark(name);
        core::SeerOptions options;
        options.runner.match_jobs = threads;
        core::SeerResult result = seerFlow(benchmark, options);
        const core::SeerStats &stats = result.stats;
        table.addRow({name, fmtInt(stats.egraph_nodes),
                      fmtInt(stats.egraph_classes),
                      fmtInt(stats.unions_applied),
                      fmt(stats.time_in_passes_seconds),
                      fmt(stats.time_in_egraph_seconds),
                      fmt(stats.total_seconds)});

        // Aggregate per-rule stats across the suite for the second table.
        for (const eg::RuleStats &rule : stats.rule_stats) {
            auto it = std::find_if(suite_rules.begin(), suite_rules.end(),
                                   [&](const eg::RuleStats &existing) {
                                       return existing.name == rule.name;
                                   });
            if (it == suite_rules.end()) {
                suite_rules.push_back(rule);
                continue;
            }
            it->matches += rule.matches;
            it->applications += rule.applications;
            it->bans += rule.bans;
            it->search_seconds += rule.search_seconds;
            it->apply_seconds += rule.apply_seconds;
        }

        json::Value entry{json::Object{}};
        entry.set("benchmark", name);
        entry.set("stats", core::toJson(stats));
        benchmarks_json.push(std::move(entry));
    }
    table.print(std::cout);

    // Per-rule view: where the scheduler spent its budget. Top rules by
    // applied unions; ban counts show which rules the backoff throttled.
    std::sort(suite_rules.begin(), suite_rules.end(),
              [](const eg::RuleStats &a, const eg::RuleStats &b) {
                  if (a.applications != b.applications)
                      return a.applications > b.applications;
                  return a.matches > b.matches;
              });
    TextTable rules_table(
        "Per-rule scheduler stats (top 12 by applied unions, whole suite)");
    rules_table.setHeader({"Rule", "Matches", "Applied", "Bans",
                           "Search (s)", "Apply (s)"});
    size_t shown = 0;
    for (const eg::RuleStats &rule : suite_rules) {
        if (shown++ >= 12)
            break;
        rules_table.addRow({rule.name, fmtInt(rule.matches),
                            fmtInt(rule.applications), fmtInt(rule.bans),
                            fmt(rule.search_seconds),
                            fmt(rule.apply_seconds)});
    }
    std::cout << "\n";
    rules_table.print(std::cout);

    if (json_path) {
        doc.set("threads", threads);
        doc.set("benchmarks", std::move(benchmarks_json));
        std::ofstream out(json_path);
        if (!out) {
            std::cerr << "cannot write " << json_path << "\n";
            return 1;
        }
        out << doc.dump(2) << "\n";
        std::cout << "\nWrote JSON trajectory to " << json_path << "\n";
    }

    std::cout << "\nExpected shape (paper Table 5): node counts range "
                 "from hundreds (straight-line\nkernels) to tens of "
                 "thousands (unrolled / deeply nested ones); total "
                 "search time\nstays within seconds, dominated by the "
                 "e-graph side for the large graphs.\n";
    return 0;
}
