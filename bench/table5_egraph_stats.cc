/**
 * @file
 * Table 5 reproduction: e-graph size and search-time split ("time in
 * MLIR" = inside wrapped passes and translation, "time in egg" = the
 * rest of the e-graph exploration) for each benchmark.
 */
#include <cstring>
#include <iostream>

#include "common.h"
#include "support/table.h"

using namespace seer;
using namespace seer::benchx;

int
main(int argc, char **argv)
{
    // --threads N exercises the parallel e-matching mode (the paper's
    // future-work item); exploration is identical, only wall-clock
    // changes.
    unsigned threads = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
            threads = static_cast<unsigned>(std::stoul(argv[i + 1]));
    }
    const char *suite[] = {"byte_enable_calc", "seq_loops",
                           "kmp",              "gemm_blocked",
                           "gemm_ncubed",      "md_grid",
                           "md_knn",           "sort_merge",
                           "sort_radix"};

    TextTable table("Table 5: e-graph sizes and search times");
    table.setHeader({"Benchmark", "Nodes", "Classes", "Unions",
                     "Time in MLIR (s)", "Time in egg (s)",
                     "Total (s)"});

    for (const char *name : suite) {
        const bench::Benchmark &benchmark = bench::findBenchmark(name);
        core::SeerOptions options;
        options.runner.match_threads = threads;
        core::SeerResult result = seerFlow(benchmark, options);
        const core::SeerStats &stats = result.stats;
        table.addRow({name, fmtInt(stats.egraph_nodes),
                      fmtInt(stats.egraph_classes),
                      fmtInt(stats.unions_applied),
                      fmt(stats.time_in_passes_seconds),
                      fmt(stats.time_in_egraph_seconds),
                      fmt(stats.total_seconds)});
    }
    table.print(std::cout);
    std::cout << "\nExpected shape (paper Table 5): node counts range "
                 "from hundreds (straight-line\nkernels) to tens of "
                 "thousands (unrolled / deeply nested ones); total "
                 "search time\nstays within seconds, dominated by the "
                 "e-graph side for the large graphs.\n";
    return 0;
}
