#include "common.h"

#include <cmath>
#include <sstream>

#include "hls/pragmas.h"
#include "ir/verifier.h"

namespace seer::benchx {

hls::HlsReport
evaluateDesign(const ir::Module &module,
               const bench::Benchmark &benchmark, bool pipeline_loops,
               uint64_t seed)
{
    std::vector<ir::Buffer> buffers =
        bench::makeBuffers(module, benchmark.func);
    Rng rng(seed);
    benchmark.prepare(buffers, rng);
    std::vector<ir::RtValue> args;
    for (ir::Buffer &buffer : buffers)
        args.push_back(&buffer);
    hls::HlsOptions options;
    options.schedule.pipeline_loops = pipeline_loops;
    return hls::evaluate(module, benchmark.func, std::move(args),
                         options);
}

ir::Module
baselineModule(const bench::Benchmark &benchmark)
{
    return bench::parseBenchmark(benchmark);
}

core::SeerResult
roverOnlyFlow(const bench::Benchmark &benchmark)
{
    ir::Module input = bench::parseBenchmark(benchmark);
    core::SeerOptions options;
    options.use_control = false;
    return core::optimize(input, benchmark.func, options);
}

core::SeerResult
seerControlOnlyFlow(const bench::Benchmark &benchmark)
{
    ir::Module input = bench::parseBenchmark(benchmark);
    core::SeerOptions options;
    options.use_rover = false;
    options.unroll_max_trip = benchmark.unroll_max_trip;
    return core::optimize(input, benchmark.func, options);
}

core::SeerResult
seerFlow(const bench::Benchmark &benchmark,
         const core::SeerOptions &base)
{
    ir::Module input = bench::parseBenchmark(benchmark);
    core::SeerOptions options = base;
    options.unroll_max_trip = benchmark.unroll_max_trip;
    return core::optimize(input, benchmark.func, options);
}

ir::Module
pragmaFlow(const bench::Benchmark &benchmark)
{
    ir::Module module = bench::parseBenchmark(benchmark);
    hls::applyPragmas(module);
    ir::verifyOrDie(module);
    return module;
}

std::string
ratio(double value, double base)
{
    std::ostringstream os;
    double r = base == 0 ? 0 : value / base;
    os.precision(r >= 10 ? 3 : 2);
    os << std::fixed << r << "x";
    return os.str();
}

std::string
fmt(double value, int precision)
{
    std::ostringstream os;
    os.precision(precision);
    if (value != 0 && (std::abs(value) >= 1e6 || std::abs(value) < 1e-2))
        os << std::scientific;
    os << value;
    return os.str();
}

std::string
fmtInt(uint64_t value)
{
    return std::to_string(value);
}

} // namespace seer::benchx
