/**
 * @file
 * Figure 9 reproduction + ablation: the non-affine (i << 1) + i index
 * blocks loop fusion until the datapath rules recover 3*i and the
 * analysis-friendly local extraction hands that form to the fusion
 * pass. Three configurations:
 *   - full SEER (interleaved + analysis-friendly extraction): fuses;
 *   - SEER (C) (no datapath rules): cannot fuse;
 *   - SEER without analysis-friendly extraction (smallest-term local
 *     extraction instead): the affine form exists in the e-graph but is
 *     not surfaced to the pass, so fusion stays blocked.
 */
#include <iostream>

#include "common.h"
#include "ir/analysis.h"
#include "support/table.h"

using namespace seer;
using namespace seer::benchx;

namespace {

size_t
loopCount(const ir::Module &module)
{
    size_t n = 0;
    ir::walk(module, [&](ir::Operation &op) {
        if (ir::isa(op, ir::opnames::kAffineFor))
            ++n;
    });
    return n;
}

} // namespace

int
main()
{
    const bench::Benchmark &benchmark =
        bench::findBenchmark("seq_loops");
    hls::HlsReport base =
        evaluateDesign(baselineModule(benchmark), benchmark, false);

    TextTable table("Figure 9: affine recovery unlocking fusion");
    table.setHeader({"Configuration", "Loops", "Cycles", "vs baseline",
                     "Uses shift form"});

    auto report_row = [&](const char *name,
                          const core::SeerResult &result) {
        hls::HlsReport r =
            evaluateDesign(result.module, benchmark, true);
        bool has_shift = false;
        ir::walk(result.module, [&](ir::Operation &op) {
            if (ir::isa(op, ir::opnames::kShLI))
                has_shift = true;
        });
        table.addRow({name, fmtInt(loopCount(result.module)),
                      fmtInt(r.total_cycles),
                      ratio(static_cast<double>(r.total_cycles),
                            static_cast<double>(base.total_cycles)),
                      has_shift ? "yes" : "no"});
    };

    report_row("SEER (full)", seerFlow(benchmark));
    report_row("SEER (C): no datapath rules",
               seerControlOnlyFlow(benchmark));
    {
        core::SeerOptions options;
        options.analysis_friendly_extraction = false;
        report_row("SEER w/o analysis-friendly extraction",
                   seerFlow(benchmark, options));
    }
    table.print(std::cout);
    std::cout << "\nExpected shape (paper Section 4.5): only the full "
                 "configuration reaches 1 loop,\nand its final program "
                 "still uses the hardware-efficient shift form for the "
                 "index\n(area-free in an ASIC) — the affine 3*i form "
                 "was only a vehicle for analysis.\n";
    return 0;
}
