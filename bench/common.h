/**
 * @file
 * Shared plumbing for the experiment harnesses: the five toolflows the
 * paper compares (Baseline, ROVER, SEER (C), SEER, manual pragmas) and
 * workload-based PPA evaluation.
 */
#ifndef SEER_BENCH_COMMON_H_
#define SEER_BENCH_COMMON_H_

#include <string>

#include "benchmarks/benchmarks.h"
#include "core/seer.h"
#include "hls/hls.h"

namespace seer::benchx {

/** Evaluate a design on the benchmark's workload (co-simulation). */
hls::HlsReport evaluateDesign(const ir::Module &module,
                              const bench::Benchmark &benchmark,
                              bool pipeline_loops, uint64_t seed = 42);

/** The five flows of the evaluation section. */
ir::Module baselineModule(const bench::Benchmark &benchmark);
core::SeerResult roverOnlyFlow(const bench::Benchmark &benchmark);
core::SeerResult seerControlOnlyFlow(const bench::Benchmark &benchmark);
core::SeerResult seerFlow(const bench::Benchmark &benchmark,
                          const core::SeerOptions &base = {});
ir::Module pragmaFlow(const bench::Benchmark &benchmark);

/** Format v as a ratio of base, e.g. "0.34x". */
std::string ratio(double value, double base);

/** Format helpers for the tables. */
std::string fmt(double value, int precision = 3);
std::string fmtInt(uint64_t value);

} // namespace seer::benchx

#endif // SEER_BENCH_COMMON_H_
