/**
 * @file
 * Figure 15 reproduction: SEER's rewritten source versus manual pragma
 * insertion on the unmodified source (pipeline + fusion + coalesce
 * pragmas), normalized to the pragma flow.
 */
#include <iostream>

#include "common.h"
#include "support/table.h"

using namespace seer;
using namespace seer::benchx;

int
main()
{
    const char *suite[] = {"seq_loops",   "kmp",        "gemm_blocked",
                           "gemm_ncubed", "md_grid",    "md_knn",
                           "sort_merge",  "sort_radix"};

    TextTable table(
        "Figure 15: SEER vs manual pragmas (normalized to pragmas)");
    table.setHeader({"Benchmark", "Pragma cycles", "SEER cycles",
                     "Cycles ratio", "Area ratio", "Power ratio",
                     "ADP ratio"});

    for (const char *name : suite) {
        const bench::Benchmark &benchmark = bench::findBenchmark(name);
        ir::Module pragma_module = pragmaFlow(benchmark);
        // Pragma attributes direct pipelining per loop.
        hls::HlsReport pragma_report =
            evaluateDesign(pragma_module, benchmark, false);
        core::SeerResult seer = seerFlow(benchmark);
        hls::HlsReport seer_report =
            evaluateDesign(seer.module, benchmark, true);
        table.addRow({name, fmtInt(pragma_report.total_cycles),
                      fmtInt(seer_report.total_cycles),
                      ratio(seer_report.total_cycles,
                            pragma_report.total_cycles),
                      ratio(seer_report.area_um2,
                            pragma_report.area_um2),
                      ratio(seer_report.power_mw,
                            pragma_report.power_mw),
                      ratio(seer_report.adp, pragma_report.adp)});
    }
    table.print(std::cout);
    std::cout
        << "\nExpected shape (paper Figure 15): SEER matches or beats "
           "pragmas on most kernels\n(it has rewrites pragmas cannot "
           "express); md_grid is the exception — the tool's\nloop "
           "coalesce covers the whole nest and wins there.\n";
    return 0;
}
