/**
 * @file
 * Microbenchmarks of the memoized + parallel external-pass evaluation
 * layer. One control-only SEER run (external passes dominate; ROVER
 * off) over an external-pass-heavy kernel, under the four arms of the
 * evaluation matrix
 *
 *     cache:{0,1} x jobs:{1,4}
 *
 * cache:0 runs honestly cold (per-iteration staging only, nothing
 * carried across runs); cache:1 reuses a pre-warmed shared evaluation
 * cache — the steady-state "second run over the same kernel" regime
 * the memo layer targets. Every arm produces bit-identical exploration
 * results by the determinism contract (see DESIGN.md), so the arms
 * differ only in wall clock.
 *
 * tools/bench_to_json.py --mode passes pairs the cache:0/jobs:1
 * baseline against the other arms and emits BENCH_passes.json.
 */
#include <cstdint>
#include <memory>

#include <benchmark/benchmark.h>

#include "benchmarks/benchmarks.h"
#include "core/seer.h"
#include "ir/parser.h"

using namespace seer;

namespace {

core::SeerOptions
armOptions(bool cache, int jobs, const core::EvalCachePtr &shared)
{
    core::SeerOptions options;
    // Isolate the external-pass path: control rules only, so snippet
    // emit / pass / verify / schedule time dominates the run.
    options.use_rover = false;
    // Thorough-validation regime (Table 5's "Time in MLIR"-dominant
    // shape): more co-simulation runs per candidate make the external
    // evaluation the dominant exploration cost — exactly what the memo
    // layer targets. The verification cache is keyed on this setting.
    options.validation_runs = 12;
    options.jobs = static_cast<unsigned>(jobs);
    if (cache)
        options.shared_eval_cache = shared;
    else
        options.use_pass_cache = false;
    return options;
}

void
BM_ExternalPasses(benchmark::State &state)
{
    const bool cache = state.range(0) != 0;
    const int jobs = static_cast<int>(state.range(1));
    const bench::Benchmark &kernel = bench::findBenchmark("md_knn");
    ir::Module module = bench::parseBenchmark(kernel);

    core::EvalCachePtr shared;
    if (cache) {
        shared = std::make_shared<core::ExternalEvalCache>(true);
        // Warm outside the timed region: the memo layer's claim is
        // about repeat evaluation, not first contact.
        core::optimize(module, kernel.func,
                       armOptions(cache, jobs, shared));
    }

    uint64_t unions = 0;
    core::SeerStats last;
    for (auto _ : state) {
        core::SeerResult result = core::optimize(
            module, kernel.func, armOptions(cache, jobs, shared));
        unions += result.stats.unions_applied;
        last = std::move(result.stats);
        benchmark::DoNotOptimize(result.extracted_term);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
    state.counters["unions"] =
        static_cast<double>(unions) / static_cast<double>(state.iterations());
    // Last-run telemetry: proves what each arm actually did (the warm
    // arms must show hits and zero evaluations; every arm must agree
    // on unions, the determinism contract).
    state.counters["evals"] =
        static_cast<double>(last.external_eval.evaluations);
    state.counters["hits"] =
        static_cast<double>(last.external_eval.pass_cache_hits);
    state.counters["mlir_s"] = last.time_in_passes_seconds;
    state.counters["egg_s"] = last.time_in_egraph_seconds;
}

/**
 * The cost-vs-budget trajectory of the proposal scheduler: every paper
 * benchmark under the exhaustive baseline (sched:0) and the bandit at
 * eval budgets {100%, 50%, 25%} (sched:1). Options mirror the golden
 * differential (unbounded saturation time), so the counters — final
 * extraction cost, cold external evaluations, deferrals — are
 * machine-independent; wall clock is the only noisy column.
 *
 * tools/bench_to_json.py --mode passes groups these arms per kernel
 * and reports, per budget, how many kernels keep the baseline's final
 * cost and how many cold evaluations the budget saved.
 */
void
BM_ScheduleBudget(benchmark::State &state)
{
    const auto &kernels = bench::allBenchmarks();
    const auto kernel_index = static_cast<size_t>(state.range(0));
    const bool bandit = state.range(1) != 0;
    const int budget_pct = static_cast<int>(state.range(2));
    const bench::Benchmark &kernel = kernels.at(kernel_index);
    ir::Module module = bench::parseBenchmark(kernel);
    state.SetLabel(kernel.name);

    core::SeerOptions options;
    options.runner.time_limit_seconds = 100000;
    options.unroll_max_trip = kernel.unroll_max_trip;
    if (bandit) {
        options.schedule = core::ScheduleKind::Bandit;
        options.eval_budget = budget_pct / 100.0;
    }

    core::SeerStats last;
    for (auto _ : state) {
        core::SeerResult result =
            core::optimize(module, kernel.func, options);
        last = std::move(result.stats);
        benchmark::DoNotOptimize(result.extracted_term);
    }
    // Final extraction cost: the datapath phase's DAG cost (Eqn 4) —
    // the figure the budget must not degrade on most kernels.
    double cost = 0;
    if (!last.extraction.empty())
        cost = last.extraction.back().dag_cost;
    state.counters["cost"] = cost;
    state.counters["evals"] =
        static_cast<double>(last.external_eval.evaluations);
    state.counters["deferred"] =
        static_cast<double>(last.scheduler.deferred);
    state.counters["unions"] =
        static_cast<double>(last.unions_applied);
}

void
scheduleBudgetArms(benchmark::internal::Benchmark *b)
{
    const auto count =
        static_cast<int64_t>(bench::allBenchmarks().size());
    for (int64_t kernel = 0; kernel < count; ++kernel) {
        b->Args({kernel, 0, 100});
        b->Args({kernel, 1, 100});
        b->Args({kernel, 1, 50});
        b->Args({kernel, 1, 25});
    }
}

} // namespace

BENCHMARK(BM_ExternalPasses)
    ->ArgNames({"cache", "jobs"})
    ->Args({0, 1})
    ->Args({0, 4})
    ->Args({1, 1})
    ->Args({1, 4})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK(BM_ScheduleBudget)
    ->ArgNames({"kernel", "sched", "budget_pct"})
    ->Apply(scheduleBudgetArms)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK_MAIN();
