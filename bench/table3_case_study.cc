/**
 * @file
 * Table 3 / Figure 13 reproduction: the Intel byte_enable_calc case
 * study (plus the seq_loops panel). Rows: Baseline, ROVER-only,
 * SEER (C) (control rules only), full SEER, the expert's Manual design,
 * and SEER applied to the Manual design.
 */
#include <iostream>

#include "common.h"
#include "core/verify.h"
#include "support/table.h"

using namespace seer;
using namespace seer::benchx;

namespace {

struct Row
{
    std::string name;
    hls::HlsReport report;
    bool pipelined;
};

void
printPanel(const std::string &title, const std::vector<Row> &rows)
{
    TextTable table(title);
    table.setHeader({"Approach", "Area (um2)", "Cycles", "CP (ns)",
                     "ET (ns)", "Power (mW)", "ADP", "vs base"});
    double base_adp = rows[0].report.adp;
    for (const Row &row : rows) {
        const hls::HlsReport &r = row.report;
        table.addRow({row.name, fmt(r.area_um2, 4),
                      fmtInt(r.total_cycles), fmt(r.critical_path_ns),
                      fmt(r.exec_time_ns, 4), fmt(r.power_mw),
                      fmt(r.adp, 3), ratio(r.adp, base_adp)});
    }
    table.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main()
{
    const bench::Benchmark &be = bench::findBenchmark("byte_enable_calc");
    const bench::Benchmark &manual = bench::byteEnableManual();

    std::vector<Row> rows;
    rows.push_back(
        {"Baseline", evaluateDesign(baselineModule(be), be, false),
         false});
    {
        core::SeerResult r = roverOnlyFlow(be);
        rows.push_back(
            {"ROVER", evaluateDesign(r.module, be, false), false});
    }
    {
        core::SeerResult r = seerControlOnlyFlow(be);
        rows.push_back(
            {"SEER (C)", evaluateDesign(r.module, be, true), true});
    }
    core::SeerResult full = seerFlow(be);
    rows.push_back(
        {"SEER", evaluateDesign(full.module, be, true), true});
    rows.push_back(
        {"Manual", evaluateDesign(baselineModule(manual), manual, true),
         true});
    {
        core::SeerResult r = seerFlow(manual);
        rows.push_back({"SEER (Manual)",
                        evaluateDesign(r.module, manual, true), true});
    }
    printPanel("Table 3 / Fig 13 (left): byte_enable_calc", rows);

    // Translation validation of the headline run (Section 4.7).
    core::VerifyOptions verify_options;
    verify_options.runs = 2;
    core::VerifyReport verification =
        core::verifyRecords(full.stats.records, verify_options);
    std::cout << "Translation validation of the SEER run: "
              << verification.passed << "/" << verification.total_checks
              << " rewrite steps verified, " << verification.inconclusive
              << " inconclusive, " << verification.failures.size()
              << " failures.\n\n";

    // --- seq_loops panel ---------------------------------------------
    const bench::Benchmark &sl = bench::findBenchmark("seq_loops");
    std::vector<Row> sl_rows;
    sl_rows.push_back(
        {"Baseline", evaluateDesign(baselineModule(sl), sl, false),
         false});
    {
        core::SeerResult r = roverOnlyFlow(sl);
        sl_rows.push_back(
            {"ROVER", evaluateDesign(r.module, sl, false), false});
    }
    {
        core::SeerResult r = seerControlOnlyFlow(sl);
        sl_rows.push_back(
            {"SEER (C)", evaluateDesign(r.module, sl, true), true});
    }
    {
        core::SeerResult r = seerFlow(sl);
        sl_rows.push_back(
            {"SEER", evaluateDesign(r.module, sl, true), true});
    }
    printPanel("Fig 13 (right): seq_loops", sl_rows);

    std::cout
        << "Expected shape (paper Table 3 / Fig 13): ROVER alone cannot "
           "touch byte_enable_calc\n(datapaths separated by control); "
           "SEER (C) improves cycles; full SEER beats both and\n"
           "approaches or beats the Manual design's cycles at a small "
           "area overhead; for\nseq_loops the SEER(C)/SEER gap comes "
           "from the Figure 9 interplay.\n";
    return 0;
}
