/**
 * @file
 * Table 1 reproduction: total cycles of the motivating example's three
 * listings under the two (f, g, h) cases, plus which listing SEER's
 * e-graph exploration selects when given Listing 1.
 *
 * The paper's point: which fusion wins depends on the loop-body
 * parameters, so a fixed pass order must lose on one of the cases while
 * SEER picks per-program.
 */
#include <cstdlib>
#include <iostream>

#include "benchmarks/benchmarks.h"
#include "core/seer.h"
#include "hls/hls.h"
#include "ir/analysis.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "support/table.h"

using namespace seer;

namespace {

uint64_t
cyclesOf(const std::string &source)
{
    ir::Module module = ir::parseModule(source);
    std::vector<ir::Buffer> buffers =
        bench::makeBuffers(module, "motivating");
    Rng rng(42);
    for (auto &v : buffers[0].ints)
        v = rng.nextRange(-100, 100);
    for (auto &v : buffers[1].ints)
        v = rng.nextRange(-100, 100);
    std::vector<ir::RtValue> args;
    for (auto &buffer : buffers)
        args.push_back(&buffer);
    hls::HlsOptions options;
    options.schedule.pipeline_loops = true;
    return hls::evaluate(module, "motivating", std::move(args), options)
        .total_cycles;
}

size_t
loopCount(const ir::Module &module)
{
    size_t n = 0;
    ir::walk(module, [&](ir::Operation &op) {
        if (ir::isa(op, ir::opnames::kAffineFor))
            ++n;
    });
    return n;
}

} // namespace

int
main()
{
    TextTable table(
        "Table 1: motivating example cycle counts (pipelined HLS)");
    table.setHeader({"Case", "f", "g", "h", "Listing 1", "Listing 2",
                     "Listing 3", "SEER choice", "SEER cycles"});

    int case_index = 0;
    for (auto [f, g, h] :
         {std::tuple{10, 100, 1}, std::tuple{1, 100, 10}}) {
        ++case_index;
        uint64_t cycles[4] = {0, 0, 0, 0};
        for (int listing = 1; listing <= 3; ++listing) {
            cycles[listing] =
                cyclesOf(bench::motivatingListing(listing, f, g, h));
        }
        // SEER on listing 1: which fused shape does extraction pick?
        ir::Module input = ir::parseModule(
            bench::motivatingListing(1, f, g, h));
        core::SeerResult result = core::optimize(input, "motivating");
        uint64_t seer_cycles =
            cyclesOf(ir::toString(result.module));
        std::string choice = "2 loops (one fusion)";
        if (loopCount(result.module) == 3)
            choice = "3 loops (no fusion)";
        else if (loopCount(result.module) == 1)
            choice = "1 loop";
        // Identify which pair got fused by comparing to the listings.
        if (std::llabs(static_cast<long long>(seer_cycles) -
                       static_cast<long long>(cycles[2])) <
            std::llabs(static_cast<long long>(seer_cycles) -
                       static_cast<long long>(cycles[3]))) {
            choice += " ~ Listing 2";
        } else {
            choice += " ~ Listing 3";
        }
        table.addRow({"Case " + std::to_string(case_index),
                      std::to_string(f), std::to_string(g),
                      std::to_string(h), std::to_string(cycles[1]),
                      std::to_string(cycles[2]),
                      std::to_string(cycles[3]), choice,
                      std::to_string(seer_cycles)});
    }
    table.print(std::cout);
    std::cout << "\nExpected shape (paper Table 1): Listing 2 wins case "
                 "1, Listing 3 wins case 2,\nand SEER (given Listing 1) "
                 "matches the better listing in both cases.\n";
    return 0;
}
