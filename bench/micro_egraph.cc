/**
 * @file
 * Microbenchmarks for the e-graph substrate (google-benchmark):
 * add/hashcons throughput, union+rebuild (congruence) cost, e-matching,
 * ROVER saturation, and extraction.
 */
#include <benchmark/benchmark.h>

#include "egraph/extract.h"
#include "egraph/pattern.h"
#include "egraph/runner.h"
#include "rover/rover.h"

using namespace seer;
using namespace seer::eg;

namespace {

/** Balanced binary add-tree over `leaves` distinct variables. */
TermPtr
addTree(int depth, int &counter)
{
    if (depth == 0)
        return makeTerm("var:x" + std::to_string(counter++ % 16));
    std::vector<TermPtr> children{addTree(depth - 1, counter),
                                  addTree(depth - 1, counter)};
    return makeTerm(Symbol("arith.addi:i32"), std::move(children));
}

void
BM_AddTerm(benchmark::State &state)
{
    int depth = static_cast<int>(state.range(0));
    int counter = 0;
    TermPtr term = addTree(depth, counter);
    for (auto _ : state) {
        EGraph egraph;
        benchmark::DoNotOptimize(egraph.addTerm(term));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(term->size()));
}
BENCHMARK(BM_AddTerm)->Arg(6)->Arg(10)->Arg(14);

void
BM_UnionRebuildCongruence(benchmark::State &state)
{
    int64_t n = state.range(0);
    for (auto _ : state) {
        state.PauseTiming();
        EGraph egraph;
        std::vector<EClassId> leaves;
        std::vector<EClassId> wrapped;
        for (int64_t i = 0; i < n; ++i) {
            EClassId leaf = egraph.addTerm(
                makeTerm("leaf" + std::to_string(i)));
            leaves.push_back(leaf);
            wrapped.push_back(
                egraph.add(ENode{Symbol("wrap"), {leaf}}));
        }
        state.ResumeTiming();
        for (int64_t i = 1; i < n; ++i)
            egraph.merge(leaves[0], leaves[i]);
        egraph.rebuild();
        benchmark::DoNotOptimize(egraph.numClasses());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_UnionRebuildCongruence)->Arg(64)->Arg(512)->Arg(4096);

void
BM_FindAfterDeepUnions(benchmark::State &state)
{
    // Deep-union workload: merging each fresh leaf *onto* the previous
    // chain head makes the fresh id the root, so the union-find degrades
    // into a length-n chain. Canonicalization-heavy phases (repeated
    // find over original ids, as ematch/rebuild do) are then quadratic
    // without path compression and near-linear with it.
    int64_t n = state.range(0);
    for (auto _ : state) {
        state.PauseTiming();
        EGraph egraph;
        std::vector<EClassId> leaves;
        leaves.reserve(static_cast<size_t>(n));
        for (int64_t i = 0; i < n; ++i)
            leaves.push_back(
                egraph.addTerm(makeTerm("leaf" + std::to_string(i))));
        for (int64_t i = 1; i < n; ++i)
            egraph.merge(leaves[static_cast<size_t>(i)],
                         leaves[static_cast<size_t>(i - 1)]);
        state.ResumeTiming();
        uint64_t acc = 0;
        for (int pass = 0; pass < 16; ++pass) {
            for (EClassId id : leaves)
                acc += egraph.find(id);
        }
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * n * 16);
}
BENCHMARK(BM_FindAfterDeepUnions)->Arg(256)->Arg(2048)->Arg(8192);

void
BM_FindAfterDeepUnionsConstWalk(benchmark::State &state)
{
    // Same workload through the const (non-compressing) overload: the
    // baseline the mutable find's path halving is measured against.
    int64_t n = state.range(0);
    for (auto _ : state) {
        state.PauseTiming();
        EGraph egraph;
        std::vector<EClassId> leaves;
        leaves.reserve(static_cast<size_t>(n));
        for (int64_t i = 0; i < n; ++i)
            leaves.push_back(
                egraph.addTerm(makeTerm("leaf" + std::to_string(i))));
        for (int64_t i = 1; i < n; ++i)
            egraph.merge(leaves[static_cast<size_t>(i)],
                         leaves[static_cast<size_t>(i - 1)]);
        state.ResumeTiming();
        const EGraph &frozen = egraph;
        uint64_t acc = 0;
        for (int pass = 0; pass < 16; ++pass) {
            for (EClassId id : leaves)
                acc += frozen.find(id);
        }
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * n * 16);
}
BENCHMARK(BM_FindAfterDeepUnionsConstWalk)->Arg(256)->Arg(2048)->Arg(8192);

void
BM_EMatch(benchmark::State &state)
{
    EGraph egraph;
    int counter = 0;
    EClassId root = egraph.addTerm(addTree(10, counter));
    (void)root;
    egraph.rebuild();
    PatternPtr pattern = parsePattern("(arith.addi:i32 ?a ?b)");
    for (auto _ : state) {
        auto matches = ematch(egraph, *pattern);
        benchmark::DoNotOptimize(matches.size());
    }
}
BENCHMARK(BM_EMatch);

/** Chain of width mul-by-constant summands: a ROVER-style arithmetic
 *  expression whose saturation grows a matching-heavy e-graph (strength
 *  reduction, reassociation, and shift rewrites all fire). */
TermPtr
mulAddChain(int width)
{
    const int64_t consts[] = {12, 6, 24, 5, 16, 3, 48, 7};
    TermPtr acc = makeTerm("var:x");
    for (int i = 0; i < width; ++i) {
        TermPtr mul = makeTerm(
            Symbol("arith.muli:i32"),
            {makeTerm("var:v" + std::to_string(i % 6)),
             makeTerm("const:" + std::to_string(consts[i % 8]) +
                      ":i32")});
        acc = makeTerm(Symbol("arith.addi:i32"), {acc, mul});
    }
    return acc;
}

/**
 * The tentpole benchmark: the full ~46-rule ROVER set saturating a wide
 * arithmetic expression. naive:1 runs the pre-index whole-graph
 * reference matcher; naive:0 runs the default indexed + incremental
 * path. Both explore the identical e-graph (the match lists are equal),
 * so the ratio isolates the matcher.
 */
void
BM_ManyRuleSaturation(benchmark::State &state)
{
    bool naive = state.range(0) == 1;
    TermPtr expr = mulAddChain(16);
    for (auto _ : state) {
        EGraph egraph(rover::roverAnalysisHooks());
        egraph.addTerm(expr);
        RunnerOptions options;
        options.max_iters = 20;
        options.max_nodes = 100000;
        options.match_limit = 200;
        options.record_proofs = false;
        options.naive_match = naive;
        options.incremental_match = !naive;
        Runner runner(egraph, options);
        runner.addRules(rover::roverRules());
        benchmark::DoNotOptimize(runner.run().total_applied);
    }
}
BENCHMARK(BM_ManyRuleSaturation)->Arg(0)->Arg(1)->ArgNames({"naive"});

/** Deep pattern over a large mixed-op graph: most classes have the
 *  wrong head op, which is exactly what the (op, arity) index prunes. */
void
BM_DeepPatternMatch(benchmark::State &state)
{
    bool naive = state.range(0) == 1;
    EGraph egraph;
    int counter = 0;
    egraph.addTerm(addTree(12, counter));
    for (int i = 0; i < 4000; ++i) {
        egraph.addTerm(makeTerm(
            Symbol("wrap"), {makeTerm("leaf" + std::to_string(i))}));
    }
    egraph.rebuild();
    PatternPtr deep = parsePattern(
        "(arith.addi:i32 (arith.addi:i32 (arith.addi:i32 ?a ?b) ?c) "
        "(arith.addi:i32 ?d (arith.addi:i32 ?e ?f)))");
    for (auto _ : state) {
        auto matches = naive ? ematchNaive(egraph, *deep)
                             : ematch(egraph, *deep);
        benchmark::DoNotOptimize(matches.size());
    }
}
BENCHMARK(BM_DeepPatternMatch)->Arg(0)->Arg(1)->ArgNames({"naive"});

/** Greedy extraction over a ~16k-class balanced reduction tree. */
void
BM_ExtractGreedy10k(benchmark::State &state)
{
    EGraph egraph;
    std::vector<EClassId> layer;
    for (int i = 0; i < 8192; ++i)
        layer.push_back(
            egraph.addTerm(makeTerm("leaf" + std::to_string(i))));
    while (layer.size() > 1) {
        std::vector<EClassId> next;
        for (size_t i = 0; i + 1 < layer.size(); i += 2)
            next.push_back(egraph.add(
                ENode{Symbol("arith.addi:i32"),
                      {layer[i], layer[i + 1]}}));
        if (layer.size() % 2)
            next.push_back(layer.back());
        layer = std::move(next);
    }
    egraph.rebuild();
    TermSizeCost cost;
    for (auto _ : state) {
        auto extraction = extractGreedy(egraph, layer[0], cost);
        benchmark::DoNotOptimize(extraction->dag_cost);
    }
    state.SetLabel(std::to_string(egraph.numClasses()) + " classes");
}
BENCHMARK(BM_ExtractGreedy10k);

void
BM_RoverSaturation(benchmark::State &state)
{
    TermPtr expr = parseTerm(
        "(arith.addi:i32 (arith.muli:i32 var:a const:12:i32) "
        "(arith.muli:i32 var:b const:6:i32))");
    for (auto _ : state) {
        EGraph egraph(rover::roverAnalysisHooks());
        EClassId root = egraph.addTerm(expr);
        (void)root;
        RunnerOptions options;
        options.max_iters = 6;
        options.record_proofs = false;
        Runner runner(egraph, options);
        runner.addRules(rover::roverRules());
        benchmark::DoNotOptimize(runner.run().total_applied);
    }
}
BENCHMARK(BM_RoverSaturation);

void
BM_ExtractGreedyVsExact(benchmark::State &state)
{
    bool exact = state.range(0) == 1;
    EGraph egraph(rover::roverAnalysisHooks());
    EClassId root = egraph.addTerm(parseTerm(
        "(arith.addi:i32 (arith.muli:i32 var:a const:12:i32) "
        "(arith.muli:i32 var:a const:24:i32))"));
    RunnerOptions options;
    options.max_iters = 5;
    options.record_proofs = false;
    Runner runner(egraph, options);
    runner.addRules(rover::roverRules());
    runner.run();
    rover::RoverAreaCost cost(&egraph);
    for (auto _ : state) {
        auto extraction = exact ? extractExact(egraph, root, cost)
                                : extractGreedy(egraph, root, cost);
        benchmark::DoNotOptimize(extraction->dag_cost);
    }
}
BENCHMARK(BM_ExtractGreedyVsExact)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"exact"});

} // namespace

BENCHMARK_MAIN();
