/**
 * @file
 * Microbenchmarks for the e-graph substrate (google-benchmark):
 * add/hashcons throughput, union+rebuild (congruence) cost, e-matching,
 * ROVER saturation, and extraction.
 */
#include <benchmark/benchmark.h>

#include <memory>
#include <unordered_map>

#ifdef __GLIBC__
#include <malloc.h>
#endif

#include "egraph/extract.h"
#include "egraph/pattern.h"
#include "egraph/runner.h"
#include "rover/rover.h"

using namespace seer;
using namespace seer::eg;

namespace {

/** Balanced binary add-tree over `leaves` distinct variables. */
TermPtr
addTree(int depth, int &counter)
{
    if (depth == 0)
        return makeTerm("var:x" + std::to_string(counter++ % 16));
    std::vector<TermPtr> children{addTree(depth - 1, counter),
                                  addTree(depth - 1, counter)};
    return makeTerm(Symbol("arith.addi:i32"), std::move(children));
}

void
BM_AddTerm(benchmark::State &state)
{
    int depth = static_cast<int>(state.range(0));
    int counter = 0;
    TermPtr term = addTree(depth, counter);
    for (auto _ : state) {
        EGraph egraph;
        benchmark::DoNotOptimize(egraph.addTerm(term));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(term->size()));
}
BENCHMARK(BM_AddTerm)->Arg(6)->Arg(10)->Arg(14);

void
BM_UnionRebuildCongruence(benchmark::State &state)
{
    int64_t n = state.range(0);
    for (auto _ : state) {
        state.PauseTiming();
        EGraph egraph;
        std::vector<EClassId> leaves;
        std::vector<EClassId> wrapped;
        for (int64_t i = 0; i < n; ++i) {
            EClassId leaf = egraph.addTerm(
                makeTerm("leaf" + std::to_string(i)));
            leaves.push_back(leaf);
            wrapped.push_back(
                egraph.add(ENode{Symbol("wrap"), {leaf}}));
        }
        state.ResumeTiming();
        for (int64_t i = 1; i < n; ++i)
            egraph.merge(leaves[0], leaves[i]);
        egraph.rebuild();
        benchmark::DoNotOptimize(egraph.numClasses());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_UnionRebuildCongruence)->Arg(64)->Arg(512)->Arg(4096);

void
BM_FindAfterDeepUnions(benchmark::State &state)
{
    // Deep-union workload: merging each fresh leaf *onto* the previous
    // chain head makes the fresh id the root, so the union-find degrades
    // into a length-n chain. Canonicalization-heavy phases (repeated
    // find over original ids, as ematch/rebuild do) are then quadratic
    // without path compression and near-linear with it.
    int64_t n = state.range(0);
    for (auto _ : state) {
        state.PauseTiming();
        EGraph egraph;
        std::vector<EClassId> leaves;
        leaves.reserve(static_cast<size_t>(n));
        for (int64_t i = 0; i < n; ++i)
            leaves.push_back(
                egraph.addTerm(makeTerm("leaf" + std::to_string(i))));
        for (int64_t i = 1; i < n; ++i)
            egraph.merge(leaves[static_cast<size_t>(i)],
                         leaves[static_cast<size_t>(i - 1)]);
        state.ResumeTiming();
        uint64_t acc = 0;
        for (int pass = 0; pass < 16; ++pass) {
            for (EClassId id : leaves)
                acc += egraph.find(id);
        }
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * n * 16);
}
BENCHMARK(BM_FindAfterDeepUnions)->Arg(256)->Arg(2048)->Arg(8192);

void
BM_FindAfterDeepUnionsConstWalk(benchmark::State &state)
{
    // Same workload through the const (non-compressing) overload: the
    // baseline the mutable find's path halving is measured against.
    int64_t n = state.range(0);
    for (auto _ : state) {
        state.PauseTiming();
        EGraph egraph;
        std::vector<EClassId> leaves;
        leaves.reserve(static_cast<size_t>(n));
        for (int64_t i = 0; i < n; ++i)
            leaves.push_back(
                egraph.addTerm(makeTerm("leaf" + std::to_string(i))));
        for (int64_t i = 1; i < n; ++i)
            egraph.merge(leaves[static_cast<size_t>(i)],
                         leaves[static_cast<size_t>(i - 1)]);
        state.ResumeTiming();
        const EGraph &frozen = egraph;
        uint64_t acc = 0;
        for (int pass = 0; pass < 16; ++pass) {
            for (EClassId id : leaves)
                acc += frozen.find(id);
        }
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * n * 16);
}
BENCHMARK(BM_FindAfterDeepUnionsConstWalk)->Arg(256)->Arg(2048)->Arg(8192);

void
BM_EMatch(benchmark::State &state)
{
    EGraph egraph;
    int counter = 0;
    EClassId root = egraph.addTerm(addTree(10, counter));
    (void)root;
    egraph.rebuild();
    PatternPtr pattern = parsePattern("(arith.addi:i32 ?a ?b)");
    for (auto _ : state) {
        auto matches = ematch(egraph, *pattern);
        benchmark::DoNotOptimize(matches.size());
    }
}
BENCHMARK(BM_EMatch);

/** Chain of width mul-by-constant summands: a ROVER-style arithmetic
 *  expression whose saturation grows a matching-heavy e-graph (strength
 *  reduction, reassociation, and shift rewrites all fire). */
TermPtr
mulAddChain(int width)
{
    const int64_t consts[] = {12, 6, 24, 5, 16, 3, 48, 7};
    TermPtr acc = makeTerm("var:x");
    for (int i = 0; i < width; ++i) {
        TermPtr mul = makeTerm(
            Symbol("arith.muli:i32"),
            {makeTerm("var:v" + std::to_string(i % 6)),
             makeTerm("const:" + std::to_string(consts[i % 8]) +
                      ":i32")});
        acc = makeTerm(Symbol("arith.addi:i32"), {acc, mul});
    }
    return acc;
}

/**
 * The tentpole benchmark: the full ~46-rule ROVER set saturating a wide
 * arithmetic expression. naive:1 runs the pre-index whole-graph
 * reference matcher; naive:0 runs the default indexed + incremental
 * path. Both explore the identical e-graph (the match lists are equal),
 * so the ratio isolates the matcher.
 */
void
BM_ManyRuleSaturation(benchmark::State &state)
{
    bool naive = state.range(0) == 1;
    TermPtr expr = mulAddChain(16);
    for (auto _ : state) {
        EGraph egraph(rover::roverAnalysisHooks());
        egraph.addTerm(expr);
        RunnerOptions options;
        options.max_iters = 20;
        options.max_nodes = 100000;
        options.match_limit = 200;
        options.record_proofs = false;
        options.naive_match = naive;
        options.incremental_match = !naive;
        Runner runner(egraph, options);
        runner.addRules(rover::roverRules());
        benchmark::DoNotOptimize(runner.run().total_applied);
    }
}
BENCHMARK(BM_ManyRuleSaturation)->Arg(0)->Arg(1)->ArgNames({"naive"});

/** Deep pattern over a large mixed-op graph: most classes have the
 *  wrong head op, which is exactly what the (op, arity) index prunes. */
void
BM_DeepPatternMatch(benchmark::State &state)
{
    bool naive = state.range(0) == 1;
    EGraph egraph;
    int counter = 0;
    egraph.addTerm(addTree(12, counter));
    for (int i = 0; i < 4000; ++i) {
        egraph.addTerm(makeTerm(
            Symbol("wrap"), {makeTerm("leaf" + std::to_string(i))}));
    }
    egraph.rebuild();
    PatternPtr deep = parsePattern(
        "(arith.addi:i32 (arith.addi:i32 (arith.addi:i32 ?a ?b) ?c) "
        "(arith.addi:i32 ?d (arith.addi:i32 ?e ?f)))");
    for (auto _ : state) {
        auto matches = naive ? ematchNaive(egraph, *deep)
                             : ematch(egraph, *deep);
        benchmark::DoNotOptimize(matches.size());
    }
}
BENCHMARK(BM_DeepPatternMatch)->Arg(0)->Arg(1)->ArgNames({"naive"});

/** Greedy extraction over a ~16k-class balanced reduction tree. */
void
BM_ExtractGreedy10k(benchmark::State &state)
{
    EGraph egraph;
    std::vector<EClassId> layer;
    for (int i = 0; i < 8192; ++i)
        layer.push_back(
            egraph.addTerm(makeTerm("leaf" + std::to_string(i))));
    while (layer.size() > 1) {
        std::vector<EClassId> next;
        for (size_t i = 0; i + 1 < layer.size(); i += 2)
            next.push_back(egraph.add(
                ENode{Symbol("arith.addi:i32"),
                      {layer[i], layer[i + 1]}}));
        if (layer.size() % 2)
            next.push_back(layer.back());
        layer = std::move(next);
    }
    egraph.rebuild();
    TermSizeCost cost;
    for (auto _ : state) {
        auto extraction = extractGreedy(egraph, layer[0], cost);
        benchmark::DoNotOptimize(extraction->dag_cost);
    }
    state.SetLabel(std::to_string(egraph.numClasses()) + " classes");
}
BENCHMARK(BM_ExtractGreedy10k);

void
BM_RoverSaturation(benchmark::State &state)
{
    TermPtr expr = parseTerm(
        "(arith.addi:i32 (arith.muli:i32 var:a const:12:i32) "
        "(arith.muli:i32 var:b const:6:i32))");
    for (auto _ : state) {
        EGraph egraph(rover::roverAnalysisHooks());
        EClassId root = egraph.addTerm(expr);
        (void)root;
        RunnerOptions options;
        options.max_iters = 6;
        options.record_proofs = false;
        Runner runner(egraph, options);
        runner.addRules(rover::roverRules());
        benchmark::DoNotOptimize(runner.run().total_applied);
    }
}
BENCHMARK(BM_RoverSaturation);

void
BM_ExtractGreedyVsExact(benchmark::State &state)
{
    bool exact = state.range(0) == 1;
    EGraph egraph(rover::roverAnalysisHooks());
    EClassId root = egraph.addTerm(parseTerm(
        "(arith.addi:i32 (arith.muli:i32 var:a const:12:i32) "
        "(arith.muli:i32 var:a const:24:i32))"));
    RunnerOptions options;
    options.max_iters = 5;
    options.record_proofs = false;
    Runner runner(egraph, options);
    runner.addRules(rover::roverRules());
    runner.run();
    rover::RoverAreaCost cost(&egraph);
    for (auto _ : state) {
        auto extraction = exact ? extractExact(egraph, root, cost)
                                : extractGreedy(egraph, root, cost);
        benchmark::DoNotOptimize(extraction->dag_cost);
    }
}
BENCHMARK(BM_ExtractGreedyVsExact)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"exact"});

// ---------------------------------------------------------------------
// Million-node arms: the SoA storage and sharded-search scale proof.
// ---------------------------------------------------------------------

/** Live heap bytes per the allocator (glibc); 0 where unavailable. */
size_t
heapNow()
{
#ifdef __GLIBC__
    struct mallinfo2 mi = mallinfo2();
    return static_cast<size_t>(mi.uordblks) +
           static_cast<size_t>(mi.hblkhd);
#else
    return 0;
#endif
}

/**
 * Faithful replica of the pre-SoA e-graph storage: per-node heap child
 * vectors, node-keyed unordered_map hashcons, unordered_map class table
 * and operator index. Only the add path is replicated — that is the
 * entire storage footprint of a freshly built graph.
 */
struct OldENode
{
    Symbol op;
    std::vector<EClassId> children;
    bool
    operator==(const OldENode &other) const
    {
        return op == other.op && children == other.children;
    }
};

struct OldENodeHash
{
    size_t
    operator()(const OldENode &node) const
    {
        uint64_t h = hashMix(static_cast<uint64_t>(node.op.id()) |
                             (static_cast<uint64_t>(
                                  node.children.size())
                              << 32));
        for (EClassId child : node.children)
            h = hashMix(h ^ child);
        return static_cast<size_t>(h);
    }
};

struct OldEClass
{
    std::vector<OldENode> nodes;
    std::vector<std::pair<OldENode, EClassId>> parents;
};

struct MapGraph
{
    std::unordered_map<OldENode, EClassId, OldENodeHash> memo;
    std::unordered_map<EClassId, OldEClass> classes;
    std::unordered_map<uint64_t, std::vector<EClassId>> op_index;
    std::vector<EClassId> parents;
    std::vector<uint64_t> modified;

    EClassId
    add(OldENode node)
    {
        auto it = memo.find(node);
        if (it != memo.end())
            return it->second;
        EClassId id = static_cast<EClassId>(parents.size());
        parents.push_back(id);
        modified.push_back(id);
        classes[id].nodes.push_back(node);
        op_index[(static_cast<uint64_t>(node.op.id()) << 32) |
                 node.children.size()]
            .push_back(id);
        for (EClassId child : node.children)
            classes[child].parents.emplace_back(node, id);
        memo.emplace(std::move(node), id);
        return id;
    }
};

/** DAG with a large leaf alphabet and mixed unary/binary interior ops:
 *  400k leaves + 300k f + 200k g + 100k h = one million e-nodes. */
template <typename G, typename NodeT>
size_t
buildMillionNodeGraph(G &graph)
{
    std::vector<EClassId> leaves, fs, gs;
    leaves.reserve(400000);
    fs.reserve(300000);
    gs.reserve(200000);
    for (int i = 0; i < 400000; ++i)
        leaves.push_back(graph.add(
            NodeT{Symbol("leaf" + std::to_string(i)), {}}));
    for (int i = 0; i < 300000; ++i)
        fs.push_back(graph.add(NodeT{
            Symbol("f"),
            {leaves[i], leaves[(i * 7 + 1) % leaves.size()]}}));
    for (int i = 0; i < 200000; ++i)
        gs.push_back(
            graph.add(NodeT{Symbol("g"), {fs[i % fs.size()]}}));
    for (int i = 0; i < 100000; ++i)
        graph.add(NodeT{Symbol("h"),
                        {gs[i % gs.size()], fs[(i * 3) % fs.size()]}});
    return leaves.size() + fs.size() + gs.size() + 100000;
}

/**
 * Node-storage bytes at million-node scale, old layout vs SoA: the
 * identical graph built into the faithful map-based mirror and into
 * the real e-graph, compared by allocator truth (mallinfo2 deltas).
 * Leaf symbols are interned up front so neither side pays the symbol
 * table. Counters: bytes/node per layout, the reduction ratio, and
 * exactBytes() (the ResourceGovernor's accounting) as a cross-check.
 */
void
BM_MillionNodeStorage(benchmark::State &state)
{
    for (int i = 0; i < 400000; ++i)
        (void)Symbol("leaf" + std::to_string(i));
    double bytes_map = 0, bytes_soa = 0, bytes_exact = 0, nodes = 0;
    for (auto _ : state) {
        state.PauseTiming();
        {
            size_t before = heapNow();
            auto mirror = std::make_unique<MapGraph>();
            nodes = static_cast<double>(
                buildMillionNodeGraph<MapGraph, OldENode>(*mirror));
            bytes_map = static_cast<double>(heapNow() - before);
        }
        state.ResumeTiming();
        // Timed region: the real e-graph build (add + rebuild), so the
        // wall time tracks SoA hashcons throughput at scale.
        size_t before = heapNow();
        auto egraph = std::make_unique<EGraph>();
        buildMillionNodeGraph<EGraph, ENode>(*egraph);
        egraph->rebuild();
        bytes_soa = static_cast<double>(heapNow() - before);
        bytes_exact = static_cast<double>(egraph->exactBytes());
        benchmark::DoNotOptimize(egraph->numNodes());
    }
    state.counters["nodes"] = nodes;
    state.counters["bytes_per_node_map"] = bytes_map / nodes;
    state.counters["bytes_per_node_soa"] = bytes_soa / nodes;
    state.counters["bytes_exact"] = bytes_exact;
    state.counters["byte_reduction"] =
        bytes_map > 0 ? 1.0 - bytes_soa / bytes_map : 0.0;
    state.SetLabel("allocator-truth map vs SoA");
}
BENCHMARK(BM_MillionNodeStorage)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

/**
 * Many-rule saturation over the million-node graph at jobs:1 vs
 * jobs:4 — the sharded-search scaling arm. The searched graph and the
 * match lists are bit-identical across arms (the determinism
 * contract); only the search phase parallelizes, so the speedup bound
 * is search_wall / total. Counters expose the shard accounting:
 * parallel_efficiency = shard busy seconds / (search wall * jobs).
 */
void
BM_MillionNodeSaturation(benchmark::State &state)
{
    unsigned jobs = static_cast<unsigned>(state.range(0));
    for (int i = 0; i < 400000; ++i)
        (void)Symbol("leaf" + std::to_string(i));
    double shards = 0, wall = 0, busy = 0, applied = 0, nodes = 0;
    for (auto _ : state) {
        state.PauseTiming();
        auto egraph = std::make_unique<EGraph>();
        buildMillionNodeGraph<EGraph, ENode>(*egraph);
        egraph->rebuild();
        state.ResumeTiming();
        RunnerOptions options;
        options.max_iters = 2;
        options.max_nodes = 4000000;
        // Small apply budget: the serial apply/rebuild tail stays thin
        // so the measured time tracks the (parallelizable) search over
        // ~1.8M candidate visits per iteration.
        options.match_limit = 4000;
        options.record_proofs = false;
        options.match_jobs = jobs;
        Runner runner(*egraph, options);
        runner.addRule(makeRewrite("comm-f", "(f ?x ?y)", "(f ?y ?x)"));
        runner.addRule(makeRewrite("widen", "(g ?x)", "(h ?x ?x)"));
        runner.addRule(makeRewrite("narrow", "(h ?x ?y)", "(g ?x)"));
        runner.addRule(
            makeRewrite("assoc", "(f (f ?x ?y) ?z)", "(f ?x (f ?y ?z))"));
        runner.addRule(
            makeRewrite("fuse", "(f (g ?x) ?y)", "(g (f ?x ?y))"));
        runner.addRule(
            makeRewrite("hoist", "(h (g ?x) ?y)", "(h ?x ?y)"));
        runner.addRule(makeRewrite("dup", "(f ?x ?x)", "(g ?x)"));
        runner.addRule(
            makeRewrite("swap-h", "(h ?x ?y)", "(h ?y ?x)"));
        RunnerReport report = runner.run();
        shards = static_cast<double>(report.match_phase.shards);
        wall = report.match_phase.search_wall_seconds;
        busy = report.match_phase.shard_seconds;
        applied = static_cast<double>(report.total_applied);
        nodes = static_cast<double>(egraph->numNodes());
        benchmark::DoNotOptimize(report.total_applied);
    }
    state.counters["jobs"] = jobs;
    state.counters["nodes"] = nodes;
    state.counters["shards"] = shards;
    state.counters["applied"] = applied;
    state.counters["search_wall_s"] = wall;
    state.counters["shard_busy_s"] = busy;
    state.counters["parallel_efficiency"] =
        wall > 0 ? busy / (wall * jobs) : 0.0;
}
BENCHMARK(BM_MillionNodeSaturation)
    ->Arg(1)
    ->Arg(4)
    ->ArgNames({"jobs"})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

} // namespace

BENCHMARK_MAIN();
