/**
 * @file
 * Operator characterization for the HLS model.
 *
 * Stands in for the commercial tool's 45nm ASIC technology library.
 * Numbers are synthetic but dimensionally sensible (ns, um^2, pJ) and,
 * crucially, *ordered* like real hardware: multipliers dwarf adders,
 * constant shifts are free in an ASIC (the paper leans on this in
 * Figure 9), division is slow and multi-cycle, floating point is big.
 */
#ifndef SEER_HLS_OPERATOR_LIBRARY_H_
#define SEER_HLS_OPERATOR_LIBRARY_H_

#include "ir/ops.h"

namespace seer::hls {

/** Characterization of one operator instance. */
struct OpCharacteristics
{
    double delay_ns = 0;  ///< combinational delay through the unit
    double area_um2 = 0;  ///< silicon area of a dedicated unit
    double energy_pj = 0; ///< switching energy per operation
};

/** Technology library: maps IR ops to hardware characteristics. */
class OperatorLibrary
{
  public:
    OperatorLibrary() = default;

    /** Characteristics of the op, given its operand/result widths. */
    OpCharacteristics characterize(const ir::Operation &op) const;

    /** Register area per bit (pipeline/staging registers). */
    double registerAreaPerBit() const { return 1.2; }

    /** Leakage power per um^2 of area, in mW. */
    double leakagePerArea() const { return 0.0015; }

    /** Local memory area per bit (memref.alloc buffers). */
    double memoryAreaPerBit() const { return 0.65; }

    /** Per-loop controller overhead (FSM + counters), um^2. */
    double loopControllerArea(int64_t iteration_latency) const
    {
        return 120.0 + 8.0 * static_cast<double>(iteration_latency);
    }
};

} // namespace seer::hls

#endif // SEER_HLS_OPERATOR_LIBRARY_H_
