/**
 * @file
 * The HLS scheduler: derives the paper's per-loop scheduling constraints
 * (P, l, N, A) plus block schedules and the achieved critical path.
 *
 * Modeling rules (documented in DESIGN.md):
 *  - ASAP scheduling with operator chaining up to the target clock
 *    period; an operator whose delay exceeds 1.5x the period becomes
 *    multi-cycle, otherwise it may stretch the achieved critical path
 *    beyond the target (timing-violation style, like real reports).
 *  - Every memref has a single port: accesses serialize within a cycle
 *    and bound the pipelined initiation interval (M(A) in the paper).
 *  - A loop is pipelinable only if it contains no nested loop/while and
 *    either carries no memory dependence or the dependence distance is
 *    provable; the recurrence II is derived from the scheduled distance
 *    between the dependent store and load.
 *  - Loops marked `seer.coalesced` are trusted to be recurrence-free
 *    (the transformation checked legality on the original nest, whose
 *    indices were analyzable before div/mod decomposition).
 */
#ifndef SEER_HLS_SCHEDULE_H_
#define SEER_HLS_SCHEDULE_H_

#include <map>
#include <optional>
#include <string>

#include "hls/operator_library.h"

namespace seer::hls {

/** The paper's per-loop scheduling constraints (P, l, N, A). */
struct LoopConstraints
{
    int64_t ii = 1;      ///< P: initiation interval (cycles)
    /** l: single-iteration latency with nested loops as one-cycle
     *  placeholders (the co-simulation accounts nested loops
     *  separately, so this avoids double counting). */
    int64_t latency = 1;
    /** Single-iteration latency *including* the static estimate of
     *  nested loops — what SEER's extraction cost (Eqns 1-3) and the
     *  approximation laws use. */
    int64_t full_latency = 1;
    std::optional<int64_t> trip; ///< N when statically known
    /** A: accesses per iteration, per memref (keyed by printable name). */
    std::map<std::string, int64_t> accesses;
    bool pipelined = false;
    /** seer.loop_id attribute when present (SEER's registry key). */
    std::string loop_id;
};

/** External override for one loop (SEER's approximation laws, pragmas). */
struct LoopOverride
{
    std::optional<int64_t> ii;
    std::optional<int64_t> latency;
    std::optional<bool> pipelined;
};

/** Scheduling options. */
struct ScheduleOptions
{
    double clock_period_ns = 1.0;
    /** Pipeline every eligible loop (SEER's assumption / pragma mode).
     *  When false, loops run their iterations back to back (the paper's
     *  "the HLS tool cannot auto-pipeline loops without guidance"). */
    bool pipeline_loops = false;
    /** Per-loop overrides keyed by the seer.loop_id attribute. */
    std::map<std::string, LoopOverride> overrides;
};

/** Full schedule of one function. */
struct FuncSchedule
{
    /** Constraints for every affine.for and scf.while op. */
    std::map<ir::Operation *, LoopConstraints> loops;
    /** Static cycles of each block (loops/whiles as zero-latency
     *  placeholders, scf.if folded in as worst-case branch). */
    std::map<const ir::Block *, int64_t> block_cycles;
    /** For scf.while: static cycles of the condition region. */
    std::map<ir::Operation *, int64_t> while_cond_cycles;
    /** Achieved critical path (>= the longest single chain), ns. */
    double critical_path_ns = 0;
};

/** Schedule a func.func. */
FuncSchedule scheduleFunc(ir::Operation &func, const OperatorLibrary &lib,
                          const ScheduleOptions &options);

} // namespace seer::hls

#endif // SEER_HLS_SCHEDULE_H_
