/**
 * @file
 * Emulation of "manual pragma insertion with no source modification"
 * (the Figure 15 baseline).
 *
 * The commercial tool's pragmas direct loop pipelining, loop fusion, and
 * loop coalescing (a more capable loop-flatten that first perfects the
 * nest). We model them as: mark every loop for pipelining, apply fusion
 * where its legality check passes, and coalesce nests whose *original*
 * form is provably free of loop-carried dependences (the resulting
 * flattened loop is then trusted by the scheduler via `seer.coalesced`).
 */
#ifndef SEER_HLS_PRAGMAS_H_
#define SEER_HLS_PRAGMAS_H_

#include "ir/op.h"

namespace seer::hls {

struct PragmaOptions
{
    bool pipeline = true;
    bool fuse = true;
    bool coalesce = true;
};

/** Apply the pragma-directed transformations in place. */
void applyPragmas(ir::Module &module, const PragmaOptions &options = {});

/**
 * Coalesce the perfect nest rooted at `loop` into a single trusted loop
 * when every conflict in the nest is either injective (dependence-free)
 * or a same-address reduction (which becomes a distance-1 recurrence of
 * the coalesced loop, marked `seer.coalesced.carried` for the
 * scheduler). `max_levels` bounds how many nest levels are collapsed
 * (SEER's own flatten handles 2; the commercial tool's coalesce pragma
 * takes the whole nest — the md_grid difference in Figure 15).
 * Returns true on change.
 */
bool coalesceNest(ir::Operation &loop, size_t max_levels = SIZE_MAX);

} // namespace seer::hls

#endif // SEER_HLS_PRAGMAS_H_
