#include "hls/pragmas.h"

#include <algorithm>

#include "ir/analysis.h"
#include "passes/passes.h"
#include "support/error.h"

namespace seer::hls {

using namespace ir;

namespace {

/** Flatten a (multi-dim) affine access into one LinearExpr. */
std::optional<LinearExpr>
flattenedForm(const MemAccess &access)
{
    if (!access.allAffine())
        return std::nullopt;
    const auto &shape = access.memref.type().shape();
    LinearExpr flat;
    for (size_t d = 0; d < access.indices.size(); ++d) {
        int64_t stride = 1;
        for (size_t rest = d + 1; rest < shape.size(); ++rest)
            stride *= shape[rest];
        flat = flat + access.indices[d]->scaled(stride);
    }
    return flat;
}

enum class NestDependence { Free, Reduction, Unsafe };

/**
 * Dependence classification across a whole perfect nest. Every
 * conflicting pair must (a) be fully affine and (b) hit the exact same
 * address function. If that function is injective over the nest's
 * iteration space (mixed-radix criterion on the iv coefficients) the
 * nest is Free; a non-injective but equal function is a same-address
 * Reduction (safe to coalesce, pipelines with a distance-1 recurrence);
 * anything else is Unsafe.
 */
NestDependence
classifyNest(const std::vector<Operation *> &chain)
{
    Operation *innermost = chain.back();
    auto accesses = collectAccesses(*innermost);
    // Also accesses at outer levels would make the nest imperfect; the
    // caller only passes perfect nests.
    std::vector<std::pair<Value, int64_t>> iv_ranges;
    for (Operation *level : chain) {
        auto trips = constantTripCount(*level);
        if (!trips)
            return NestDependence::Unsafe;
        iv_ranges.emplace_back(inductionVar(*level), *trips);
    }
    bool reduction = false;
    auto injective = [&](const LinearExpr &f) {
        // Coefficients over non-iv bases are disallowed, and every iv
        // that actually iterates must appear (otherwise two iterations
        // differing only in that iv hit the same cell).
        std::vector<std::pair<int64_t, int64_t>> terms; // (|coeff|, N-1)
        for (const auto &[iv, trips] : iv_ranges) {
            int64_t coeff = f.coeff(iv);
            if (coeff == 0) {
                if (trips > 1)
                    return false;
                continue;
            }
            terms.emplace_back(std::abs(coeff), trips - 1);
        }
        for (const auto &[base, coeff] : f.coeffs) {
            bool is_iv = false;
            for (const auto &[iv, trips] : iv_ranges) {
                (void)trips;
                if (iv.impl() == base)
                    is_iv = true;
            }
            if (!is_iv && coeff != 0)
                return false;
        }
        std::sort(terms.begin(), terms.end());
        int64_t reach = 0; // max address span of smaller-stride levels
        for (const auto &[coeff, span] : terms) {
            if (coeff <= reach)
                return false; // strides overlap: not injective
            reach += coeff * span;
        }
        return true;
    };
    for (size_t i = 0; i < accesses.size(); ++i) {
        for (size_t j = 0; j < accesses.size(); ++j) {
            const auto &a = accesses[i];
            const auto &b = accesses[j];
            if (!a.is_store)
                continue;
            if (!(a.memref == b.memref))
                continue;
            auto fa = flattenedForm(a);
            auto fb = flattenedForm(b);
            if (!fa || !fb || !(*fa == *fb))
                return NestDependence::Unsafe;
            if (!injective(*fa)) {
                // Equal non-injective address function: an in-place
                // reduction. Non-iv bases are still unsafe.
                for (const auto &[base, coeff] : fa->coeffs) {
                    bool is_iv = false;
                    for (Operation *level : chain) {
                        if (inductionVar(*level).impl() == base)
                            is_iv = true;
                    }
                    if (!is_iv && coeff != 0)
                        return NestDependence::Unsafe;
                }
                reduction = true;
            }
        }
    }
    return reduction ? NestDependence::Reduction : NestDependence::Free;
}

} // namespace

bool
coalesceNest(Operation &loop, size_t max_levels)
{
    // Collect the perfect-nest chain and check legality *before*
    // flattening destroys analyzability.
    std::vector<Operation *> chain{&loop};
    while (Operation *inner = perfectlyNestedInner(*chain.back()))
        chain.push_back(inner);
    if (chain.size() < 2)
        return false;
    if (chain.size() > max_levels) {
        // Only the innermost `max_levels` levels are collapsed (SEER's
        // 2-level flatten vs the tool's whole-nest coalesce).
        chain.erase(chain.begin(),
                    chain.end() - static_cast<long>(max_levels));
    }
    for (Operation *level : chain) {
        AffineBound lb = getLowerBound(*level);
        if (!lb.isConstant() || !constantTripCount(*level))
            return false;
    }
    NestDependence kind = classifyNest(chain);
    if (kind == NestDependence::Unsafe)
        return false;

    // Flatten innermost pair first so each remaining level still sees a
    // perfect 2-nest; the final flatten replaces the chain root.
    Operation *current = nullptr;
    for (size_t level = chain.size() - 1; level-- > 0;) {
        bool changed = passes::flattenLoops(*chain[level], &current);
        SEER_ASSERT(changed && current,
                    "coalesce: flatten failed unexpectedly");
    }
    current->setAttr("seer.coalesced", Attribute(int64_t{1}));
    if (kind == NestDependence::Reduction) {
        current->setAttr("seer.coalesced.carried",
                         Attribute(int64_t{1}));
    }
    return true;
}

void
applyPragmas(Module &module, const PragmaOptions &options)
{
    for (auto &op : module.ops()) {
        if (!isa(*op, opnames::kFunc))
            continue;
        Operation &func = *op;
        passes::canonicalize(func);
        if (options.fuse) {
            auto fusion = passes::createPass("loop-fusion");
            fusion->run(func);
        }
        if (options.coalesce) {
            bool progress = true;
            while (progress) {
                progress = false;
                // Perfection first: coalesce handles imperfect nests.
                passes::createPass("loop-perfection")->run(func);
                std::vector<Operation *> loops;
                walk(func, [&](Operation &inner) {
                    if (isa(inner, opnames::kAffineFor))
                        loops.push_back(&inner);
                });
                for (Operation *loop : loops) {
                    if (loop->hasAttr("seer.coalesced"))
                        continue;
                    if (coalesceNest(*loop)) {
                        progress = true;
                        break;
                    }
                }
            }
        }
        if (options.pipeline) {
            walk(func, [&](Operation &inner) {
                if (isa(inner, opnames::kAffineFor))
                    inner.setAttr("seer.pipeline", Attribute(int64_t{1}));
            });
        }
        passes::canonicalize(func);
    }
}

} // namespace seer::hls
