#include "hls/operator_library.h"

#include <cmath>

namespace seer::hls {

using namespace ir;

namespace {

double
log2w(unsigned w)
{
    return std::log2(static_cast<double>(std::max(2u, w)));
}

} // namespace

OpCharacteristics
OperatorLibrary::characterize(const Operation &op) const
{
    const std::string &name = op.nameStr();
    OpCharacteristics c;

    auto width = [&]() -> unsigned {
        if (op.numResults() > 0 && op.result().type().isScalar())
            return op.result().type().bitwidth();
        if (op.numOperands() > 0 && op.operand(0).type().isScalar())
            return op.operand(0).type().bitwidth();
        return 32;
    };
    unsigned w = width();
    double dw = w;

    if (name == opnames::kConstant || name == opnames::kExtSI ||
        name == opnames::kExtUI || name == opnames::kTruncI ||
        name == opnames::kIndexCast) {
        return c; // wiring only
    }
    if (name == opnames::kAddI || name == opnames::kSubI ||
        name == opnames::kMinSI || name == opnames::kMaxSI) {
        c.delay_ns = 0.08 + 0.014 * dw;
        c.area_um2 = 5.5 * dw;
        c.energy_pj = 0.005 * dw;
        if (name == opnames::kMinSI || name == opnames::kMaxSI) {
            c.area_um2 += 2.3 * dw; // plus the select
            c.delay_ns += 0.05;
        }
        return c;
    }
    if (name == opnames::kMulI) {
        // Array multiplier: quadratic area, long carry chains.
        c.delay_ns = 0.30 + 0.027 * dw;
        c.area_um2 = 1.9 * dw * dw;
        c.energy_pj = 0.018 * dw;
        return c;
    }
    if (name == opnames::kDivSI || name == opnames::kDivUI ||
        name == opnames::kRemSI || name == opnames::kRemUI) {
        // Iterative divider: deliberately slow and multi-cycle.
        c.delay_ns = 0.25 * dw;
        c.area_um2 = 16.0 * dw;
        c.energy_pj = 0.12 * dw;
        return c;
    }
    if (name == opnames::kShLI || name == opnames::kShRSI ||
        name == opnames::kShRUI) {
        // Constant shift: free wiring in an ASIC. Variable: barrel.
        if (getConstantInt(op.operand(1)).has_value())
            return c;
        c.delay_ns = 0.05 + 0.02 * log2w(w);
        c.area_um2 = 3.4 * dw * log2w(w);
        c.energy_pj = 0.006 * dw;
        return c;
    }
    if (name == opnames::kAndI || name == opnames::kOrI ||
        name == opnames::kXOrI) {
        c.delay_ns = 0.03;
        c.area_um2 = 1.4 * dw;
        c.energy_pj = 0.002 * dw;
        return c;
    }
    if (name == opnames::kCmpI) {
        unsigned ow = op.operand(0).type().bitwidth();
        c.delay_ns = 0.06 + 0.009 * ow;
        c.area_um2 = 2.6 * ow;
        c.energy_pj = 0.003 * ow;
        return c;
    }
    if (name == opnames::kSelect) {
        c.delay_ns = 0.05;
        c.area_um2 = 2.3 * dw;
        c.energy_pj = 0.002 * dw;
        return c;
    }
    if (name == opnames::kLoad || name == opnames::kStore) {
        // BRAM port access: one cycle; port conflicts handled by the
        // scheduler; the array storage itself is costed separately.
        c.delay_ns = 0.45;
        c.area_um2 = 28.0; // address decode + port logic
        c.energy_pj = 1.1;
        return c;
    }
    if (name == opnames::kAlloc) {
        return c; // storage costed via memoryAreaPerBit
    }
    if (name == opnames::kAddF || name == opnames::kSubF) {
        c.delay_ns = 2.9;
        c.area_um2 = 3100;
        c.energy_pj = 6.5;
        return c;
    }
    if (name == opnames::kMulF) {
        c.delay_ns = 3.6;
        c.area_um2 = 5400;
        c.energy_pj = 10.0;
        return c;
    }
    if (name == opnames::kDivF) {
        c.delay_ns = 14.0;
        c.area_um2 = 9800;
        c.energy_pj = 32.0;
        return c;
    }
    if (name == opnames::kNegF) {
        c.delay_ns = 0.03;
        c.area_um2 = 18;
        c.energy_pj = 0.05;
        return c;
    }
    if (name == opnames::kCmpF) {
        c.delay_ns = 0.8;
        c.area_um2 = 420;
        c.energy_pj = 0.9;
        return c;
    }
    if (name == opnames::kSIToFP || name == opnames::kFPToSI) {
        c.delay_ns = 1.6;
        c.area_um2 = 800;
        c.energy_pj = 1.8;
        return c;
    }
    // Control-flow and structural ops are handled by the scheduler.
    return c;
}

} // namespace seer::hls
