#include "hls/schedule.h"

#include <cmath>

#include "ir/analysis.h"
#include "support/error.h"

namespace seer::hls {

using namespace ir;

namespace {

class SchedulerImpl
{
  public:
    SchedulerImpl(const OperatorLibrary &lib,
                  const ScheduleOptions &options)
        : lib_(lib), options_(options)
    {}

    FuncSchedule
    run(Operation &func)
    {
        scheduleBlock(func.region(0).block());
        // Clock trees, setup margins and control logic put a floor on
        // the achieved period regardless of datapath slack.
        out_.critical_path_ns = std::max(
            out_.critical_path_ns, 0.9 * options_.clock_period_ns);
        return std::move(out_);
    }

  private:
    struct Avail
    {
        int64_t cycle = 0; ///< cycle in which the value becomes usable
        double slack = 0;  ///< combinational delay already accumulated
    };

    /**
     * Schedule a block; returns its static length in cycles. Also
     * recursively derives loop constraints for nested loops.
     */
    int64_t
    scheduleBlock(Block &block)
    {
        std::map<ValueImpl *, Avail> avail;
        std::map<ValueImpl *, int64_t> port_free;
        std::map<Operation *, int64_t> op_start;
        int64_t floor = 0; // sequencing barrier (nested loops/ifs)
        int64_t block_end = 0;
        double period = options_.clock_period_ns;

        auto operand_ready = [&](Operation &op) {
            Avail ready;
            for (Value operand : op.operands()) {
                auto it = avail.find(operand.impl());
                if (it == avail.end())
                    continue; // defined outside this block
                if (it->second.cycle > ready.cycle) {
                    ready = it->second;
                } else if (it->second.cycle == ready.cycle) {
                    ready.slack = std::max(ready.slack, it->second.slack);
                }
            }
            if (ready.cycle < floor) {
                ready.cycle = floor;
                ready.slack = 0;
            }
            return ready;
        };

        for (const auto &op_ptr : block.ops()) {
            Operation &op = *op_ptr;
            const std::string &name = op.nameStr();
            if (isTerminator(op))
                continue;

            if (name == opnames::kAffineFor) {
                scheduleLoop(op);
                floor = std::max(floor, block_end);
                ++floor; // loop entry state
                block_end = std::max(block_end, floor);
                continue;
            }
            if (name == opnames::kWhile) {
                scheduleWhile(op);
                floor = std::max(floor, block_end);
                ++floor;
                block_end = std::max(block_end, floor);
                continue;
            }
            if (name == opnames::kIf) {
                Avail ready = operand_ready(op);
                int64_t then_cycles =
                    scheduleBlock(op.region(0).block());
                int64_t else_cycles =
                    scheduleBlock(op.region(1).block());
                int64_t branch = std::max<int64_t>(
                    1, std::max(then_cycles, else_cycles));
                int64_t start = ready.cycle + (ready.slack > 0 ? 1 : 0);
                int64_t finish = start + branch;
                op_start[&op] = start;
                for (size_t r = 0; r < op.numResults(); ++r)
                    avail[op.result(r).impl()] = {finish, 0.0};
                floor = std::max(floor, finish);
                block_end = std::max(block_end, finish);
                continue;
            }

            OpCharacteristics ch = lib_.characterize(op);
            Avail ready = operand_ready(op);
            Avail result;

            bool is_memory =
                name == opnames::kLoad || name == opnames::kStore;
            if (is_memory) {
                size_t mem_index = name == opnames::kStore ? 1 : 0;
                ValueImpl *memref = op.operand(mem_index).impl();
                int64_t start = ready.cycle + (ready.slack > 0.4 ? 1 : 0);
                auto it = port_free.find(memref);
                if (it != port_free.end())
                    start = std::max(start, it->second);
                port_free[memref] = start + 1;
                op_start[&op] = start;
                result = {start + 1, 0.0};
                out_.critical_path_ns =
                    std::max(out_.critical_path_ns, ch.delay_ns);
            } else if (ch.delay_ns > 1.5 * period) {
                // Multi-cycle unit.
                int64_t latency = static_cast<int64_t>(
                    std::ceil(ch.delay_ns / period));
                int64_t start = ready.cycle + (ready.slack > 0 ? 1 : 0);
                op_start[&op] = start;
                result = {start + latency, 0.0};
                out_.critical_path_ns = std::max(
                    out_.critical_path_ns,
                    ch.delay_ns / static_cast<double>(latency));
            } else {
                // Combinational: chain within the cycle while the
                // accumulated delay fits the clock period. A single
                // operator longer than the period cannot be split and
                // stretches the achieved critical path instead.
                double chained = ready.slack + ch.delay_ns;
                int64_t start = ready.cycle;
                if (chained > period && ready.slack > 0) {
                    ++start;
                    chained = ch.delay_ns;
                }
                op_start[&op] = start;
                result = {start, chained};
                out_.critical_path_ns =
                    std::max(out_.critical_path_ns, chained);
            }
            for (size_t r = 0; r < op.numResults(); ++r)
                avail[op.result(r).impl()] = result;
            int64_t finish =
                result.cycle + (result.slack > 0 ? 1 : 0);
            block_end = std::max(block_end, finish);
        }

        op_starts_[&block] = std::move(op_start);
        out_.block_cycles[&block] = std::max<int64_t>(block_end, 0);
        return out_.block_cycles[&block];
    }

    /** Static total-cycle estimate of one full execution of a loop. */
    int64_t
    loopTotal(const LoopConstraints &lc) const
    {
        int64_t trips = lc.trip.value_or(16);
        if (trips < 1)
            trips = 1;
        if (lc.pipelined)
            return (trips - 1) * lc.ii + lc.full_latency;
        return trips * lc.full_latency;
    }

    void
    scheduleLoop(Operation &loop)
    {
        int64_t body = scheduleBlock(loop.region(0).block());
        LoopConstraints lc;
        lc.latency = std::max<int64_t>(1, body);
        // Full latency: replace each direct nested loop's one-cycle
        // placeholder by its full static estimate.
        lc.full_latency = lc.latency;
        for (const auto &inner : loop.region(0).block().ops()) {
            if (!isa(*inner, opnames::kAffineFor) &&
                !isa(*inner, opnames::kWhile)) {
                continue;
            }
            auto it = out_.loops.find(inner.get());
            if (it != out_.loops.end())
                lc.full_latency += loopTotal(it->second) - 1;
        }
        lc.trip = constantTripCount(loop);
        if (loop.hasAttr("seer.loop_id"))
            lc.loop_id = loop.strAttr("seer.loop_id");

        // A: per-memref accesses at this loop's level (nested loops own
        // their accesses).
        walkPruned(loop, [&](Operation &op) {
            if (&op != &loop && (isa(op, opnames::kAffineFor) ||
                                 isa(op, opnames::kWhile))) {
                return false;
            }
            if (isa(op, opnames::kLoad) || isa(op, opnames::kStore)) {
                size_t mem = isa(op, opnames::kStore) ? 1 : 0;
                std::string key = op.operand(mem).impl()->nameHint();
                if (key.empty())
                    key = "<mem>";
                lc.accesses[key]++;
            }
            return true;
        });

        bool has_inner = false;
        walkPruned(loop, [&](Operation &op) {
            if (&op != &loop && (isa(op, opnames::kAffineFor) ||
                                 isa(op, opnames::kWhile))) {
                has_inner = true;
                return false;
            }
            return true;
        });

        bool want_pipeline =
            options_.pipeline_loops || loop.hasAttr("seer.pipeline");
        bool trusted_coalesced = loop.hasAttr("seer.coalesced");

        if (!want_pipeline || has_inner) {
            lc.pipelined = false;
            lc.ii = lc.latency;
        } else {
            int64_t resource_ii = 1;
            for (const auto &[memref, count] : lc.accesses)
                resource_ii = std::max(resource_ii, count);
            int64_t recurrence_ii = 1;
            bool pipelinable = true;
            if (trusted_coalesced) {
                // Coalesced-by-construction: dependence-free unless the
                // coalescing proved a same-address reduction, which is a
                // distance-1 recurrence of the flattened loop.
                if (loop.hasAttr("seer.coalesced.carried"))
                    recurrence_ii = recurrenceCycles(loop);
            } else if (hasLoopCarriedDependence(loop,
                                               /*lenient=*/true)) {
                auto distance = minCarriedDependenceDistance(
                    loop, /*lenient=*/true);
                if (!distance) {
                    pipelinable = false;
                } else {
                    recurrence_ii = std::max<int64_t>(
                        1, recurrenceCycles(loop) / *distance);
                }
            }
            if (pipelinable) {
                lc.pipelined = true;
                lc.ii = std::max(resource_ii, recurrence_ii);
            } else {
                lc.pipelined = false;
                lc.ii = lc.latency;
            }
        }
        applyOverride(loop, lc);
        out_.loops[&loop] = lc;
    }

    /**
     * Recurrence length in cycles: for every store whose value depends
     * (through dataflow) on a load of the same buffer, the cost of the
     * load -> compute -> store path. This models the scheduler placing
     * the dependent load as late as possible (modulo scheduling), so an
     * accumulation like sum += a*b costs load + add + store, not the
     * whole ASAP iteration span.
     */
    int64_t
    recurrenceCycles(Operation &loop)
    {
        Block &body = loop.region(0).block();
        double period = options_.clock_period_ns;
        int64_t worst = 1;
        for (const auto &op_ptr : body.ops()) {
            Operation &op = *op_ptr;
            if (!isa(op, opnames::kStore))
                continue;
            ValueImpl *memref = op.operand(1).impl();
            // DFS from the stored value back to a load of `memref`,
            // minimizing the path cost (cycles + combinational ns).
            struct Cost
            {
                int64_t cycles;
                double ns;
            };
            std::function<std::optional<Cost>(Value, int)> path =
                [&](Value v, int depth) -> std::optional<Cost> {
                if (depth > 64)
                    return std::nullopt;
                Operation *def = v.definingOp();
                if (!def)
                    return std::nullopt;
                if (isa(*def, opnames::kLoad) &&
                    def->operand(0).impl() == memref) {
                    return Cost{1, 0}; // the load itself: one cycle
                }
                OpCharacteristics ch = lib_.characterize(*def);
                bool multi = ch.delay_ns > 1.5 * period;
                std::optional<Cost> best;
                for (Value operand : def->operands()) {
                    auto sub = path(operand, depth + 1);
                    if (!sub)
                        continue;
                    Cost c = *sub;
                    if (multi) {
                        c.cycles += static_cast<int64_t>(
                            std::ceil(ch.delay_ns / period));
                        c.ns = 0;
                    } else {
                        c.ns += ch.delay_ns;
                        while (c.ns > period) {
                            ++c.cycles;
                            c.ns -= period;
                        }
                    }
                    if (!best || c.cycles * period + c.ns <
                                     best->cycles * period + best->ns) {
                        best = c;
                    }
                }
                return best;
            };
            auto cost = path(op.operand(0), 0);
            if (!cost)
                continue;
            int64_t total =
                cost->cycles + (cost->ns > 0 ? 1 : 0);
            worst = std::max(worst, total);
        }
        return worst;
    }

    void
    scheduleWhile(Operation &while_op)
    {
        int64_t cond = scheduleBlock(while_op.region(0).block());
        int64_t body = scheduleBlock(while_op.region(1).block());
        LoopConstraints lc;
        lc.latency = std::max<int64_t>(1, cond + body);
        lc.full_latency = lc.latency;
        for (int region = 0; region < 2; ++region) {
            for (const auto &inner :
                 while_op.region(region).block().ops()) {
                if (!isa(*inner, opnames::kAffineFor) &&
                    !isa(*inner, opnames::kWhile)) {
                    continue;
                }
                auto it = out_.loops.find(inner.get());
                if (it != out_.loops.end())
                    lc.full_latency += loopTotal(it->second) - 1;
            }
        }
        lc.pipelined = false;
        lc.ii = lc.latency;
        if (while_op.hasAttr("seer.loop_id"))
            lc.loop_id = while_op.strAttr("seer.loop_id");
        applyOverride(while_op, lc);
        out_.loops[&while_op] = lc;
        out_.while_cond_cycles[&while_op] = std::max<int64_t>(1, cond);
    }

    void
    applyOverride(Operation &loop, LoopConstraints &lc)
    {
        if (lc.loop_id.empty())
            return;
        auto it = options_.overrides.find(lc.loop_id);
        if (it == options_.overrides.end())
            return;
        const LoopOverride &ov = it->second;
        if (ov.latency) {
            lc.full_latency += *ov.latency - lc.latency;
            lc.latency = *ov.latency;
        }
        if (ov.pipelined)
            lc.pipelined = *ov.pipelined;
        if (ov.ii)
            lc.ii = *ov.ii;
        else if (ov.pipelined && !*ov.pipelined)
            lc.ii = lc.latency;
    }

    const OperatorLibrary &lib_;
    const ScheduleOptions &options_;
    FuncSchedule out_;
    std::map<const Block *, std::map<Operation *, int64_t>> op_starts_;
};

} // namespace

FuncSchedule
scheduleFunc(Operation &func, const OperatorLibrary &lib,
             const ScheduleOptions &options)
{
    return SchedulerImpl(lib, options).run(func);
}

} // namespace seer::hls
