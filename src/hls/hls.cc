#include "hls/hls.h"

#include "ir/analysis.h"
#include "support/error.h"

namespace seer::hls {

using namespace ir;

namespace {

/** Sum of result bitwidths of datapath ops directly in a block. */
double
liveBits(Block &block)
{
    double bits = 0;
    for (const auto &op : block.ops()) {
        for (size_t r = 0; r < op->numResults(); ++r) {
            if (op->result(r).type().isScalar())
                bits += op->result(r).type().bitwidth();
        }
    }
    return bits;
}

/** Area of the design: units + registers + controllers + memories. */
double
computeArea(Operation &func, const FuncSchedule &schedule,
            const OperatorLibrary &lib)
{
    double area = 0;
    walk(func, [&](Operation &op) {
        area += lib.characterize(op).area_um2;
        if (isa(op, opnames::kAlloc)) {
            Type t = op.result().type();
            area += lib.memoryAreaPerBit() *
                    static_cast<double>(t.numElements()) *
                    t.elementType().bitwidth();
        }
        if (isa(op, opnames::kIf))
            area += 30.0; // branch-select FSM states
    });
    // Interface memories (function arguments) are local BRAM.
    Block &body = func.region(0).block();
    for (size_t i = 0; i < body.numArgs(); ++i) {
        Type t = body.arg(i).type();
        if (t.isMemRef()) {
            area += lib.memoryAreaPerBit() *
                    static_cast<double>(t.numElements()) *
                    t.elementType().bitwidth();
        }
    }
    // Controllers + registers per loop.
    for (const auto &[loop, lc] : schedule.loops) {
        area += lib.loopControllerArea(lc.latency);
        double bits = liveBits(loop->region(0).block());
        if (lc.pipelined) {
            // Pipeline staging registers: only a fraction of the values
            // stay live across stages (retiming/register sharing), so
            // charge a depth-tempered factor rather than l full copies.
            double depth = std::min<double>(lc.latency, 10);
            area += lib.registerAreaPerBit() * bits *
                    (0.5 + 0.12 * depth);
        } else {
            area += lib.registerAreaPerBit() * bits * 0.5;
        }
    }
    return area;
}

} // namespace

FuncSchedule
scheduleOnly(const Module &module, const std::string &func_name,
             const HlsOptions &options)
{
    Operation *func = module.lookupFunc(func_name);
    if (!func)
        fatal("hls: no function named '" + func_name + "'");
    OperatorLibrary lib;
    return scheduleFunc(*func, lib, options.schedule);
}

double
estimateArea(const Module &module, const std::string &func_name,
             const HlsOptions &options)
{
    Operation *func = module.lookupFunc(func_name);
    if (!func)
        fatal("hls: no function named '" + func_name + "'");
    OperatorLibrary lib;
    FuncSchedule schedule = scheduleFunc(*func, lib, options.schedule);
    return computeArea(*func, schedule, lib);
}

HlsReport
evaluate(const Module &module, const std::string &func_name,
         std::vector<RtValue> args, const HlsOptions &options)
{
    Operation *func = module.lookupFunc(func_name);
    if (!func)
        fatal("hls: no function named '" + func_name + "'");
    OperatorLibrary lib;
    FuncSchedule schedule = scheduleFunc(*func, lib, options.schedule);

    InterpOptions interp_options = options.interp;
    interp_options.profile = true;
    InterpResult sim =
        interpret(module, func_name, std::move(args), interp_options);

    HlsReport report;
    report.critical_path_ns = schedule.critical_path_ns;

    // --- Total cycles ----------------------------------------------
    // Function body straight-line part (executed once per call).
    uint64_t calls = 1;
    auto body_it =
        schedule.block_cycles.find(&func->region(0).block());
    uint64_t cycles = 0;
    if (body_it != schedule.block_cycles.end())
        cycles += calls * static_cast<uint64_t>(body_it->second);

    int loop_index = 0;
    for (const auto &[loop, lc] : schedule.loops) {
        LoopReport lr;
        lr.constraints = lc;
        auto prof = sim.profile.loops.find(loop);
        if (prof != sim.profile.loops.end()) {
            lr.entries = prof->second.first;
            lr.iterations = prof->second.second;
        }
        uint64_t entries = lr.entries;
        uint64_t iters = lr.iterations;
        if (isa(*loop, opnames::kWhile)) {
            auto cond_it = schedule.while_cond_cycles.find(
                const_cast<Operation *>(loop));
            uint64_t cond =
                cond_it != schedule.while_cond_cycles.end()
                    ? static_cast<uint64_t>(cond_it->second)
                    : 1;
            cycles += iters * static_cast<uint64_t>(lc.latency) +
                      entries * cond;
        } else if (lc.pipelined) {
            // sum over entries of (n_k - 1) * II + l  ==
            // (I - E) * II + E * l   (exact, linear in n_k).
            cycles += (iters - std::min(iters, entries)) *
                          static_cast<uint64_t>(lc.ii) +
                      entries * static_cast<uint64_t>(lc.latency);
        } else {
            cycles += iters * static_cast<uint64_t>(lc.latency) +
                      entries; // one-cycle loop entry overhead
        }
        std::string key = lc.loop_id.empty()
                              ? "loop" + std::to_string(loop_index)
                              : lc.loop_id;
        ++loop_index;
        report.loops.emplace(key, std::move(lr));
    }
    report.total_cycles = std::max<uint64_t>(cycles, 1);

    // --- Area ---------------------------------------------------------
    report.area_um2 = computeArea(*func, schedule, lib);

    // --- Timing ---------------------------------------------------
    report.exec_time_ns = static_cast<double>(report.total_cycles) *
                          report.critical_path_ns;

    // --- Power ----------------------------------------------------
    double energy_pj = 0;
    for (const auto &[op, count] : sim.profile.ops) {
        energy_pj += lib.characterize(*op).energy_pj *
                     static_cast<double>(count);
    }
    double dynamic_mw = energy_pj / std::max(report.exec_time_ns, 1.0);
    double leakage_mw = report.area_um2 * lib.leakagePerArea();
    report.power_mw = dynamic_mw + leakage_mw;

    report.adp = report.area_um2 * report.exec_time_ns;
    return report;
}

} // namespace seer::hls
