/**
 * @file
 * The HLS evaluation oracle: schedule + co-simulate + report PPA.
 *
 * This is the reproduction's stand-in for the paper's commercial HLS
 * tool: it supplies (a) the initial per-loop scheduling constraints SEER
 * reads once (Section 4.6), and (b) the final Area / Total Cycles /
 * Critical Path / Power numbers reported in Tables 3-4 and Figures
 * 13-15. Cycle counts come from actually executing the design on its
 * workload (the paper's "HLS co-simulation").
 */
#ifndef SEER_HLS_HLS_H_
#define SEER_HLS_HLS_H_

#include "hls/schedule.h"
#include "ir/interp.h"

namespace seer::hls {

/** Evaluation options. */
struct HlsOptions
{
    ScheduleOptions schedule;
    ir::InterpOptions interp;

    HlsOptions() { interp.profile = true; }
};

/** Per-loop information exported to SEER's registry. */
struct LoopReport
{
    LoopConstraints constraints;
    uint64_t entries = 0;
    uint64_t iterations = 0;
};

/** The PPA report for one design + workload. */
struct HlsReport
{
    uint64_t total_cycles = 0;
    double critical_path_ns = 0;
    double exec_time_ns = 0; ///< cycles * achieved critical path
    double area_um2 = 0;
    double power_mw = 0;     ///< dynamic + leakage
    double adp = 0;          ///< area * exec time (the figures' metric)

    /** Loop reports keyed by seer.loop_id (or "loopN" fallback). */
    std::map<std::string, LoopReport> loops;
};

/**
 * Evaluate `func_name` in `module` on the given arguments (buffers are
 * mutated, so callers can also use this as functional co-simulation).
 */
HlsReport evaluate(const ir::Module &module, const std::string &func_name,
                   std::vector<ir::RtValue> args,
                   const HlsOptions &options = {});

/**
 * Schedule only (no workload): the oracle SEER calls once on the
 * original program to seed its loop-constraint registry.
 */
FuncSchedule scheduleOnly(const ir::Module &module,
                          const std::string &func_name,
                          const HlsOptions &options = {});

/** Total area of the design (no workload needed). */
double estimateArea(const ir::Module &module, const std::string &func_name,
                    const HlsOptions &options = {});

} // namespace seer::hls

#endif // SEER_HLS_HLS_H_
