/**
 * @file
 * Loop transformations: fusion, complete unrolling, interchange,
 * flattening, and loop perfection.
 */
#include <set>

#include "ir/verifier.h"
#include "passes/passes.h"
#include "passes/transform_utils.h"
#include "support/error.h"

namespace seer::passes {

using namespace ir;

bool
fuseLoopPair(Operation &loop1, Operation &loop2)
{
    if (loop1.parentBlock() != loop2.parentBlock())
        return false;
    // Require adjacency so no intervening op observes the intermediate
    // state (canonicalize hoists constants to make loops adjacent).
    Block *parent = loop1.parentBlock();
    auto it = parent->find(&loop1);
    SEER_ASSERT(it != parent->ops().end(), "loop1 not in parent");
    ++it;
    if (it == parent->ops().end() || it->get() != &loop2)
        return false;
    if (!canFuseLoops(loop1, loop2))
        return false;

    inlineLoopBody(loop2, loop1.region(0).block(), inductionVar(loop1));
    eraseOp(&loop2);
    return true;
}

bool
unrollLoop(Operation &loop, int64_t max_trip)
{
    if (!isa(loop, opnames::kAffineFor))
        return false;
    auto trips = constantTripCount(loop);
    AffineBound lb = getLowerBound(loop);
    if (!trips || !lb.isConstant() || *trips > max_trip)
        return false;
    int64_t step = getStep(loop);

    Block *parent = loop.parentBlock();
    OpBuilder builder = OpBuilder::before(&loop);
    for (int64_t i = 0; i < *trips; ++i) {
        Value iv = builder.indexConstant(lb.constant + i * step);
        // inlineLoopBody inserts before the parent terminator; we need
        // insertion right before the loop, so clone manually.
        Block &body = loop.region(0).block();
        std::map<ValueImpl *, Value> mapping;
        mapping[body.arg(0).impl()] = iv;
        for (const auto &op : body.ops()) {
            if (isTerminator(*op))
                continue;
            builder.insert(cloneOp(*op, mapping));
        }
    }
    (void)parent;
    eraseOp(&loop);
    return true;
}

bool
interchangeLoops(Operation &outer)
{
    Operation *inner = perfectlyNestedInner(outer);
    if (!inner || !canInterchangeLoops(outer, *inner))
        return false;
    // Constant rectangular bounds: swap the bound attributes, then swap
    // the iv uses inside the innermost body.
    AffineBound outer_lb = getLowerBound(outer);
    AffineBound outer_ub = getUpperBound(outer);
    int64_t outer_step = getStep(outer);
    AffineBound inner_lb = getLowerBound(*inner);
    AffineBound inner_ub = getUpperBound(*inner);
    int64_t inner_step = getStep(*inner);
    if (!outer_lb.isConstant() || !outer_ub.isConstant() ||
        !inner_lb.isConstant() || !inner_ub.isConstant()) {
        return false;
    }
    setLoopBounds(outer, inner_lb, inner_ub, inner_step);
    setLoopBounds(*inner, outer_lb, outer_ub, outer_step);

    Value outer_iv = inductionVar(outer);
    Value inner_iv = inductionVar(*inner);
    walk(inner->region(0).block(), [&](Operation &op) {
        for (size_t i = 0; i < op.numOperands(); ++i) {
            if (op.operand(i) == outer_iv)
                op.setOperand(i, inner_iv);
            else if (op.operand(i) == inner_iv)
                op.setOperand(i, outer_iv);
        }
    });
    // Swap printer name hints so the text reads naturally.
    std::string hint = outer_iv.impl()->nameHint();
    outer_iv.impl()->setNameHint(inner_iv.impl()->nameHint());
    inner_iv.impl()->setNameHint(hint);
    return true;
}

bool
flattenLoops(Operation &outer, Operation **result)
{
    Operation *inner = perfectlyNestedInner(outer);
    if (!inner)
        return false;
    AffineBound outer_lb = getLowerBound(outer);
    AffineBound inner_lb = getLowerBound(*inner);
    auto outer_trips = constantTripCount(outer);
    auto inner_trips = constantTripCount(*inner);
    if (!outer_trips || !inner_trips || !outer_lb.isConstant() ||
        !inner_lb.isConstant()) {
        return false;
    }
    if (*outer_trips == 0 || *inner_trips == 0)
        return false;
    int64_t outer_step = getStep(outer);
    int64_t inner_step = getStep(*inner);

    OpBuilder builder = OpBuilder::before(&outer);
    Operation *flat = builder.affineFor(0, *outer_trips * *inner_trips, 1,
                                        "k");
    Block &body = flat->region(0).block();
    Value k = body.arg(0);
    OpBuilder inner_builder = OpBuilder::atEnd(body);
    // i = lb_o + (k / Ni) * step_o ; j = lb_i + (k % Ni) * step_i.
    Value ni = inner_builder.indexConstant(*inner_trips);
    Value q = inner_builder.binary(opnames::kDivSI, k, ni);
    Value r = inner_builder.binary(opnames::kRemSI, k, ni);
    auto affineize = [&](Value base, int64_t lb, int64_t step) {
        Value v = base;
        if (step != 1) {
            Value s = inner_builder.indexConstant(step);
            v = inner_builder.binary(opnames::kMulI, v, s);
        }
        if (lb != 0) {
            Value c = inner_builder.indexConstant(lb);
            v = inner_builder.binary(opnames::kAddI, v, c);
        }
        return v;
    };
    Value i = affineize(q, outer_lb.constant, outer_step);
    Value j = affineize(r, inner_lb.constant, inner_step);

    std::map<ValueImpl *, Value> mapping;
    mapping[inductionVar(outer).impl()] = i;
    mapping[inductionVar(*inner).impl()] = j;
    for (const auto &op : inner->region(0).block().ops()) {
        if (isTerminator(*op))
            continue;
        inner_builder.insert(cloneOp(*op, mapping));
    }
    inner_builder.create(opnames::kAffineYield, {}, {});
    eraseOp(&outer);
    if (result)
        *result = flat;
    return true;
}

bool
perfectLoop(Operation &outer)
{
    if (!isa(outer, opnames::kAffineFor))
        return false;
    Block &body = outer.region(0).block();
    // Identify [pre..., inner, post..., terminator].
    Operation *inner = nullptr;
    std::vector<Operation *> pre, post;
    for (const auto &op : body.ops()) {
        if (isTerminator(*op))
            continue;
        if (isa(*op, opnames::kAffineFor)) {
            if (inner)
                return false; // two inner loops: not this pass's shape
            inner = op.get();
        } else if (!inner) {
            pre.push_back(op.get());
        } else {
            post.push_back(op.get());
        }
    }
    if (!inner || (pre.empty() && post.empty()))
        return false;
    // No nested control flow among the moved ops.
    for (Operation *op : pre) {
        if (opInfo(op->name()).isControlFlow || op->numRegions() > 0)
            return false;
    }
    for (Operation *op : post) {
        if (opInfo(op->name()).isControlFlow || op->numRegions() > 0)
            return false;
    }
    AffineBound inner_lb = getLowerBound(*inner);
    auto inner_trips = constantTripCount(*inner);
    if (!inner_lb.isConstant() || !inner_trips || *inner_trips < 1)
        return false;
    int64_t step = getStep(*inner);
    int64_t first = inner_lb.constant;
    int64_t last = first + (*inner_trips - 1) * step;

    // Inner bounds must not depend on pre-op results.
    for (Value operand : inner->operands()) {
        for (Operation *op : pre) {
            for (size_t r = 0; r < op->numResults(); ++r) {
                if (operand == op->result(r))
                    return false;
            }
        }
    }
    // Pre results may only feed pre ops; post results only post ops
    // (otherwise predication would break SSA dominance).
    auto results_leak = [&](const std::vector<Operation *> &group) {
        std::set<ValueImpl *> produced;
        for (Operation *op : group) {
            for (size_t r = 0; r < op->numResults(); ++r)
                produced.insert(op->result(r).impl());
        }
        bool leak = false;
        walk(outer, [&](Operation &user) {
            bool in_group = false;
            for (Operation *op : group) {
                if (&user == op || user.isInside(op))
                    in_group = true;
            }
            if (in_group)
                return;
            for (Value operand : user.operands()) {
                if (produced.count(operand.impl()))
                    leak = true;
            }
        });
        return leak;
    };
    if (results_leak(pre) || results_leak(post))
        return false;

    Block &inner_body = inner->region(0).block();
    Value j = inner_body.arg(0);

    auto predicate = [&](const std::vector<Operation *> &group,
                         int64_t when, bool at_front) {
        OpBuilder builder =
            at_front ? OpBuilder::before(&inner_body.front())
                     : OpBuilder::before(&inner_body.back());
        Value c = builder.indexConstant(when);
        Value cond = builder.cmpi(CmpPred::EQ, j, c);
        Operation *guard = builder.scfIf(cond);
        OpBuilder guard_builder =
            OpBuilder::atEnd(guard->region(0).block());
        for (Operation *op : group) {
            auto pos = op->parentBlock()->find(op);
            guard_builder.insert(op->parentBlock()->take(pos));
        }
        guard_builder.create(opnames::kYield, {}, {});
        OpBuilder::atEnd(guard->region(1).block())
            .create(opnames::kYield, {}, {});
    };
    if (!pre.empty())
        predicate(pre, first, /*at_front=*/true);
    if (!post.empty())
        predicate(post, last, /*at_front=*/false);
    return true;
}

} // namespace seer::passes
