#include "passes/pass.h"

#include <functional>

#include "ir/analysis.h"
#include "passes/passes.h"
#include "support/error.h"

namespace seer::passes {

using namespace ir;

namespace {

/** Collect every affine.for in the function, outermost first. */
std::vector<Operation *>
allLoops(Operation &func)
{
    std::vector<Operation *> loops;
    walk(func, [&](Operation &op) {
        if (isa(op, opnames::kAffineFor))
            loops.push_back(&op);
    });
    return loops;
}

std::vector<Operation *>
allIfs(Operation &func)
{
    std::vector<Operation *> ifs;
    walk(func, [&](Operation &op) {
        if (isa(op, opnames::kIf))
            ifs.push_back(&op);
    });
    return ifs;
}

/** A pass defined by a scan callback. */
class LambdaPass : public Pass
{
  public:
    LambdaPass(std::string name, std::function<bool(Operation &)> body)
        : name_(std::move(name)), body_(std::move(body))
    {}

    std::string name() const override { return name_; }
    bool run(Operation &func) override { return body_(func); }

  private:
    std::string name_;
    std::function<bool(Operation &)> body_;
};

/** Apply `attempt` to adjacent loop pairs until one application works. */
bool
scanLoopPairs(Operation &func,
              const std::function<bool(Operation &, Operation &)> &attempt)
{
    bool changed = false;
    bool progress = true;
    while (progress) {
        progress = false;
        std::vector<Block *> blocks;
        walk(func, [&](Operation &op) {
            for (size_t i = 0; i < op.numRegions(); ++i) {
                if (!op.region(i).empty())
                    blocks.push_back(&op.region(i).block());
            }
        });
        for (Block *block : blocks) {
            auto loops = topLevelLoops(*block);
            for (size_t i = 0; i + 1 < loops.size(); ++i) {
                if (attempt(*loops[i], *loops[i + 1])) {
                    changed = true;
                    progress = true;
                    break;
                }
            }
            if (progress)
                break;
        }
    }
    return changed;
}

/** Apply `attempt` to each collected op once per fixpoint round. */
template <typename Collect, typename Attempt>
bool
scanOnce(Operation &func, Collect collect, Attempt attempt)
{
    bool changed = false;
    bool progress = true;
    while (progress) {
        progress = false;
        for (Operation *op : collect(func)) {
            if (attempt(*op)) {
                changed = true;
                progress = true;
                break; // re-collect: the transformation invalidated lists
            }
        }
    }
    return changed;
}

} // namespace

std::unique_ptr<Pass>
createPass(const std::string &name)
{
    if (name == "dce") {
        return std::make_unique<LambdaPass>(
            name, [](Operation &f) { return runDce(f); });
    }
    if (name == "canonicalize") {
        return std::make_unique<LambdaPass>(
            name, [](Operation &f) { return canonicalize(f); });
    }
    if (name == "loop-fusion") {
        return std::make_unique<LambdaPass>(name, [](Operation &f) {
            return scanLoopPairs(f, [](Operation &a, Operation &b) {
                return fuseLoopPair(a, b);
            });
        });
    }
    if (name == "loop-unroll") {
        return std::make_unique<LambdaPass>(name, [](Operation &f) {
            return scanOnce(
                f, allLoops, [](Operation &loop) {
                    // Only unroll innermost loops with small trip counts.
                    bool has_inner = false;
                    walk(loop.region(0).block(), [&](Operation &op) {
                        if (isa(op, opnames::kAffineFor))
                            has_inner = true;
                    });
                    if (has_inner)
                        return false;
                    return unrollLoop(loop, 64);
                });
        });
    }
    if (name == "loop-interchange") {
        // Interchange is an involution: a fixpoint scan would toggle the
        // same nest forever, so sweep the loop list exactly once.
        return std::make_unique<LambdaPass>(name, [](Operation &f) {
            bool changed = false;
            for (Operation *loop : allLoops(f))
                changed |= interchangeLoops(*loop);
            return changed;
        });
    }
    if (name == "loop-flatten") {
        return std::make_unique<LambdaPass>(name, [](Operation &f) {
            return scanOnce(f, allLoops, [](Operation &loop) {
                return flattenLoops(loop);
            });
        });
    }
    if (name == "loop-perfection") {
        return std::make_unique<LambdaPass>(name, [](Operation &f) {
            return scanOnce(f, allLoops, [](Operation &loop) {
                return perfectLoop(loop);
            });
        });
    }
    if (name == "if-conversion") {
        return std::make_unique<LambdaPass>(name, [](Operation &f) {
            return scanOnce(f, allIfs, [](Operation &if_op) {
                return convertIf(if_op);
            });
        });
    }
    if (name == "memory-forward") {
        return std::make_unique<LambdaPass>(
            name, [](Operation &f) { return forwardMemory(f); });
    }
    if (name == "if-correlation") {
        return std::make_unique<LambdaPass>(name, [](Operation &f) {
            return scanOnce(f, allIfs, [](Operation &if_op) {
                Block *parent = if_op.parentBlock();
                auto it = parent->find(&if_op);
                ++it;
                if (it == parent->ops().end() ||
                    !isa(**it, opnames::kIf)) {
                    return false;
                }
                return correlateIfs(if_op, **it);
            });
        });
    }
    if (name == "memory-reuse") {
        return std::make_unique<LambdaPass>(name, [](Operation &f) {
            return scanOnce(f, allLoops, [](Operation &loop) {
                return reuseMemory(loop);
            });
        });
    }
    if (name == "cf-mux") {
        return std::make_unique<LambdaPass>(name, [](Operation &f) {
            return scanOnce(f, allIfs, [](Operation &if_op) {
                return muxControlFlow(if_op);
            });
        });
    }
    fatal("unknown pass '" + name + "'");
}

std::vector<std::string>
allPassNames()
{
    return {"loop-unroll",    "loop-fusion",   "loop-interchange",
            "loop-flatten",   "loop-perfection", "if-conversion",
            "memory-forward", "if-correlation", "memory-reuse",
            "cf-mux"};
}

bool
runPassOnModule(Pass &pass, Module &module)
{
    bool changed = false;
    for (auto &op : module.ops()) {
        if (isa(*op, opnames::kFunc))
            changed |= pass.run(*op);
    }
    return changed;
}

bool
runPipeline(Module &module, const std::vector<std::string> &pass_names,
            int max_rounds)
{
    bool changed = false;
    for (int round = 0; round < max_rounds; ++round) {
        bool round_changed = false;
        for (const std::string &name : pass_names) {
            auto pass = createPass(name);
            round_changed |= runPassOnModule(*pass, module);
        }
        if (!round_changed)
            break;
        changed = true;
    }
    return changed;
}

} // namespace seer::passes
