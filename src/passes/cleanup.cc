/**
 * @file
 * DCE and canonicalization (constant folding, identities, constant
 * hoisting).
 */
#include <set>

#include "ir/interp.h"
#include "passes/passes.h"
#include "passes/transform_utils.h"
#include "support/error.h"

namespace seer::passes {

using namespace ir;

namespace {

void
collectUses(Operation &func, std::set<ValueImpl *> &used)
{
    walk(func, [&](Operation &op) {
        for (Value operand : op.operands())
            used.insert(operand.impl());
    });
}

bool
dceOnce(Operation &func)
{
    std::set<ValueImpl *> used;
    collectUses(func, used);
    bool changed = false;
    // Erase pure ops (and unused allocs) whose results are all unused.
    std::vector<Operation *> dead;
    walk(func, [&](Operation &op) {
        const OpInfo &info = opInfo(op.name());
        bool erasable =
            (info.isPure && op.numRegions() == 0) ||
            isa(op, opnames::kAlloc);
        if (!erasable || op.numResults() == 0)
            return;
        for (size_t i = 0; i < op.numResults(); ++i) {
            if (used.count(op.result(i).impl()))
                return;
        }
        dead.push_back(&op);
    });
    for (Operation *op : dead) {
        eraseOp(op);
        changed = true;
    }
    return changed;
}

/** Evaluate a binary integer op on constants (result wrapped to width). */
std::optional<int64_t>
evalIntBinary(const std::string &name, int64_t lhs, int64_t rhs,
              unsigned width)
{
    uint64_t umask = width >= 64 ? ~0ULL : ((1ULL << width) - 1);
    uint64_t ul = static_cast<uint64_t>(lhs) & umask;
    uint64_t ur = static_cast<uint64_t>(rhs) & umask;
    int64_t r;
    if (name == opnames::kAddI) {
        r = static_cast<int64_t>(static_cast<uint64_t>(lhs) +
                                 static_cast<uint64_t>(rhs));
    } else if (name == opnames::kSubI) {
        r = static_cast<int64_t>(static_cast<uint64_t>(lhs) -
                                 static_cast<uint64_t>(rhs));
    } else if (name == opnames::kMulI) {
        r = static_cast<int64_t>(static_cast<uint64_t>(lhs) *
                                 static_cast<uint64_t>(rhs));
    } else if (name == opnames::kDivSI) {
        if (rhs == 0)
            return std::nullopt;
        r = lhs / rhs;
    } else if (name == opnames::kRemSI) {
        if (rhs == 0)
            return std::nullopt;
        r = lhs % rhs;
    } else if (name == opnames::kDivUI) {
        if (ur == 0)
            return std::nullopt;
        r = static_cast<int64_t>(ul / ur);
    } else if (name == opnames::kRemUI) {
        if (ur == 0)
            return std::nullopt;
        r = static_cast<int64_t>(ul % ur);
    } else if (name == opnames::kAndI) {
        r = lhs & rhs;
    } else if (name == opnames::kOrI) {
        r = lhs | rhs;
    } else if (name == opnames::kXOrI) {
        r = lhs ^ rhs;
    } else if (name == opnames::kShLI) {
        r = rhs < 0 || rhs >= 64
                ? 0
                : static_cast<int64_t>(static_cast<uint64_t>(lhs) << rhs);
    } else if (name == opnames::kShRSI) {
        r = rhs < 0 || rhs >= 64 ? (lhs < 0 ? -1 : 0) : (lhs >> rhs);
    } else if (name == opnames::kShRUI) {
        r = rhs < 0 || rhs >= 64 ? 0 : static_cast<int64_t>(ul >> rhs);
    } else if (name == opnames::kMinSI) {
        r = std::min(lhs, rhs);
    } else if (name == opnames::kMaxSI) {
        r = std::max(lhs, rhs);
    } else {
        return std::nullopt;
    }
    return wrapToWidth(r, width);
}

/** Replace all uses of op's single result with `v` and erase op. */
void
replaceAndErase(Operation &func, Operation *op, Value v)
{
    replaceAllUsesIn(func, op->result(0), v);
    eraseOp(op);
}

bool
foldOps(Operation &func)
{
    bool changed = false;
    std::vector<Operation *> worklist;
    walk(func, [&](Operation &op) { worklist.push_back(&op); });

    for (Operation *op : worklist) {
        if (!op->parentBlock())
            continue; // already erased
        const std::string &name = op->nameStr();
        const OpInfo &info = opInfo(op->name());
        if (!info.isPure || op->numResults() != 1 ||
            isa(*op, opnames::kConstant)) {
            continue;
        }

        // Fully-constant integer ops.
        if (op->numOperands() == 2 && op->result(0).type().isScalar() &&
            !op->result(0).type().isFloat()) {
            auto lhs = getConstantInt(op->operand(0));
            auto rhs = getConstantInt(op->operand(1));
            if (lhs && rhs && name != opnames::kCmpI) {
                if (auto value = evalIntBinary(name, *lhs, *rhs,
                                               op->result(0)
                                                   .type()
                                                   .bitwidth())) {
                    OpBuilder builder = OpBuilder::before(op);
                    Value c = builder.intConstant(op->result(0).type(),
                                                  *value);
                    replaceAndErase(func, op, c);
                    changed = true;
                    continue;
                }
            }
            if (lhs && rhs && name == opnames::kCmpI) {
                bool r = evalCmpI(parseCmpPred(op->strAttr("predicate")),
                                  *lhs, *rhs,
                                  op->operand(0).type().bitwidth());
                OpBuilder builder = OpBuilder::before(op);
                Value c = builder.intConstant(Type::i1(),
                                              static_cast<int64_t>(r));
                replaceAndErase(func, op, c);
                changed = true;
                continue;
            }
        }

        // Cast folding: a constant flowing through a cast is a constant
        // (after unrolling this is what turns variable shift amounts
        // into free constant shifts).
        if (op->numOperands() == 1) {
            auto value = getConstantInt(op->operand(0));
            if (value) {
                std::optional<int64_t> folded;
                unsigned rw = op->result(0).type().isScalar()
                                  ? op->result(0).type().bitwidth()
                                  : 64;
                if (name == opnames::kIndexCast ||
                    name == opnames::kExtSI) {
                    folded = *value;
                } else if (name == opnames::kExtUI) {
                    unsigned ow = op->operand(0).type().bitwidth();
                    uint64_t mask =
                        ow >= 64 ? ~0ULL : ((1ULL << ow) - 1);
                    folded = static_cast<int64_t>(
                        static_cast<uint64_t>(*value) & mask);
                } else if (name == opnames::kTruncI) {
                    folded = wrapToWidth(*value, rw);
                }
                if (folded) {
                    OpBuilder builder = OpBuilder::before(op);
                    Value c = builder.intConstant(op->result(0).type(),
                                                  *folded);
                    replaceAndErase(func, op, c);
                    changed = true;
                    continue;
                }
            }
        }

        // Algebraic identities.
        auto is_const = [&](size_t i, int64_t v) {
            auto c = getConstantInt(op->operand(i));
            return c && *c == v;
        };
        if (name == opnames::kAddI || name == opnames::kOrI ||
            name == opnames::kXOrI || name == opnames::kShLI ||
            name == opnames::kShRSI || name == opnames::kShRUI ||
            name == opnames::kSubI) {
            bool comm = name == opnames::kAddI || name == opnames::kOrI ||
                        name == opnames::kXOrI;
            if (is_const(1, 0) || (comm && is_const(0, 0))) {
                Value keep =
                    is_const(1, 0) ? op->operand(0) : op->operand(1);
                replaceAndErase(func, op, keep);
                changed = true;
                continue;
            }
        }
        if (name == opnames::kMulI) {
            if (is_const(1, 1) || is_const(0, 1)) {
                Value keep =
                    is_const(1, 1) ? op->operand(0) : op->operand(1);
                replaceAndErase(func, op, keep);
                changed = true;
                continue;
            }
            if (is_const(1, 0) || is_const(0, 0)) {
                OpBuilder builder = OpBuilder::before(op);
                Value zero =
                    builder.intConstant(op->result(0).type(), 0);
                replaceAndErase(func, op, zero);
                changed = true;
                continue;
            }
        }
        if (name == opnames::kSelect) {
            if (auto c = getConstantInt(op->operand(0))) {
                replaceAndErase(func, op, op->operand(*c ? 1 : 2));
                changed = true;
                continue;
            }
            if (op->operand(1) == op->operand(2)) {
                replaceAndErase(func, op, op->operand(1));
                changed = true;
                continue;
            }
        }
        if ((name == opnames::kAndI || name == opnames::kOrI) &&
            op->operand(0) == op->operand(1)) {
            replaceAndErase(func, op, op->operand(0));
            changed = true;
            continue;
        }
        if (name == opnames::kXOrI && op->operand(0) == op->operand(1)) {
            OpBuilder builder = OpBuilder::before(op);
            Value zero = builder.intConstant(op->result(0).type(), 0);
            replaceAndErase(func, op, zero);
            changed = true;
            continue;
        }
    }
    return changed;
}

/** Inline scf.if with constant condition; drop zero-trip loops. */
bool
simplifyControlFlow(Operation &func)
{
    bool changed = false;
    std::vector<Operation *> worklist;
    walk(func, [&](Operation &op) {
        if (isa(op, opnames::kIf) || isa(op, opnames::kAffineFor))
            worklist.push_back(&op);
    });
    // Erasing an op destroys everything nested in it; track the victims
    // so later worklist entries are not touched after free.
    std::set<Operation *> erased;
    auto erase_with_subtree = [&](Operation *op) {
        walk(*op, [&](Operation &inner) { erased.insert(&inner); });
        eraseOp(op);
    };
    for (Operation *op : worklist) {
        if (erased.count(op))
            continue;
        if (isa(*op, opnames::kAffineFor)) {
            auto trips = constantTripCount(*op);
            if (trips && *trips == 0) {
                erase_with_subtree(op);
                changed = true;
            }
            continue;
        }
        auto cond = getConstantInt(op->operand(0));
        if (!cond)
            continue;
        Block &branch = op->region(*cond ? 0 : 1).block();
        Block *parent = op->parentBlock();
        auto pos = parent->find(op);
        std::map<ValueImpl *, Value> mapping;
        std::vector<Value> yielded;
        for (const auto &inner : branch.ops()) {
            if (isTerminator(*inner)) {
                for (Value v : inner->operands()) {
                    auto it = mapping.find(v.impl());
                    yielded.push_back(it != mapping.end() ? it->second
                                                          : v);
                }
                continue;
            }
            parent->insert(pos, cloneOp(*inner, mapping));
        }
        for (size_t i = 0; i < op->numResults(); ++i)
            replaceAllUsesIn(func, op->result(i), yielded[i]);
        erase_with_subtree(op);
        changed = true;
    }
    return changed;
}

/**
 * Hoist pure region-free ops out of any region whose parent op they do
 * not depend on (LICM generalized to ifs and whiles). Division is not
 * hoisted (speculation could trap). Fixpoint over chains.
 */
bool
hoistPureOps(Operation &func)
{
    bool changed = false;
    bool progress = true;
    while (progress) {
        progress = false;
        std::vector<Operation *> candidates;
        walk(func, [&](Operation &op) {
            const OpInfo &info = opInfo(op.name());
            if (!info.isPure || op.numRegions() > 0 ||
                isa(op, opnames::kConstant)) {
                return;
            }
            if (isa(op, opnames::kDivSI) || isa(op, opnames::kDivUI) ||
                isa(op, opnames::kRemSI) || isa(op, opnames::kRemUI)) {
                return;
            }
            if (op.parentOp() && op.parentOp()->parentBlock())
                candidates.push_back(&op);
        });
        for (Operation *op : candidates) {
            Operation *parent = op->parentOp();
            if (!parent)
                continue;
            bool movable = true;
            for (Value operand : op->operands()) {
                if (!isDefinedOutside(operand, *parent))
                    movable = false;
            }
            if (!movable)
                continue;
            Operation::Ptr taken =
                op->parentBlock()->take(op->parentBlock()->find(op));
            OpBuilder::before(parent).insert(std::move(taken));
            changed = true;
            progress = true;
        }
    }
    return changed;
}

/** Block-local common-subexpression elimination over pure ops. */
bool
runCse(Operation &func)
{
    bool changed = false;
    std::vector<Block *> blocks;
    walk(func, [&](Operation &op) {
        for (size_t i = 0; i < op.numRegions(); ++i) {
            if (!op.region(i).empty())
                blocks.push_back(&op.region(i).block());
        }
    });
    for (Block *block : blocks) {
        std::map<std::string, Value> seen;
        std::vector<Operation *> dead;
        for (auto &op : block->ops()) {
            const OpInfo &info = opInfo(op->name());
            if (!info.isPure || op->numRegions() > 0 ||
                op->numResults() != 1) {
                continue;
            }
            std::string key = op->nameStr();
            key += '@' + op->result(0).type().str();
            for (Value operand : op->operands()) {
                key += ':';
                key += std::to_string(
                    reinterpret_cast<uintptr_t>(operand.impl()));
            }
            for (const auto &[name, value] : op->attrs()) {
                key += ':' + name + '=' + value.str();
            }
            auto it = seen.find(key);
            if (it == seen.end()) {
                seen.emplace(std::move(key), op->result(0));
            } else {
                replaceAllUsesIn(func, op->result(0), it->second);
                dead.push_back(op.get());
            }
        }
        for (Operation *op : dead) {
            eraseOp(op);
            changed = true;
        }
    }
    return changed;
}

/** Hoist constants to the function entry and deduplicate them. */
bool
hoistConstants(Operation &func)
{
    bool changed = false;
    Block &entry = func.region(0).block();
    std::vector<Operation *> constants;
    walk(func, [&](Operation &op) {
        if (isa(op, opnames::kConstant))
            constants.push_back(&op);
    });
    // Existing canonical constant per (value, type) at entry.
    std::map<std::pair<std::string, std::string>, Value> canonical;
    std::vector<Operation *> keepers;
    for (Operation *op : constants) {
        auto key = std::make_pair(op->attr("value").str(),
                                  op->result().type().str());
        auto it = canonical.find(key);
        if (it == canonical.end()) {
            canonical.emplace(key, op->result());
            keepers.push_back(op);
        } else {
            replaceAllUsesIn(func, op->result(), it->second);
            eraseOp(op);
            changed = true;
        }
    }
    // Gather all keepers contiguously at the entry head (they are pure
    // and operand-free, so this always preserves dominance); this is
    // what makes unrolled if-ladders adjacent for if-correlation.
    bool needs_gather = false;
    {
        size_t index = 0;
        for (const auto &op : entry.ops()) {
            if (index < keepers.size()) {
                if (op.get() != keepers[index])
                    needs_gather = true;
                ++index;
            }
        }
        if (index < keepers.size())
            needs_gather = true; // some keepers live in nested blocks
    }
    if (needs_gather) {
        auto anchor = entry.ops().begin();
        for (Operation *op : keepers) {
            auto pos = op->parentBlock()->find(op);
            if (op->parentBlock() == &entry && pos == anchor) {
                ++anchor;
                continue;
            }
            Operation::Ptr taken = op->parentBlock()->take(pos);
            entry.insert(anchor, std::move(taken));
            changed = true;
        }
    }
    return changed;
}

} // namespace

bool
runDce(Operation &func)
{
    bool changed = false;
    while (dceOnce(func))
        changed = true;
    return changed;
}

bool
canonicalize(Operation &func)
{
    bool changed = false;
    for (int round = 0; round < 16; ++round) {
        bool round_changed = false;
        round_changed |= foldOps(func);
        round_changed |= simplifyControlFlow(func);
        round_changed |= hoistConstants(func);
        round_changed |= hoistPureOps(func);
        round_changed |= runCse(func);
        round_changed |= runDce(func);
        if (!round_changed)
            break;
        changed = true;
    }
    return changed;
}

} // namespace seer::passes
