/**
 * @file
 * The pass framework for control-path transformations.
 *
 * Each of the paper's ten control-flow rewrites (Section 4.3) is a Pass.
 * Passes run on one function and report whether they changed anything;
 * SEER additionally calls their *targeted* entry points (e.g. "fuse this
 * specific loop pair") from dynamic e-graph rewrites.
 */
#ifndef SEER_PASSES_PASS_H_
#define SEER_PASSES_PASS_H_

#include <memory>
#include <string>
#include <vector>

#include "ir/op.h"

namespace seer::passes {

/** A function-level transformation. */
class Pass
{
  public:
    virtual ~Pass() = default;

    /** Stable pass name, e.g. "loop-fusion". */
    virtual std::string name() const = 0;

    /** Transform `func` (a func.func op); true if the IR changed. */
    virtual bool run(ir::Operation &func) = 0;
};

/** Instantiate a registered pass by name; fatal() on unknown names. */
std::unique_ptr<Pass> createPass(const std::string &name);

/** Names of all registered passes, in the paper's presentation order. */
std::vector<std::string> allPassNames();

/** Run one pass over every function in a module; true if changed. */
bool runPassOnModule(Pass &pass, ir::Module &module);

/**
 * Run the named passes in sequence repeatedly until fixpoint (bounded);
 * the "fixed pass pipeline" baseline of Figure 1.
 */
bool runPipeline(ir::Module &module,
                 const std::vector<std::string> &pass_names,
                 int max_rounds = 8);

} // namespace seer::passes

#endif // SEER_PASSES_PASS_H_
