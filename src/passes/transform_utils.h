/**
 * @file
 * Shared helpers for IR-mutating transformations.
 */
#ifndef SEER_PASSES_TRANSFORM_UTILS_H_
#define SEER_PASSES_TRANSFORM_UTILS_H_

#include <optional>

#include "ir/analysis.h"
#include "ir/builder.h"

namespace seer::passes {

/**
 * Clone the non-terminator body ops of `src_loop` to the end of
 * `dst_block` (before its terminator if present), substituting
 * `src_loop`'s induction variable with `new_iv`.
 */
void inlineLoopBody(ir::Operation &src_loop, ir::Block &dst_block,
                    ir::Value new_iv);

/** Erase an op from its parent block. */
void eraseOp(ir::Operation *op);

/** True if two index operand lists refer to provably equal addresses. */
bool sameAddress(const ir::Operation &a, const ir::Operation &b);

/** Number of non-terminator ops in a block. */
size_t numRealOps(const ir::Block &block);

/** True if the block contains any control-flow or while op. */
bool hasNestedControlFlow(const ir::Block &block);

/** Materialize an AffineBound as explicit index arithmetic. */
ir::Value materializeBound(ir::OpBuilder &builder,
                           const ir::AffineBound &bound);

} // namespace seer::passes

#endif // SEER_PASSES_TRANSFORM_UTILS_H_
