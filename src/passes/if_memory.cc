/**
 * @file
 * If conversion, if correlation, control-flow mux, memory forwarding and
 * memory reuse.
 */
#include <set>

#include "passes/passes.h"
#include "passes/transform_utils.h"
#include "support/error.h"

namespace seer::passes {

using namespace ir;

namespace {

/**
 * Conservative speculation check for a load: every index must be affine
 * with a provable range inside the memref shape, given the constant
 * ranges of enclosing loop ivs.
 */
bool
loadSpeculatable(Operation &load)
{
    const auto &shape = load.operand(0).type().shape();
    for (size_t d = 0; d < shape.size(); ++d) {
        Value index = load.operand(1 + d);
        auto expr = analyzeAffine(index);
        if (!expr)
            return false;
        int64_t lo = expr->constant, hi = expr->constant;
        for (const auto &[base, coeff] : expr->coeffs) {
            Value base_value(base);
            // Base must be an induction variable of an enclosing
            // affine.for with constant bounds.
            Block *owner = base_value.ownerBlock();
            if (!owner || !owner->parentRegion() ||
                !owner->parentRegion()->parentOp()) {
                return false;
            }
            Operation *loop = owner->parentRegion()->parentOp();
            if (!isa(*loop, opnames::kAffineFor))
                return false;
            AffineBound lb = getLowerBound(*loop);
            auto trips = constantTripCount(*loop);
            if (!lb.isConstant() || !trips || *trips == 0)
                return false;
            int64_t iv_lo = lb.constant;
            int64_t iv_hi =
                lb.constant + (*trips - 1) * getStep(*loop);
            int64_t a = coeff * iv_lo, b = coeff * iv_hi;
            lo += std::min(a, b);
            hi += std::max(a, b);
        }
        if (lo < 0 || hi >= shape[d])
            return false;
    }
    return true;
}

/** Ops a branch may contain for if-conversion. */
bool
branchConvertible(Block &branch)
{
    bool store_seen_for_memref = false;
    std::set<ValueImpl *> stored_memrefs;
    for (const auto &op : branch.ops()) {
        if (isTerminator(*op))
            continue;
        if (isa(*op, opnames::kStore)) {
            stored_memrefs.insert(op->operand(1).impl());
            store_seen_for_memref = true;
            continue;
        }
        if (isa(*op, opnames::kLoad)) {
            // A load after a store to the same memref would be hoisted
            // above the store: refuse.
            if (stored_memrefs.count(op->operand(0).impl()))
                return false;
            if (!loadSpeculatable(*op))
                return false;
            continue;
        }
        const OpInfo &info = opInfo(op->name());
        if (!info.isPure || op->numRegions() > 0)
            return false;
        // Speculating a division can introduce a trap.
        if (isa(*op, opnames::kDivSI) || isa(*op, opnames::kDivUI) ||
            isa(*op, opnames::kRemSI) || isa(*op, opnames::kRemUI)) {
            return false;
        }
    }
    (void)store_seen_for_memref;
    return true;
}

/** Hoist branch ops before `if_op`; stores become read-modify-write. */
void
convertBranch(Operation &if_op, Block &branch, Value cond, bool is_then,
              std::map<ValueImpl *, Value> &mapping)
{
    OpBuilder builder = OpBuilder::before(&if_op);
    for (const auto &op : branch.ops()) {
        if (isTerminator(*op))
            continue;
        if (isa(*op, opnames::kStore)) {
            Value stored = op->operand(0);
            auto it = mapping.find(stored.impl());
            if (it != mapping.end())
                stored = it->second;
            Value memref = op->operand(1);
            std::vector<Value> indices;
            for (size_t i = 2; i < op->numOperands(); ++i) {
                Value index = op->operand(i);
                auto mapped = mapping.find(index.impl());
                indices.push_back(mapped != mapping.end() ? mapped->second
                                                          : index);
            }
            Value old = builder.load(memref, indices);
            Value merged = is_then ? builder.select(cond, stored, old)
                                   : builder.select(cond, old, stored);
            builder.store(merged, memref, indices);
            continue;
        }
        builder.insert(cloneOp(*op, mapping));
    }
}

} // namespace

bool
convertIf(Operation &if_op)
{
    if (!isa(if_op, opnames::kIf))
        return false;
    Block &then_block = if_op.region(0).block();
    Block &else_block = if_op.region(1).block();
    if (!branchConvertible(then_block) || !branchConvertible(else_block))
        return false;
    // Bound the duplicated work: if conversion of very large branches is
    // rarely profitable at the source level.
    if (numRealOps(then_block) + numRealOps(else_block) > 64)
        return false;

    Value cond = if_op.operand(0);
    Operation *func = &if_op;
    while (func->parentOp())
        func = func->parentOp();

    std::map<ValueImpl *, Value> then_map, else_map;
    convertBranch(if_op, then_block, cond, /*is_then=*/true, then_map);
    convertBranch(if_op, else_block, cond, /*is_then=*/false, else_map);

    // Results become selects over the two yields.
    if (if_op.numResults() > 0) {
        OpBuilder builder = OpBuilder::before(&if_op);
        const Operation &then_yield = *then_block.ops().back();
        const Operation &else_yield = *else_block.ops().back();
        for (size_t i = 0; i < if_op.numResults(); ++i) {
            Value tv = then_yield.operand(i);
            auto it = then_map.find(tv.impl());
            if (it != then_map.end())
                tv = it->second;
            Value ev = else_yield.operand(i);
            it = else_map.find(ev.impl());
            if (it != else_map.end())
                ev = it->second;
            Value merged = builder.select(cond, tv, ev);
            replaceAllUsesIn(*func, if_op.result(i), merged);
        }
    }
    eraseOp(&if_op);
    return true;
}

namespace {

/** Is `second_cond` the negation of `first_cond`? */
bool
isNegationOf(Value second_cond, Value first_cond)
{
    Operation *def = second_cond.definingOp();
    if (!def)
        return false;
    // xor(c, true)
    if (isa(*def, opnames::kXOrI)) {
        for (int side = 0; side < 2; ++side) {
            auto c = getConstantInt(def->operand(1 - side));
            if (def->operand(side) == first_cond && c && *c == 1)
                return true;
        }
    }
    // cmp with inverted predicate on same operands
    Operation *first_def = first_cond.definingOp();
    if (first_def && isa(*def, opnames::kCmpI) &&
        isa(*first_def, opnames::kCmpI) &&
        def->operand(0) == first_def->operand(0) &&
        def->operand(1) == first_def->operand(1)) {
        static const std::map<std::string, std::string> inverse = {
            {"eq", "ne"},   {"ne", "eq"},   {"slt", "sge"},
            {"sge", "slt"}, {"sgt", "sle"}, {"sle", "sgt"},
            {"ult", "uge"}, {"uge", "ult"}, {"ugt", "ule"},
            {"ule", "ugt"},
        };
        auto it = inverse.find(first_def->strAttr("predicate"));
        if (it != inverse.end() &&
            def->strAttr("predicate") == it->second) {
            return true;
        }
    }
    return false;
}

void
appendBranch(Block &dst, Block &src)
{
    std::map<ValueImpl *, Value> mapping;
    auto pos = dst.ops().end();
    if (!dst.empty() && isTerminator(dst.back()))
        --pos;
    for (const auto &op : src.ops()) {
        if (isTerminator(*op))
            continue;
        dst.insert(pos, cloneOp(*op, mapping));
    }
}

} // namespace

bool
correlateIfs(Operation &first, Operation &second)
{
    if (!isa(first, opnames::kIf) || !isa(second, opnames::kIf))
        return false;
    if (first.numResults() > 0 || second.numResults() > 0)
        return false;
    if (first.parentBlock() != second.parentBlock())
        return false;
    // Adjacency required.
    Block *parent = first.parentBlock();
    auto it = parent->find(&first);
    ++it;
    if (it == parent->ops().end() || it->get() != &second)
        return false;

    if (second.operand(0) == first.operand(0)) {
        appendBranch(first.region(0).block(), second.region(0).block());
        appendBranch(first.region(1).block(), second.region(1).block());
        eraseOp(&second);
        return true;
    }
    if (isNegationOf(second.operand(0), first.operand(0))) {
        appendBranch(first.region(0).block(), second.region(1).block());
        appendBranch(first.region(1).block(), second.region(0).block());
        eraseOp(&second);
        return true;
    }
    return false;
}

bool
reuseMemory(Operation &loop)
{
    if (!isa(loop, opnames::kAffineFor))
        return false;
    // Hoisting executes the load even when the loop would not run at
    // all, so require a provably positive trip count.
    auto trips = constantTripCount(loop);
    if (!trips || *trips < 1)
        return false;
    // Memrefs stored anywhere inside the loop are not read-only.
    std::set<ValueImpl *> written;
    walk(loop, [&](Operation &op) {
        if (isa(op, opnames::kStore))
            written.insert(op.operand(1).impl());
    });
    bool changed = false;
    Block &body = loop.region(0).block();
    std::vector<Operation *> hoistable;
    for (const auto &op : body.ops()) {
        if (!isa(*op, opnames::kLoad))
            continue;
        if (written.count(op->operand(0).impl()))
            continue;
        bool invariant = true;
        for (Value operand : op->operands()) {
            if (!isDefinedOutside(operand, loop))
                invariant = false;
        }
        if (invariant)
            hoistable.push_back(op.get());
    }
    for (Operation *op : hoistable) {
        auto pos = body.find(op);
        Operation::Ptr taken = body.take(pos);
        OpBuilder::before(&loop).insert(std::move(taken));
        changed = true;
    }
    return changed;
}

bool
muxControlFlow(Operation &if_op)
{
    if (!isa(if_op, opnames::kIf) || if_op.numResults() > 0)
        return false;
    Block &then_block = if_op.region(0).block();
    Block &else_block = if_op.region(1).block();
    // Shape: each branch is exactly one store (plus terminator) and the
    // two stores hit the same address.
    if (numRealOps(then_block) != 1 || numRealOps(else_block) != 1)
        return false;
    Operation &then_store = then_block.front();
    Operation &else_store = else_block.front();
    if (!isa(then_store, opnames::kStore) ||
        !isa(else_store, opnames::kStore)) {
        return false;
    }
    if (!sameAddress(then_store, else_store))
        return false;
    // Both stored values must dominate the if (defined outside it).
    auto defined_outside_if = [&](Value v) {
        Operation *def = v.definingOp();
        if (def)
            return !def->isInside(&if_op);
        Block *owner = v.ownerBlock();
        for (Operation *op = owner->parentRegion()->parentOp(); op;
             op = op->parentOp()) {
            if (op == &if_op)
                return false;
        }
        return true;
    };
    for (Value v : then_store.operands()) {
        if (!defined_outside_if(v))
            return false;
    }
    for (Value v : else_store.operands()) {
        if (!defined_outside_if(v))
            return false;
    }

    OpBuilder builder = OpBuilder::before(&if_op);
    Value merged = builder.select(if_op.operand(0), then_store.operand(0),
                                  else_store.operand(0));
    Value memref = then_store.operand(1);
    std::vector<Value> indices;
    for (size_t i = 2; i < then_store.numOperands(); ++i)
        indices.push_back(then_store.operand(i));
    builder.store(merged, memref, indices);
    eraseOp(&if_op);
    return true;
}

namespace {

/** Forward memory within one straight-line block. */
bool
forwardInBlock(Operation &func, Block &block)
{
    struct Entry
    {
        Operation *access; // defining store or load
        Value value;       // stored/loaded value
    };
    bool changed = false;
    // Available: last known value per address; keyed by representative op.
    std::vector<Entry> available;
    // Pending dead-store candidates: last store per address with no
    // later read of that memref.
    std::vector<Operation *> stores_no_read_yet;

    auto provably_distinct = [](Operation &a, Operation &b) {
        size_t mem_a = isa(a, opnames::kStore) ? 1 : 0;
        size_t mem_b = isa(b, opnames::kStore) ? 1 : 0;
        if (a.operand(mem_a) != b.operand(mem_b))
            return true; // different memrefs never alias here
        size_t rank = a.numOperands() - mem_a - 1;
        for (size_t d = 0; d < rank; ++d) {
            auto ea = analyzeAffine(a.operand(mem_a + 1 + d));
            auto eb = analyzeAffine(b.operand(mem_b + 1 + d));
            if (!ea || !eb)
                continue;
            LinearExpr diff = *ea - *eb;
            if (diff.isConstant() && diff.constant != 0)
                return true;
        }
        return false;
    };

    std::vector<Operation *> to_erase;
    for (auto it = block.ops().begin(); it != block.ops().end(); ++it) {
        Operation &op = **it;
        if (opInfo(op.name()).isControlFlow ||
            isa(op, opnames::kCall)) {
            available.clear();
            stores_no_read_yet.clear();
            continue;
        }
        if (isa(op, opnames::kLoad)) {
            // Forward from an available same-address entry. A forwarded
            // load no longer reads memory, so it must NOT mark earlier
            // stores as live.
            bool forwarded = false;
            for (const Entry &entry : available) {
                if (sameAddress(*entry.access, op) &&
                    entry.value.type() == op.result().type()) {
                    replaceAllUsesIn(func, op.result(), entry.value);
                    to_erase.push_back(&op);
                    forwarded = true;
                    changed = true;
                    break;
                }
            }
            if (!forwarded) {
                // A real read: previous stores to this memref are live.
                std::erase_if(stores_no_read_yet, [&](Operation *store) {
                    return store->operand(1) == op.operand(0);
                });
                available.push_back({&op, op.result()});
            }
            continue;
        }
        if (isa(op, opnames::kStore)) {
            // Kill dead earlier store to the same address.
            for (Operation *store : stores_no_read_yet) {
                if (store != &op && sameAddress(*store, op)) {
                    to_erase.push_back(store);
                    changed = true;
                }
            }
            std::erase_if(stores_no_read_yet, [&](Operation *store) {
                return sameAddress(*store, op);
            });
            // Invalidate may-alias entries.
            std::erase_if(available, [&](const Entry &entry) {
                return !provably_distinct(*entry.access, op);
            });
            available.push_back({&op, op.operand(0)});
            stores_no_read_yet.push_back(&op);
            continue;
        }
    }
    for (Operation *op : to_erase)
        eraseOp(op);
    return changed;
}

} // namespace

bool
forwardMemory(Operation &func)
{
    bool changed = false;
    std::vector<Block *> blocks;
    walk(func, [&](Operation &op) {
        for (size_t i = 0; i < op.numRegions(); ++i) {
            if (!op.region(i).empty())
                blocks.push_back(&op.region(i).block());
        }
    });
    for (Block *block : blocks)
        changed |= forwardInBlock(func, *block);
    return changed;
}

} // namespace seer::passes
