/**
 * @file
 * The ten control-path transformations of SEER (Section 4.3), plus the
 * cleanup passes (DCE, canonicalize) they rely on.
 *
 * Each transformation exposes:
 *  - a targeted entry point operating on specific ops, used by the
 *    dynamic e-graph rewrites ("apply loop fusion to THIS pair"), and
 *  - a Pass (created via createPass) that scans a function for the first
 *    opportunities and applies them, used standalone and for Figure 7.
 */
#ifndef SEER_PASSES_PASSES_H_
#define SEER_PASSES_PASSES_H_

#include "passes/pass.h"

namespace seer::passes {

// --- Cleanup -------------------------------------------------------------

/** Dead code elimination over pure ops; true if anything was removed. */
bool runDce(ir::Operation &func);

/**
 * Canonicalize: constant folding, algebraic identities (x+0, x*1, x*0,
 * select with constant condition, ...), constant-condition scf.if
 * inlining, zero-trip loop removal, and hoisting of arith.constant ops to
 * the function entry (which enables loop adjacency for fusion).
 */
bool canonicalize(ir::Operation &func);

// --- Loop transformations ---------------------------------------------

/** Fuse adjacent loop `loop2` into `loop1` (must satisfy canFuseLoops and
 *  be adjacent in the same block). */
bool fuseLoopPair(ir::Operation &loop1, ir::Operation &loop2);

/** Fully unroll a constant-trip-count loop (trip count <= max_trip). */
bool unrollLoop(ir::Operation &loop, int64_t max_trip = 64);

/** Interchange a perfect 2-nest (outer must satisfy canInterchange). */
bool interchangeLoops(ir::Operation &outer);

/** Flatten a perfect rectangular 2-nest into a single loop. The new
 *  loop is reported through `result` when non-null. */
bool flattenLoops(ir::Operation &outer, ir::Operation **result = nullptr);

/** Make an imperfect nest perfect by predicating pre/post code. */
bool perfectLoop(ir::Operation &outer);

// --- If / memory transformations ------------------------------------------

/** Convert an scf.if into selects (and read-modify-write stores). */
bool convertIf(ir::Operation &if_op);

/** Forward stores to loads and drop dead stores within each block. */
bool forwardMemory(ir::Operation &func);

/** Merge the second of two adjacent scf.if ops with identical (or
 *  negated) conditions into the first. */
bool correlateIfs(ir::Operation &first, ir::Operation &second);

/** Hoist loop-invariant read-only loads out of `loop`. */
bool reuseMemory(ir::Operation &loop);

/** Merge a store present in both branches of an if into one store of a
 *  select (source-level resource sharing). */
bool muxControlFlow(ir::Operation &if_op);

} // namespace seer::passes

#endif // SEER_PASSES_PASSES_H_
