#include "passes/transform_utils.h"

#include "ir/ops.h"
#include "support/error.h"

namespace seer::passes {

using namespace ir;

void
inlineLoopBody(Operation &src_loop, Block &dst_block, Value new_iv)
{
    Block &src = src_loop.region(0).block();
    std::map<ValueImpl *, Value> mapping;
    mapping[src.arg(0).impl()] = new_iv;

    // Insert before the destination terminator if one exists.
    auto pos = dst_block.ops().end();
    if (!dst_block.empty() && isTerminator(dst_block.back()))
        --pos;
    for (const auto &op : src.ops()) {
        if (isTerminator(*op))
            continue;
        dst_block.insert(pos, cloneOp(*op, mapping));
    }
}

void
eraseOp(Operation *op)
{
    Block *parent = op->parentBlock();
    SEER_ASSERT(parent, "eraseOp on detached op");
    auto it = parent->find(op);
    SEER_ASSERT(it != parent->ops().end(), "op not in its parent block");
    parent->erase(it);
}

bool
sameAddress(const Operation &a, const Operation &b)
{
    size_t mem_a = isa(a, opnames::kStore) ? 1 : 0;
    size_t mem_b = isa(b, opnames::kStore) ? 1 : 0;
    if (a.operand(mem_a) != b.operand(mem_b))
        return false;
    size_t rank = a.numOperands() - mem_a - 1;
    if (b.numOperands() - mem_b - 1 != rank)
        return false;
    for (size_t d = 0; d < rank; ++d) {
        Value ia = a.operand(mem_a + 1 + d);
        Value ib = b.operand(mem_b + 1 + d);
        if (ia == ib)
            continue;
        auto ea = analyzeAffine(ia);
        auto eb = analyzeAffine(ib);
        if (!ea || !eb || !(*ea == *eb))
            return false;
    }
    return true;
}

size_t
numRealOps(const Block &block)
{
    size_t n = 0;
    for (const auto &op : block.ops()) {
        if (!isTerminator(*op))
            ++n;
    }
    return n;
}

bool
hasNestedControlFlow(const Block &block)
{
    for (const auto &op : block.ops()) {
        if (opInfo(op->name()).isControlFlow)
            return true;
    }
    return false;
}

Value
materializeBound(OpBuilder &builder, const AffineBound &bound)
{
    Value acc;
    for (const auto &[value, coeff] : bound.terms) {
        Value term = value;
        if (coeff != 1) {
            Value c = builder.indexConstant(coeff);
            term = builder.binary(opnames::kMulI, value, c);
        }
        acc = acc ? builder.binary(opnames::kAddI, acc, term) : term;
    }
    if (!acc)
        return builder.indexConstant(bound.constant);
    if (bound.constant != 0) {
        Value c = builder.indexConstant(bound.constant);
        acc = builder.binary(opnames::kAddI, acc, c);
    }
    return acc;
}

} // namespace seer::passes
