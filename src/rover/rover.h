/**
 * @file
 * ROVER: the datapath / gate-level rewriting engine (Coward et al.),
 * re-implemented over our e-graph as SEER's "internal" rule set.
 *
 * The rule set mirrors the paper's Table 2 classes — expression
 * balancing (associativity/commutativity), strength reduction between
 * multiplies and shift-adds, constant manipulation, distribution, mux
 * reduction, and a restricted group of gate-level identities. All rules
 * are instantiated per concrete bitwidth (the symbols are typed), giving
 * the "106 datapath and gate-level rewrites, all signage and bitwidth
 * dependent" of the paper.
 */
#ifndef SEER_ROVER_ROVER_H_
#define SEER_ROVER_ROVER_H_

#include "egraph/extract.h"
#include "egraph/rewrite.h"

namespace seer::rover {

/** Which rule groups to instantiate. */
struct RuleOptions
{
    bool balancing = true;          ///< commutativity + associativity
    bool strength_reduction = true; ///< mul <-> shift-add families
    bool constant_identities = true;
    bool distribution = true;
    bool mux_reduction = true;
    bool gate_level = true;
    /** Integer types to instantiate integer rules at. */
    std::vector<std::string> int_types = {"i8", "i16", "i32", "i64",
                                          "index"};
};

/** Build the full ROVER rule set. */
std::vector<eg::Rewrite> roverRules(const RuleOptions &options = {});

/** Constant-folding hooks for the e-graph analysis (width-aware). */
eg::AnalysisHooks roverAnalysisHooks();

/**
 * ROVER's bitwidth-dependent gate-count area model over SeerLang
 * symbols: the cost function of the paper's Eqn (4) ILP extraction.
 * Statement operators cost their port/controller logic so whole-function
 * extraction remains well-defined.
 */
class RoverAreaCost : public eg::CostModel
{
  public:
    /** With an e-graph, shift-amount constancy is checked through the
     *  analysis (constant shifts are free wiring, variable shifts are
     *  barrel shifters); without one, shifts are assumed constant. */
    explicit RoverAreaCost(const eg::EGraph *egraph = nullptr)
        : egraph_(egraph)
    {}

    double nodeCost(const eg::ENode &node) const override
    {
        return costWith(egraph_, node);
    }

    /** Class-aware form: reads shift-amount constancy from the graph the
     *  node lives in, regardless of the graph bound at construction. */
    double nodeCostInClass(const eg::EGraph &egraph,
                           const eg::ENode &node) const override
    {
        return costWith(&egraph, node);
    }

    std::string name() const override { return "rover-area"; }

  private:
    double costWith(const eg::EGraph *egraph,
                    const eg::ENode &node) const;

    const eg::EGraph *egraph_;
};

/**
 * The analysis-friendly cost function of Section 4.5: additions and
 * multiplications (affine material) are cheap, shifts and bitwise logic
 * expensive, so local extraction surfaces polyhedral-analyzable forms.
 */
class AnalysisFriendlyCost : public eg::CostModel
{
  public:
    double nodeCost(const eg::ENode &node) const override;
    std::string name() const override { return "analysis-friendly"; }
};

} // namespace seer::rover

#endif // SEER_ROVER_ROVER_H_
