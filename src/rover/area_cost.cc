/**
 * @file
 * ROVER's gate-count area model and the analysis-friendly cost function,
 * both over SeerLang symbols.
 */
#include "rover/rover.h"

#include <cmath>

#include "ir/parser.h"
#include "seerlang/encoding.h"
#include "support/error.h"

namespace seer::rover {

namespace {

/** Bitwidth encoded in a symbol's type field; 0 when not applicable. */
unsigned
widthOf(const std::string &type_field)
{
    try {
        ir::Type type = ir::parseType(type_field);
        if (type.isScalar())
            return type.bitwidth();
    } catch (const FatalError &) {
    }
    return 0;
}

bool
isConstLeaf(const eg::ENode &node)
{
    return sl::decodeIntConst(node.op).has_value() ||
           sl::decodeFloatConst(node.op).has_value();
}

} // namespace

double
RoverAreaCost::costWith(const eg::EGraph *egraph,
                        const eg::ENode &node) const
{
    std::string name = sl::opNameOf(node.op);
    auto fields = sl::fieldsOf(node.op);

    // Leaves and structure.
    if (name == "const" || name == "constf" || name == "arg" ||
        name == "var" || name == "nop" || name == "seq" ||
        name == "func") {
        return 0;
    }
    if (name == "memref.load" || name == "memref.store")
        return 28.0; // port logic, matches the HLS library
    if (name == "memref.alloc")
        return 0; // storage costed by the HLS back end
    if (name == "affine.for")
        return 130.0; // controller
    if (name == "scf.if")
        return 30.0;
    if (name == "scf.while")
        return 150.0;

    unsigned w = fields.empty() ? 32 : widthOf(fields.back());
    double dw = w;
    if (name == "arith.addi" || name == "arith.subi")
        return 5.5 * dw;
    if (name == "arith.muli") {
        // Multiplication by a constant is cheaper (shift-add network
        // synthesized by the backend) but far from free.
        return 1.9 * dw * dw;
    }
    if (name == "arith.shli" || name == "arith.shrsi" ||
        name == "arith.shrui") {
        // Constant shifts are wiring (the ASIC argument of Figure 9);
        // variable shifts need a barrel shifter.
        bool constant_amount = true;
        if (egraph && node.children.size() == 2) {
            constant_amount =
                egraph->constantOf(node.children[1]).has_value();
        }
        if (constant_amount)
            return 0;
        return 3.4 * dw * std::log2(std::max(2.0, dw));
    }
    if (name == "arith.andi" || name == "arith.ori" ||
        name == "arith.xori") {
        return 1.4 * dw;
    }
    if (name == "arith.cmpi" || name == "arith.cmpf") {
        unsigned ow = fields.size() >= 2 ? widthOf(fields[1]) : w;
        return 2.6 * ow;
    }
    if (name == "arith.select")
        return 2.3 * dw;
    if (name == "arith.divsi" || name == "arith.divui" ||
        name == "arith.remsi" || name == "arith.remui") {
        return 16.0 * dw;
    }
    if (name == "arith.minsi" || name == "arith.maxsi")
        return 7.8 * dw;
    if (name == "arith.addf" || name == "arith.subf")
        return 3100;
    if (name == "arith.mulf")
        return 5400;
    if (name == "arith.divf")
        return 9800;
    if (name == "arith.negf")
        return 18;
    if (name == "arith.extsi" || name == "arith.extui" ||
        name == "arith.trunci" || name == "arith.index_cast" ||
        name == "arith.sitofp" || name == "arith.fptosi") {
        return 0;
    }
    return 1.0; // unknown: nominal
}

double
AnalysisFriendlyCost::nodeCost(const eg::ENode &node) const
{
    std::string name = sl::opNameOf(node.op);
    if (isConstLeaf(node) || name == "arg" || name == "var")
        return 0;
    // Affine material: cheap, so extraction surfaces it.
    if (name == "arith.addi" || name == "arith.subi" ||
        name == "arith.muli" || name == "arith.index_cast" ||
        name == "arith.extsi") {
        return 1;
    }
    // Non-affine datapath tricks: expensive.
    if (name == "arith.shli" || name == "arith.shrsi" ||
        name == "arith.shrui" || name == "arith.andi" ||
        name == "arith.ori" || name == "arith.xori") {
        return 100;
    }
    // Everything else (statements, memory) neutral.
    return 2;
}

} // namespace seer::rover
