/**
 * @file
 * The ROVER rule set, instantiated per integer type.
 */
#include "rover/rover.h"

#include "egraph/extract.h"
#include "ir/interp.h"
#include "ir/parser.h"
#include "seerlang/encoding.h"
#include "support/error.h"

namespace seer::rover {

using eg::makeRewrite;
using eg::Rewrite;

namespace {

/** Shorthand: "arith.addi:i32" etc. */
std::string
op(const std::string &name, const std::string &type)
{
    return "arith." + name + ":" + type;
}

std::string
cst(int64_t value, const std::string &type)
{
    return "const:" + std::to_string(value) + ":" + type;
}

void
addBalancing(std::vector<Rewrite> &rules, const std::string &t)
{
    for (const char *o : {"addi", "muli", "andi", "ori", "xori"}) {
        rules.push_back(makeRewrite(
            std::string("comm-") + o + "-" + t,
            "(" + op(o, t) + " ?a ?b)", "(" + op(o, t) + " ?b ?a)"));
        rules.push_back(makeRewrite(
            std::string("assoc-") + o + "-" + t,
            "(" + op(o, t) + " (" + op(o, t) + " ?a ?b) ?c)",
            "(" + op(o, t) + " ?a (" + op(o, t) + " ?b ?c))"));
    }
}

void
addStrengthReduction(std::vector<Rewrite> &rules, const std::string &t)
{
    // mul by 2^k <-> shift (both directions: the reverse direction is
    // the Figure 9 affine-recovery rule).
    for (int64_t k = 1; k <= 4; ++k) {
        int64_t pow2 = int64_t{1} << k;
        rules.push_back(makeRewrite(
            "mul-pow2-shl-" + std::to_string(pow2) + "-" + t,
            "(" + op("muli", t) + " ?a " + cst(pow2, t) + ")",
            "(" + op("shli", t) + " ?a " + cst(k, t) + ")"));
        rules.push_back(makeRewrite(
            "shl-mul-pow2-" + std::to_string(k) + "-" + t,
            "(" + op("shli", t) + " ?a " + cst(k, t) + ")",
            "(" + op("muli", t) + " ?a " + cst(pow2, t) + ")"));
    }
    // mul by (2^k + 1) <-> shift-add; mul by (2^k - 1) <-> shift-sub.
    for (int64_t k = 1; k <= 3; ++k) {
        int64_t pow2 = int64_t{1} << k;
        rules.push_back(makeRewrite(
            "mul-" + std::to_string(pow2 + 1) + "-shladd-" + t,
            "(" + op("muli", t) + " ?a " + cst(pow2 + 1, t) + ")",
            "(" + op("addi", t) + " (" + op("shli", t) + " ?a " +
                cst(k, t) + ") ?a)"));
        rules.push_back(makeRewrite(
            "shladd-mul-" + std::to_string(pow2 + 1) + "-" + t,
            "(" + op("addi", t) + " (" + op("shli", t) + " ?a " +
                cst(k, t) + ") ?a)",
            "(" + op("muli", t) + " ?a " + cst(pow2 + 1, t) + ")"));
        rules.push_back(makeRewrite(
            "mul-" + std::to_string(pow2 - 1) + "-shlsub-" + t,
            "(" + op("muli", t) + " ?a " + cst(pow2 - 1, t) + ")",
            "(" + op("subi", t) + " (" + op("shli", t) + " ?a " +
                cst(k, t) + ") ?a)"));
        rules.push_back(makeRewrite(
            "shlsub-mul-" + std::to_string(pow2 - 1) + "-" + t,
            "(" + op("subi", t) + " (" + op("shli", t) + " ?a " +
                cst(k, t) + ") ?a)",
            "(" + op("muli", t) + " ?a " + cst(pow2 - 1, t) + ")"));
    }
    // Shift composition (Table 2: a << b << c = a << (b + c)), small ks.
    for (int64_t k1 = 1; k1 <= 2; ++k1) {
        for (int64_t k2 = 1; k2 <= 2; ++k2) {
            rules.push_back(makeRewrite(
                "shl-shl-" + std::to_string(k1) + "-" +
                    std::to_string(k2) + "-" + t,
                "(" + op("shli", t) + " (" + op("shli", t) + " ?a " +
                    cst(k1, t) + ") " + cst(k2, t) + ")",
                "(" + op("shli", t) + " ?a " + cst(k1 + k2, t) + ")"));
        }
    }
    // General constant-multiplier decomposition (dynamic: needs the
    // analysis to see the constant): c even -> (a * c/2) << 1,
    // c odd -> ((a * (c-1)/2) << 1) + a. Iterating this yields a
    // shift-add network for any constant (CSD-style strength reduction).
    {
        std::string mul = op("muli", t);
        std::string shl = op("shli", t);
        std::string add = op("addi", t);
        std::string type = t;
        rules.push_back(eg::makeDynRewrite(
            "mul-const-decompose-" + t, "(" + mul + " ?a ?b)",
            [mul, shl, add, type](
                eg::EGraph &egraph,
                const eg::Match &match) -> std::optional<eg::TermPtr> {
                auto c = egraph.constantOf(match.subst.at(Symbol("b")));
                if (!c || *c <= 2 || *c > 4096)
                    return std::nullopt;
                eg::TermPtr a = eg::extractSmallest(
                    egraph, match.subst.at(Symbol("a")));
                auto lit = [&](int64_t v) {
                    return eg::makeTerm(Symbol(cst(v, type)));
                };
                eg::TermPtr shifted = eg::makeTerm(
                    Symbol(shl),
                    {eg::makeTerm(Symbol(mul), {a, lit(*c / 2)}),
                     lit(1)});
                if (*c % 2 == 0)
                    return shifted;
                return eg::makeTerm(Symbol(add), {shifted, a});
            }));
    }
    // (a * b) << c  <->  (a << c) * b (Table 2 control of shifts).
    rules.push_back(makeRewrite(
        "shl-of-mul-" + t,
        "(" + op("shli", t) + " (" + op("muli", t) + " ?a ?b) ?c)",
        "(" + op("muli", t) + " (" + op("shli", t) + " ?a ?c) ?b)"));
    rules.push_back(makeRewrite(
        "mul-of-shl-" + t,
        "(" + op("muli", t) + " (" + op("shli", t) + " ?a ?c) ?b)",
        "(" + op("shli", t) + " (" + op("muli", t) + " ?a ?b) ?c)"));
}

void
addConstantIdentities(std::vector<Rewrite> &rules, const std::string &t)
{
    rules.push_back(makeRewrite("add-zero-" + t,
                                "(" + op("addi", t) + " ?a " +
                                    cst(0, t) + ")",
                                "?a"));
    rules.push_back(makeRewrite("sub-zero-" + t,
                                "(" + op("subi", t) + " ?a " +
                                    cst(0, t) + ")",
                                "?a"));
    rules.push_back(makeRewrite("sub-self-" + t,
                                "(" + op("subi", t) + " ?a ?a)",
                                cst(0, t)));
    rules.push_back(makeRewrite("mul-one-" + t,
                                "(" + op("muli", t) + " ?a " +
                                    cst(1, t) + ")",
                                "?a"));
    rules.push_back(makeRewrite("mul-zero-" + t,
                                "(" + op("muli", t) + " ?a " +
                                    cst(0, t) + ")",
                                cst(0, t)));
    rules.push_back(makeRewrite("and-zero-" + t,
                                "(" + op("andi", t) + " ?a " +
                                    cst(0, t) + ")",
                                cst(0, t)));
    rules.push_back(makeRewrite("or-zero-" + t,
                                "(" + op("ori", t) + " ?a " +
                                    cst(0, t) + ")",
                                "?a"));
    rules.push_back(makeRewrite("and-self-" + t,
                                "(" + op("andi", t) + " ?a ?a)", "?a"));
    rules.push_back(makeRewrite("or-self-" + t,
                                "(" + op("ori", t) + " ?a ?a)", "?a"));
    rules.push_back(makeRewrite("xor-self-" + t,
                                "(" + op("xori", t) + " ?a ?a)",
                                cst(0, t)));
    rules.push_back(makeRewrite("xor-zero-" + t,
                                "(" + op("xori", t) + " ?a " +
                                    cst(0, t) + ")",
                                "?a"));
    rules.push_back(makeRewrite("shl-zero-" + t,
                                "(" + op("shli", t) + " ?a " +
                                    cst(0, t) + ")",
                                "?a"));
    // Two's complement negation (Table 2: -a = ~a + 1).
    rules.push_back(makeRewrite(
        "neg-twos-complement-" + t,
        "(" + op("subi", t) + " " + cst(0, t) + " ?a)",
        "(" + op("addi", t) + " (" + op("xori", t) + " ?a " +
            cst(-1, t) + ") " + cst(1, t) + ")"));
}

void
addDistribution(std::vector<Rewrite> &rules, const std::string &t)
{
    rules.push_back(makeRewrite(
        "distribute-mul-add-" + t,
        "(" + op("muli", t) + " (" + op("addi", t) + " ?a ?b) ?c)",
        "(" + op("addi", t) + " (" + op("muli", t) + " ?a ?c) (" +
            op("muli", t) + " ?b ?c))"));
    rules.push_back(makeRewrite(
        "factor-mul-add-" + t,
        "(" + op("addi", t) + " (" + op("muli", t) + " ?a ?c) (" +
            op("muli", t) + " ?b ?c))",
        "(" + op("muli", t) + " (" + op("addi", t) + " ?a ?b) ?c)"));
    // Table 2: (a & b) | (a & c) = a & (b | c).
    rules.push_back(makeRewrite(
        "factor-and-or-" + t,
        "(" + op("ori", t) + " (" + op("andi", t) + " ?a ?b) (" +
            op("andi", t) + " ?a ?c))",
        "(" + op("andi", t) + " ?a (" + op("ori", t) + " ?b ?c))"));
    rules.push_back(makeRewrite(
        "distribute-and-or-" + t,
        "(" + op("andi", t) + " ?a (" + op("ori", t) + " ?b ?c))",
        "(" + op("ori", t) + " (" + op("andi", t) + " ?a ?b) (" +
            op("andi", t) + " ?a ?c))"));
    // Shift distributes over add: (a + b) << c = (a << c) + (b << c).
    rules.push_back(makeRewrite(
        "shl-over-add-" + t,
        "(" + op("shli", t) + " (" + op("addi", t) + " ?a ?b) ?c)",
        "(" + op("addi", t) + " (" + op("shli", t) + " ?a ?c) (" +
            op("shli", t) + " ?b ?c))"));
    rules.push_back(makeRewrite(
        "shl-factor-add-" + t,
        "(" + op("addi", t) + " (" + op("shli", t) + " ?a ?c) (" +
            op("shli", t) + " ?b ?c))",
        "(" + op("shli", t) + " (" + op("addi", t) + " ?a ?b) ?c)"));
}

void
addMuxReduction(std::vector<Rewrite> &rules, const std::string &t)
{
    std::string sel = "arith.select:" + t;
    rules.push_back(makeRewrite("select-same-" + t,
                                "(" + sel + " ?c ?a ?a)", "?a"));
    rules.push_back(makeRewrite("select-true-" + t,
                                "(" + sel + " " + cst(1, "i1") +
                                    " ?a ?b)",
                                "?a"));
    rules.push_back(makeRewrite("select-false-" + t,
                                "(" + sel + " " + cst(0, "i1") +
                                    " ?a ?b)",
                                "?b"));
    // Table 2: c ? (b + d) : (e + d)  =  (c ? b : e) + d — share the
    // adder through the mux.
    rules.push_back(makeRewrite(
        "mux-share-add-" + t,
        "(" + sel + " ?c (" + op("addi", t) + " ?b ?d) (" +
            op("addi", t) + " ?e ?d))",
        "(" + op("addi", t) + " (" + sel + " ?c ?b ?e) ?d)"));
    rules.push_back(makeRewrite(
        "mux-share-mul-" + t,
        "(" + sel + " ?c (" + op("muli", t) + " ?b ?d) (" +
            op("muli", t) + " ?e ?d))",
        "(" + op("muli", t) + " (" + sel + " ?c ?b ?e) ?d)"));
    // The paper's "Mux Reduction" (case-study optimization 5): an
    // if-converted read-modify-write duplicates the old value in both
    // mux arms; pushing the mux into the update operand makes the
    // accumulation chain linear and lets the bit be "directly fetched
    // from the if condition".
    //   c ? (e op m) : e   ->   e op (c ? m : id_op)
    for (auto [o, identity] : {std::pair{"ori", int64_t{0}},
                               std::pair{"addi", int64_t{0}},
                               std::pair{"xori", int64_t{0}},
                               std::pair{"andi", int64_t{-1}}}) {
        rules.push_back(makeRewrite(
            std::string("mux-push-") + o + "-" + t,
            "(" + sel + " ?c (" + op(o, t) + " ?e ?m) ?e)",
            "(" + op(o, t) + " ?e (" + sel + " ?c ?m " +
                cst(identity, t) + "))"));
        rules.push_back(makeRewrite(
            std::string("mux-push-comm-") + o + "-" + t,
            "(" + sel + " ?c (" + op(o, t) + " ?m ?e) ?e)",
            "(" + op(o, t) + " ?e (" + sel + " ?c ?m " +
                cst(identity, t) + "))"));
    }
}

void
addGateLevel(std::vector<Rewrite> &rules)
{
    const std::string b = "i1";
    // De Morgan (~ encoded as xor with 1 on i1).
    rules.push_back(makeRewrite(
        "demorgan-and",
        "(" + op("andi", b) + " (" + op("xori", b) + " ?a " +
            cst(1, b) + ") (" + op("xori", b) + " ?b " + cst(1, b) +
            "))",
        "(" + op("xori", b) + " (" + op("ori", b) + " ?a ?b) " +
            cst(1, b) + ")"));
    rules.push_back(makeRewrite(
        "demorgan-or",
        "(" + op("ori", b) + " (" + op("xori", b) + " ?a " + cst(1, b) +
            ") (" + op("xori", b) + " ?b " + cst(1, b) + "))",
        "(" + op("xori", b) + " (" + op("andi", b) + " ?a ?b) " +
            cst(1, b) + ")"));
    // xor cancellation and absorption.
    rules.push_back(makeRewrite("xor-cancel",
                                "(" + op("xori", b) + " (" +
                                    op("xori", b) + " ?a ?b) ?b)",
                                "?a"));
    rules.push_back(makeRewrite("absorb-and-or",
                                "(" + op("andi", b) + " ?a (" +
                                    op("ori", b) + " ?a ?b))",
                                "?a"));
    rules.push_back(makeRewrite("absorb-or-and",
                                "(" + op("ori", b) + " ?a (" +
                                    op("andi", b) + " ?a ?b))",
                                "?a"));
    // Table 2: ~a & a = 0.
    rules.push_back(makeRewrite(
        "contradiction",
        "(" + op("andi", b) + " (" + op("xori", b) + " ?a " +
            cst(1, b) + ") ?a)",
        cst(0, b)));
    rules.push_back(makeRewrite(
        "excluded-middle",
        "(" + op("ori", b) + " (" + op("xori", b) + " ?a " + cst(1, b) +
            ") ?a)",
        cst(1, b)));
}

} // namespace

std::vector<Rewrite>
roverRules(const RuleOptions &options)
{
    std::vector<Rewrite> rules;
    for (const std::string &t : options.int_types) {
        if (options.balancing)
            addBalancing(rules, t);
        if (options.strength_reduction)
            addStrengthReduction(rules, t);
        if (options.constant_identities)
            addConstantIdentities(rules, t);
        if (options.distribution)
            addDistribution(rules, t);
        if (options.mux_reduction)
            addMuxReduction(rules, t);
    }
    if (options.gate_level)
        addGateLevel(rules);
    return rules;
}

eg::AnalysisHooks
roverAnalysisHooks()
{
    eg::AnalysisHooks hooks;
    hooks.parse_const = [](Symbol symbol) -> std::optional<int64_t> {
        auto decoded = sl::decodeIntConst(symbol);
        if (!decoded)
            return std::nullopt;
        return decoded->first;
    };
    hooks.fold = [](Symbol symbol, const std::vector<int64_t> &args)
        -> std::optional<Symbol> {
        std::string name = sl::opNameOf(symbol);
        auto fields = sl::fieldsOf(symbol);
        if (fields.size() != 1 || args.size() != 2)
            return std::nullopt;
        ir::Type type;
        try {
            type = ir::parseType(fields[0]);
        } catch (const FatalError &) {
            return std::nullopt;
        }
        if (!type.isInteger() && !type.isIndex())
            return std::nullopt;
        unsigned w = type.bitwidth();
        int64_t lhs = args[0], rhs = args[1], result = 0;
        if (name == "arith.addi") {
            result = static_cast<int64_t>(static_cast<uint64_t>(lhs) +
                                          static_cast<uint64_t>(rhs));
        } else if (name == "arith.subi") {
            result = static_cast<int64_t>(static_cast<uint64_t>(lhs) -
                                          static_cast<uint64_t>(rhs));
        } else if (name == "arith.muli") {
            result = static_cast<int64_t>(static_cast<uint64_t>(lhs) *
                                          static_cast<uint64_t>(rhs));
        } else if (name == "arith.andi") {
            result = lhs & rhs;
        } else if (name == "arith.ori") {
            result = lhs | rhs;
        } else if (name == "arith.xori") {
            result = lhs ^ rhs;
        } else if (name == "arith.shli") {
            if (rhs < 0 || rhs >= 64)
                return std::nullopt;
            result = static_cast<int64_t>(static_cast<uint64_t>(lhs)
                                          << rhs);
        } else {
            return std::nullopt;
        }
        return sl::encodeIntConst(ir::wrapToWidth(result, w), type);
    };
    return hooks;
}

} // namespace seer::rover
