/**
 * @file
 * The differential oracle behind the corpus harness.
 *
 * One program is judged the way write_a_c_compiler judges a compiler
 * against clang ground truth: run the whole `optimize()` pipeline, then
 * diff its output against independent references —
 *
 *  1. the IR verifier (the output must be well-formed),
 *  2. the interpreter (`ir/interp`), co-executing the input and output
 *     modules on matched randomized workloads and comparing final
 *     memory states, and
 *  3. the naive reference arms: a second optimize() run with
 *     `--extract=naive` extraction bounds and the pre-index
 *     `naive_match` matcher must produce byte-identical output (the
 *     PR 3/PR 5 bit-identity contracts, enforced end to end).
 *
 * Every abnormal outcome is classified into a small failure taxonomy so
 * corpus runs can be tracked as a trajectory (pass rate per kind) and
 * failing programs can be bucketed before minimization.
 */
#ifndef SEER_CORPUS_ORACLE_H_
#define SEER_CORPUS_ORACLE_H_

#include <string>

#include "core/seer.h"
#include "support/fault_inject.h"

namespace seer::corpus {

/** Why a corpus case failed (or "None"/"Timeout" when it did not). */
enum class FailureKind
{
    None,          ///< all checks passed
    ParseError,    ///< generated program failed to parse/verify
    OptimizeError, ///< optimize() threw
    Degraded,      ///< optimize() recovered from internal faults
    InvalidOutput, ///< output IR fails the verifier
    Miscompile,    ///< final memory state diverges from ground truth
    TrapMismatch,  ///< one side traps where the other runs clean
    ReferenceDivergence, ///< naive extract/match arm output differs
    Timeout,       ///< per-case deadline expired (not a correctness bug)
};

/** Stable lowercase name (report/JSON keys, repro file headers). */
const char *failureKindName(FailureKind kind);

/** Options of one oracle evaluation. */
struct OracleOptions
{
    /** Pipeline configuration under test. */
    core::SeerOptions seer;
    /** Randomized workloads co-executed per case. */
    int input_runs = 3;
    /** Base seed of the workload generator (mixed with the run index;
     *  the per-case program seed is mixed in by the corpus runner). */
    uint64_t input_seed = 0xC0FFEE;
    /** Interpreter step budget per execution. */
    uint64_t max_steps = 50'000'000;
    /** Check the naive-extraction + naive-match reference arm for
     *  byte-identical output (slower: runs the pipeline twice more). */
    bool check_reference = true;
    /** Count a degraded (recovered-fault) run as a failure. Off by
     *  default: degradation is reported separately in the taxonomy. */
    bool fail_on_degraded = false;
    /** Per-case wall-clock budget in seconds (0 = none). Applied to
     *  optimize() via SeerOptions::deadline_seconds and to every
     *  interpreter execution. */
    double deadline_seconds = 0;
    /**
     * Chaos mode: arm this fault plan around the optimize() call under
     * test — and only around it: the judge arms (verifier, interpreter
     * ground truth, reference runs) execute disarmed, so an injected
     * interpreter fault can never masquerade as a miscompile. Inactive
     * unless chaos_plan.enabled(). The injector is process-global:
     * chaos runs must be single-threaded (the corpus runner enforces
     * jobs = 1).
     */
    FaultPlan chaos_plan;
};

/** One oracle verdict. */
struct OracleVerdict
{
    FailureKind kind = FailureKind::None;
    /** Human-readable failure description (first divergence found). */
    std::string detail;
    /** The optimize() run recovered from internal faults. */
    bool degraded = false;
    /** Wall-clock seconds spent on this case. */
    double seconds = 0;

    /** True when the case counts against the pass rate. */
    bool
    failed() const
    {
        return kind != FailureKind::None && kind != FailureKind::Timeout;
    }
};

/**
 * Judge one textual program against the oracle. Never throws: every
 * outcome (including internal errors) is folded into the verdict.
 */
OracleVerdict checkSource(const std::string &source,
                          const OracleOptions &options = {});

/**
 * The unsound rewrite used to exercise the harness end to end (tests,
 * `seer-corpus --inject-unsound`): a dynamic rule that rewrites every
 * memref.store statement to `nop`, silently deleting live stores — a
 * realistic miscompile shape (over-eager dead-store elimination) that
 * the interpreter diff must catch and the shrinker must minimize.
 */
eg::Rewrite makeUnsoundStoreDropRule();

} // namespace seer::corpus

#endif // SEER_CORPUS_ORACLE_H_
