/**
 * @file
 * A generator of random structured programs.
 *
 * Programs are built from the same material as the benchmarks — affine
 * loops with (possibly shifted) affine accesses, guarded stores,
 * bounded whiles over scalar cells, and random arithmetic — with the
 * invariants the interpreter enforces kept by construction: indices in
 * bounds, no division, bounded iteration.
 *
 * The generator backs both the property tests (tests/random_program.h
 * is a thin alias header) and the corpus-scale differential harness
 * (`seer-corpus`), which is why it lives in src/ rather than tests/.
 * Given a seed and a fixed set of options the emitted program is
 * byte-identical across platforms and processes.
 */
#ifndef SEER_CORPUS_GENERATOR_H_
#define SEER_CORPUS_GENERATOR_H_

#include <cstdint>
#include <string>

namespace seer::corpus {

/**
 * Shape knobs for the generator.
 *
 * The defaults reproduce the historical tests/random_program.h
 * distribution draw-for-draw, so property-test seeds keep generating
 * the exact programs they always did. The corpus tool widens the knobs
 * (bigger programs, nested loops, min/max) for coverage.
 *
 * Invariant kept by construction: every memory access is in bounds.
 * Loop ivs range over [0, max_trip), constant indices over
 * [0, max_trip), shifted accesses add at most buffer_size - max_trip,
 * so buffer_size must exceed max_trip (enforced by clamping).
 */
struct GeneratorOptions
{
    int num_buffers = 3;       ///< memref<buffer_size x i32> arguments
    int buffer_size = 24;      ///< elements per buffer argument
    int max_trip = 16;         ///< exclusive bound on ivs and indices
    int max_top_statements = 4;
    int max_loop_body = 3;
    int max_expr_depth = 3;
    bool allow_if = true;
    bool allow_while = true;
    bool allow_nonaffine_index = true; ///< (i&7)+c style accesses
    /** Nest a loop inside a loop body (one extra level). Off by
     *  default: the historical distribution had flat loops only. */
    bool allow_nested_loops = false;
    /** Draw arith.minsi/maxsi in expressions (widens the op set; off
     *  by default to preserve the historical draw stream). */
    bool allow_min_max = false;
};

/** Generate the textual IR of one random function @fuzz. */
std::string generateProgram(uint64_t seed,
                            const GeneratorOptions &options = {});

} // namespace seer::corpus

#endif // SEER_CORPUS_GENERATOR_H_
