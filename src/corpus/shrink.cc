#include "corpus/shrink.h"

#include <map>
#include <optional>
#include <vector>

#include "ir/builder.h"
#include "ir/op.h"
#include "ir/ops.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "support/error.h"

namespace seer::corpus {

namespace {

/** The kinds of reducing edits, tried biggest-cut-first. */
enum class EditKind
{
    RemoveOp,      ///< erase an op with unused results
    UnwrapRegion,  ///< replace a loop/if/while by its hoisted body
    HalveBound,    ///< halve a constant affine.for trip count
    ZeroValue,     ///< replace a computed value's uses with 0
    ShrinkLiteral, ///< move a constant literal toward 0
};

constexpr EditKind kEditKinds[] = {
    EditKind::RemoveOp, EditKind::UnwrapRegion, EditKind::HalveBound,
    EditKind::ZeroValue, EditKind::ShrinkLiteral,
};

/** Pre-order list of every op in the module (stable candidate index). */
std::vector<ir::Operation *>
allOps(const ir::Module &module)
{
    std::vector<ir::Operation *> ops;
    ir::walk(module, [&](ir::Operation &op) { ops.push_back(&op); });
    return ops;
}

/** Use counts of every value in the module. */
std::map<ir::ValueImpl *, size_t>
countUses(const ir::Module &module)
{
    std::map<ir::ValueImpl *, size_t> uses;
    ir::walk(module, [&](ir::Operation &op) {
        for (ir::Value operand : op.operands())
            ++uses[operand.impl()];
    });
    return uses;
}

bool
resultsUnused(const ir::Operation &op,
              const std::map<ir::ValueImpl *, size_t> &uses)
{
    for (size_t i = 0; i < op.numResults(); ++i) {
        auto it = uses.find(op.result(i).impl());
        if (it != uses.end() && it->second > 0)
            return false;
    }
    return true;
}

/** The function op enclosing `op` (top-level ancestor). */
ir::Operation *
enclosingFunc(ir::Operation *op)
{
    while (op->parentOp())
        op = op->parentOp();
    return op;
}

/** Erase `op` from its parent block. */
void
eraseOp(ir::Operation *op)
{
    ir::Block *block = op->parentBlock();
    block->erase(block->find(op));
}

/** Hoist the non-terminator ops of `body` to just before `op`,
 *  remapping `iv` (if provided) to a fresh `constant 0 : index`. */
void
hoistBody(ir::Operation *op, ir::Block &body,
          std::optional<ir::Value> iv)
{
    ir::Block *parent = op->parentBlock();
    ir::Block::iterator pos = parent->find(op);
    if (iv) {
        ir::OpBuilder builder = ir::OpBuilder::before(op);
        ir::Value zero = builder.indexConstant(0);
        ir::replaceAllUsesIn(body, *iv, zero);
    }
    while (!body.empty() && !ir::isTerminator(body.front())) {
        ir::Operation::Ptr moved = body.take(body.ops().begin());
        parent->insert(pos, std::move(moved));
    }
}

/**
 * Apply candidate edit (kind, index) to `module`. Returns false when
 * the candidate does not apply there (wrong op kind, value in use, …);
 * the caller then moves on to the next index.
 */
bool
applyEdit(ir::Module &module, EditKind kind, size_t index)
{
    std::vector<ir::Operation *> ops = allOps(module);
    if (index >= ops.size())
        return false;
    ir::Operation *op = ops[index];
    const std::string &name = op->nameStr();
    if (name == "func.func")
        return false;

    switch (kind) {
    case EditKind::RemoveOp: {
        if (ir::isTerminator(*op))
            return false;
        if (!resultsUnused(*op, countUses(module)))
            return false;
        eraseOp(op);
        return true;
    }
    case EditKind::UnwrapRegion: {
        if (op->numResults() > 0)
            return false;
        if (name == std::string(ir::opnames::kIf)) {
            hoistBody(op, op->region(0).block(), std::nullopt);
            eraseOp(op);
            return true;
        }
        if (name == std::string(ir::opnames::kAffineFor)) {
            hoistBody(op, op->region(0).block(),
                      ir::inductionVar(*op));
            eraseOp(op);
            return true;
        }
        if (name == std::string(ir::opnames::kWhile)) {
            // One body iteration in place; the condition-region
            // effects (loads only, in generated programs) vanish.
            hoistBody(op, op->region(1).block(), std::nullopt);
            eraseOp(op);
            return true;
        }
        return false;
    }
    case EditKind::HalveBound: {
        if (name != std::string(ir::opnames::kAffineFor))
            return false;
        ir::AffineBound lb = ir::getLowerBound(*op);
        ir::AffineBound ub = ir::getUpperBound(*op);
        if (!lb.isConstant() || !ub.isConstant())
            return false;
        int64_t span = ub.constant - lb.constant;
        if (span <= 1)
            return false;
        ub.constant = lb.constant + (span + 1) / 2;
        ir::setLoopBounds(*op, lb, ub, ir::getStep(*op));
        return true;
    }
    case EditKind::ZeroValue: {
        if (op->numResults() != 1 ||
            name == std::string(ir::opnames::kConstant))
            return false;
        ir::Type type = op->result().type();
        if (!type.isInteger() && !type.isIndex())
            return false;
        if (resultsUnused(*op, countUses(module)))
            return false; // RemoveOp's job
        ir::OpBuilder builder = ir::OpBuilder::before(op);
        ir::Value zero = type.isIndex()
                             ? builder.indexConstant(0)
                             : builder.intConstant(type, 0);
        ir::replaceAllUsesIn(*enclosingFunc(op), op->result(), zero);
        eraseOp(op);
        return true;
    }
    case EditKind::ShrinkLiteral: {
        if (name != std::string(ir::opnames::kConstant))
            return false;
        const ir::Attribute &value = op->attr("value");
        if (!value.isInt())
            return false;
        int64_t v = value.asInt();
        if (v == 0)
            return false;
        // Toward zero: -1/1 -> 0, else halve (keeps indices in
        // bounds: |v/2| <= |v|).
        op->setAttr("value", ir::Attribute(v / 2));
        return true;
    }
    }
    return false;
}

} // namespace

std::string
shrink(const std::string &source, const Predicate &still_fails,
       const ShrinkOptions &options, ShrinkStats *stats)
{
    ShrinkStats local;
    ShrinkStats &s = stats ? *stats : local;
    s = ShrinkStats{};

    if (!still_fails(source)) {
        s.converged = false;
        return source;
    }

    std::string current = source;
    bool out_of_budget = false;
    for (s.rounds = 0; s.rounds < options.max_rounds && !out_of_budget;
         ++s.rounds) {
        bool any_accepted = false;
        for (EditKind kind : kEditKinds) {
            // The op list changes under accepted edits; scanning by
            // index over a freshly parsed module keeps enumeration
            // deterministic without pointer bookkeeping.
            for (size_t index = 0;; ++index) {
                ir::Module module;
                try {
                    module = ir::parseModule(current);
                } catch (const FatalError &) {
                    return current; // cannot happen: current parsed before
                }
                if (index >= allOps(module).size())
                    break;
                if (!applyEdit(module, kind, index))
                    continue;
                std::string candidate = ir::toString(module);
                if (candidate == current)
                    continue;
                // Guard: the predicate only ever sees valid programs.
                try {
                    ir::Module reparsed = ir::parseModule(candidate);
                    ir::verifyOrDie(reparsed);
                } catch (const FatalError &) {
                    continue;
                }
                if (s.checks >= options.max_checks) {
                    out_of_budget = true;
                    break;
                }
                ++s.checks;
                if (still_fails(candidate)) {
                    current = candidate;
                    ++s.accepted;
                    any_accepted = true;
                    // Same index again: the edit list shifted under us.
                    --index;
                }
            }
            if (out_of_budget)
                break;
        }
        if (!any_accepted)
            break;
    }
    if (out_of_budget)
        s.converged = false;
    else if (s.rounds >= options.max_rounds)
        s.converged = false;
    return current;
}

} // namespace seer::corpus
