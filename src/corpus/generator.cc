#include "corpus/generator.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "support/rng.h"

namespace seer::corpus {

namespace {

/** Options after in-bounds clamping (see GeneratorOptions docs). */
GeneratorOptions
clamped(GeneratorOptions options)
{
    options.num_buffers = std::max(options.num_buffers, 1);
    options.max_top_statements = std::max(options.max_top_statements, 1);
    options.max_loop_body = std::max(options.max_loop_body, 1);
    options.max_expr_depth = std::max(options.max_expr_depth, 0);
    // Trip counts draw from [4, max_trip]; masked accesses reach 7 + c.
    options.max_trip = std::max(options.max_trip, 5);
    options.buffer_size =
        std::max({options.buffer_size, options.max_trip + 1, 9});
    return options;
}

class RandomProgram
{
  public:
    RandomProgram(uint64_t seed, const GeneratorOptions &options)
        : rng_(seed), options_(clamped(options))
    {}

    std::string
    generate()
    {
        os_ << "func.func @fuzz(";
        for (int b = 0; b < options_.num_buffers; ++b) {
            os_ << (b ? ", " : "") << "%buf" << b << ": memref<"
                << options_.buffer_size << "xi32>";
        }
        os_ << ", %cell: memref<1xi32>) {\n";
        indent_ = 1;
        line("%zero = arith.constant 0 : i32");
        line("%one = arith.constant 1 : i32");
        line("%c0 = arith.constant 0 : index");
        int statements =
            1 + static_cast<int>(rng_.nextBelow(
                    static_cast<uint64_t>(options_.max_top_statements)));
        for (int s = 0; s < statements; ++s)
            emitTopStatement();
        os_ << "}\n";
        return os_.str();
    }

  private:
    std::string
    fresh(const char *base)
    {
        return std::string("%") + base + std::to_string(names_++);
    }

    void
    line(const std::string &text)
    {
        for (int i = 0; i < indent_; ++i)
            os_ << "  ";
        os_ << text << "\n";
    }

    std::string
    randomBuffer()
    {
        return "%buf" + std::to_string(
                            rng_.nextBelow(static_cast<uint64_t>(
                                options_.num_buffers)));
    }

    std::string
    bufferType() const
    {
        return "memref<" + std::to_string(options_.buffer_size) +
               "xi32>";
    }

    /** An in-bounds index expression over iv `iv` (or constant). */
    std::string
    emitIndex(const std::string &iv)
    {
        // Loop ivs stay below max_trip; buffers hold buffer_size
        // elements, so every branch below stays strictly in bounds.
        uint64_t kind = rng_.nextBelow(
            options_.allow_nonaffine_index && !iv.empty() ? 4 : 3);
        if (iv.empty() || kind == 0) {
            std::string name = fresh("ci");
            line(name + " = arith.constant " +
                 std::to_string(rng_.nextBelow(static_cast<uint64_t>(
                     options_.max_trip))) +
                 " : index");
            return name;
        }
        if (kind == 1)
            return iv;
        if (kind == 2) {
            // iv + c, c in [0, buffer_size - max_trip):
            // max (max_trip - 1) + (buffer_size - max_trip - 1)
            //   = buffer_size - 2 < buffer_size.
            std::string c = fresh("ci");
            line(c + " = arith.constant " +
                 std::to_string(rng_.nextBelow(static_cast<uint64_t>(
                     options_.buffer_size - options_.max_trip))) +
                 " : index");
            std::string sum = fresh("ix");
            line(sum + " = arith.addi " + iv + ", " + c + " : index");
            return sum;
        }
        // Non-affine in the polyhedral sense: (iv & 7) + c.
        std::string mask = fresh("ci");
        line(mask + " = arith.constant 7 : index");
        std::string masked = fresh("ix");
        line(masked + " = arith.andi " + iv + ", " + mask + " : index");
        std::string c = fresh("ci");
        line(c + " = arith.constant " +
             std::to_string(rng_.nextBelow(static_cast<uint64_t>(
                 options_.buffer_size - 8))) +
             " : index");
        std::string sum = fresh("ix");
        line(sum + " = arith.addi " + masked + ", " + c + " : index");
        return sum;
    }

    /** A random i32 expression; may load from buffers. */
    std::string
    emitExpr(const std::string &iv, int depth)
    {
        uint64_t kind = rng_.nextBelow(depth <= 0 ? 3 : 8);
        if (kind == 0) {
            std::string c = fresh("k");
            line(c + " = arith.constant " +
                 std::to_string(rng_.nextRange(-20, 20)) + " : i32");
            return c;
        }
        if (kind == 1 || kind == 2) {
            std::string index = emitIndex(iv);
            std::string value = fresh("v");
            line(value + " = memref.load " + randomBuffer() + "[" +
                 index + "] : " + bufferType());
            return value;
        }
        if (kind == 7) {
            // select(cmp(a, b), a, b)
            std::string a = emitExpr(iv, depth - 1);
            std::string b = emitExpr(iv, depth - 1);
            std::string cond = fresh("c");
            const char *preds[] = {"slt", "sle", "eq", "ne", "sgt"};
            line(cond + " = arith.cmpi " +
                 preds[rng_.nextBelow(5)] + ", " + a + ", " + b +
                 " : i32");
            std::string sel = fresh("s");
            line(sel + " = arith.select " + cond + ", " + a + ", " + b +
                 " : i32");
            return sel;
        }
        std::string a = emitExpr(iv, depth - 1);
        if (rng_.nextBelow(5) == 0) {
            // Shift by a small constant.
            std::string amount = fresh("k");
            line(amount + " = arith.constant " +
                 std::to_string(rng_.nextBelow(4)) + " : i32");
            std::string shifted = fresh("e");
            line(shifted + " = arith.shli " + a + ", " + amount +
                 " : i32");
            return shifted;
        }
        const char *ops[] = {"addi", "subi", "muli",  "andi",
                             "ori",  "xori", "minsi", "maxsi"};
        std::string b = emitExpr(iv, depth - 1);
        std::string result = fresh("e");
        line(result + " = arith." +
             ops[rng_.nextBelow(options_.allow_min_max ? 8 : 6)] + " " +
             a + ", " + b + " : i32");
        return result;
    }

    void
    emitStore(const std::string &iv)
    {
        std::string value = emitExpr(iv, options_.max_expr_depth);
        std::string index = emitIndex(iv);
        line("memref.store " + value + ", " + randomBuffer() + "[" +
             index + "] : " + bufferType());
    }

    void
    emitIf(const std::string &iv)
    {
        std::string a = emitExpr(iv, 1);
        std::string cond = fresh("c");
        line(cond + " = arith.cmpi sgt, " + a + ", %zero : i32");
        line("scf.if " + cond + " {");
        ++indent_;
        emitStore(iv);
        --indent_;
        if (rng_.nextBelow(2) == 0) {
            line("} else {");
            ++indent_;
            emitStore(iv);
            --indent_;
        }
        line("}");
    }

    void
    emitLoop(int depth = 0)
    {
        std::string iv = fresh("i").substr(1); // strip %
        int64_t trip =
            4 + static_cast<int64_t>(rng_.nextBelow(
                    static_cast<uint64_t>(options_.max_trip - 3)));
        line("affine.for %" + iv + " = 0 to " + std::to_string(trip) +
             " {");
        ++indent_;
        int body = 1 + static_cast<int>(rng_.nextBelow(
                           static_cast<uint64_t>(options_.max_loop_body)));
        bool nest = options_.allow_nested_loops && depth == 0;
        uint64_t kinds = (options_.allow_if ? 3 : 2) + (nest ? 1 : 0);
        for (int s = 0; s < body; ++s) {
            uint64_t kind = rng_.nextBelow(kinds);
            if (nest && kind == kinds - 1)
                emitLoop(depth + 1);
            else if (options_.allow_if && kind == 2)
                emitIf("%" + iv);
            else
                emitStore("%" + iv);
        }
        --indent_;
        line("}");
    }

    void
    emitWhile()
    {
        // cell counts up to a bound; body also does a random store.
        int64_t bound = 3 + static_cast<int64_t>(rng_.nextBelow(8));
        std::string limit = fresh("k");
        line(limit + " = arith.constant " + std::to_string(bound) +
             " : i32");
        line("memref.store %zero, %cell[%c0] : memref<1xi32>");
        line("scf.while {");
        ++indent_;
        std::string v = fresh("w");
        line(v + " = memref.load %cell[%c0] : memref<1xi32>");
        std::string cond = fresh("c");
        line(cond + " = arith.cmpi slt, " + v + ", " + limit + " : i32");
        line("scf.condition " + cond);
        --indent_;
        line("} do {");
        ++indent_;
        emitStore("");
        std::string v2 = fresh("w");
        line(v2 + " = memref.load %cell[%c0] : memref<1xi32>");
        std::string inc = fresh("w");
        line(inc + " = arith.addi " + v2 + ", %one : i32");
        line("memref.store " + inc + ", %cell[%c0] : memref<1xi32>");
        --indent_;
        line("}");
    }

    void
    emitTopStatement()
    {
        uint64_t kind = rng_.nextBelow(10);
        if (kind < 6) {
            emitLoop();
        } else if (kind < 8 && options_.allow_while) {
            emitWhile();
        } else {
            emitStore("");
        }
    }

    Rng rng_;
    GeneratorOptions options_;
    std::ostringstream os_;
    int names_ = 0;
    int indent_ = 1;
};

} // namespace

std::string
generateProgram(uint64_t seed, const GeneratorOptions &options)
{
    return RandomProgram(seed, options).generate();
}

} // namespace seer::corpus
