#include "corpus/oracle.h"

#include <chrono>
#include <memory>

#include "core/verify.h"
#include "ir/interp.h"
#include "support/exec_context.h"
#include "support/fault_inject.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "seerlang/encoding.h"
#include "support/rng.h"

namespace seer::corpus {

namespace {

using Clock = std::chrono::steady_clock;

/** Outcome of one interpreter execution. */
struct ExecResult
{
    enum class Status { Ok, Trap, Canceled } status = Status::Ok;
    std::string trap; ///< trap message when status == Trap
    std::vector<int64_t> state; ///< buffer fingerprint when Ok
};

/** Fill `buffers` deterministically from `seed` (matched workloads). */
void
fillBuffers(std::vector<std::unique_ptr<ir::Buffer>> &buffers,
            uint64_t seed)
{
    Rng rng(seed);
    for (auto &buffer : buffers) {
        unsigned w = buffer->type.elementType().isScalar()
                         ? buffer->type.elementType().bitwidth()
                         : 32;
        for (auto &v : buffer->ints)
            v = ir::wrapToWidth(rng.nextRange(-40, 40), w);
        for (auto &v : buffer->floats)
            v = rng.nextDouble() * 4 - 2;
    }
}

std::vector<int64_t>
fingerprint(const std::vector<std::unique_ptr<ir::Buffer>> &buffers)
{
    std::vector<int64_t> out;
    for (const auto &buffer : buffers) {
        out.insert(out.end(), buffer->ints.begin(), buffer->ints.end());
        for (double d : buffer->floats)
            out.push_back(static_cast<int64_t>(d * (1 << 20)));
    }
    return out;
}

/** Run `func_name` in `module` on a seeded workload. */
ExecResult
execute(const ir::Module &module, const std::string &func_name,
        uint64_t seed, const OracleOptions &options,
        const ExecContext &judge)
{
    ExecResult out;
    ir::Operation *func = module.lookupFunc(func_name);
    ir::Block &body = func->region(0).block();
    std::vector<std::unique_ptr<ir::Buffer>> buffers;
    std::vector<ir::RtValue> args;
    Rng scalar_rng(seed ^ 0x5ca1ab1e);
    for (size_t i = 0; i < body.numArgs(); ++i) {
        ir::Type type = body.arg(i).type();
        if (type.isMemRef()) {
            buffers.push_back(std::make_unique<ir::Buffer>(type));
            args.push_back(buffers.back().get());
        } else if (type.isIndex()) {
            args.push_back(scalar_rng.nextRange(0, 3));
        } else if (type.isInteger()) {
            args.push_back(ir::wrapToWidth(
                scalar_rng.nextRange(-40, 40), type.bitwidth()));
        } else {
            args.push_back(scalar_rng.nextDouble() * 4 - 2);
        }
    }
    fillBuffers(buffers, seed);
    ir::InterpOptions interp_options;
    interp_options.max_steps = options.max_steps;
    interp_options.exec = judge;
    try {
        ir::interpret(module, func_name, std::move(args),
                      interp_options);
    } catch (const ir::InterpError &err) {
        out.status = err.isCancellation() ? ExecResult::Status::Canceled
                                          : ExecResult::Status::Trap;
        out.trap = err.what();
        return out;
    } catch (const FatalError &err) {
        out.status = ExecResult::Status::Trap;
        out.trap = err.what();
        return out;
    }
    out.state = fingerprint(buffers);
    return out;
}

} // namespace

const char *
failureKindName(FailureKind kind)
{
    switch (kind) {
    case FailureKind::None: return "none";
    case FailureKind::ParseError: return "parse_error";
    case FailureKind::OptimizeError: return "optimize_error";
    case FailureKind::Degraded: return "degraded";
    case FailureKind::InvalidOutput: return "invalid_output";
    case FailureKind::Miscompile: return "miscompile";
    case FailureKind::TrapMismatch: return "trap_mismatch";
    case FailureKind::ReferenceDivergence: return "reference_divergence";
    case FailureKind::Timeout: return "timeout";
    }
    return "unknown";
}

OracleVerdict
checkSource(const std::string &source, const OracleOptions &options)
{
    OracleVerdict verdict;
    Clock::time_point start = Clock::now();
    auto finish = [&]() -> OracleVerdict & {
        verdict.seconds =
            std::chrono::duration<double>(Clock::now() - start).count();
        return verdict;
    };
    auto fail = [&](FailureKind kind,
                    const std::string &detail) -> OracleVerdict & {
        verdict.kind = kind;
        verdict.detail = detail;
        return finish();
    };

    // The judge's own governance context: per-case deadline for the
    // ground-truth and reference executions. Distinct from the context
    // optimize() builds for itself, and never subject to chaos faults.
    ExecContext judge = ExecContext::make();
    if (options.deadline_seconds > 0)
        judge.setDeadlineIn(options.deadline_seconds);

    // 1. The program itself must parse and verify.
    ir::Module input;
    std::string func_name;
    try {
        input = ir::parseModule(source);
        ir::verifyOrDie(input);
        ir::Operation *func = input.firstFunc();
        if (!func)
            fatal("no function in program");
        func_name = func->strAttr("sym_name");
    } catch (const FatalError &err) {
        return fail(FailureKind::ParseError, err.what());
    }

    // 2. Run the pipeline under test.
    core::SeerOptions seer = options.seer;
    if (options.deadline_seconds > 0 &&
        (seer.deadline_seconds <= 0 ||
         seer.deadline_seconds > options.deadline_seconds))
        seer.deadline_seconds = options.deadline_seconds;
    core::SeerResult result;
    {
        // Chaos: faults are armed for the run under test only; every
        // disarm path (normal return, any catch) goes through the
        // scoped guard's destructor. A fault that escapes optimize()
        // (it must not — that is the no-throw contract under test)
        // is an OptimizeError, i.e. a reported contract violation.
        std::optional<ScopedFaultPlan> chaos;
        if (options.chaos_plan.enabled())
            chaos.emplace(options.chaos_plan);
        try {
            result = core::optimize(input, func_name, seer);
        } catch (const FatalError &err) {
            return fail(FailureKind::OptimizeError, err.what());
        } catch (const std::exception &err) {
            return fail(FailureKind::OptimizeError,
                        std::string("non-FatalError: ") + err.what());
        }
    }
    verdict.degraded = result.stats.degraded;

    // 3. The output must be verifier-clean (the optimize() contract).
    std::string diag = ir::verify(result.module);
    if (!diag.empty())
        return fail(FailureKind::InvalidOutput, diag);

    // 4. Interpreter ground truth: co-execute input and output on
    //    matched randomized workloads and diff final memory states.
    for (int run = 0; run < options.input_runs; ++run) {
        uint64_t seed = options.input_seed + 0x9E3779B9u * run;
        ExecResult before =
            execute(input, func_name, seed, options, judge);
        ExecResult after =
            execute(result.module, func_name, seed, options, judge);
        if (before.status == ExecResult::Status::Canceled ||
            after.status == ExecResult::Status::Canceled)
            return fail(FailureKind::Timeout,
                        "per-case deadline expired during ground-truth "
                        "execution");
        bool before_trap = before.status == ExecResult::Status::Trap;
        bool after_trap = after.status == ExecResult::Status::Trap;
        if (before_trap != after_trap) {
            return fail(FailureKind::TrapMismatch,
                        MsgBuilder()
                            << "workload seed " << seed << ": "
                            << (before_trap ? "input" : "output")
                            << " traps ("
                            << (before_trap ? before.trap : after.trap)
                            << ") but the "
                            << (before_trap ? "output" : "input")
                            << " runs clean");
        }
        if (before_trap)
            continue; // both trap: agreement on this workload
        if (before.state != after.state) {
            size_t at = 0;
            while (at < before.state.size() &&
                   before.state[at] == after.state[at])
                ++at;
            return fail(FailureKind::Miscompile,
                        MsgBuilder()
                            << "workload seed " << seed
                            << ": memory diverges at word " << at
                            << " (ground truth "
                            << (at < before.state.size()
                                    ? before.state[at]
                                    : 0)
                            << ", optimized "
                            << (at < after.state.size() ? after.state[at]
                                                        : 0)
                            << ")");
        }
    }

    // 5. Reference arms: greedy extraction with the indexed matcher
    //    must match naive extraction with the naive matcher byte for
    //    byte (the PR 3/PR 5 bit-identity contracts, end to end).
    if (options.check_reference) {
        core::SeerOptions fast = seer;
        fast.exact_datapath = false;
        fast.naive_extract = false;
        fast.runner.naive_match = false;
        core::SeerOptions naive = seer;
        naive.exact_datapath = false;
        naive.naive_extract = true;
        naive.runner.naive_match = true;
        // When the pipeline under test already is the fast arm, its
        // output doubles as the fast reference (optimize() is
        // deterministic for a fixed config), saving one run per case.
        bool reuse_main = !seer.exact_datapath && !seer.naive_extract &&
                          !seer.runner.naive_match;
        try {
            std::string fast_out =
                reuse_main
                    ? ir::toString(result.module)
                    : ir::toString(
                          core::optimize(input, func_name, fast).module);
            std::string naive_out = ir::toString(
                core::optimize(input, func_name, naive).module);
            if (fast_out != naive_out) {
                return fail(FailureKind::ReferenceDivergence,
                            "indexed+incremental output differs from "
                            "the naive-match/naive-extract reference");
            }
        } catch (const FatalError &err) {
            return fail(FailureKind::OptimizeError,
                        std::string("reference arm: ") + err.what());
        }
        if (judge.canceled())
            return fail(FailureKind::Timeout,
                        "per-case deadline expired during the "
                        "reference arm");
    }

    if (options.fail_on_degraded && verdict.degraded) {
        return fail(FailureKind::Degraded,
                    result.stats.recovered_errors.empty()
                        ? std::string("optimize() degraded")
                        : result.stats.recovered_errors.front());
    }
    return finish();
}

eg::Rewrite
makeUnsoundStoreDropRule()
{
    return eg::makeDynRewrite(
        "unsound-store-drop", "?x",
        [](eg::EGraph &egraph,
           const eg::Match &match) -> std::optional<eg::TermPtr> {
            const eg::EClass &eclass =
                egraph.eclass(egraph.find(match.root));
            for (const eg::ENode &node : eclass.nodes) {
                if (sl::opNameOf(node.op) == "memref.store")
                    return eg::makeTerm(sl::nopSymbol());
            }
            return std::nullopt;
        });
}

} // namespace seer::corpus
