#include "corpus/runner.h"

#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>

#include "ir/op.h"
#include "ir/parser.h"
#include "support/error.h"
#include "support/worker_pool.h"

namespace seer::corpus {

namespace {

/** Op count of a (known-valid) program, 0 when it does not parse. */
size_t
countOps(const std::string &source)
{
    try {
        ir::Module module = ir::parseModule(source);
        size_t n = 0;
        ir::walk(module, [&](ir::Operation &) { ++n; });
        return n;
    } catch (const FatalError &) {
        return 0;
    }
}

/** Workload base seed of program seed `seed`: decorrelated from the
 *  program bits so shape knobs and inputs vary independently. */
uint64_t
mixInputSeed(uint64_t base, uint64_t seed)
{
    return base ^ (seed * 0x9E3779B97F4A7C15ull);
}

/** Raw per-case outcome filled by the worker jobs (disjoint slots). */
struct CaseSlot
{
    OracleVerdict verdict;
    std::string source;    ///< kept only for non-passing cases
    std::string minimized; ///< shrunk form ("" when minimize is off)
    std::string chaos_plan; ///< the plan the case ran under (chaos mode)
    bool skipped = false;  ///< never judged: the run was canceled
    bool judged = false;   ///< the worker actually ran this case
    ShrinkStats shrink_stats;
};

} // namespace

CorpusReport
runCorpus(const CorpusOptions &options)
{
    auto start = std::chrono::steady_clock::now();
    std::vector<CaseSlot> slots(options.count);
    // The fault injector is one per process: chaos cases must not
    // overlap, so chaos mode runs strictly serially.
    unsigned jobs = options.chaos ? 1 : options.jobs;

    // Ordered progress: workers flush the longest fully-judged prefix
    // under a lock, so the callback sees cases strictly in seed order
    // no matter how jobs interleave.
    std::mutex progress_mutex;
    std::vector<bool> done(options.count, false);
    size_t next_report = 0;
    auto report_done = [&](size_t index) {
        if (!options.progress)
            return;
        std::lock_guard<std::mutex> lock(progress_mutex);
        done[index] = true;
        while (next_report < options.count && done[next_report]) {
            options.progress(options.first_seed + next_report,
                             slots[next_report].verdict);
            ++next_report;
        }
    };

    parallelFor(
        options.count, jobs,
        [&](size_t index) {
        // parallelFor jobs must not throw; fold everything into the
        // slot so one broken case cannot take down the run.
        CaseSlot &slot = slots[index];
        uint64_t seed = options.first_seed + index;
        if (options.exec.canceled()) {
            slot.skipped = true;
            report_done(index);
            return;
        }
        slot.judged = true;
        try {
            std::string source = generateProgram(seed, options.shape);
            OracleOptions oracle = options.oracle;
            oracle.input_seed =
                mixInputSeed(options.oracle.input_seed, seed);
            if (options.chaos) {
                oracle.chaos_plan.seed =
                    mixInputSeed(options.chaos_seed, seed);
                oracle.chaos_plan.rate = options.chaos_rate;
                // The reference arm would interleave extra optimize()
                // calls into the same global hit counters, making
                // plans non-replayable.
                oracle.check_reference = false;
                slot.chaos_plan = oracle.chaos_plan.str();
            }
            slot.verdict = checkSource(source, oracle);
            if (slot.verdict.kind != FailureKind::None)
                slot.source = source;
            if (slot.verdict.failed() && options.minimize) {
                FailureKind kind = slot.verdict.kind;
                Predicate still_fails =
                    [&](const std::string &candidate) {
                        return checkSource(candidate, oracle).kind ==
                               kind;
                    };
                slot.minimized = shrink(source, still_fails,
                                        options.shrink,
                                        &slot.shrink_stats);
            }
        } catch (const std::exception &err) {
            slot.verdict.kind = FailureKind::OptimizeError;
            slot.verdict.detail =
                std::string("harness error: ") + err.what();
            if (slot.source.empty())
                slot.source = "// <program generation failed>";
        } catch (...) {
            slot.verdict.kind = FailureKind::OptimizeError;
            slot.verdict.detail = "harness error: unknown exception";
        }
        report_done(index);
        },
        [&] { return options.exec.canceled(); });

    // Serial aggregation in seed order (deterministic report).
    CorpusReport report;
    report.first_seed = options.first_seed;
    report.total = options.count;
    for (size_t index = 0; index < options.count; ++index) {
        const CaseSlot &slot = slots[index];
        if (slot.skipped || !slot.judged) {
            ++report.skipped;
            continue;
        }
        report.case_seconds.push_back(slot.verdict.seconds);
        if (slot.verdict.degraded)
            ++report.degraded;
        if (slot.verdict.kind == FailureKind::None) {
            ++report.passed;
            continue;
        }
        ++report.taxonomy[failureKindName(slot.verdict.kind)];
        if (slot.verdict.kind == FailureKind::Timeout) {
            ++report.timeouts;
            continue;
        }
        ++report.failed;
        CaseFailure failure;
        failure.seed = options.first_seed + index;
        failure.kind = slot.verdict.kind;
        failure.detail = slot.verdict.detail;
        failure.program_ops = countOps(slot.source);
        failure.minimized =
            slot.minimized.empty() ? slot.source : slot.minimized;
        failure.minimized_ops = countOps(failure.minimized);
        failure.chaos_plan = slot.chaos_plan;
        failure.shrink_stats = slot.shrink_stats;
        report.failures.push_back(std::move(failure));
    }
    report.canceled = options.exec.canceled();

    if (!options.repro_dir.empty() && !report.failures.empty()) {
        std::filesystem::create_directories(options.repro_dir);
        for (CaseFailure &failure : report.failures) {
            std::filesystem::path path =
                std::filesystem::path(options.repro_dir) /
                (MsgBuilder() << "seed" << failure.seed << "_"
                              << failureKindName(failure.kind) << ".seer")
                    .str();
            std::ofstream out(path, std::ios::trunc);
            out << renderRepro(failure, options);
            failure.repro_path = path.string();
        }
    }

    report.total_seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    return report;
}

std::string
renderRepro(const CaseFailure &failure, const CorpusOptions &options)
{
    std::ostringstream out;
    out << "// seer-corpus repro\n";
    out << "// seed: " << failure.seed << "\n";
    out << "// kind: " << failureKindName(failure.kind) << "\n";
    std::istringstream detail(failure.detail);
    for (std::string line; std::getline(detail, line);)
        out << "// detail: " << line << "\n";
    out << "// ops: " << failure.program_ops << " generated, "
        << failure.minimized_ops << " minimized";
    if (!failure.shrink_stats.converged &&
        failure.minimized_ops != failure.program_ops)
        out << " (budget hit; may not be minimal)";
    out << "\n";
    out << "// reproduce: seer-corpus --check <this file>";
    if (!options.oracle.check_reference)
        out << " --no-reference";
    if (options.oracle.fail_on_degraded)
        out << " --fail-degraded";
    if (options.oracle.seer.exact_datapath)
        out << " --exact";
    if (!options.oracle.seer.extra_control_rules.empty())
        out << " --inject-unsound";
    if (!failure.chaos_plan.empty())
        out << " --chaos-plan '" << failure.chaos_plan << "'";
    out << "\n";
    out << failure.minimized;
    if (failure.minimized.empty() || failure.minimized.back() != '\n')
        out << "\n";
    return out.str();
}

json::Value
toJson(const CorpusReport &report, const CorpusOptions &options)
{
    json::Value root{json::Object{}};
    root.set("schema", "seer-corpus-v1");
    root.set("first_seed", report.first_seed);
    root.set("total", report.total);
    root.set("passed", report.passed);
    root.set("failed", report.failed);
    root.set("degraded", report.degraded);
    root.set("timeouts", report.timeouts);
    root.set("skipped", report.skipped);
    root.set("canceled", report.canceled);
    root.set("pass_rate", report.passRate());
    root.set("total_seconds", report.total_seconds);

    json::Value config{json::Object{}};
    config.set("input_runs", options.oracle.input_runs);
    config.set("check_reference", options.oracle.check_reference);
    config.set("fail_on_degraded", options.oracle.fail_on_degraded);
    config.set("minimize", options.minimize);
    config.set("deadline_seconds", options.oracle.deadline_seconds);
    config.set("jobs", options.jobs);
    config.set("chaos", options.chaos);
    if (options.chaos) {
        config.set("chaos_seed", options.chaos_seed);
        config.set("chaos_rate", options.chaos_rate);
    }
    root.set("config", std::move(config));

    json::Value taxonomy{json::Object{}};
    for (const auto &[name, count] : report.taxonomy)
        taxonomy.set(name, count);
    root.set("taxonomy", std::move(taxonomy));

    double sum = 0, worst = 0;
    for (double s : report.case_seconds) {
        sum += s;
        worst = std::max(worst, s);
    }
    json::Value timing{json::Object{}};
    timing.set("case_seconds_sum", sum);
    timing.set("case_seconds_max", worst);
    timing.set("case_seconds_mean",
               report.case_seconds.empty()
                   ? 0.0
                   : sum / report.case_seconds.size());
    root.set("timing", std::move(timing));

    json::Value failures{json::Array{}};
    for (const CaseFailure &failure : report.failures) {
        json::Value entry{json::Object{}};
        entry.set("seed", failure.seed);
        entry.set("kind", failureKindName(failure.kind));
        entry.set("detail", failure.detail);
        entry.set("program_ops", failure.program_ops);
        entry.set("minimized_ops", failure.minimized_ops);
        entry.set("repro_path", failure.repro_path);
        if (!failure.chaos_plan.empty())
            entry.set("chaos_plan", failure.chaos_plan);
        json::Value shrunk{json::Object{}};
        shrunk.set("checks", failure.shrink_stats.checks);
        shrunk.set("accepted", failure.shrink_stats.accepted);
        shrunk.set("rounds", failure.shrink_stats.rounds);
        shrunk.set("converged", failure.shrink_stats.converged);
        entry.set("shrink", std::move(shrunk));
        failures.push(std::move(entry));
    }
    root.set("failures", std::move(failures));
    return root;
}

} // namespace seer::corpus
