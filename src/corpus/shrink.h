/**
 * @file
 * Automatic failing-case minimization (delta debugging over the IR).
 *
 * Given a program that fails some predicate (e.g. "the corpus oracle
 * rejects it"), the shrinker searches for a smaller program that still
 * fails, by repeatedly applying semantic-size-reducing edits and
 * re-checking the predicate after each:
 *
 *   - drop a statement (any op whose results are unused),
 *   - unwrap a control region (loop/if/while body hoisted in its
 *     place, induction variables pinned to 0),
 *   - halve a constant loop bound,
 *   - replace a computed value's uses with the constant 0,
 *   - shrink a constant literal toward 0.
 *
 * Edits that break parsing or verification are discarded before the
 * predicate ever runs, so the predicate only sees valid programs. The
 * search is greedy-to-fixpoint and fully deterministic: candidates are
 * enumerated in a fixed order, the first accepted edit restarts the
 * scan, and two runs over the same input and predicate produce the
 * same minimized program.
 */
#ifndef SEER_CORPUS_SHRINK_H_
#define SEER_CORPUS_SHRINK_H_

#include <cstddef>
#include <functional>
#include <string>

namespace seer::corpus {

/** Returns true when `source` still exhibits the failure. */
using Predicate = std::function<bool(const std::string &source)>;

struct ShrinkOptions
{
    /** Fixpoint rounds (each round scans every candidate edit once). */
    size_t max_rounds = 64;
    /** Total predicate evaluations across all rounds. */
    size_t max_checks = 3000;
};

struct ShrinkStats
{
    size_t checks = 0;   ///< predicate evaluations spent
    size_t accepted = 0; ///< edits that kept the failure
    size_t rounds = 0;   ///< fixpoint rounds executed
    /** False when a budget expired before the edit set was exhausted
     *  (the result still fails, it just may not be minimal). */
    bool converged = true;
};

/**
 * Minimize `source` while `still_fails` holds. Requires
 * still_fails(source); returns `source` unchanged (converged = false)
 * when it does not. The returned program always fails the predicate.
 */
std::string shrink(const std::string &source,
                   const Predicate &still_fails,
                   const ShrinkOptions &options = {},
                   ShrinkStats *stats = nullptr);

} // namespace seer::corpus

#endif // SEER_CORPUS_SHRINK_H_
