/**
 * @file
 * The corpus runner: thousands of generated kernels through the
 * differential oracle, failures minimized and written as repro files,
 * everything aggregated into a machine-readable run report.
 *
 * The run is deterministic: case i uses seed first_seed + i for both
 * its program and (mixed) its workloads, cases are judged independently
 * (so `jobs` workers change wall time, never verdicts), and the report
 * orders results by seed.
 */
#ifndef SEER_CORPUS_RUNNER_H_
#define SEER_CORPUS_RUNNER_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "corpus/generator.h"
#include "corpus/oracle.h"
#include "corpus/shrink.h"
#include "support/exec_context.h"
#include "support/json.h"

namespace seer::corpus {

/** Configuration of one corpus run. */
struct CorpusOptions
{
    uint64_t first_seed = 1;
    size_t count = 100;
    /** Program shape. */
    GeneratorOptions shape;
    /** Oracle configuration (pipeline options, workload runs, ...). */
    OracleOptions oracle;
    /** Minimize failing programs before reporting them. */
    bool minimize = true;
    ShrinkOptions shrink;
    /** Directory for minimized repro files (empty = don't write). */
    std::string repro_dir;
    /** Worker threads over cases (verdicts independent of N). */
    unsigned jobs = 1;
    /** Serial progress callback, invoked in seed order. */
    std::function<void(uint64_t seed, const OracleVerdict &)> progress;

    // --- chaos mode ------------------------------------------------------
    /**
     * Judge every case under a per-case randomized fault plan (seed
     * mixed from chaos_seed and the case seed, firing rate
     * chaos_rate), asserting the degraded-mode contract holds for
     * every schedule: no crash, no invalid output, no miscompile —
     * degradation is allowed, corruption is not. Forces jobs = 1 (the
     * fault injector is process-global) and disables the reference arm
     * (its optimize() runs would share fault hit counters with the run
     * under test).
     */
    bool chaos = false;
    uint64_t chaos_seed = 0xC4A05;
    double chaos_rate = 0.02;

    /** Governance: once canceled (SIGINT/SIGTERM), unstarted cases are
     *  skipped and the report is finalized from the judged prefix. */
    ExecContext exec;
};

/** Outcome of one failing (or degraded/timed-out) case. */
struct CaseFailure
{
    uint64_t seed = 0;
    FailureKind kind = FailureKind::None;
    std::string detail;
    /** Pre-/post-minimization program sizes in ops. */
    size_t program_ops = 0;
    size_t minimized_ops = 0;
    /** The minimized failing program (the repro file body). */
    std::string minimized;
    /** Where the repro was written ("" when repro_dir is empty). */
    std::string repro_path;
    /** The fault plan the case ran under ("" outside chaos mode);
     *  replayable via `seer-corpus --check FILE --chaos-plan '...'`. */
    std::string chaos_plan;
    ShrinkStats shrink_stats;
};

/** Aggregated run report. */
struct CorpusReport
{
    uint64_t first_seed = 0;
    size_t total = 0;
    size_t passed = 0;
    size_t failed = 0;
    size_t degraded = 0; ///< passed-but-degraded (unless fail_on_degraded)
    size_t timeouts = 0;
    /** Cases skipped because the run was canceled (SIGINT). */
    size_t skipped = 0;
    /** The run was cut short by cancellation. */
    bool canceled = false;
    /** failureKindName -> count over all non-passing cases. */
    std::map<std::string, size_t> taxonomy;
    std::vector<CaseFailure> failures;
    /** Per-kernel wall time (seconds), indexed by case. */
    std::vector<double> case_seconds;
    double total_seconds = 0;

    /** Pass rate over the *judged* cases (skipped ones say nothing). */
    double passRate() const
    {
        size_t judged = total - skipped;
        return judged ? static_cast<double>(passed) / judged : 1.0;
    }
};

/** Run the corpus. Repro files land in options.repro_dir. */
CorpusReport runCorpus(const CorpusOptions &options);

/** Machine-readable view of a run (consumed by bench_to_json.py
 *  --mode corpus, uploaded by the CI corpus-smoke job). */
json::Value toJson(const CorpusReport &report,
                   const CorpusOptions &options);

/**
 * Render a self-contained repro file: a header of `//` comments
 * (seed, failure kind, detail, reproduction command) followed by the
 * minimized program. `seer-corpus --check FILE` re-judges such a file.
 */
std::string renderRepro(const CaseFailure &failure,
                        const CorpusOptions &options);

} // namespace seer::corpus

#endif // SEER_CORPUS_RUNNER_H_
