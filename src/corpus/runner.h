/**
 * @file
 * The corpus runner: thousands of generated kernels through the
 * differential oracle, failures minimized and written as repro files,
 * everything aggregated into a machine-readable run report.
 *
 * The run is deterministic: case i uses seed first_seed + i for both
 * its program and (mixed) its workloads, cases are judged independently
 * (so `jobs` workers change wall time, never verdicts), and the report
 * orders results by seed.
 */
#ifndef SEER_CORPUS_RUNNER_H_
#define SEER_CORPUS_RUNNER_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "corpus/generator.h"
#include "corpus/oracle.h"
#include "corpus/shrink.h"
#include "support/json.h"

namespace seer::corpus {

/** Configuration of one corpus run. */
struct CorpusOptions
{
    uint64_t first_seed = 1;
    size_t count = 100;
    /** Program shape. */
    GeneratorOptions shape;
    /** Oracle configuration (pipeline options, workload runs, ...). */
    OracleOptions oracle;
    /** Minimize failing programs before reporting them. */
    bool minimize = true;
    ShrinkOptions shrink;
    /** Directory for minimized repro files (empty = don't write). */
    std::string repro_dir;
    /** Worker threads over cases (verdicts independent of N). */
    unsigned jobs = 1;
    /** Serial progress callback, invoked in seed order. */
    std::function<void(uint64_t seed, const OracleVerdict &)> progress;
};

/** Outcome of one failing (or degraded/timed-out) case. */
struct CaseFailure
{
    uint64_t seed = 0;
    FailureKind kind = FailureKind::None;
    std::string detail;
    /** Pre-/post-minimization program sizes in ops. */
    size_t program_ops = 0;
    size_t minimized_ops = 0;
    /** The minimized failing program (the repro file body). */
    std::string minimized;
    /** Where the repro was written ("" when repro_dir is empty). */
    std::string repro_path;
    ShrinkStats shrink_stats;
};

/** Aggregated run report. */
struct CorpusReport
{
    uint64_t first_seed = 0;
    size_t total = 0;
    size_t passed = 0;
    size_t failed = 0;
    size_t degraded = 0; ///< passed-but-degraded (unless fail_on_degraded)
    size_t timeouts = 0;
    /** failureKindName -> count over all non-passing cases. */
    std::map<std::string, size_t> taxonomy;
    std::vector<CaseFailure> failures;
    /** Per-kernel wall time (seconds), indexed by case. */
    std::vector<double> case_seconds;
    double total_seconds = 0;

    double passRate() const
    {
        return total ? static_cast<double>(passed) / total : 1.0;
    }
};

/** Run the corpus. Repro files land in options.repro_dir. */
CorpusReport runCorpus(const CorpusOptions &options);

/** Machine-readable view of a run (consumed by bench_to_json.py
 *  --mode corpus, uploaded by the CI corpus-smoke job). */
json::Value toJson(const CorpusReport &report,
                   const CorpusOptions &options);

/**
 * Render a self-contained repro file: a header of `//` comments
 * (seed, failure kind, detail, reproduction command) followed by the
 * minimized program. `seer-corpus --check FILE` re-judges such a file.
 */
std::string renderRepro(const CaseFailure &failure,
                        const CorpusOptions &options);

} // namespace seer::corpus

#endif // SEER_CORPUS_RUNNER_H_
