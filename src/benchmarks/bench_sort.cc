/**
 * @file
 * sort (MachSuite): bottom-up merge sort (data-dependent while-loop
 * control) and 4-bit LSD radix sort (histogram + prefix + scatter with
 * data-dependent addresses).
 */
#include <algorithm>

#include "benchmarks/benchmarks.h"

namespace seer::bench {

Benchmark
makeSortMerge()
{
    Benchmark b;
    b.name = "sort_merge";
    b.func = "sort_merge";
    b.source = R"(
func.func @sort_merge(%a: memref<64xi32>) {
  %temp = memref.alloc() : memref<64xi32>
  %wc = memref.alloc() : memref<1xi32>
  %ic = memref.alloc() : memref<1xi32>
  %lc = memref.alloc() : memref<1xi32>
  %rc = memref.alloc() : memref<1xi32>
  %oc = memref.alloc() : memref<1xi32>
  %z = arith.constant 0 : index
  %zero = arith.constant 0 : i32
  %one = arith.constant 1 : i32
  %n = arith.constant 64 : i32
  %c63 = arith.constant 63 : i32
  %true1 = arith.constant 1 : i1
  memref.store %one, %wc[%z] : memref<1xi32>
  scf.while {
    %w = memref.load %wc[%z] : memref<1xi32>
    %cond = arith.cmpi slt, %w, %n : i32
    scf.condition %cond
  } do {
    memref.store %zero, %ic[%z] : memref<1xi32>
    scf.while {
      %iv = memref.load %ic[%z] : memref<1xi32>
      %cond = arith.cmpi slt, %iv, %n : i32
      scf.condition %cond
    } do {
      %w = memref.load %wc[%z] : memref<1xi32>
      %iv = memref.load %ic[%z] : memref<1xi32>
      %ivpw = arith.addi %iv, %w : i32
      %lend = arith.minsi %ivpw, %n : i32
      %w2 = arith.addi %w, %w : i32
      %ivp2w = arith.addi %iv, %w2 : i32
      %rend = arith.minsi %ivp2w, %n : i32
      memref.store %iv, %lc[%z] : memref<1xi32>
      memref.store %lend, %rc[%z] : memref<1xi32>
      memref.store %iv, %oc[%z] : memref<1xi32>
      scf.while {
        %o = memref.load %oc[%z] : memref<1xi32>
        %cond = arith.cmpi slt, %o, %rend : i32
        scf.condition %cond
      } do {
        %l = memref.load %lc[%z] : memref<1xi32>
        %r = memref.load %rc[%z] : memref<1xi32>
        %lcl = arith.minsi %l, %c63 : i32
        %rcl = arith.minsi %r, %c63 : i32
        %lidx = arith.index_cast %lcl : i32 to index
        %ridx = arith.index_cast %rcl : i32 to index
        %al = memref.load %a[%lidx] : memref<64xi32>
        %ar = memref.load %a[%ridx] : memref<64xi32>
        %l_valid = arith.cmpi slt, %l, %lend : i32
        %r_valid = arith.cmpi slt, %r, %rend : i32
        %le = arith.cmpi sle, %al, %ar : i32
        %r_invalid = arith.xori %r_valid, %true1 : i1
        %pref = arith.ori %r_invalid, %le : i1
        %take_left = arith.andi %l_valid, %pref : i1
        %val = arith.select %take_left, %al, %ar : i32
        %o = memref.load %oc[%z] : memref<1xi32>
        %oidx = arith.index_cast %o : i32 to index
        memref.store %val, %temp[%oidx] : memref<64xi32>
        %lp1 = arith.addi %l, %one : i32
        %rp1 = arith.addi %r, %one : i32
        %nl = arith.select %take_left, %lp1, %l : i32
        %nr = arith.select %take_left, %r, %rp1 : i32
        memref.store %nl, %lc[%z] : memref<1xi32>
        memref.store %nr, %rc[%z] : memref<1xi32>
        %op1 = arith.addi %o, %one : i32
        memref.store %op1, %oc[%z] : memref<1xi32>
      }
      memref.store %iv, %oc[%z] : memref<1xi32>
      scf.while {
        %o = memref.load %oc[%z] : memref<1xi32>
        %cond = arith.cmpi slt, %o, %rend : i32
        scf.condition %cond
      } do {
        %o = memref.load %oc[%z] : memref<1xi32>
        %oidx = arith.index_cast %o : i32 to index
        %v = memref.load %temp[%oidx] : memref<64xi32>
        memref.store %v, %a[%oidx] : memref<64xi32>
        %op1 = arith.addi %o, %one : i32
        memref.store %op1, %oc[%z] : memref<1xi32>
      }
      memref.store %ivp2w, %ic[%z] : memref<1xi32>
    }
    %w = memref.load %wc[%z] : memref<1xi32>
    %wdouble = arith.addi %w, %w : i32
    memref.store %wdouble, %wc[%z] : memref<1xi32>
  }
})";
    b.prepare = [](std::vector<ir::Buffer> &buffers, Rng &rng) {
        for (auto &v : buffers[0].ints)
            v = rng.nextRange(-500, 500);
    };
    b.golden = [](std::vector<ir::Buffer> &buffers) {
        std::sort(buffers[0].ints.begin(), buffers[0].ints.end());
    };
    return b;
}

Benchmark
makeSortRadix()
{
    Benchmark b;
    b.name = "sort_radix";
    b.func = "sort_radix";
    b.source = R"(
func.func @sort_radix(%a: memref<64xi32>) {
  %bbuf = memref.alloc() : memref<64xi32>
  %hist = memref.alloc() : memref<16xi32>
  %offs = memref.alloc() : memref<16xi32>
  %z = arith.constant 0 : index
  %zero = arith.constant 0 : i32
  %one = arith.constant 1 : i32
  %c4 = arith.constant 4 : i32
  %c15 = arith.constant 15 : i32
  %onei = arith.constant 1 : index
  affine.for %pass = 0 to 2 {
    %p32 = arith.index_cast %pass : index to i32
    %shift = arith.muli %p32, %c4 : i32
    affine.for %h = 0 to 16 {
      memref.store %zero, %hist[%h] : memref<16xi32>
    }
    affine.for %i = 0 to 64 {
      %v = memref.load %a[%i] : memref<64xi32>
      %sv = arith.shrsi %v, %shift : i32
      %d = arith.andi %sv, %c15 : i32
      %didx = arith.index_cast %d : i32 to index
      %hc = memref.load %hist[%didx] : memref<16xi32>
      %hp1 = arith.addi %hc, %one : i32
      memref.store %hp1, %hist[%didx] : memref<16xi32>
    }
    memref.store %zero, %offs[%z] : memref<16xi32>
    affine.for %d = 1 to 16 {
      %dm1 = arith.subi %d, %onei : index
      %prev = memref.load %offs[%dm1] : memref<16xi32>
      %hprev = memref.load %hist[%dm1] : memref<16xi32>
      %sum = arith.addi %prev, %hprev : i32
      memref.store %sum, %offs[%d] : memref<16xi32>
    }
    affine.for %i = 0 to 64 {
      %v = memref.load %a[%i] : memref<64xi32>
      %sv = arith.shrsi %v, %shift : i32
      %d = arith.andi %sv, %c15 : i32
      %didx = arith.index_cast %d : i32 to index
      %pos = memref.load %offs[%didx] : memref<16xi32>
      %posi = arith.index_cast %pos : i32 to index
      memref.store %v, %bbuf[%posi] : memref<64xi32>
      %pp1 = arith.addi %pos, %one : i32
      memref.store %pp1, %offs[%didx] : memref<16xi32>
    }
    affine.for %i = 0 to 64 {
      %v = memref.load %bbuf[%i] : memref<64xi32>
      memref.store %v, %a[%i] : memref<64xi32>
    }
  }
})";
    b.prepare = [](std::vector<ir::Buffer> &buffers, Rng &rng) {
        for (auto &v : buffers[0].ints)
            v = rng.nextRange(0, 255); // two 4-bit digits
    };
    b.golden = [](std::vector<ir::Buffer> &buffers) {
        std::sort(buffers[0].ints.begin(), buffers[0].ints.end());
    };
    return b;
}

} // namespace seer::bench
