/**
 * @file
 * seq_loops (the Figure 9 artificial example) and byte_enable_calc
 * (the Intel production snippet of Figure 12), plus the hand-optimized
 * "Manual" variant of the latter.
 */
#include "benchmarks/benchmarks.h"

namespace seer::bench {

Benchmark
makeSeqLoops()
{
    Benchmark b;
    b.name = "seq_loops";
    b.func = "seq_loops";
    // Two fusable loops whose memory index is the hardware-friendly but
    // non-affine (i << 1) + i == 3*i.
    b.source = R"(
func.func @seq_loops(%a: memref<304xi32>, %b: memref<304xi32>,
                     %c: memref<304xi32>) {
  %one = arith.constant 1 : index
  affine.for %i = 0 to 100 {
    %sh = arith.shli %i, %one : index
    %idx = arith.addi %sh, %i : index
    %v = memref.load %a[%idx] : memref<304xi32>
    %w = arith.addi %v, %v : i32
    memref.store %w, %b[%idx] : memref<304xi32>
  }
  affine.for %j = 0 to 100 {
    %sh = arith.shli %j, %one : index
    %idx = arith.addi %sh, %j : index
    %v = memref.load %b[%idx] : memref<304xi32>
    %u = memref.load %a[%idx] : memref<304xi32>
    %w = arith.addi %v, %u : i32
    memref.store %w, %c[%idx] : memref<304xi32>
  }
})";
    b.prepare = [](std::vector<ir::Buffer> &buffers, Rng &rng) {
        for (auto &v : buffers[0].ints)
            v = rng.nextRange(-1000, 1000);
        // b and c start zeroed.
    };
    b.golden = [](std::vector<ir::Buffer> &buffers) {
        auto &a = buffers[0].ints;
        auto &bb = buffers[1].ints;
        auto &c = buffers[2].ints;
        for (int i = 0; i < 100; ++i)
            bb[3 * i] = ir::wrapToWidth(2 * a[3 * i], 32);
        for (int j = 0; j < 100; ++j)
            c[3 * j] = ir::wrapToWidth(bb[3 * j] + a[3 * j], 32);
    };
    return b;
}

Benchmark
makeByteEnableCalc()
{
    Benchmark b;
    b.name = "byte_enable_calc";
    b.func = "byte_enable_calc";
    // Figure 12: per message, scan the 8 byte-enable bits and set the
    // corresponding bits of a scalar `enable` register under a nest of
    // conditionals; then report whether the full byte lane is enabled.
    b.source = R"(
func.func @byte_enable_calc(%valid: memref<4xi32>,
                            %byte_en: memref<4xi32>,
                            %out: memref<4xi32>,
                            %enable: memref<1xi32>) {
  %z = arith.constant 0 : index
  %zero = arith.constant 0 : i32
  %one = arith.constant 1 : i32
  %full = arith.constant 255 : i32
  affine.for %i = 0 to 4 {
    memref.store %zero, %enable[%z] : memref<1xi32>
    affine.for %bpos = 0 to 8 {
      %e = memref.load %enable[%z] : memref<1xi32>
      %v = memref.load %valid[%i] : memref<4xi32>
      %be = memref.load %byte_en[%i] : memref<4xi32>
      %b32 = arith.index_cast %bpos : index to i32
      %shifted = arith.shrsi %be, %b32 : i32
      %bit = arith.andi %shifted, %one : i32
      %c1 = arith.cmpi ne, %v, %zero : i32
      %c2 = arith.cmpi ne, %bit, %zero : i32
      %c = arith.andi %c1, %c2 : i1
      scf.if %c {
        %mask = arith.shli %one, %b32 : i32
        %n = arith.ori %e, %mask : i32
        memref.store %n, %enable[%z] : memref<1xi32>
      }
    }
    %e2 = memref.load %enable[%z] : memref<1xi32>
    %done = arith.cmpi eq, %e2, %full : i32
    scf.if %done {
      memref.store %one, %out[%i] : memref<4xi32>
    } else {
      memref.store %zero, %out[%i] : memref<4xi32>
    }
  }
})";
    b.prepare = [](std::vector<ir::Buffer> &buffers, Rng &rng) {
        for (auto &v : buffers[0].ints)
            v = rng.nextRange(0, 1); // valid flags
        for (auto &v : buffers[1].ints)
            v = rng.nextRange(0, 255); // byte enables
    };
    b.golden = [](std::vector<ir::Buffer> &buffers) {
        auto &valid = buffers[0].ints;
        auto &byte_en = buffers[1].ints;
        auto &out = buffers[2].ints;
        auto &enable = buffers[3].ints;
        for (int i = 0; i < 4; ++i) {
            enable[0] = 0;
            for (int bit = 0; bit < 8; ++bit) {
                if (valid[i] != 0 && ((byte_en[i] >> bit) & 1) != 0)
                    enable[0] |= int64_t{1} << bit;
            }
            out[i] = enable[0] == 255 ? 1 : 0;
        }
    };
    b.unroll_max_trip = 16; // the case study explores unrolling
    return b;
}

const Benchmark &
byteEnableManual()
{
    static const Benchmark manual = [] {
        Benchmark b = makeByteEnableCalc();
        b.name = "byte_enable_manual";
        b.func = "byte_enable_manual";
        // The expert version: the whole bit scan collapses into
        // enable = valid ? byte_en & 0xFF : 0 per message, no scalar
        // recurrence, no conditionals.
        b.source = R"(
func.func @byte_enable_manual(%valid: memref<4xi32>,
                              %byte_en: memref<4xi32>,
                              %out: memref<4xi32>,
                              %enable: memref<1xi32>) {
  %z = arith.constant 0 : index
  %zero = arith.constant 0 : i32
  %one = arith.constant 1 : i32
  %full = arith.constant 255 : i32
  affine.for %i = 0 to 4 {
    %v = memref.load %valid[%i] : memref<4xi32>
    %be = memref.load %byte_en[%i] : memref<4xi32>
    %c1 = arith.cmpi ne, %v, %zero : i32
    %masked = arith.andi %be, %full : i32
    %e = arith.select %c1, %masked, %zero : i32
    memref.store %e, %enable[%z] : memref<1xi32>
    %done = arith.cmpi eq, %e, %full : i32
    %outv = arith.select %done, %one, %zero : i32
    memref.store %outv, %out[%i] : memref<4xi32>
  }
})";
        return b;
    }();
    return manual;
}

} // namespace seer::bench
