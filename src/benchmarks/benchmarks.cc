#include "benchmarks/benchmarks.h"

#include <sstream>

#include "ir/parser.h"
#include "ir/verifier.h"
#include "support/error.h"

namespace seer::bench {

const std::vector<Benchmark> &
allBenchmarks()
{
    static const std::vector<Benchmark> benchmarks = {
        makeSeqLoops(),   makeByteEnableCalc(), makeKmp(),
        makeGemmNCubed(), makeGemmBlocked(),    makeMdKnn(),
        makeMdGrid(),     makeSortMerge(),      makeSortRadix(),
    };
    return benchmarks;
}

const Benchmark &
findBenchmark(const std::string &name)
{
    for (const Benchmark &benchmark : allBenchmarks()) {
        if (benchmark.name == name)
            return benchmark;
    }
    if (name == "byte_enable_manual")
        return byteEnableManual();
    fatal("unknown benchmark '" + name + "'");
}

ir::Module
parseBenchmark(const Benchmark &benchmark)
{
    ir::Module module = ir::parseModule(benchmark.source);
    ir::verifyOrDie(module);
    return module;
}

std::vector<ir::Buffer>
makeBuffers(const ir::Module &module, const std::string &func)
{
    ir::Operation *op = module.lookupFunc(func);
    SEER_ASSERT(op, "makeBuffers: missing function " << func);
    ir::Block &body = op->region(0).block();
    std::vector<ir::Buffer> buffers;
    for (size_t i = 0; i < body.numArgs(); ++i) {
        ir::Type type = body.arg(i).type();
        SEER_ASSERT(type.isMemRef(),
                    "benchmark arguments must be memrefs");
        buffers.emplace_back(type);
    }
    return buffers;
}

std::string
checkGolden(const Benchmark &benchmark, uint64_t seed)
{
    ir::Module module = parseBenchmark(benchmark);
    std::vector<ir::Buffer> actual = makeBuffers(module, benchmark.func);
    Rng rng(seed);
    benchmark.prepare(actual, rng);
    std::vector<ir::Buffer> expected = actual; // copy of prepared state
    benchmark.golden(expected);

    std::vector<ir::RtValue> args;
    for (ir::Buffer &buffer : actual)
        args.push_back(&buffer);
    try {
        ir::interpret(module, benchmark.func, std::move(args));
    } catch (const FatalError &err) {
        return std::string("interpreter trap: ") + err.what();
    }

    for (size_t b = 0; b < actual.size(); ++b) {
        if (actual[b].ints != expected[b].ints) {
            for (size_t i = 0; i < actual[b].ints.size(); ++i) {
                if (actual[b].ints[i] != expected[b].ints[i]) {
                    return MsgBuilder()
                           << benchmark.name << ": buffer " << b
                           << " int[" << i << "] = "
                           << actual[b].ints[i] << ", expected "
                           << expected[b].ints[i];
                }
            }
        }
        for (size_t i = 0; i < actual[b].floats.size(); ++i) {
            double got = actual[b].floats[i];
            double want = expected[b].floats[i];
            double err = std::abs(got - want);
            double tolerance =
                1e-9 * std::max({1.0, std::abs(got), std::abs(want)});
            if (err > tolerance) {
                return MsgBuilder()
                       << benchmark.name << ": buffer " << b
                       << " float[" << i << "] = " << got
                       << ", expected " << want;
            }
        }
    }
    return "";
}

std::string
motivatingListing(int listing, int f, int g, int h)
{
    // Three loops over 100 elements:
    //   loop_1: x[i] = chain_f(a[i])
    //   loop_2: w[i] = chain_g(b[i])
    //   loop_3: y[i] = chain_h(x[99-i])
    // The reversed x access creates the dependence that forbids fusing
    // loop_1 with loop_3 (Figure 2); either neighbouring pair fuses,
    // and the fused bodies stay data-parallel so the fused iteration
    // latency is the max of the two bodies (the paper's fusion law).
    auto chain = [](const std::string &in, int depth, int indent,
                    std::ostringstream &os, const std::string &prefix) {
        std::string current = in;
        for (int s = 0; s < depth; ++s) {
            std::string next = prefix + std::to_string(s);
            os << std::string(indent, ' ') << "%" << next
               << " = arith.addi %" << current << ", %cstep : i32\n";
            current = next;
        }
        return current;
    };
    std::ostringstream body1, body2, body3;
    // loop_1 body (iv %i)
    body1 << "    %xv = memref.load %a[%i] : memref<100xi32>\n";
    std::string x_out = chain("xv", f, 4, body1, "f");
    body1 << "    memref.store %" << x_out
          << ", %x[%i] : memref<100xi32>\n";
    // loop_2 body (iv %j)
    body2 << "    %wv = memref.load %b[%j] : memref<100xi32>\n";
    std::string w_out = chain("wv", g, 4, body2, "g");
    body2 << "    memref.store %" << w_out
          << ", %w[%j] : memref<100xi32>\n";
    // loop_3 body (iv %k): depends on x (reversed) only.
    body3 << "    %rk = arith.subi %c99, %k : index\n"
          << "    %xr = memref.load %x[%rk] : memref<100xi32>\n"
          << "    %s0 = arith.addi %xr, %cstep : i32\n";
    std::string y_out = chain("s0", h, 4, body3, "h");
    body3 << "    memref.store %" << y_out
          << ", %y[%k] : memref<100xi32>\n";
    (void)w_out;

    std::ostringstream os;
    os << "func.func @motivating(%a: memref<100xi32>, "
          "%b: memref<100xi32>, %x: memref<100xi32>, "
          "%w: memref<100xi32>, %y: memref<100xi32>) {\n"
       << "  %cstep = arith.constant 1 : i32\n"
       << "  %c99 = arith.constant 99 : index\n";
    auto loop = [&](const char *iv, const std::string &body) {
        os << "  affine.for %" << iv << " = 0 to 100 {\n"
           << body << "  }\n";
    };
    auto fused = [&](const char *iv, std::string first,
                     std::string second, const char *old1,
                     const char *old2) {
        // Substitute both bodies' ivs with the shared one.
        auto substitute = [&](std::string text, const char *from) {
            std::string needle = std::string("%") + from;
            std::string repl = std::string("%") + iv;
            size_t pos = 0;
            while ((pos = text.find(needle, pos)) !=
                   std::string::npos) {
                // Avoid replacing longer names sharing the prefix.
                char next = pos + needle.size() < text.size()
                                ? text[pos + needle.size()]
                                : ' ';
                if (std::isalnum(static_cast<unsigned char>(next)) ||
                    next == '_') {
                    pos += needle.size();
                    continue;
                }
                text.replace(pos, needle.size(), repl);
                pos += repl.size();
            }
            return text;
        };
        os << "  affine.for %" << iv << " = 0 to 100 {\n"
           << substitute(first, old1) << substitute(second, old2)
           << "  }\n";
    };
    if (listing == 1) {
        loop("i", body1.str());
        loop("j", body2.str());
        loop("k", body3.str());
    } else if (listing == 2) {
        fused("m", body1.str(), body2.str(), "i", "j");
        loop("k", body3.str());
    } else if (listing == 3) {
        loop("i", body1.str());
        fused("m", body2.str(), body3.str(), "j", "k");
    } else {
        fatal("motivatingListing: listing must be 1, 2 or 3");
    }
    os << "}\n";
    return os.str();
}

} // namespace seer::bench
