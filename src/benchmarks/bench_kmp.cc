/**
 * @file
 * kmp (MachSuite): Knuth-Morris-Pratt string matching — failure-function
 * construction followed by the scan, both with data-dependent while
 * loops (the non-affine control the paper calls out).
 */
#include "benchmarks/benchmarks.h"

namespace seer::bench {

Benchmark
makeKmp()
{
    Benchmark b;
    b.name = "kmp";
    b.func = "kmp";
    b.source = R"(
func.func @kmp(%pattern: memref<4xi32>, %text: memref<256xi32>,
               %n_matches: memref<1xi32>) {
  %kmp_next = memref.alloc() : memref<4xi32>
  %kcell = memref.alloc() : memref<1xi32>
  %z = arith.constant 0 : index
  %zero = arith.constant 0 : i32
  %one = arith.constant 1 : i32
  %plen = arith.constant 4 : i32

  // --- failure function -------------------------------------------
  memref.store %zero, %kmp_next[%z] : memref<4xi32>
  memref.store %zero, %kcell[%z] : memref<1xi32>
  affine.for %q = 1 to 4 {
    scf.while {
      %k = memref.load %kcell[%z] : memref<1xi32>
      %kpos = arith.cmpi sgt, %k, %zero : i32
      %kidx = arith.index_cast %k : i32 to index
      %pk = memref.load %pattern[%kidx] : memref<4xi32>
      %pq = memref.load %pattern[%q] : memref<4xi32>
      %ne = arith.cmpi ne, %pk, %pq : i32
      %cond = arith.andi %kpos, %ne : i1
      scf.condition %cond
    } do {
      %k = memref.load %kcell[%z] : memref<1xi32>
      %km1 = arith.subi %k, %one : i32
      %kidx = arith.index_cast %km1 : i32 to index
      %fallback = memref.load %kmp_next[%kidx] : memref<4xi32>
      memref.store %fallback, %kcell[%z] : memref<1xi32>
    }
    %k = memref.load %kcell[%z] : memref<1xi32>
    %kidx = arith.index_cast %k : i32 to index
    %pk = memref.load %pattern[%kidx] : memref<4xi32>
    %pq = memref.load %pattern[%q] : memref<4xi32>
    %eq = arith.cmpi eq, %pk, %pq : i32
    scf.if %eq {
      %kp1 = arith.addi %k, %one : i32
      memref.store %kp1, %kcell[%z] : memref<1xi32>
    }
    %kfinal = memref.load %kcell[%z] : memref<1xi32>
    memref.store %kfinal, %kmp_next[%q] : memref<4xi32>
  }

  // --- scan -------------------------------------------------------
  memref.store %zero, %kcell[%z] : memref<1xi32>
  memref.store %zero, %n_matches[%z] : memref<1xi32>
  affine.for %i = 0 to 256 {
    scf.while {
      %k = memref.load %kcell[%z] : memref<1xi32>
      %kpos = arith.cmpi sgt, %k, %zero : i32
      %kidx = arith.index_cast %k : i32 to index
      %pk = memref.load %pattern[%kidx] : memref<4xi32>
      %tv = memref.load %text[%i] : memref<256xi32>
      %ne = arith.cmpi ne, %pk, %tv : i32
      %cond = arith.andi %kpos, %ne : i1
      scf.condition %cond
    } do {
      %k = memref.load %kcell[%z] : memref<1xi32>
      %km1 = arith.subi %k, %one : i32
      %kidx = arith.index_cast %km1 : i32 to index
      %fallback = memref.load %kmp_next[%kidx] : memref<4xi32>
      memref.store %fallback, %kcell[%z] : memref<1xi32>
    }
    %k = memref.load %kcell[%z] : memref<1xi32>
    %kidx = arith.index_cast %k : i32 to index
    %pk = memref.load %pattern[%kidx] : memref<4xi32>
    %tv = memref.load %text[%i] : memref<256xi32>
    %eq = arith.cmpi eq, %pk, %tv : i32
    scf.if %eq {
      %kp1 = arith.addi %k, %one : i32
      memref.store %kp1, %kcell[%z] : memref<1xi32>
    }
    %k2 = memref.load %kcell[%z] : memref<1xi32>
    %found = arith.cmpi eq, %k2, %plen : i32
    scf.if %found {
      %m = memref.load %n_matches[%z] : memref<1xi32>
      %mp1 = arith.addi %m, %one : i32
      memref.store %mp1, %n_matches[%z] : memref<1xi32>
      %last = arith.subi %k2, %one : i32
      %lidx = arith.index_cast %last : i32 to index
      %fallback = memref.load %kmp_next[%lidx] : memref<4xi32>
      memref.store %fallback, %kcell[%z] : memref<1xi32>
    }
  }
})";
    b.prepare = [](std::vector<ir::Buffer> &buffers, Rng &rng) {
        for (auto &v : buffers[0].ints)
            v = rng.nextRange(0, 1); // binary alphabet: matches happen
        for (auto &v : buffers[1].ints)
            v = rng.nextRange(0, 1);
    };
    b.golden = [](std::vector<ir::Buffer> &buffers) {
        auto &pattern = buffers[0].ints;
        auto &text = buffers[1].ints;
        auto &n_matches = buffers[2].ints;
        // Mirror the kernel exactly (including the scan reset rule).
        int64_t kmp_next[4] = {0, 0, 0, 0};
        int64_t k = 0;
        for (int q = 1; q < 4; ++q) {
            while (k > 0 && pattern[k] != pattern[q])
                k = kmp_next[k - 1];
            if (pattern[k] == pattern[q])
                ++k;
            kmp_next[q] = k;
        }
        k = 0;
        int64_t matches = 0;
        for (int i = 0; i < 256; ++i) {
            while (k > 0 && pattern[k] != text[i])
                k = kmp_next[k - 1];
            if (pattern[k] == text[i])
                ++k;
            if (k == 4) {
                ++matches;
                k = kmp_next[k - 1];
            }
        }
        n_matches[0] = matches;
    };
    return b;
}

} // namespace seer::bench
