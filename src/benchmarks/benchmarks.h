/**
 * @file
 * The benchmark suite of the paper's evaluation (Section 5.1):
 * seq_loops, byte_enable_calc (plus its expert-optimized "Manual"
 * variant), kmp, gemm (ncubed / blocked), md (knn / grid) and
 * sort (merge / radix), hand-translated from the MachSuite kernels /
 * the Intel snippet into this repo's IR, each with a deterministic
 * input generator and a C++ golden reference.
 */
#ifndef SEER_BENCHMARKS_BENCHMARKS_H_
#define SEER_BENCHMARKS_BENCHMARKS_H_

#include <functional>
#include <string>
#include <vector>

#include "ir/interp.h"
#include "ir/op.h"
#include "support/rng.h"

namespace seer::bench {

/** One benchmark program. */
struct Benchmark
{
    std::string name; ///< e.g. "gemm_ncubed"
    std::string func; ///< function symbol in `source`
    std::string source; ///< IR text
    /** Fill the argument buffers (one per memref argument, in order). */
    std::function<void(std::vector<ir::Buffer> &, Rng &)> prepare;
    /** Reference semantics: mutate prepared buffers like the kernel. */
    std::function<void(std::vector<ir::Buffer> &)> golden;
    /** SEER should explore unrolling (the Intel case-study setting). */
    int64_t unroll_max_trip = 0;
};

/** All nine benchmarks, in the paper's presentation order. */
const std::vector<Benchmark> &allBenchmarks();

/** Find by name; fatal() when unknown. */
const Benchmark &findBenchmark(const std::string &name);

/** Parse a benchmark's source (verifies). */
ir::Module parseBenchmark(const Benchmark &benchmark);

/** Allocate buffers matching the function's memref arguments. */
std::vector<ir::Buffer> makeBuffers(const ir::Module &module,
                                    const std::string &func);

/**
 * Golden check: prepare inputs, interpret the source, compare the final
 * memory state against the golden reference. Empty string on success.
 */
std::string checkGolden(const Benchmark &benchmark, uint64_t seed);

/** The hand-optimized byte_enable_calc (the case study's "Manual"). */
const Benchmark &byteEnableManual();

/**
 * The motivating example (Listings 1-3 / Table 1): three loops with
 * datapath chain depths f, g, h; listing 1 is unfused, 2 fuses the
 * first pair, 3 fuses the second pair.
 */
std::string motivatingListing(int listing, int f, int g, int h);

// Individual constructors (one per translation unit).
Benchmark makeSeqLoops();
Benchmark makeByteEnableCalc();
Benchmark makeKmp();
Benchmark makeGemmNCubed();
Benchmark makeGemmBlocked();
Benchmark makeMdKnn();
Benchmark makeMdGrid();
Benchmark makeSortMerge();
Benchmark makeSortRadix();

} // namespace seer::bench

#endif // SEER_BENCHMARKS_BENCHMARKS_H_
