/**
 * @file
 * gemm (MachSuite): the naive O(n^3) version and the cache-blocked
 * version. 16x16 matrices keep co-simulation fast while preserving the
 * loop structure the transformations target.
 */
#include "benchmarks/benchmarks.h"

namespace seer::bench {

namespace {

void
prepareMatrices(std::vector<ir::Buffer> &buffers, Rng &rng)
{
    for (auto &v : buffers[0].ints)
        v = rng.nextRange(-8, 8);
    for (auto &v : buffers[1].ints)
        v = rng.nextRange(-8, 8);
    // C starts zeroed.
}

} // namespace

Benchmark
makeGemmNCubed()
{
    Benchmark b;
    b.name = "gemm_ncubed";
    b.func = "gemm_ncubed";
    b.source = R"(
func.func @gemm_ncubed(%A: memref<16x16xi32>, %B: memref<16x16xi32>,
                       %C: memref<16x16xi32>) {
  %sum = memref.alloc() : memref<1xi32>
  %z = arith.constant 0 : index
  %zero = arith.constant 0 : i32
  affine.for %i = 0 to 16 {
    affine.for %j = 0 to 16 {
      memref.store %zero, %sum[%z] : memref<1xi32>
      affine.for %k = 0 to 16 {
        %a = memref.load %A[%i, %k] : memref<16x16xi32>
        %b = memref.load %B[%k, %j] : memref<16x16xi32>
        %p = arith.muli %a, %b : i32
        %s = memref.load %sum[%z] : memref<1xi32>
        %n = arith.addi %s, %p : i32
        memref.store %n, %sum[%z] : memref<1xi32>
      }
      %s = memref.load %sum[%z] : memref<1xi32>
      memref.store %s, %C[%i, %j] : memref<16x16xi32>
    }
  }
})";
    b.prepare = prepareMatrices;
    b.golden = [](std::vector<ir::Buffer> &buffers) {
        auto &a = buffers[0].ints;
        auto &bm = buffers[1].ints;
        auto &c = buffers[2].ints;
        for (int i = 0; i < 16; ++i) {
            for (int j = 0; j < 16; ++j) {
                int64_t sum = 0;
                for (int k = 0; k < 16; ++k) {
                    sum = ir::wrapToWidth(
                        sum + ir::wrapToWidth(
                                  a[i * 16 + k] * bm[k * 16 + j], 32),
                        32);
                }
                c[i * 16 + j] = sum;
            }
        }
    };
    return b;
}

Benchmark
makeGemmBlocked()
{
    Benchmark b;
    b.name = "gemm_blocked";
    b.func = "gemm_blocked";
    b.source = R"(
func.func @gemm_blocked(%A: memref<16x16xi32>, %B: memref<16x16xi32>,
                        %C: memref<16x16xi32>) {
  affine.for %jj = 0 to 16 step 4 {
    affine.for %kk = 0 to 16 step 4 {
      affine.for %i = 0 to 16 {
        affine.for %k = %kk to %kk + 4 {
          %temp = memref.load %A[%i, %k] : memref<16x16xi32>
          affine.for %j = %jj to %jj + 4 {
            %b = memref.load %B[%k, %j] : memref<16x16xi32>
            %p = arith.muli %temp, %b : i32
            %c = memref.load %C[%i, %j] : memref<16x16xi32>
            %n = arith.addi %c, %p : i32
            memref.store %n, %C[%i, %j] : memref<16x16xi32>
          }
        }
      }
    }
  }
})";
    b.prepare = prepareMatrices;
    b.golden = [](std::vector<ir::Buffer> &buffers) {
        auto &a = buffers[0].ints;
        auto &bm = buffers[1].ints;
        auto &c = buffers[2].ints;
        // Accumulates into C (which starts zeroed).
        for (int i = 0; i < 16; ++i) {
            for (int j = 0; j < 16; ++j) {
                int64_t sum = c[i * 16 + j];
                for (int k = 0; k < 16; ++k) {
                    sum = ir::wrapToWidth(
                        sum + ir::wrapToWidth(
                                  a[i * 16 + k] * bm[k * 16 + j], 32),
                        32);
                }
                c[i * 16 + j] = sum;
            }
        }
    };
    return b;
}

} // namespace seer::bench
