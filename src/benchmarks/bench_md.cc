/**
 * @file
 * md (MachSuite): molecular-dynamics force kernels.
 *  - knn: per-atom K-nearest-neighbour force accumulation with
 *    data-dependent neighbour indices (from the SHOC suite).
 *  - grid: spatial-decomposition version — a deep rectangular loop nest
 *    over cell pairs and particles (the coalescing showcase).
 * A softened Lennard-Jones-like kernel (r2+1 in the denominator) keeps
 * the arithmetic well-defined on random inputs.
 */
#include "benchmarks/benchmarks.h"

namespace seer::bench {

Benchmark
makeMdKnn()
{
    Benchmark b;
    b.name = "md_knn";
    b.func = "md_knn";
    b.source = R"(
func.func @md_knn(%posx: memref<32xf64>, %posy: memref<32xf64>,
                  %posz: memref<32xf64>, %nl: memref<512xi32>,
                  %fx: memref<32xf64>, %fy: memref<32xf64>,
                  %fz: memref<32xf64>) {
  %c16 = arith.constant 16 : index
  %zerof = arith.constant 0.0 : f64
  %onef = arith.constant 1.0 : f64
  %c15 = arith.constant 1.5 : f64
  %c2 = arith.constant 2.0 : f64
  affine.for %i = 0 to 32 {
    memref.store %zerof, %fx[%i] : memref<32xf64>
    memref.store %zerof, %fy[%i] : memref<32xf64>
    memref.store %zerof, %fz[%i] : memref<32xf64>
    affine.for %j = 0 to 16 {
      %base = arith.muli %i, %c16 : index
      %nli = arith.addi %base, %j : index
      %neighbor = memref.load %nl[%nli] : memref<512xi32>
      %nidx = arith.index_cast %neighbor : i32 to index
      %ix = memref.load %posx[%i] : memref<32xf64>
      %iy = memref.load %posy[%i] : memref<32xf64>
      %iz = memref.load %posz[%i] : memref<32xf64>
      %jx = memref.load %posx[%nidx] : memref<32xf64>
      %jy = memref.load %posy[%nidx] : memref<32xf64>
      %jz = memref.load %posz[%nidx] : memref<32xf64>
      %dx = arith.subf %ix, %jx : f64
      %dy = arith.subf %iy, %jy : f64
      %dz = arith.subf %iz, %jz : f64
      %dx2 = arith.mulf %dx, %dx : f64
      %dy2 = arith.mulf %dy, %dy : f64
      %dz2 = arith.mulf %dz, %dz : f64
      %s1 = arith.addf %dx2, %dy2 : f64
      %r2 = arith.addf %s1, %dz2 : f64
      %r2s = arith.addf %r2, %onef : f64
      %r2inv = arith.divf %onef, %r2s : f64
      %r4 = arith.mulf %r2inv, %r2inv : f64
      %r6inv = arith.mulf %r4, %r2inv : f64
      %t1 = arith.mulf %c15, %r6inv : f64
      %t2 = arith.subf %t1, %c2 : f64
      %pot = arith.mulf %r6inv, %t2 : f64
      %force = arith.mulf %r2inv, %pot : f64
      %fxd = arith.mulf %dx, %force : f64
      %fyd = arith.mulf %dy, %force : f64
      %fzd = arith.mulf %dz, %force : f64
      %ofx = memref.load %fx[%i] : memref<32xf64>
      %ofy = memref.load %fy[%i] : memref<32xf64>
      %ofz = memref.load %fz[%i] : memref<32xf64>
      %nfx = arith.addf %ofx, %fxd : f64
      %nfy = arith.addf %ofy, %fyd : f64
      %nfz = arith.addf %ofz, %fzd : f64
      memref.store %nfx, %fx[%i] : memref<32xf64>
      memref.store %nfy, %fy[%i] : memref<32xf64>
      memref.store %nfz, %fz[%i] : memref<32xf64>
    }
  }
})";
    b.prepare = [](std::vector<ir::Buffer> &buffers, Rng &rng) {
        for (int axis = 0; axis < 3; ++axis) {
            for (auto &v : buffers[axis].floats)
                v = rng.nextDouble() * 8 - 4;
        }
        for (auto &v : buffers[3].ints)
            v = rng.nextRange(0, 31); // neighbour indices
    };
    b.golden = [](std::vector<ir::Buffer> &buffers) {
        auto &px = buffers[0].floats;
        auto &py = buffers[1].floats;
        auto &pz = buffers[2].floats;
        auto &nl = buffers[3].ints;
        auto &fx = buffers[4].floats;
        auto &fy = buffers[5].floats;
        auto &fz = buffers[6].floats;
        for (int i = 0; i < 32; ++i) {
            fx[i] = fy[i] = fz[i] = 0;
            for (int j = 0; j < 16; ++j) {
                int64_t n = nl[i * 16 + j];
                double dx = px[i] - px[n];
                double dy = py[i] - py[n];
                double dz = pz[i] - pz[n];
                double r2 = dx * dx + dy * dy + dz * dz + 1.0;
                double r2inv = 1.0 / r2;
                double r6inv = r2inv * r2inv * r2inv;
                double pot = r6inv * (1.5 * r6inv - 2.0);
                double force = r2inv * pot;
                fx[i] += dx * force;
                fy[i] += dy * force;
                fz[i] += dz * force;
            }
        }
    };
    return b;
}

Benchmark
makeMdGrid()
{
    Benchmark b;
    b.name = "md_grid";
    b.func = "md_grid";
    // 2x2x2 cells x 4 points; forces on every point from every point of
    // every cell (a dense rectangular variant of MachSuite's grid).
    b.source = R"(
func.func @md_grid(%posx: memref<2x2x2x4xf64>, %posy: memref<2x2x2x4xf64>,
                   %posz: memref<2x2x2x4xf64>,
                   %frcx: memref<2x2x2x4xf64>,
                   %frcy: memref<2x2x2x4xf64>,
                   %frcz: memref<2x2x2x4xf64>) {
  %onef = arith.constant 1.0 : f64
  affine.for %bx = 0 to 2 {
   affine.for %by = 0 to 2 {
    affine.for %bz = 0 to 2 {
     affine.for %nx = 0 to 2 {
      affine.for %ny = 0 to 2 {
       affine.for %nz = 0 to 2 {
        affine.for %p = 0 to 4 {
         affine.for %q = 0 to 4 {
          %ix = memref.load %posx[%bx, %by, %bz, %p] : memref<2x2x2x4xf64>
          %iy = memref.load %posy[%bx, %by, %bz, %p] : memref<2x2x2x4xf64>
          %iz = memref.load %posz[%bx, %by, %bz, %p] : memref<2x2x2x4xf64>
          %jx = memref.load %posx[%nx, %ny, %nz, %q] : memref<2x2x2x4xf64>
          %jy = memref.load %posy[%nx, %ny, %nz, %q] : memref<2x2x2x4xf64>
          %jz = memref.load %posz[%nx, %ny, %nz, %q] : memref<2x2x2x4xf64>
          %dx = arith.subf %ix, %jx : f64
          %dy = arith.subf %iy, %jy : f64
          %dz = arith.subf %iz, %jz : f64
          %dx2 = arith.mulf %dx, %dx : f64
          %dy2 = arith.mulf %dy, %dy : f64
          %dz2 = arith.mulf %dz, %dz : f64
          %s1 = arith.addf %dx2, %dy2 : f64
          %r2 = arith.addf %s1, %dz2 : f64
          %r2s = arith.addf %r2, %onef : f64
          %inv = arith.divf %onef, %r2s : f64
          %f = arith.mulf %inv, %inv : f64
          %fxd = arith.mulf %dx, %f : f64
          %fyd = arith.mulf %dy, %f : f64
          %fzd = arith.mulf %dz, %f : f64
          %ofx = memref.load %frcx[%bx, %by, %bz, %p] : memref<2x2x2x4xf64>
          %ofy = memref.load %frcy[%bx, %by, %bz, %p] : memref<2x2x2x4xf64>
          %ofz = memref.load %frcz[%bx, %by, %bz, %p] : memref<2x2x2x4xf64>
          %nfx = arith.addf %ofx, %fxd : f64
          %nfy = arith.addf %ofy, %fyd : f64
          %nfz = arith.addf %ofz, %fzd : f64
          memref.store %nfx, %frcx[%bx, %by, %bz, %p] : memref<2x2x2x4xf64>
          memref.store %nfy, %frcy[%bx, %by, %bz, %p] : memref<2x2x2x4xf64>
          memref.store %nfz, %frcz[%bx, %by, %bz, %p] : memref<2x2x2x4xf64>
         }
        }
       }
      }
     }
    }
   }
  }
})";
    b.prepare = [](std::vector<ir::Buffer> &buffers, Rng &rng) {
        for (int axis = 0; axis < 3; ++axis) {
            for (auto &v : buffers[axis].floats)
                v = rng.nextDouble() * 6 - 3;
        }
        // Forces start zeroed.
    };
    b.golden = [](std::vector<ir::Buffer> &buffers) {
        auto &px = buffers[0].floats;
        auto &py = buffers[1].floats;
        auto &pz = buffers[2].floats;
        auto &fx = buffers[3].floats;
        auto &fy = buffers[4].floats;
        auto &fz = buffers[5].floats;
        auto at = [](int bx, int by, int bz, int p) {
            return ((bx * 2 + by) * 2 + bz) * 4 + p;
        };
        for (int bx = 0; bx < 2; ++bx)
        for (int by = 0; by < 2; ++by)
        for (int bz = 0; bz < 2; ++bz)
        for (int nx = 0; nx < 2; ++nx)
        for (int ny = 0; ny < 2; ++ny)
        for (int nz = 0; nz < 2; ++nz)
        for (int p = 0; p < 4; ++p)
        for (int q = 0; q < 4; ++q) {
            int self = at(bx, by, bz, p);
            int other = at(nx, ny, nz, q);
            double dx = px[self] - px[other];
            double dy = py[self] - py[other];
            double dz = pz[self] - pz[other];
            double inv = 1.0 / (dx * dx + dy * dy + dz * dz + 1.0);
            double f = inv * inv;
            fx[self] += dx * f;
            fy[self] += dy * f;
            fz[self] += dz * f;
        }
    };
    return b;
}

} // namespace seer::bench
