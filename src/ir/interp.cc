#include "ir/interp.h"

#include <cmath>
#include <new>
#include <unordered_map>

#include "ir/ops.h"
#include "ir/printer.h"
#include "support/error.h"
#include "support/fault_inject.h"

namespace seer::ir {

Buffer::Buffer(Type memref_type) : type(memref_type)
{
    SEER_ASSERT(memref_type.isMemRef(), "Buffer needs a memref type");
    if (faultFire(FaultPoint::InterpAlloc))
        throw std::bad_alloc();
    int64_t n = memref_type.numElements();
    if (isFloat())
        floats.assign(static_cast<size_t>(n), 0.0);
    else
        ints.assign(static_cast<size_t>(n), 0);
}

int64_t
Buffer::size() const
{
    return type.numElements();
}

int64_t
wrapToWidth(int64_t value, unsigned width)
{
    if (width >= 64)
        return value;
    uint64_t shifted = static_cast<uint64_t>(value) << (64 - width);
    return static_cast<int64_t>(shifted) >> (64 - width);
}

const char *
trapKindName(TrapKind kind)
{
    switch (kind) {
    case TrapKind::Deadline: return "deadline";
    case TrapKind::StepLimit: return "step_limit";
    case TrapKind::OutOfBounds: return "out_of_bounds";
    case TrapKind::DivideByZero: return "divide_by_zero";
    case TrapKind::BadCall: return "bad_call";
    case TrapKind::Unsupported: return "unsupported";
    }
    return "unknown";
}

namespace {

/** Raise a typed interpreter trap (fatal() with a TrapKind). */
[[noreturn]] void
trap(TrapKind kind, const std::string &msg)
{
    throw InterpError(kind, msg);
}

} // namespace

namespace {

class Interp
{
  public:
    Interp(const Module &module, const InterpOptions &options)
        : module_(module), options_(options)
    {}

    InterpResult
    run(const std::string &func_name, std::vector<RtValue> args)
    {
        Operation *func = module_.lookupFunc(func_name);
        if (!func)
            trap(TrapKind::BadCall,
                 "interpret: no function named '" + func_name + "'");
        InterpResult out;
        out.results = callFunc(*func, std::move(args));
        out.steps = steps_;
        out.profile = std::move(profile_);
        return out;
    }

  private:
    using Env = std::unordered_map<ValueImpl *, RtValue>;

    /** Outcome of executing a block: the terminator and its operands. */
    struct BlockExit
    {
        const Operation *terminator = nullptr;
        std::vector<RtValue> operands;
    };

    std::vector<RtValue>
    callFunc(Operation &func, std::vector<RtValue> args)
    {
        Block &body = func.region(0).block();
        if (args.size() != body.numArgs())
            trap(TrapKind::BadCall,
                 MsgBuilder()
                     << "interpret: function expects " << body.numArgs()
                     << " args, got " << args.size());
        Env env;
        for (size_t i = 0; i < args.size(); ++i)
            env[body.arg(i).impl()] = args[i];
        BlockExit exit = runBlock(body, env);
        return exit.operands;
    }

    void
    tick(const Operation &op)
    {
        if (++steps_ > options_.max_steps) {
            trap(TrapKind::StepLimit,
                 MsgBuilder() << "interpret: step limit exceeded at op "
                              << op.nameStr());
        }
        // Cooperative cancellation: poll the context cheaply (clock
        // reads amortized over 4096 steps) so one multi-million-step
        // simulation cannot blow far past the driver's --deadline,
        // memory budget, or a SIGINT.
        if ((steps_ & 0xfff) == 0 && options_.exec.canceled()) {
            trap(TrapKind::Deadline,
                 "interpret: deadline exceeded (cooperative cancel)");
        }
        if (options_.profile)
            ++profile_.ops[&op];
    }

    int64_t
    intOf(const RtValue &v) const
    {
        return std::get<int64_t>(v);
    }

    double
    floatOf(const RtValue &v) const
    {
        return std::get<double>(v);
    }

    RtValue
    get(Env &env, Value v)
    {
        auto it = env.find(v.impl());
        SEER_ASSERT(it != env.end(), "interpret: unbound SSA value");
        return it->second;
    }

    BlockExit
    runBlock(Block &block, Env &env)
    {
        if (options_.profile)
            ++profile_.blocks[&block];
        for (auto &op_ptr : block.ops()) {
            Operation &op = *op_ptr;
            if (isTerminator(op)) {
                BlockExit exit;
                exit.terminator = &op;
                for (Value operand : op.operands())
                    exit.operands.push_back(get(env, operand));
                return exit;
            }
            execOp(op, env);
        }
        panic("interpret: block without terminator");
    }

    void
    execOp(Operation &op, Env &env)
    {
        tick(op);
        const std::string &name = op.nameStr();
        if (name == opnames::kAffineFor) {
            execFor(op, env);
        } else if (name == opnames::kIf) {
            execIf(op, env);
        } else if (name == opnames::kWhile) {
            execWhile(op, env);
        } else if (name == opnames::kCall) {
            Operation *callee = module_.lookupFunc(op.strAttr("callee"));
            if (!callee)
                trap(TrapKind::BadCall,
                     "interpret: unknown callee " + op.strAttr("callee"));
            std::vector<RtValue> args;
            for (Value operand : op.operands())
                args.push_back(get(env, operand));
            std::vector<RtValue> results =
                callFunc(*callee, std::move(args));
            for (size_t i = 0; i < op.numResults(); ++i)
                env[op.result(i).impl()] = results[i];
        } else {
            execSimple(op, env);
        }
    }

    int64_t
    evalBound(const AffineBound &bound, Env &env)
    {
        int64_t value = bound.constant;
        for (const auto &[v, coeff] : bound.terms)
            value += coeff * intOf(get(env, v));
        return value;
    }

    void
    execFor(Operation &op, Env &env)
    {
        int64_t lb = evalBound(getLowerBound(op), env);
        int64_t ub = evalBound(getUpperBound(op), env);
        int64_t step = getStep(op);
        Block &body = op.region(0).block();
        uint64_t iters = 0;
        for (int64_t iv = lb; iv < ub; iv += step) {
            env[body.arg(0).impl()] = iv;
            runBlock(body, env);
            ++iters;
        }
        if (options_.profile) {
            auto &entry = profile_.loops[&op];
            entry.first += 1;
            entry.second += iters;
        }
    }

    void
    execIf(Operation &op, Env &env)
    {
        bool taken = intOf(get(env, op.operand(0))) != 0;
        Block &branch = op.region(taken ? 0 : 1).block();
        BlockExit exit = runBlock(branch, env);
        for (size_t i = 0; i < op.numResults(); ++i)
            env[op.result(i).impl()] = exit.operands[i];
    }

    void
    execWhile(Operation &op, Env &env)
    {
        Block &cond_block = op.region(0).block();
        Block &body = op.region(1).block();
        uint64_t iters = 0;
        while (true) {
            BlockExit exit = runBlock(cond_block, env);
            SEER_ASSERT(exit.terminator &&
                            isa(*exit.terminator, opnames::kCondition),
                        "scf.while condition region exit");
            if (intOf(exit.operands[0]) == 0)
                break;
            runBlock(body, env);
            if (++iters > options_.max_steps)
                trap(TrapKind::StepLimit,
                     "interpret: scf.while iteration limit exceeded");
        }
        if (options_.profile) {
            auto &entry = profile_.loops[&op];
            entry.first += 1;
            entry.second += iters;
        }
    }

    int64_t
    index(Operation &op, Env &env, size_t mem_operand)
    {
        Buffer *buffer = std::get<Buffer *>(get(env, op.operand(mem_operand)));
        const auto &shape = buffer->type.shape();
        int64_t flat = 0;
        for (size_t d = 0; d < shape.size(); ++d) {
            int64_t idx =
                intOf(get(env, op.operand(mem_operand + 1 + d)));
            if (idx < 0 || idx >= shape[d]) {
                trap(TrapKind::OutOfBounds,
                     MsgBuilder()
                         << "interpret: out-of-bounds access: index "
                         << idx << " not in [0, " << shape[d]
                         << ") at op " << toString(op));
            }
            flat = flat * shape[d] + idx;
        }
        return flat;
    }

    void
    execSimple(Operation &op, Env &env)
    {
        const std::string &name = op.nameStr();
        auto set = [&](RtValue v) { env[op.result(0).impl()] = v; };

        if (name == opnames::kConstant) {
            const Attribute &value = op.attr("value");
            if (value.isInt())
                set(value.asInt());
            else
                set(value.asFloat());
            return;
        }
        if (name == opnames::kAlloc) {
            buffers_.push_back(
                std::make_unique<Buffer>(op.result().type()));
            set(buffers_.back().get());
            return;
        }
        if (name == opnames::kLoad) {
            Buffer *buffer = std::get<Buffer *>(get(env, op.operand(0)));
            int64_t flat = index(op, env, 0);
            if (buffer->isFloat())
                set(buffer->floats[static_cast<size_t>(flat)]);
            else
                set(buffer->ints[static_cast<size_t>(flat)]);
            return;
        }
        if (name == opnames::kStore) {
            Buffer *buffer = std::get<Buffer *>(get(env, op.operand(1)));
            int64_t flat = index(op, env, 1);
            RtValue value = get(env, op.operand(0));
            if (buffer->isFloat())
                buffer->floats[static_cast<size_t>(flat)] =
                    floatOf(value);
            else
                buffer->ints[static_cast<size_t>(flat)] = intOf(value);
            return;
        }
        if (name == opnames::kSelect) {
            bool taken = intOf(get(env, op.operand(0))) != 0;
            set(get(env, op.operand(taken ? 1 : 2)));
            return;
        }
        if (name == opnames::kCmpI) {
            Type t = op.operand(0).type();
            bool r = evalCmpI(parseCmpPred(op.strAttr("predicate")),
                              intOf(get(env, op.operand(0))),
                              intOf(get(env, op.operand(1))),
                              t.bitwidth());
            set(static_cast<int64_t>(r));
            return;
        }
        if (name == opnames::kCmpF) {
            double lhs = floatOf(get(env, op.operand(0)));
            double rhs = floatOf(get(env, op.operand(1)));
            const std::string &pred = op.strAttr("predicate");
            bool r = false;
            if (pred == "oeq") r = lhs == rhs;
            else if (pred == "one") r = lhs != rhs;
            else if (pred == "olt") r = lhs < rhs;
            else if (pred == "ole") r = lhs <= rhs;
            else if (pred == "ogt") r = lhs > rhs;
            else if (pred == "oge") r = lhs >= rhs;
            else trap(TrapKind::Unsupported,
                      "interpret: unknown cmpf predicate " + pred);
            set(static_cast<int64_t>(r));
            return;
        }

        // Unary / cast ops.
        if (name == opnames::kNegF) {
            set(-floatOf(get(env, op.operand(0))));
            return;
        }
        if (name == opnames::kExtSI || name == opnames::kIndexCast) {
            set(intOf(get(env, op.operand(0)))); // already sign-extended
            return;
        }
        if (name == opnames::kExtUI) {
            unsigned w = op.operand(0).type().bitwidth();
            uint64_t mask = w >= 64 ? ~0ULL : ((1ULL << w) - 1);
            set(static_cast<int64_t>(
                static_cast<uint64_t>(intOf(get(env, op.operand(0)))) &
                mask));
            return;
        }
        if (name == opnames::kTruncI) {
            set(wrapToWidth(intOf(get(env, op.operand(0))),
                            op.result().type().bitwidth()));
            return;
        }
        if (name == opnames::kSIToFP) {
            set(static_cast<double>(intOf(get(env, op.operand(0)))));
            return;
        }
        if (name == opnames::kFPToSI) {
            set(wrapToWidth(
                static_cast<int64_t>(floatOf(get(env, op.operand(0)))),
                op.result().type().bitwidth()));
            return;
        }

        // Binary float ops.
        if (name == opnames::kAddF || name == opnames::kSubF ||
            name == opnames::kMulF || name == opnames::kDivF) {
            double lhs = floatOf(get(env, op.operand(0)));
            double rhs = floatOf(get(env, op.operand(1)));
            double r = 0;
            if (name == opnames::kAddF) r = lhs + rhs;
            else if (name == opnames::kSubF) r = lhs - rhs;
            else if (name == opnames::kMulF) r = lhs * rhs;
            else r = rhs == 0 ? 0 : lhs / rhs;
            set(r);
            return;
        }

        // Binary integer ops.
        int64_t lhs = intOf(get(env, op.operand(0)));
        int64_t rhs = intOf(get(env, op.operand(1)));
        unsigned w = op.result().type().bitwidth();
        uint64_t umask = w >= 64 ? ~0ULL : ((1ULL << w) - 1);
        uint64_t ul = static_cast<uint64_t>(lhs) & umask;
        uint64_t ur = static_cast<uint64_t>(rhs) & umask;
        int64_t r = 0;
        if (name == opnames::kAddI) {
            r = static_cast<int64_t>(static_cast<uint64_t>(lhs) +
                                     static_cast<uint64_t>(rhs));
        } else if (name == opnames::kSubI) {
            r = static_cast<int64_t>(static_cast<uint64_t>(lhs) -
                                     static_cast<uint64_t>(rhs));
        } else if (name == opnames::kMulI) {
            r = static_cast<int64_t>(static_cast<uint64_t>(lhs) *
                                     static_cast<uint64_t>(rhs));
        } else if (name == opnames::kDivSI) {
            if (rhs == 0)
                trap(TrapKind::DivideByZero, "interpret: division by zero");
            r = lhs / rhs;
        } else if (name == opnames::kDivUI) {
            if (ur == 0)
                trap(TrapKind::DivideByZero, "interpret: division by zero");
            r = static_cast<int64_t>(ul / ur);
        } else if (name == opnames::kRemSI) {
            if (rhs == 0)
                trap(TrapKind::DivideByZero, "interpret: remainder by zero");
            r = lhs % rhs;
        } else if (name == opnames::kRemUI) {
            if (ur == 0)
                trap(TrapKind::DivideByZero, "interpret: remainder by zero");
            r = static_cast<int64_t>(ul % ur);
        } else if (name == opnames::kAndI) {
            r = lhs & rhs;
        } else if (name == opnames::kOrI) {
            r = lhs | rhs;
        } else if (name == opnames::kXOrI) {
            r = lhs ^ rhs;
        } else if (name == opnames::kShLI) {
            r = rhs >= 64 || rhs < 0
                    ? 0
                    : static_cast<int64_t>(static_cast<uint64_t>(lhs)
                                           << rhs);
        } else if (name == opnames::kShRSI) {
            r = rhs >= 64 || rhs < 0 ? (lhs < 0 ? -1 : 0) : (lhs >> rhs);
        } else if (name == opnames::kShRUI) {
            r = rhs >= 64 || rhs < 0 ? 0
                                     : static_cast<int64_t>(ul >> rhs);
        } else if (name == opnames::kMinSI) {
            r = std::min(lhs, rhs);
        } else if (name == opnames::kMaxSI) {
            r = std::max(lhs, rhs);
        } else {
            trap(TrapKind::Unsupported, "interpret: unimplemented op " + name);
        }
        set(wrapToWidth(r, w));
    }

    const Module &module_;
    const InterpOptions &options_;
    uint64_t steps_ = 0;
    Profile profile_;
    std::vector<std::unique_ptr<Buffer>> buffers_;
};

} // namespace

InterpResult
interpret(const Module &module, const std::string &func_name,
          std::vector<RtValue> args, const InterpOptions &options)
{
    // The interpreter mutates nothing structural, but needs non-const
    // Block access internally; const_cast is confined here.
    return Interp(const_cast<Module &>(module), options)
        .run(func_name, std::move(args));
}

} // namespace seer::ir
