#include "ir/attribute.h"

#include <sstream>

namespace seer::ir {

std::string
Attribute::str() const
{
    std::ostringstream os;
    if (isNull()) {
        os << "null";
    } else if (isInt()) {
        os << asInt();
    } else if (isFloat()) {
        os << asFloat();
        // Distinguish a whole-number float from an int literal.
        if (os.str().find_first_of(".e") == std::string::npos)
            os << ".0";
    } else if (isString()) {
        os << '"' << asString() << '"';
    } else if (isIntArray()) {
        os << "[";
        const auto &xs = asIntArray();
        for (size_t i = 0; i < xs.size(); ++i)
            os << (i ? ", " : "") << xs[i];
        os << "]";
    } else if (isType()) {
        os << asType().str();
    }
    return os.str();
}

} // namespace seer::ir
