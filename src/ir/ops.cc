#include "ir/ops.h"

#include <unordered_map>

#include "support/error.h"

namespace seer::ir {

namespace {

struct Registry
{
    std::unordered_map<Symbol, OpInfo> table;

    void
    add(std::string_view name, OpInfo info)
    {
        table.emplace(Symbol(name), info);
    }

    Registry()
    {
        using namespace opnames;
        OpInfo binop{2, 1, 0, false, true, false, false, false};
        OpInfo binop_comm = binop;
        binop_comm.isCommutative = true;
        OpInfo unop{1, 1, 0, false, true, false, false, false};

        add(kConstant, OpInfo{0, 1, 0, false, true, false, false, false});
        add(kAddI, binop_comm);
        add(kSubI, binop);
        add(kMulI, binop_comm);
        add(kDivSI, binop);
        add(kDivUI, binop);
        add(kRemSI, binop);
        add(kRemUI, binop);
        add(kAndI, binop_comm);
        add(kOrI, binop_comm);
        add(kXOrI, binop_comm);
        add(kShLI, binop);
        add(kShRSI, binop);
        add(kShRUI, binop);
        add(kCmpI, binop);
        add(kSelect, OpInfo{3, 1, 0, false, true, false, false, false});
        add(kExtSI, unop);
        add(kExtUI, unop);
        add(kTruncI, unop);
        add(kIndexCast, unop);
        add(kMinSI, binop_comm);
        add(kMaxSI, binop_comm);
        add(kAddF, binop_comm);
        add(kSubF, binop);
        add(kMulF, binop_comm);
        add(kDivF, binop);
        add(kNegF, unop);
        add(kCmpF, binop);
        add(kSIToFP, unop);
        add(kFPToSI, unop);

        add(kAlloc, OpInfo{0, 1, 0, false, false, false, false, true});
        add(kLoad, OpInfo{-1, 1, 0, false, false, false, false, true});
        add(kStore, OpInfo{-1, 0, 0, false, false, false, false, true});

        add(kAffineFor, OpInfo{-1, 0, 1, false, false, false, true, false});
        add(kAffineYield, OpInfo{0, 0, 0, true, false, false, false, false});

        add(kIf, OpInfo{1, -1, 2, false, false, false, true, false});
        add(kWhile, OpInfo{0, 0, 2, false, false, false, true, false});
        add(kCondition, OpInfo{1, 0, 0, true, false, false, false, false});
        add(kYield, OpInfo{-1, 0, 0, true, false, false, false, false});

        add(kFunc, OpInfo{0, 0, 1, false, false, false, false, false});
        add(kReturn, OpInfo{-1, 0, 0, true, false, false, false, false});
        add(kCall, OpInfo{-1, -1, 0, false, false, false, false, false});
    }
};

Registry &
registry()
{
    static Registry instance;
    return instance;
}

} // namespace

const OpInfo &
opInfo(Symbol name)
{
    auto it = registry().table.find(name);
    if (it == registry().table.end())
        fatal(MsgBuilder() << "unknown operation '" << name.str() << "'");
    return it->second;
}

bool
isRegisteredOp(Symbol name)
{
    return registry().table.count(name) > 0;
}

// --- Constants --------------------------------------------------------

Operation::Ptr
makeIntConstant(Type type, int64_t value)
{
    SEER_ASSERT(type.isInteger() || type.isIndex(),
                "makeIntConstant with type " << type.str());
    auto op = std::make_unique<Operation>(Symbol(opnames::kConstant));
    op->setAttr("value", Attribute(value));
    op->addResult(type);
    return op;
}

Operation::Ptr
makeFloatConstant(double value)
{
    auto op = std::make_unique<Operation>(Symbol(opnames::kConstant));
    op->setAttr("value", Attribute(value));
    op->addResult(Type::f64());
    return op;
}

std::optional<int64_t>
getConstantInt(Value v)
{
    Operation *def = v.definingOp();
    if (!def || !isa(*def, opnames::kConstant))
        return std::nullopt;
    if (!def->attr("value").isInt())
        return std::nullopt;
    return def->intAttr("value");
}

// --- Comparison predicates ------------------------------------------------

CmpPred
parseCmpPred(const std::string &text)
{
    static const std::unordered_map<std::string, CmpPred> map = {
        {"eq", CmpPred::EQ},   {"ne", CmpPred::NE},
        {"slt", CmpPred::SLT}, {"sle", CmpPred::SLE},
        {"sgt", CmpPred::SGT}, {"sge", CmpPred::SGE},
        {"ult", CmpPred::ULT}, {"ule", CmpPred::ULE},
        {"ugt", CmpPred::UGT}, {"uge", CmpPred::UGE},
    };
    auto it = map.find(text);
    if (it == map.end())
        fatal(MsgBuilder() << "unknown cmp predicate '" << text << "'");
    return it->second;
}

std::string
cmpPredName(CmpPred pred)
{
    switch (pred) {
      case CmpPred::EQ: return "eq";
      case CmpPred::NE: return "ne";
      case CmpPred::SLT: return "slt";
      case CmpPred::SLE: return "sle";
      case CmpPred::SGT: return "sgt";
      case CmpPred::SGE: return "sge";
      case CmpPred::ULT: return "ult";
      case CmpPred::ULE: return "ule";
      case CmpPred::UGT: return "ugt";
      case CmpPred::UGE: return "uge";
    }
    return "?";
}

bool
evalCmpI(CmpPred pred, int64_t lhs, int64_t rhs, unsigned width)
{
    uint64_t mask =
        width >= 64 ? ~0ULL : ((1ULL << width) - 1);
    uint64_t ul = static_cast<uint64_t>(lhs) & mask;
    uint64_t ur = static_cast<uint64_t>(rhs) & mask;
    switch (pred) {
      case CmpPred::EQ: return lhs == rhs;
      case CmpPred::NE: return lhs != rhs;
      case CmpPred::SLT: return lhs < rhs;
      case CmpPred::SLE: return lhs <= rhs;
      case CmpPred::SGT: return lhs > rhs;
      case CmpPred::SGE: return lhs >= rhs;
      case CmpPred::ULT: return ul < ur;
      case CmpPred::ULE: return ul <= ur;
      case CmpPred::UGT: return ul > ur;
      case CmpPred::UGE: return ul >= ur;
    }
    return false;
}

// --- affine.for -----------------------------------------------------------

namespace {

/** Encode bound coefficients; operand slots are appended by the caller. */
std::vector<int64_t>
boundCoeffs(const AffineBound &bound)
{
    std::vector<int64_t> coeffs;
    coeffs.reserve(bound.terms.size());
    for (const auto &[value, coeff] : bound.terms)
        coeffs.push_back(coeff);
    return coeffs;
}

AffineBound
decodeBound(const Operation &for_op, const std::string &prefix,
            size_t operand_offset)
{
    AffineBound bound;
    bound.constant = for_op.intAttr(prefix + "_const");
    const auto &coeffs = for_op.attr(prefix + "_coeffs").asIntArray();
    for (size_t i = 0; i < coeffs.size(); ++i)
        bound.terms.emplace_back(for_op.operand(operand_offset + i),
                                 coeffs[i]);
    return bound;
}

} // namespace

Operation::Ptr
makeAffineFor(const AffineBound &lb, const AffineBound &ub, int64_t step,
              std::string iv_name)
{
    auto op = std::make_unique<Operation>(Symbol(opnames::kAffineFor));
    Block &body = op->addRegion().block();
    body.addArg(Type::index(), std::move(iv_name));
    setLoopBounds(*op, lb, ub, step);
    return op;
}

void
setLoopBounds(Operation &for_op, const AffineBound &lb,
              const AffineBound &ub, int64_t step)
{
    SEER_ASSERT(isa(for_op, opnames::kAffineFor), "not an affine.for");
    SEER_ASSERT(step > 0, "affine.for step must be positive");
    std::vector<Value> operands;
    for (const auto &[value, coeff] : lb.terms)
        operands.push_back(value);
    for (const auto &[value, coeff] : ub.terms)
        operands.push_back(value);
    for_op.setOperands(std::move(operands));
    for_op.setAttr("lb_const", Attribute(lb.constant));
    for_op.setAttr("lb_coeffs", Attribute(boundCoeffs(lb)));
    for_op.setAttr("ub_const", Attribute(ub.constant));
    for_op.setAttr("ub_coeffs", Attribute(boundCoeffs(ub)));
    for_op.setAttr("step", Attribute(step));
}

AffineBound
getLowerBound(const Operation &for_op)
{
    return decodeBound(for_op, "lb", 0);
}

AffineBound
getUpperBound(const Operation &for_op)
{
    size_t lb_terms = for_op.attr("lb_coeffs").asIntArray().size();
    return decodeBound(for_op, "ub", lb_terms);
}

int64_t
getStep(const Operation &for_op)
{
    return for_op.intAttr("step");
}

Value
inductionVar(const Operation &for_op)
{
    return for_op.region(0).block().arg(0);
}

std::optional<int64_t>
constantTripCount(const Operation &for_op)
{
    AffineBound lb = getLowerBound(for_op);
    AffineBound ub = getUpperBound(for_op);
    if (!lb.isConstant() || !ub.isConstant())
        return std::nullopt;
    int64_t step = getStep(for_op);
    int64_t span = ub.constant - lb.constant;
    if (span <= 0)
        return 0;
    return (span + step - 1) / step;
}

bool
isTerminator(const Operation &op)
{
    return opInfo(op.name()).isTerminator;
}

bool
isPureDatapathOp(const Operation &op)
{
    const OpInfo &info = opInfo(op.name());
    return info.isPure && op.numRegions() == 0 && op.numResults() == 1;
}

} // namespace seer::ir
