#include "ir/op.h"

#include "support/error.h"

namespace seer::ir {

// --- Region -------------------------------------------------------------

Block &
Region::block()
{
    if (blocks_.empty())
        addBlock();
    return *blocks_.front();
}

const Block &
Region::block() const
{
    SEER_ASSERT(!blocks_.empty(), "region has no block");
    return *blocks_.front();
}

Block &
Region::addBlock()
{
    blocks_.push_back(std::make_unique<Block>(this));
    return *blocks_.back();
}

// --- Operation ------------------------------------------------------------

std::string
Operation::dialect() const
{
    const std::string &n = nameStr();
    auto dot = n.find('.');
    return dot == std::string::npos ? n : n.substr(0, dot);
}

std::vector<Value>
Operation::results() const
{
    std::vector<Value> out;
    out.reserve(results_.size());
    for (const auto &r : results_)
        out.push_back(Value(r.get()));
    return out;
}

Value
Operation::addResult(Type type)
{
    results_.push_back(std::make_unique<ValueImpl>(
        type, this, nullptr, static_cast<unsigned>(results_.size())));
    return Value(results_.back().get());
}

const Attribute &
Operation::attr(const std::string &key) const
{
    auto it = attrs_.find(key);
    SEER_ASSERT(it != attrs_.end(),
                "op " << nameStr() << " missing attribute '" << key << "'");
    return it->second;
}

Region &
Operation::addRegion()
{
    regions_.push_back(std::make_unique<Region>(this));
    return *regions_.back();
}

Operation *
Operation::parentOp() const
{
    if (!parent_ || !parent_->parentRegion())
        return nullptr;
    return parent_->parentRegion()->parentOp();
}

bool
Operation::isInside(const Operation *ancestor) const
{
    for (const Operation *op = parentOp(); op; op = op->parentOp()) {
        if (op == ancestor)
            return true;
    }
    return false;
}

// --- Block ----------------------------------------------------------------

Value
Block::addArg(Type type, std::string name_hint)
{
    args_.push_back(std::make_unique<ValueImpl>(
        type, nullptr, this, static_cast<unsigned>(args_.size())));
    args_.back()->setNameHint(std::move(name_hint));
    return Value(args_.back().get());
}

Operation *
Block::push_back(Operation::Ptr op)
{
    op->setParentBlock(this);
    ops_.push_back(std::move(op));
    return ops_.back().get();
}

Operation *
Block::insert(iterator pos, Operation::Ptr op)
{
    op->setParentBlock(this);
    auto it = ops_.insert(pos, std::move(op));
    return it->get();
}

Block::iterator
Block::erase(iterator pos)
{
    return ops_.erase(pos);
}

Operation::Ptr
Block::take(iterator pos)
{
    Operation::Ptr op = std::move(*pos);
    ops_.erase(pos);
    op->setParentBlock(nullptr);
    return op;
}

Block::iterator
Block::find(Operation *op)
{
    for (auto it = ops_.begin(); it != ops_.end(); ++it) {
        if (it->get() == op)
            return it;
    }
    return ops_.end();
}

// --- Module -----------------------------------------------------------

Operation *
Module::push_back(Operation::Ptr op)
{
    ops_.push_back(std::move(op));
    return ops_.back().get();
}

Operation *
Module::lookupFunc(const std::string &name) const
{
    for (const auto &op : ops_) {
        if (op->nameStr() == "func.func" && op->hasAttr("sym_name") &&
            op->strAttr("sym_name") == name) {
            return op.get();
        }
    }
    return nullptr;
}

Operation *
Module::firstFunc() const
{
    for (const auto &op : ops_) {
        if (op->nameStr() == "func.func")
            return op.get();
    }
    return nullptr;
}

// --- Cloning ------------------------------------------------------------

namespace {

void
cloneBlockInto(const Block &src, Block &dst,
               std::map<ValueImpl *, Value> &mapping)
{
    for (size_t i = 0; i < src.numArgs(); ++i) {
        Value old_arg = src.arg(i);
        Value new_arg =
            dst.addArg(old_arg.type(), old_arg.impl()->nameHint());
        mapping[old_arg.impl()] = new_arg;
    }
    for (const auto &op : src.ops())
        dst.push_back(cloneOp(*op, mapping));
}

} // namespace

Operation::Ptr
cloneOp(const Operation &op, std::map<ValueImpl *, Value> &mapping)
{
    auto clone = std::make_unique<Operation>(op.name());
    for (Value operand : op.operands()) {
        auto it = mapping.find(operand.impl());
        clone->addOperand(it != mapping.end() ? it->second : operand);
    }
    for (size_t i = 0; i < op.numResults(); ++i) {
        Value old_res = op.result(i);
        Value new_res = clone->addResult(old_res.type());
        new_res.impl()->setNameHint(old_res.impl()->nameHint());
        mapping[old_res.impl()] = new_res;
    }
    for (const auto &[key, value] : op.attrs())
        clone->setAttr(key, value);
    for (size_t i = 0; i < op.numRegions(); ++i) {
        Region &new_region = clone->addRegion();
        if (!op.region(i).empty())
            cloneBlockInto(op.region(i).block(), new_region.block(),
                           mapping);
    }
    return clone;
}

Module
cloneModule(const Module &module)
{
    Module out;
    std::map<ValueImpl *, Value> mapping;
    for (const auto &op : module.ops())
        out.push_back(cloneOp(*op, mapping));
    return out;
}

// --- Replace-uses and walking -------------------------------------------

void
replaceAllUsesIn(Operation &root, Value from, Value to)
{
    walk(root, [&](Operation &op) {
        for (size_t i = 0; i < op.numOperands(); ++i) {
            if (op.operand(i) == from)
                op.setOperand(i, to);
        }
    });
}

void
replaceAllUsesIn(Block &root, Value from, Value to)
{
    walk(root, [&](Operation &op) {
        for (size_t i = 0; i < op.numOperands(); ++i) {
            if (op.operand(i) == from)
                op.setOperand(i, to);
        }
    });
}

void
walk(Operation &root, const std::function<void(Operation &)> &fn)
{
    fn(root);
    for (size_t i = 0; i < root.numRegions(); ++i) {
        if (!root.region(i).empty())
            walk(root.region(i).block(), fn);
    }
}

void
walk(Block &root, const std::function<void(Operation &)> &fn)
{
    // Snapshot pointers so fn may erase/insert other ops; callers that
    // delete ops must only delete ops they have not yet visited or the
    // currently visited one via returned iterators.
    for (auto it = root.ops().begin(); it != root.ops().end();) {
        Operation *op = it->get();
        ++it;
        walk(*op, fn);
    }
}

void
walk(const Module &module, const std::function<void(Operation &)> &fn)
{
    for (const auto &op : module.ops())
        walk(*op, fn);
}

void
walkPruned(Operation &root, const std::function<bool(Operation &)> &fn)
{
    if (!fn(root))
        return;
    for (size_t i = 0; i < root.numRegions(); ++i) {
        if (root.region(i).empty())
            continue;
        for (auto it = root.region(i).block().ops().begin();
             it != root.region(i).block().ops().end();) {
            Operation *op = it->get();
            ++it;
            walkPruned(*op, fn);
        }
    }
}

size_t
countOps(const Module &module)
{
    size_t n = 0;
    walk(module, [&](Operation &) { ++n; });
    return n;
}

} // namespace seer::ir
