#include "ir/verifier.h"

#include <set>
#include <sstream>

#include "ir/ops.h"
#include "ir/printer.h"
#include "support/error.h"

namespace seer::ir {

namespace {

class Verifier
{
  public:
    std::string
    run(const Module &module)
    {
        try {
            for (const auto &op : module.ops()) {
                if (!isa(*op, opnames::kFunc))
                    fail(*op, "only func.func allowed at top level");
                visible_.emplace_back();
                verifyOp(*op);
                visible_.pop_back();
            }
        } catch (const FatalError &err) {
            return err.what();
        }
        return "";
    }

  private:
    [[noreturn]] void
    fail(const Operation &op, const std::string &msg)
    {
        std::ostringstream os;
        os << "verification failed: " << msg << "\n  at op: ";
        print(op, os);
        fatal(os.str());
    }

    bool
    isVisible(Value v) const
    {
        for (const auto &scope : visible_) {
            if (scope.count(v.impl()))
                return true;
        }
        return false;
    }

    void
    verifyOp(const Operation &op)
    {
        if (!isRegisteredOp(op.name()))
            fail(op, "unregistered op '" + op.nameStr() + "'");
        const OpInfo &info = opInfo(op.name());

        if (info.numOperands >= 0 &&
            op.numOperands() != static_cast<size_t>(info.numOperands)) {
            fail(op, MsgBuilder() << "expected " << info.numOperands
                                  << " operands, got "
                                  << op.numOperands());
        }
        if (info.numResults >= 0 &&
            op.numResults() != static_cast<size_t>(info.numResults)) {
            fail(op, MsgBuilder() << "expected " << info.numResults
                                  << " results, got " << op.numResults());
        }
        if (op.numRegions() != static_cast<size_t>(info.numRegions))
            fail(op, "wrong region count");

        for (Value operand : op.operands()) {
            if (!operand)
                fail(op, "null operand");
            if (!isVisible(operand))
                fail(op, "operand does not dominate this use");
        }

        verifyTypes(op);

        for (size_t i = 0; i < op.numRegions(); ++i) {
            if (op.region(i).empty())
                fail(op, "region has no block");
            verifyBlock(op, op.region(i).block(), i);
        }

        // Results become visible after the op.
        for (size_t i = 0; i < op.numResults(); ++i)
            visible_.back().insert(op.result(i).impl());
    }

    void
    verifyBlock(const Operation &parent, const Block &block,
                size_t region_index)
    {
        visible_.emplace_back();
        for (size_t i = 0; i < block.numArgs(); ++i)
            visible_.back().insert(block.arg(i).impl());

        if (block.empty())
            fail(parent, "empty block (missing terminator)");
        size_t index = 0;
        for (const auto &op : block.ops()) {
            bool is_last = ++index == block.size();
            if (isTerminator(*op) != is_last) {
                fail(*op, is_last ? "block must end with a terminator"
                                  : "terminator before end of block");
            }
            verifyOp(*op);
        }
        verifyTerminatorKind(parent, block, region_index);
        visible_.pop_back();
    }

    void
    verifyTerminatorKind(const Operation &parent, const Block &block,
                         size_t region_index)
    {
        const Operation &term = *block.ops().back();
        const std::string &parent_name = parent.nameStr();
        if (parent_name == opnames::kFunc) {
            if (!isa(term, opnames::kReturn))
                fail(term, "func body must end with func.return");
            bool has_result = parent.hasAttr("result_type");
            if (term.numOperands() != (has_result ? 1u : 0u))
                fail(term, "func.return operand count mismatch");
        } else if (parent_name == opnames::kAffineFor) {
            if (!isa(term, opnames::kAffineYield))
                fail(term, "affine.for body must end with affine.yield");
        } else if (parent_name == opnames::kIf) {
            if (!isa(term, opnames::kYield))
                fail(term, "scf.if branch must end with scf.yield");
            if (term.numOperands() != parent.numResults())
                fail(term, "scf.yield operand count must match scf.if "
                           "results");
            for (size_t i = 0; i < term.numOperands(); ++i) {
                if (term.operand(i).type() != parent.result(i).type())
                    fail(term, "scf.yield operand type mismatch");
            }
        } else if (parent_name == opnames::kWhile) {
            if (region_index == 0) {
                if (!isa(term, opnames::kCondition))
                    fail(term, "scf.while condition region must end with "
                               "scf.condition");
                if (term.numOperands() != 1 ||
                    term.operand(0).type() != Type::i1()) {
                    fail(term, "scf.condition needs one i1 operand");
                }
            } else if (!isa(term, opnames::kYield)) {
                fail(term, "scf.while body must end with scf.yield");
            }
        }
    }

    void
    verifyTypes(const Operation &op)
    {
        const std::string &name = op.nameStr();
        auto scalar_binary = [&]() {
            Type t = op.operand(0).type();
            if (op.operand(1).type() != t)
                fail(op, "binary op operand types differ");
            if (op.result().type() != t)
                fail(op, "binary op result type differs from operands");
        };
        if (name == opnames::kAddI || name == opnames::kSubI ||
            name == opnames::kMulI || name == opnames::kDivSI ||
            name == opnames::kDivUI || name == opnames::kRemSI ||
            name == opnames::kRemUI || name == opnames::kAndI ||
            name == opnames::kOrI || name == opnames::kXOrI ||
            name == opnames::kShLI || name == opnames::kShRSI ||
            name == opnames::kShRUI || name == opnames::kMinSI ||
            name == opnames::kMaxSI) {
            scalar_binary();
            if (!op.operand(0).type().isInteger() &&
                !op.operand(0).type().isIndex()) {
                fail(op, "integer op on non-integer type");
            }
        } else if (name == opnames::kAddF || name == opnames::kSubF ||
                   name == opnames::kMulF || name == opnames::kDivF) {
            scalar_binary();
            if (!op.operand(0).type().isFloat())
                fail(op, "float op on non-float type");
        } else if (name == opnames::kCmpI || name == opnames::kCmpF) {
            if (op.operand(0).type() != op.operand(1).type())
                fail(op, "cmp operand types differ");
            if (op.result().type() != Type::i1())
                fail(op, "cmp result must be i1");
            if (!op.hasAttr("predicate"))
                fail(op, "cmp missing predicate attribute");
        } else if (name == opnames::kSelect) {
            if (op.operand(0).type() != Type::i1())
                fail(op, "select condition must be i1");
            if (op.operand(1).type() != op.operand(2).type() ||
                op.result().type() != op.operand(1).type()) {
                fail(op, "select arm/result type mismatch");
            }
        } else if (name == opnames::kLoad || name == opnames::kStore) {
            size_t mem_index = name == opnames::kLoad ? 0 : 1;
            Type mem_type = op.operand(mem_index).type();
            if (!mem_type.isMemRef())
                fail(op, "expected memref operand");
            size_t num_indices = op.numOperands() - mem_index - 1;
            if (num_indices != mem_type.shape().size())
                fail(op, "index count does not match memref rank");
            for (size_t i = mem_index + 1; i < op.numOperands(); ++i) {
                if (!op.operand(i).type().isIndex())
                    fail(op, "memref indices must be index-typed");
            }
            if (name == opnames::kLoad) {
                if (op.result().type() != mem_type.elementType())
                    fail(op, "load result type != element type");
            } else if (op.operand(0).type() != mem_type.elementType()) {
                fail(op, "stored value type != element type");
            }
        } else if (name == opnames::kAffineFor) {
            for (Value operand : op.operands()) {
                if (!operand.type().isIndex())
                    fail(op, "affine.for bound operands must be index");
            }
            if (getStep(op) <= 0)
                fail(op, "affine.for step must be positive");
        } else if (name == opnames::kIf) {
            if (op.operand(0).type() != Type::i1())
                fail(op, "scf.if condition must be i1");
        } else if (name == opnames::kConstant) {
            if (op.hasAttr("value")) {
                const Attribute &value = op.attr("value");
                Type t = op.result().type();
                if (value.isInt() && !(t.isInteger() || t.isIndex()))
                    fail(op, "int constant with non-integer type");
                if (value.isFloat() && !t.isFloat())
                    fail(op, "float constant with non-float type");
            } else {
                fail(op, "constant missing value attribute");
            }
        }
    }

    std::vector<std::set<ValueImpl *>> visible_;
};

} // namespace

std::string
verify(const Module &module)
{
    return Verifier().run(module);
}

void
verifyOrDie(const Module &module)
{
    std::string diag = verify(module);
    if (!diag.empty())
        fatal(diag);
}

} // namespace seer::ir
