/**
 * @file
 * OpBuilder: insertion-point based IR construction.
 *
 * Used by the parser, the passes, the SeerLang back end, and the benchmark
 * programs to build IR fragments without touching block lists directly.
 */
#ifndef SEER_IR_BUILDER_H_
#define SEER_IR_BUILDER_H_

#include "ir/ops.h"

namespace seer::ir {

/** Builds operations at a movable insertion point. */
class OpBuilder
{
  public:
    OpBuilder() : block_(nullptr) {}

    /** Insert at the end of `block`. */
    static OpBuilder atEnd(Block &block);

    /** Insert before `op` inside its parent block. */
    static OpBuilder before(Operation *op);

    /** Insert after `op` inside its parent block. */
    static OpBuilder after(Operation *op);

    Block *insertionBlock() const { return block_; }

    /** Insert a pre-built op; returns the raw pointer. */
    Operation *insert(Operation::Ptr op);

    /**
     * Generic creation: name, operands, result types, attributes.
     * Regions must be added by the caller afterwards.
     */
    Operation *create(std::string_view name, std::vector<Value> operands,
                      std::vector<Type> result_types, AttrMap attrs = {});

    // --- Typed convenience wrappers (result Value returned) -----------
    Value intConstant(Type type, int64_t value);
    Value indexConstant(int64_t value);
    Value floatConstant(double value);

    /** Binary arith op whose result type equals the lhs type. */
    Value binary(std::string_view name, Value lhs, Value rhs);

    Value cmpi(CmpPred pred, Value lhs, Value rhs);
    Value select(Value cond, Value true_val, Value false_val);

    Value load(Value memref, std::vector<Value> indices);
    void store(Value value, Value memref, std::vector<Value> indices);
    Value alloc(Type memref_type);

    /** Create an affine.for; returns the op so callers can fill the body. */
    Operation *affineFor(const AffineBound &lb, const AffineBound &ub,
                         int64_t step = 1, std::string iv_name = "i");

    /** Constant-bound loop shorthand. */
    Operation *affineFor(int64_t lb, int64_t ub, int64_t step = 1,
                         std::string iv_name = "i");

    /** Create scf.if with empty then/else blocks. */
    Operation *scfIf(Value cond, std::vector<Type> result_types = {});

    /** Create scf.while with empty condition/body blocks. */
    Operation *scfWhile();

    void yield(std::string_view yield_name = opnames::kYield,
               std::vector<Value> operands = {});

  private:
    Block *block_;
    Block::iterator point_;
};

} // namespace seer::ir

#endif // SEER_IR_BUILDER_H_
