/**
 * @file
 * The SEER IR type system.
 *
 * A deliberately small model of the MLIR builtin types that the paper's
 * dialects (arith, memref, affine, scf, func) need: signless integers of
 * arbitrary width, the platform `index` type, `f64`, and static-shape
 * memrefs of scalar elements.
 */
#ifndef SEER_IR_TYPE_H_
#define SEER_IR_TYPE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace seer::ir {

/**
 * A value type. Cheap to copy; memref payload is shared and immutable.
 */
class Type
{
  public:
    enum class Kind : uint8_t {
        None,    ///< absence of a type (e.g., no result)
        Integer, ///< signless integer iN
        Index,   ///< loop induction / memory index type
        Float,   ///< f64
        MemRef,  ///< static-shape buffer of scalars
    };

    /** Default-constructed type is None. */
    Type() : kind_(Kind::None), width_(0) {}

    static Type none() { return Type(); }
    static Type i1() { return integer(1); }
    static Type i32() { return integer(32); }
    static Type i64() { return integer(64); }

    /** A signless integer of the given bitwidth (1..64). */
    static Type integer(unsigned width);

    static Type index();
    static Type f64();

    /** A static-shape memref; element must be a scalar type. */
    static Type memref(std::vector<int64_t> shape, Type element);

    Kind kind() const { return kind_; }
    bool isNone() const { return kind_ == Kind::None; }
    bool isInteger() const { return kind_ == Kind::Integer; }
    bool isIndex() const { return kind_ == Kind::Index; }
    bool isFloat() const { return kind_ == Kind::Float; }
    bool isMemRef() const { return kind_ == Kind::MemRef; }
    bool isScalar() const { return !isMemRef() && !isNone(); }

    /** Integer bitwidth; index is modeled as 64 bits wide. */
    unsigned bitwidth() const;

    /** Memref shape; only valid for memrefs. */
    const std::vector<int64_t> &shape() const;

    /** Memref element type; only valid for memrefs. */
    Type elementType() const;

    /** Total element count of a memref. */
    int64_t numElements() const;

    bool operator==(const Type &other) const;
    bool operator!=(const Type &other) const { return !(*this == other); }

    /** Render in MLIR-like syntax, e.g. "i32", "memref<8x8xi32>". */
    std::string str() const;

  private:
    struct MemRefInfo
    {
        std::vector<int64_t> shape;
        Kind elemKind;
        unsigned elemWidth;
    };

    Kind kind_;
    unsigned width_;
    std::shared_ptr<const MemRefInfo> memref_;
};

} // namespace seer::ir

#endif // SEER_IR_TYPE_H_
