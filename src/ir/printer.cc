#include "ir/printer.h"

#include <map>
#include <ostream>
#include <set>
#include <sstream>

#include "ir/ops.h"
#include "support/error.h"

namespace seer::ir {

namespace {

/** Assigns stable printable names to SSA values. */
class NameManager
{
  public:
    std::string
    name(Value v)
    {
        auto it = names_.find(v.impl());
        if (it != names_.end())
            return it->second;
        std::string base = v.impl()->nameHint();
        if (base.empty())
            base = std::to_string(next_++);
        std::string candidate = base;
        int suffix = 0;
        while (used_.count(candidate))
            candidate = base + "_" + std::to_string(++suffix);
        used_.insert(candidate);
        names_[v.impl()] = candidate;
        return candidate;
    }

  private:
    std::map<ValueImpl *, std::string> names_;
    std::set<std::string> used_;
    int next_ = 0;
};

class Printer
{
  public:
    explicit Printer(std::ostream &os) : os_(os) {}

    void
    printModule(const Module &module)
    {
        bool first = true;
        for (const auto &op : module.ops()) {
            if (!first)
                os_ << "\n";
            first = false;
            printOp(*op, 0);
        }
    }

    void
    printOp(const Operation &op, int indent)
    {
        const std::string &name = op.nameStr();
        // Hide implicit empty terminators for readability.
        if ((name == opnames::kAffineYield || name == opnames::kYield) &&
            op.numOperands() == 0) {
            return;
        }
        pad(indent);
        if (name == opnames::kFunc)
            printFunc(op, indent);
        else if (name == opnames::kAffineFor)
            printAffineFor(op, indent);
        else if (name == opnames::kIf)
            printIf(op, indent);
        else if (name == opnames::kWhile)
            printWhile(op, indent);
        else if (name == opnames::kConstant)
            printConstant(op);
        else if (name == opnames::kLoad)
            printLoad(op);
        else if (name == opnames::kStore)
            printStore(op);
        else if (name == opnames::kAlloc)
            printAlloc(op);
        else if (name == opnames::kCmpI || name == opnames::kCmpF)
            printCmp(op);
        else if (name == opnames::kCall)
            printCall(op);
        else
            printGeneric(op);
        os_ << "\n";
    }

  private:
    void
    pad(int indent)
    {
        for (int i = 0; i < indent; ++i)
            os_ << "  ";
    }

    void
    printResults(const Operation &op)
    {
        for (size_t i = 0; i < op.numResults(); ++i)
            os_ << (i ? ", " : "") << "%" << names_.name(op.result(i));
        if (op.numResults() > 0)
            os_ << " = ";
    }

    void
    printValue(Value v)
    {
        os_ << "%" << names_.name(v);
    }

    void
    printBlockBody(const Block &block, int indent)
    {
        for (const auto &op : block.ops())
            printOp(*op, indent + 1);
    }

    void
    printFunc(const Operation &op, int indent)
    {
        os_ << "func.func @" << op.strAttr("sym_name") << "(";
        const Block &body = op.region(0).block();
        for (size_t i = 0; i < body.numArgs(); ++i) {
            Value arg = body.arg(i);
            os_ << (i ? ", " : "") << "%" << names_.name(arg) << ": "
                << arg.type().str();
        }
        os_ << ")";
        if (op.hasAttr("result_type"))
            os_ << " -> " << op.attr("result_type").asType().str();
        os_ << " {\n";
        printBlockBody(body, indent);
        pad(indent);
        os_ << "}";
    }

    void
    printBound(const AffineBound &bound)
    {
        bool printed = false;
        for (const auto &[value, coeff] : bound.terms) {
            if (printed)
                os_ << " + ";
            if (coeff != 1)
                os_ << coeff << " * ";
            printValue(value);
            printed = true;
        }
        if (bound.constant != 0 || !printed) {
            if (printed)
                os_ << (bound.constant >= 0 ? " + " : " - ");
            os_ << (printed ? std::abs(bound.constant) : bound.constant);
        }
    }

    void
    printAffineFor(const Operation &op, int indent)
    {
        const Block &body = op.region(0).block();
        os_ << "affine.for %" << names_.name(body.arg(0)) << " = ";
        printBound(getLowerBound(op));
        os_ << " to ";
        printBound(getUpperBound(op));
        if (getStep(op) != 1)
            os_ << " step " << getStep(op);
        os_ << " {\n";
        printBlockBody(body, indent);
        pad(indent);
        os_ << "}";
    }

    void
    printIf(const Operation &op, int indent)
    {
        printResults(op);
        os_ << "scf.if ";
        printValue(op.operand(0));
        if (op.numResults() > 0) {
            os_ << " -> (";
            for (size_t i = 0; i < op.numResults(); ++i)
                os_ << (i ? ", " : "") << op.result(i).type().str();
            os_ << ")";
        }
        os_ << " {\n";
        printBlockBody(op.region(0).block(), indent);
        pad(indent);
        os_ << "}";
        const Block &else_block = op.region(1).block();
        bool else_empty = true;
        for (const auto &inner : else_block.ops()) {
            if (!(isTerminator(*inner) && inner->numOperands() == 0))
                else_empty = false;
        }
        if (!else_empty) {
            os_ << " else {\n";
            printBlockBody(else_block, indent);
            pad(indent);
            os_ << "}";
        }
    }

    void
    printWhile(const Operation &op, int indent)
    {
        os_ << "scf.while {\n";
        printBlockBody(op.region(0).block(), indent);
        pad(indent);
        os_ << "} do {\n";
        printBlockBody(op.region(1).block(), indent);
        pad(indent);
        os_ << "}";
    }

    void
    printConstant(const Operation &op)
    {
        printResults(op);
        os_ << "arith.constant ";
        const Attribute &value = op.attr("value");
        if (value.isInt()) {
            os_ << value.asInt();
        } else {
            std::ostringstream tmp;
            tmp << value.asFloat();
            std::string text = tmp.str();
            if (text.find_first_of(".e") == std::string::npos)
                text += ".0";
            os_ << text;
        }
        os_ << " : " << op.result().type().str();
    }

    void
    printLoad(const Operation &op)
    {
        printResults(op);
        os_ << "memref.load ";
        printValue(op.operand(0));
        os_ << "[";
        for (size_t i = 1; i < op.numOperands(); ++i) {
            os_ << (i > 1 ? ", " : "");
            printValue(op.operand(i));
        }
        os_ << "] : " << op.operand(0).type().str();
    }

    void
    printStore(const Operation &op)
    {
        os_ << "memref.store ";
        printValue(op.operand(0));
        os_ << ", ";
        printValue(op.operand(1));
        os_ << "[";
        for (size_t i = 2; i < op.numOperands(); ++i) {
            os_ << (i > 2 ? ", " : "");
            printValue(op.operand(i));
        }
        os_ << "] : " << op.operand(1).type().str();
    }

    void
    printAlloc(const Operation &op)
    {
        printResults(op);
        os_ << "memref.alloc() : " << op.result().type().str();
    }

    void
    printCmp(const Operation &op)
    {
        printResults(op);
        os_ << op.nameStr() << " " << op.strAttr("predicate") << ", ";
        printValue(op.operand(0));
        os_ << ", ";
        printValue(op.operand(1));
        os_ << " : " << op.operand(0).type().str();
    }

    void
    printCall(const Operation &op)
    {
        printResults(op);
        os_ << "func.call @" << op.strAttr("callee") << "(";
        for (size_t i = 0; i < op.numOperands(); ++i) {
            os_ << (i ? ", " : "");
            printValue(op.operand(i));
        }
        os_ << ") : (";
        for (size_t i = 0; i < op.numOperands(); ++i)
            os_ << (i ? ", " : "") << op.operand(i).type().str();
        os_ << ") -> (";
        for (size_t i = 0; i < op.numResults(); ++i)
            os_ << (i ? ", " : "") << op.result(i).type().str();
        os_ << ")";
    }

    /** Casts print "T to U"; everything else prints a single type. */
    void
    printGeneric(const Operation &op)
    {
        printResults(op);
        os_ << op.nameStr();
        for (size_t i = 0; i < op.numOperands(); ++i) {
            os_ << (i ? ", " : " ");
            printValue(op.operand(i));
        }
        const std::string &name = op.nameStr();
        bool is_cast = name == opnames::kExtSI || name == opnames::kExtUI ||
                       name == opnames::kTruncI ||
                       name == opnames::kIndexCast ||
                       name == opnames::kSIToFP ||
                       name == opnames::kFPToSI;
        if (is_cast) {
            os_ << " : " << op.operand(0).type().str() << " to "
                << op.result().type().str();
        } else if (op.numResults() > 0) {
            os_ << " : " << op.result(0).type().str();
        } else if (op.numOperands() > 0) {
            os_ << " : " << op.operand(0).type().str();
        }
    }

    std::ostream &os_;
    NameManager names_;
};

} // namespace

void
print(const Module &module, std::ostream &os)
{
    Printer(os).printModule(module);
}

void
print(const Operation &op, std::ostream &os, int indent)
{
    Printer(os).printOp(op, indent);
}

std::string
toString(const Module &module)
{
    std::ostringstream os;
    print(module, os);
    return os.str();
}

std::string
toString(const Operation &op)
{
    std::ostringstream os;
    print(op, os);
    return os.str();
}

} // namespace seer::ir
