#include "ir/builder.h"

#include "support/error.h"

namespace seer::ir {

OpBuilder
OpBuilder::atEnd(Block &block)
{
    OpBuilder b;
    b.block_ = &block;
    b.point_ = block.ops().end();
    return b;
}

OpBuilder
OpBuilder::before(Operation *op)
{
    OpBuilder b;
    b.block_ = op->parentBlock();
    SEER_ASSERT(b.block_, "op has no parent block");
    b.point_ = b.block_->find(op);
    return b;
}

OpBuilder
OpBuilder::after(Operation *op)
{
    OpBuilder b = before(op);
    ++b.point_;
    return b;
}

Operation *
OpBuilder::insert(Operation::Ptr op)
{
    SEER_ASSERT(block_, "builder has no insertion point");
    return block_->insert(point_, std::move(op));
}

Operation *
OpBuilder::create(std::string_view name, std::vector<Value> operands,
                  std::vector<Type> result_types, AttrMap attrs)
{
    auto op = std::make_unique<Operation>(Symbol(name));
    op->setOperands(std::move(operands));
    for (Type t : result_types)
        op->addResult(t);
    for (auto &[key, value] : attrs)
        op->setAttr(key, std::move(value));
    return insert(std::move(op));
}

Value
OpBuilder::intConstant(Type type, int64_t value)
{
    return insert(makeIntConstant(type, value))->result();
}

Value
OpBuilder::indexConstant(int64_t value)
{
    return intConstant(Type::index(), value);
}

Value
OpBuilder::floatConstant(double value)
{
    return insert(makeFloatConstant(value))->result();
}

Value
OpBuilder::binary(std::string_view name, Value lhs, Value rhs)
{
    return create(name, {lhs, rhs}, {lhs.type()})->result();
}

Value
OpBuilder::cmpi(CmpPred pred, Value lhs, Value rhs)
{
    Operation *op = create(opnames::kCmpI, {lhs, rhs}, {Type::i1()});
    op->setAttr("predicate", Attribute(cmpPredName(pred)));
    return op->result();
}

Value
OpBuilder::select(Value cond, Value true_val, Value false_val)
{
    return create(opnames::kSelect, {cond, true_val, false_val},
                  {true_val.type()})
        ->result();
}

Value
OpBuilder::load(Value memref, std::vector<Value> indices)
{
    std::vector<Value> operands{memref};
    operands.insert(operands.end(), indices.begin(), indices.end());
    return create(opnames::kLoad, std::move(operands),
                  {memref.type().elementType()})
        ->result();
}

void
OpBuilder::store(Value value, Value memref, std::vector<Value> indices)
{
    std::vector<Value> operands{value, memref};
    operands.insert(operands.end(), indices.begin(), indices.end());
    create(opnames::kStore, std::move(operands), {});
}

Value
OpBuilder::alloc(Type memref_type)
{
    return create(opnames::kAlloc, {}, {memref_type})->result();
}

Operation *
OpBuilder::affineFor(const AffineBound &lb, const AffineBound &ub,
                     int64_t step, std::string iv_name)
{
    return insert(makeAffineFor(lb, ub, step, std::move(iv_name)));
}

Operation *
OpBuilder::affineFor(int64_t lb, int64_t ub, int64_t step,
                     std::string iv_name)
{
    return affineFor(AffineBound::fromConstant(lb),
                     AffineBound::fromConstant(ub), step,
                     std::move(iv_name));
}

Operation *
OpBuilder::scfIf(Value cond, std::vector<Type> result_types)
{
    Operation *op = create(opnames::kIf, {cond}, std::move(result_types));
    op->addRegion().block();
    op->addRegion().block();
    return op;
}

Operation *
OpBuilder::scfWhile()
{
    Operation *op = create(opnames::kWhile, {}, {});
    op->addRegion().block();
    op->addRegion().block();
    return op;
}

void
OpBuilder::yield(std::string_view yield_name, std::vector<Value> operands)
{
    create(yield_name, std::move(operands), {});
}

} // namespace seer::ir
