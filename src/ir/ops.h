/**
 * @file
 * The dialect op set: names, structural traits, and typed helpers.
 *
 * The IR core (op.h) is generic; this header pins down the concrete ops of
 * the five dialects the SEER paper uses and provides typed accessors for
 * the structured ones (affine.for bounds, constants, cmp predicates).
 */
#ifndef SEER_IR_OPS_H_
#define SEER_IR_OPS_H_

#include <optional>
#include <string_view>

#include "ir/op.h"

namespace seer::ir {

/** Canonical op names. */
namespace opnames {
// arith
inline constexpr std::string_view kConstant = "arith.constant";
inline constexpr std::string_view kAddI = "arith.addi";
inline constexpr std::string_view kSubI = "arith.subi";
inline constexpr std::string_view kMulI = "arith.muli";
inline constexpr std::string_view kDivSI = "arith.divsi";
inline constexpr std::string_view kDivUI = "arith.divui";
inline constexpr std::string_view kRemSI = "arith.remsi";
inline constexpr std::string_view kRemUI = "arith.remui";
inline constexpr std::string_view kAndI = "arith.andi";
inline constexpr std::string_view kOrI = "arith.ori";
inline constexpr std::string_view kXOrI = "arith.xori";
inline constexpr std::string_view kShLI = "arith.shli";
inline constexpr std::string_view kShRSI = "arith.shrsi";
inline constexpr std::string_view kShRUI = "arith.shrui";
inline constexpr std::string_view kCmpI = "arith.cmpi";
inline constexpr std::string_view kSelect = "arith.select";
inline constexpr std::string_view kExtSI = "arith.extsi";
inline constexpr std::string_view kExtUI = "arith.extui";
inline constexpr std::string_view kTruncI = "arith.trunci";
inline constexpr std::string_view kIndexCast = "arith.index_cast";
inline constexpr std::string_view kMinSI = "arith.minsi";
inline constexpr std::string_view kMaxSI = "arith.maxsi";
inline constexpr std::string_view kAddF = "arith.addf";
inline constexpr std::string_view kSubF = "arith.subf";
inline constexpr std::string_view kMulF = "arith.mulf";
inline constexpr std::string_view kDivF = "arith.divf";
inline constexpr std::string_view kNegF = "arith.negf";
inline constexpr std::string_view kCmpF = "arith.cmpf";
inline constexpr std::string_view kSIToFP = "arith.sitofp";
inline constexpr std::string_view kFPToSI = "arith.fptosi";
// memref
inline constexpr std::string_view kAlloc = "memref.alloc";
inline constexpr std::string_view kLoad = "memref.load";
inline constexpr std::string_view kStore = "memref.store";
// affine
inline constexpr std::string_view kAffineFor = "affine.for";
inline constexpr std::string_view kAffineYield = "affine.yield";
// scf
inline constexpr std::string_view kIf = "scf.if";
inline constexpr std::string_view kWhile = "scf.while";
inline constexpr std::string_view kCondition = "scf.condition";
inline constexpr std::string_view kYield = "scf.yield";
// func
inline constexpr std::string_view kFunc = "func.func";
inline constexpr std::string_view kReturn = "func.return";
inline constexpr std::string_view kCall = "func.call";
} // namespace opnames

/** Structural traits of an op kind, consulted by the verifier and passes. */
struct OpInfo
{
    /** Exact operand count, or -1 if variadic. */
    int numOperands = -1;
    /** Exact result count, or -1 if variadic. */
    int numResults = -1;
    /** Number of held regions. */
    int numRegions = 0;
    /** Terminates its block (yield/return/condition). */
    bool isTerminator = false;
    /** No side effects and no regions: safe to DCE / put in an e-graph. */
    bool isPure = false;
    /** Binary op with commutative semantics. */
    bool isCommutative = false;
    /** Structured control flow op (for/if/while). */
    bool isControlFlow = false;
    /** Touches memory (load/store/alloc). */
    bool isMemory = false;
};

/** Look up traits; fatal() on unknown op names (catches typos early). */
const OpInfo &opInfo(Symbol name);

/** True if `name` is a registered op. */
bool isRegisteredOp(Symbol name);

inline bool
isa(const Operation &op, std::string_view name)
{
    return op.nameStr() == name;
}

// --- Constants ----------------------------------------------------------

/** Build an integer/index constant op (no parent). */
Operation::Ptr makeIntConstant(Type type, int64_t value);

/** Build an f64 constant op. */
Operation::Ptr makeFloatConstant(double value);

/** If `v` is defined by an integer arith.constant, return its value. */
std::optional<int64_t> getConstantInt(Value v);

// --- Comparison predicates ------------------------------------------------

enum class CmpPred { EQ, NE, SLT, SLE, SGT, SGE, ULT, ULE, UGT, UGE };

/** Parse "slt" etc.; fatal() on unknown predicate. */
CmpPred parseCmpPred(const std::string &text);
std::string cmpPredName(CmpPred pred);

/** Evaluate an integer comparison. */
bool evalCmpI(CmpPred pred, int64_t lhs, int64_t rhs, unsigned width);

// --- affine.for helpers -----------------------------------------------

/**
 * An affine loop bound: constant + sum(coeff * value). Values must be
 * index-typed (enclosing ivs or index arguments).
 */
struct AffineBound
{
    int64_t constant = 0;
    std::vector<std::pair<Value, int64_t>> terms;

    bool isConstant() const { return terms.empty(); }

    static AffineBound fromConstant(int64_t c) { return {c, {}}; }
    static AffineBound fromValue(Value v, int64_t coeff = 1,
                                 int64_t c = 0)
    {
        return {c, {{v, coeff}}};
    }
};

/**
 * Build an affine.for op with the given bounds and step; its body block is
 * created with one index-typed induction variable argument.
 */
Operation::Ptr makeAffineFor(const AffineBound &lb, const AffineBound &ub,
                             int64_t step, std::string iv_name = "i");

/** Read back the encoded bounds. Valid only on affine.for. */
AffineBound getLowerBound(const Operation &for_op);
AffineBound getUpperBound(const Operation &for_op);
int64_t getStep(const Operation &for_op);

/** Re-encode the bounds (replaces operands and bound attributes). */
void setLoopBounds(Operation &for_op, const AffineBound &lb,
                   const AffineBound &ub, int64_t step);

/** The loop induction variable (body block argument 0). */
Value inductionVar(const Operation &for_op);

/** Trip count when both bounds are constant: ceil((ub-lb)/step), >= 0. */
std::optional<int64_t> constantTripCount(const Operation &for_op);

/** True for ops that must appear last in their block. */
bool isTerminator(const Operation &op);

/** True for pure, region-free, single-result ops (datapath material). */
bool isPureDatapathOp(const Operation &op);

} // namespace seer::ir

#endif // SEER_IR_OPS_H_
