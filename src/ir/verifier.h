/**
 * @file
 * Structural and type verification of IR modules.
 *
 * Every pass and every SeerLang back-translation is followed by a verify()
 * in tests; a failure indicates a SEER bug, so errors are precise.
 */
#ifndef SEER_IR_VERIFIER_H_
#define SEER_IR_VERIFIER_H_

#include <string>

#include "ir/op.h"

namespace seer::ir {

/**
 * Verify a module. Returns an empty string on success, else a diagnostic
 * describing the first violation found.
 */
std::string verify(const Module &module);

/** Verify and fatal() with the diagnostic on failure. */
void verifyOrDie(const Module &module);

} // namespace seer::ir

#endif // SEER_IR_VERIFIER_H_
