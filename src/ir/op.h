/**
 * @file
 * Core IR graph: values, operations, blocks, regions, modules.
 *
 * A deliberately compact re-implementation of MLIR's structural core.
 * Operations are generic (identified by an interned name such as
 * "arith.addi") and carry operands, owned results, an attribute dictionary
 * and owned regions. All control flow is structured: every region holds
 * exactly one block and blocks have no successors.
 */
#ifndef SEER_IR_OP_H_
#define SEER_IR_OP_H_

#include <functional>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/attribute.h"
#include "ir/type.h"
#include "support/symbol.h"

namespace seer::ir {

class Operation;
class Block;
class Region;

/**
 * Backing storage for an SSA value: either an operation result or a block
 * argument. Stable address for the lifetime of its owner.
 */
class ValueImpl
{
  public:
    ValueImpl(Type type, Operation *def_op, Block *owner_block,
              unsigned index)
        : type_(type), defOp_(def_op), ownerBlock_(owner_block),
          index_(index)
    {}

    Type type() const { return type_; }
    void setType(Type t) { type_ = t; }

    /** Defining op, or nullptr for block arguments. */
    Operation *definingOp() const { return defOp_; }

    /** Owning block for block arguments, else nullptr. */
    Block *ownerBlock() const { return ownerBlock_; }

    /** Result index / argument index within the owner. */
    unsigned index() const { return index_; }

    /** Printer name hint (without the leading %); may be empty. */
    const std::string &nameHint() const { return nameHint_; }
    void setNameHint(std::string hint) { nameHint_ = std::move(hint); }

  private:
    Type type_;
    Operation *defOp_;
    Block *ownerBlock_;
    unsigned index_;
    std::string nameHint_;
};

/** A lightweight SSA value handle. */
class Value
{
  public:
    Value() : impl_(nullptr) {}
    explicit Value(ValueImpl *impl) : impl_(impl) {}

    explicit operator bool() const { return impl_ != nullptr; }
    bool operator==(const Value &o) const { return impl_ == o.impl_; }
    bool operator!=(const Value &o) const { return impl_ != o.impl_; }
    bool operator<(const Value &o) const { return impl_ < o.impl_; }

    Type type() const { return impl_->type(); }
    Operation *definingOp() const { return impl_->definingOp(); }
    Block *ownerBlock() const { return impl_->ownerBlock(); }
    bool isBlockArgument() const { return impl_->ownerBlock() != nullptr; }
    ValueImpl *impl() const { return impl_; }

  private:
    ValueImpl *impl_;
};

/** A region: an owned list of blocks (always exactly one in this IR). */
class Region
{
  public:
    explicit Region(Operation *parent = nullptr) : parent_(parent) {}

    Operation *parentOp() const { return parent_; }
    void setParentOp(Operation *op) { parent_ = op; }

    bool empty() const { return blocks_.empty(); }

    /** The single block; creates it on first access. */
    Block &block();
    const Block &block() const;

    /** Append a new empty block (used by clone/parse). */
    Block &addBlock();

  private:
    Operation *parent_;
    std::vector<std::unique_ptr<Block>> blocks_;
};

/** An operation: the unit of IR semantics. */
class Operation
{
  public:
    using Ptr = std::unique_ptr<Operation>;

    explicit Operation(Symbol name) : name_(name) {}
    Operation(const Operation &) = delete;
    Operation &operator=(const Operation &) = delete;

    Symbol name() const { return name_; }
    const std::string &nameStr() const { return name_.str(); }

    /** Dialect prefix, e.g. "arith" for "arith.addi". */
    std::string dialect() const;

    // --- Operands ------------------------------------------------------
    size_t numOperands() const { return operands_.size(); }
    Value operand(size_t i) const { return operands_[i]; }
    const std::vector<Value> &operands() const { return operands_; }
    void setOperand(size_t i, Value v) { operands_[i] = v; }
    void addOperand(Value v) { operands_.push_back(v); }
    void setOperands(std::vector<Value> vs) { operands_ = std::move(vs); }

    // --- Results -------------------------------------------------------
    size_t numResults() const { return results_.size(); }
    Value result(size_t i = 0) const { return Value(results_[i].get()); }
    std::vector<Value> results() const;
    Value addResult(Type type);

    // --- Attributes ----------------------------------------------------
    const AttrMap &attrs() const { return attrs_; }
    bool hasAttr(const std::string &key) const { return attrs_.count(key); }
    const Attribute &attr(const std::string &key) const;
    void setAttr(const std::string &key, Attribute value)
    {
        attrs_[key] = std::move(value);
    }
    void removeAttr(const std::string &key) { attrs_.erase(key); }

    int64_t intAttr(const std::string &key) const
    {
        return attr(key).asInt();
    }
    const std::string &strAttr(const std::string &key) const
    {
        return attr(key).asString();
    }

    // --- Regions -------------------------------------------------------
    size_t numRegions() const { return regions_.size(); }
    Region &region(size_t i = 0) { return *regions_[i]; }
    const Region &region(size_t i = 0) const { return *regions_[i]; }
    Region &addRegion();

    // --- Structure -----------------------------------------------------
    Block *parentBlock() const { return parent_; }
    void setParentBlock(Block *b) { parent_ = b; }

    /** The op owning the block this op lives in, or nullptr at top level. */
    Operation *parentOp() const;

    /** True if `this` is inside (possibly nested in) `ancestor`. */
    bool isInside(const Operation *ancestor) const;

  private:
    Symbol name_;
    std::vector<Value> operands_;
    std::vector<std::unique_ptr<ValueImpl>> results_;
    AttrMap attrs_;
    std::vector<std::unique_ptr<Region>> regions_;
    Block *parent_ = nullptr;
};

/** A basic block: owned arguments and an owned op list. */
class Block
{
  public:
    using OpList = std::list<Operation::Ptr>;
    using iterator = OpList::iterator;

    explicit Block(Region *parent = nullptr) : parent_(parent) {}

    Region *parentRegion() const { return parent_; }
    void setParentRegion(Region *r) { parent_ = r; }

    // --- Arguments -----------------------------------------------------
    size_t numArgs() const { return args_.size(); }
    Value arg(size_t i) const { return Value(args_[i].get()); }
    Value addArg(Type type, std::string name_hint = "");

    // --- Operations ----------------------------------------------------
    OpList &ops() { return ops_; }
    const OpList &ops() const { return ops_; }
    bool empty() const { return ops_.empty(); }
    size_t size() const { return ops_.size(); }
    Operation &front() { return *ops_.front(); }
    Operation &back() { return *ops_.back(); }

    /** Append an op, taking ownership. Returns the raw pointer. */
    Operation *push_back(Operation::Ptr op);

    /** Insert before `pos`, taking ownership. */
    Operation *insert(iterator pos, Operation::Ptr op);

    /** Remove and destroy the op at `pos`; returns the next iterator. */
    iterator erase(iterator pos);

    /** Remove without destroying; caller takes ownership. */
    Operation::Ptr take(iterator pos);

    /** Find the list position of an op owned by this block. */
    iterator find(Operation *op);

  private:
    Region *parent_;
    std::vector<std::unique_ptr<ValueImpl>> args_;
    OpList ops_;
};

/** A module: a list of top-level ops (func.func definitions). */
class Module
{
  public:
    Module() = default;
    Module(const Module &) = delete;
    Module &operator=(const Module &) = delete;
    Module(Module &&) = default;
    Module &operator=(Module &&) = default;

    Block::OpList &ops() { return ops_; }
    const Block::OpList &ops() const { return ops_; }

    Operation *push_back(Operation::Ptr op);

    /** Find a func.func by symbol name; nullptr if absent. */
    Operation *lookupFunc(const std::string &name) const;

    /** The first (often only) function in the module. */
    Operation *firstFunc() const;

  private:
    Block::OpList ops_;
};

// --- Utilities ---------------------------------------------------------

/** Deep-clone an op, mapping operands through `mapping` when present. */
Operation::Ptr cloneOp(const Operation &op,
                       std::map<ValueImpl *, Value> &mapping);

/** Deep-clone a whole module. */
Module cloneModule(const Module &module);

/** Replace all uses of `from` with `to` inside `root` (recursively). */
void replaceAllUsesIn(Operation &root, Value from, Value to);
void replaceAllUsesIn(Block &root, Value from, Value to);

/** Walk every op nested under `root` (pre-order). */
void walk(Operation &root, const std::function<void(Operation &)> &fn);
void walk(Block &root, const std::function<void(Operation &)> &fn);
void walk(const Module &module, const std::function<void(Operation &)> &fn);

/** Walk with early exit: return false from fn to stop descending. */
void walkPruned(Operation &root,
                const std::function<bool(Operation &)> &fn);

/** Count all ops nested under the module (for stats). */
size_t countOps(const Module &module);

} // namespace seer::ir

#endif // SEER_IR_OP_H_
