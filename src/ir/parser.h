/**
 * @file
 * Parser for the textual IR format produced by printer.h.
 *
 * Benchmarks are written in this format (standing in for Polygeist output
 * in the paper's flow); tests rely on print/parse round-tripping.
 */
#ifndef SEER_IR_PARSER_H_
#define SEER_IR_PARSER_H_

#include <string_view>

#include "ir/op.h"

namespace seer::ir {

/**
 * Parse a module from text. Throws seer::FatalError with a line/column
 * message on malformed input. Missing block terminators (affine.yield,
 * scf.yield, func.return) are inserted automatically.
 */
Module parseModule(std::string_view text);

/** Parse a single type, e.g. "memref<8x8xi32>". */
Type parseType(std::string_view text);

} // namespace seer::ir

#endif // SEER_IR_PARSER_H_
