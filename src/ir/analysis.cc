#include "ir/analysis.h"

#include <algorithm>

#include "support/error.h"

namespace seer::ir {

int64_t
LinearExpr::coeff(Value v) const
{
    auto it = coeffs.find(v.impl());
    return it == coeffs.end() ? 0 : it->second;
}

bool
LinearExpr::dependsOnlyOn(Value iv) const
{
    for (const auto &[base, coeff] : coeffs) {
        if (base != iv.impl() && coeff != 0)
            return false;
    }
    return true;
}

LinearExpr
LinearExpr::operator+(const LinearExpr &other) const
{
    LinearExpr out = *this;
    out.constant += other.constant;
    for (const auto &[base, coeff] : other.coeffs) {
        out.coeffs[base] += coeff;
        if (out.coeffs[base] == 0)
            out.coeffs.erase(base);
    }
    return out;
}

LinearExpr
LinearExpr::operator-(const LinearExpr &other) const
{
    return *this + other.scaled(-1);
}

LinearExpr
LinearExpr::scaled(int64_t factor) const
{
    LinearExpr out;
    if (factor == 0)
        return out;
    out.constant = constant * factor;
    for (const auto &[base, coeff] : coeffs)
        out.coeffs[base] = coeff * factor;
    return out;
}

namespace {

std::optional<LinearExpr>
analyzeAffineImpl(Value v, int depth, bool lenient)
{
    if (depth > 64)
        return std::nullopt;
    Operation *def = v.definingOp();
    if (!def) {
        // A block argument: loop iv or function argument — a base symbol.
        LinearExpr e;
        e.coeffs[v.impl()] = 1;
        return e;
    }
    const std::string &name = def->nameStr();
    if (name == opnames::kConstant && def->attr("value").isInt()) {
        LinearExpr e;
        e.constant = def->intAttr("value");
        return e;
    }
    if (name == opnames::kAddI || name == opnames::kSubI) {
        auto lhs = analyzeAffineImpl(def->operand(0), depth + 1, lenient);
        auto rhs = analyzeAffineImpl(def->operand(1), depth + 1, lenient);
        if (!lhs || !rhs)
            return std::nullopt;
        return name == opnames::kAddI ? *lhs + *rhs : *lhs - *rhs;
    }
    if (name == opnames::kMulI) {
        auto lhs = analyzeAffineImpl(def->operand(0), depth + 1, lenient);
        auto rhs = analyzeAffineImpl(def->operand(1), depth + 1, lenient);
        if (!lhs || !rhs)
            return std::nullopt;
        if (lhs->isConstant())
            return rhs->scaled(lhs->constant);
        if (rhs->isConstant())
            return lhs->scaled(rhs->constant);
        return std::nullopt; // variable * variable: not affine
    }
    if (name == opnames::kIndexCast || name == opnames::kExtSI) {
        return analyzeAffineImpl(def->operand(0), depth + 1, lenient);
    }
    if (lenient && name == opnames::kShLI) {
        // SCEV view: x << c == x * 2^c for constant c.
        auto amount = getConstantInt(def->operand(1));
        if (amount && *amount >= 0 && *amount < 62) {
            auto base =
                analyzeAffineImpl(def->operand(0), depth + 1, lenient);
            if (base)
                return base->scaled(int64_t{1} << *amount);
        }
        return std::nullopt;
    }
    // Shifts, bitwise ops, selects, loads, ... — a polyhedral analyzer
    // gives up here. This strictness is load-bearing (see Figure 9).
    return std::nullopt;
}

MemAccess
classify(Operation &op, bool lenient = false)
{
    MemAccess access;
    access.op = &op;
    access.is_store = isa(op, opnames::kStore);
    size_t mem_index = access.is_store ? 1 : 0;
    access.memref = op.operand(mem_index);
    for (size_t i = mem_index + 1; i < op.numOperands(); ++i) {
        access.indices.push_back(
            lenient ? analyzeAffineLenient(op.operand(i))
                    : analyzeAffine(op.operand(i)));
    }
    return access;
}

/** Flatten a (possibly multi-dim) affine access into one LinearExpr. */
std::optional<LinearExpr>
flattenAccess(const MemAccess &access)
{
    if (!access.allAffine())
        return std::nullopt;
    const auto &shape = access.memref.type().shape();
    LinearExpr flat;
    for (size_t d = 0; d < access.indices.size(); ++d) {
        int64_t stride = 1;
        for (size_t rest = d + 1; rest < shape.size(); ++rest)
            stride *= shape[rest];
        flat = flat + access.indices[d]->scaled(stride);
    }
    return flat;
}

/**
 * Split a flattened access into (coefficient of iv, residual expr).
 * Returns nullopt if the residual contains values defined *inside* the
 * loop (a non-invariant symbolic part no static test can handle).
 */
std::optional<std::pair<int64_t, LinearExpr>>
splitOnIv(const LinearExpr &expr, Operation &loop)
{
    Value iv = inductionVar(loop);
    LinearExpr residual = expr;
    int64_t iv_coeff = 0;
    auto it = residual.coeffs.find(iv.impl());
    if (it != residual.coeffs.end()) {
        iv_coeff = it->second;
        residual.coeffs.erase(it);
    }
    for (const auto &[base, coeff] : residual.coeffs) {
        (void)coeff;
        Value base_value(base);
        if (!isDefinedOutside(base_value, loop))
            return std::nullopt;
    }
    return std::make_pair(iv_coeff, residual);
}

bool
sameBuffer(Value a, Value b)
{
    return a == b;
}

} // namespace

std::optional<LinearExpr>
analyzeAffine(Value v)
{
    return analyzeAffineImpl(v, 0, /*lenient=*/false);
}

std::optional<LinearExpr>
analyzeAffineLenient(Value v)
{
    return analyzeAffineImpl(v, 0, /*lenient=*/true);
}

std::vector<MemAccess>
collectAccesses(Operation &root, bool lenient)
{
    std::vector<MemAccess> out;
    walk(root, [&](Operation &op) {
        if (isa(op, opnames::kLoad) || isa(op, opnames::kStore))
            out.push_back(classify(op, lenient));
    });
    return out;
}

std::vector<MemAccess>
collectAccesses(Block &block, bool lenient)
{
    std::vector<MemAccess> out;
    walk(block, [&](Operation &op) {
        if (isa(op, opnames::kLoad) || isa(op, opnames::kStore))
            out.push_back(classify(op, lenient));
    });
    return out;
}

bool
isDefinedOutside(Value v, const Operation &loop)
{
    if (Operation *def = v.definingOp())
        return !def->isInside(&loop) && def != &loop;
    // Block argument: outside unless it belongs to a block nested in
    // (or owned by) the loop.
    Block *owner = v.ownerBlock();
    for (const Operation *op = owner->parentRegion()->parentOp(); op;
         op = op->parentOp()) {
        if (op == &loop)
            return false;
    }
    return true;
}

std::vector<Operation *>
topLevelLoops(Block &block)
{
    std::vector<Operation *> loops;
    for (auto &op : block.ops()) {
        if (isa(*op, opnames::kAffineFor))
            loops.push_back(op.get());
    }
    return loops;
}

Operation *
perfectlyNestedInner(Operation &loop)
{
    if (!isa(loop, opnames::kAffineFor))
        return nullptr;
    Block &body = loop.region(0).block();
    Operation *inner = nullptr;
    for (auto &op : body.ops()) {
        if (isTerminator(*op))
            continue;
        if (inner)
            return nullptr; // more than one non-terminator op
        if (!isa(*op, opnames::kAffineFor))
            return nullptr;
        inner = op.get();
    }
    return inner;
}

namespace {

/**
 * Check that every conflict between an access in loop1 (iteration i1) and
 * an access in loop2 (iteration i2) has i1 <= i2 at equal addresses:
 *   a1*i1 + r1 == a2*i2 + r2  with  i1 > i2  must be unsatisfiable.
 */
bool
pairFusionSafe(const MemAccess &first, const MemAccess &second,
               Operation &loop1, Operation &loop2, int64_t trip_count)
{
    auto flat1 = flattenAccess(first);
    auto flat2 = flattenAccess(second);
    if (!flat1 || !flat2)
        return false; // non-affine conflict: conservatively unsafe
    auto split1 = splitOnIv(*flat1, loop1);
    auto split2 = splitOnIv(*flat2, loop2);
    if (!split1 || !split2)
        return false;
    auto [a1, r1] = *split1;
    auto [a2, r2] = *split2;
    // Symbolic residuals must cancel for a decidable test.
    LinearExpr diff = r2 - r1; // a1*i1 == a2*i2 + diff
    if (!diff.isConstant())
        return false;
    int64_t c = diff.constant;

    if (a1 == a2) {
        if (a1 == 0)
            return c != 0; // same fixed address every iteration: unsafe
        // a1*i1 == a1*i2 + c  =>  i1 == i2 + c/a1. Unsafe iff a feasible
        // solution has i1 > i2, i.e. the shift is strictly positive and
        // small enough to land inside the iteration space.
        if (c % a1 != 0)
            return true;
        int64_t delta = c / a1;
        return !(delta > 0 && delta < trip_count);
    }
    if (a1 == 0) {
        // Loop1's address is fixed: it matches the i2 solving
        // a2*i2 + c == 0, and then *every* i1 pairs with that i2.
        if (a2 != 0 && c % a2 == 0) {
            int64_t i2 = -c / a2;
            if (i2 >= 0 && i2 < trip_count && trip_count - 1 > i2)
                return false;
        }
        return true;
    }
    // Mismatched strides: enumerate when small, else conservative.
    if (trip_count > (1 << 14))
        return false;
    for (int64_t i2 = 0; i2 < trip_count; ++i2) {
        int64_t rhs = a2 * i2 + c;
        if (rhs % a1 != 0)
            continue;
        int64_t i1 = rhs / a1;
        if (i1 >= 0 && i1 < trip_count && i1 > i2)
            return false;
    }
    return true;
}

} // namespace

bool
canFuseLoops(Operation &loop1, Operation &loop2)
{
    if (!isa(loop1, opnames::kAffineFor) ||
        !isa(loop2, opnames::kAffineFor)) {
        return false;
    }
    // Require identical constant bounds and step.
    auto trips1 = constantTripCount(loop1);
    auto trips2 = constantTripCount(loop2);
    if (!trips1 || !trips2 || *trips1 != *trips2)
        return false;
    AffineBound lb1 = getLowerBound(loop1), lb2 = getLowerBound(loop2);
    if (!lb1.isConstant() || !lb2.isConstant() ||
        lb1.constant != lb2.constant ||
        getStep(loop1) != getStep(loop2)) {
        return false;
    }

    auto accesses1 = collectAccesses(loop1);
    auto accesses2 = collectAccesses(loop2);
    for (const auto &first : accesses1) {
        for (const auto &second : accesses2) {
            if (!sameBuffer(first.memref, second.memref))
                continue;
            if (!first.is_store && !second.is_store)
                continue;
            if (!pairFusionSafe(first, second, loop1, loop2, *trips1))
                return false;
        }
    }
    return true;
}

bool
canInterchangeLoops(Operation &outer, Operation &inner)
{
    if (perfectlyNestedInner(outer) != &inner)
        return false;
    // Rectangular: inner bounds must not reference the outer iv.
    Value outer_iv = inductionVar(outer);
    for (Value operand : inner.operands()) {
        if (operand == outer_iv)
            return false;
    }
    auto inner_trips = constantTripCount(inner);
    auto outer_trips = constantTripCount(outer);
    if (!inner_trips || !outer_trips)
        return false;

    // Conservative dependence rule: every conflicting pair must have
    // identical flattened address functions (distance-zero in both ivs).
    auto accesses = collectAccesses(inner);
    for (size_t i = 0; i < accesses.size(); ++i) {
        for (size_t j = 0; j < accesses.size(); ++j) {
            if (i == j)
                continue;
            const auto &a = accesses[i];
            const auto &b = accesses[j];
            if (!sameBuffer(a.memref, b.memref))
                continue;
            if (!a.is_store && !b.is_store)
                continue;
            auto flat_a = flattenAccess(a);
            auto flat_b = flattenAccess(b);
            if (!flat_a || !flat_b || !(*flat_a == *flat_b))
                return false;
        }
    }
    return true;
}

bool
hasLoopCarriedDependence(Operation &loop, bool lenient)
{
    auto accesses = collectAccesses(loop, lenient);
    for (size_t i = 0; i < accesses.size(); ++i) {
        for (size_t j = 0; j < accesses.size(); ++j) {
            const auto &a = accesses[i];
            const auto &b = accesses[j];
            if (!a.is_store)
                continue;
            if (!sameBuffer(a.memref, b.memref))
                continue;
            auto flat_a = flattenAccess(a);
            auto flat_b = flattenAccess(b);
            if (!flat_a || !flat_b)
                return true; // non-affine: conservatively carried
            auto split_a = splitOnIv(*flat_a, loop);
            auto split_b = splitOnIv(*flat_b, loop);
            if (!split_a || !split_b)
                return true;
            auto [ca, ra] = *split_a;
            auto [cb, rb] = *split_b;
            LinearExpr diff = rb - ra;
            if (!diff.isConstant())
                return true;
            // ca*i + ra == cb*j + rb with i != j?
            if (ca == cb) {
                if (ca == 0) {
                    if (diff.constant == 0)
                        return true; // same scalar cell every iteration
                    continue;
                }
                if (diff.constant != 0 && diff.constant % ca == 0)
                    return true; // fixed nonzero distance
                continue;
            }
            return true; // mismatched strides: assume carried
        }
    }
    return false;
}

std::optional<int64_t>
minCarriedDependenceDistance(Operation &loop, bool lenient)
{
    auto accesses = collectAccesses(loop, lenient);
    std::optional<int64_t> min_distance;
    for (const auto &store : accesses) {
        if (!store.is_store)
            continue;
        for (const auto &other : accesses) {
            if (!sameBuffer(store.memref, other.memref))
                continue;
            if (other.op == store.op)
                continue;
            auto flat_s = flattenAccess(store);
            auto flat_o = flattenAccess(other);
            if (!flat_s || !flat_o)
                return std::nullopt;
            auto split_s = splitOnIv(*flat_s, loop);
            auto split_o = splitOnIv(*flat_o, loop);
            if (!split_s || !split_o)
                return std::nullopt;
            auto [cs, rs] = *split_s;
            auto [co, ro] = *split_o;
            LinearExpr diff = rs - ro; // cs*i + rs == co*j + ro
            if (!diff.isConstant())
                return std::nullopt;
            if (cs != co)
                return std::nullopt;
            if (cs == 0) {
                if (diff.constant == 0) {
                    min_distance = 1; // tightest possible recurrence
                }
                continue;
            }
            if (diff.constant % cs != 0)
                continue;
            // cs*i + rs == cs*j + ro  =>  j = i + (rs - ro)/cs.
            int64_t distance = diff.constant / cs;
            if (distance > 0) {
                if (!min_distance || distance < *min_distance)
                    min_distance = distance;
            }
        }
    }
    return min_distance;
}

} // namespace seer::ir
