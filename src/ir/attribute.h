/**
 * @file
 * Operation attributes: small immutable constants attached to operations.
 *
 * Attributes carry the static payload of an op: literal values for
 * arith.constant, comparison predicates, symbol names, affine bound
 * encodings for affine.for, and so on.
 */
#ifndef SEER_IR_ATTRIBUTE_H_
#define SEER_IR_ATTRIBUTE_H_

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "ir/type.h"

namespace seer::ir {

/** A single attribute value. */
class Attribute
{
  public:
    Attribute() : value_(std::monostate{}) {}
    Attribute(int64_t v) : value_(v) {}
    Attribute(double v) : value_(v) {}
    Attribute(std::string v) : value_(std::move(v)) {}
    Attribute(const char *v) : value_(std::string(v)) {}
    Attribute(std::vector<int64_t> v) : value_(std::move(v)) {}
    Attribute(Type t) : value_(t) {}

    bool isNull() const
    {
        return std::holds_alternative<std::monostate>(value_);
    }
    bool isInt() const { return std::holds_alternative<int64_t>(value_); }
    bool isFloat() const { return std::holds_alternative<double>(value_); }
    bool isString() const
    {
        return std::holds_alternative<std::string>(value_);
    }
    bool isIntArray() const
    {
        return std::holds_alternative<std::vector<int64_t>>(value_);
    }
    bool isType() const { return std::holds_alternative<Type>(value_); }

    int64_t asInt() const { return std::get<int64_t>(value_); }
    double asFloat() const { return std::get<double>(value_); }
    const std::string &asString() const
    {
        return std::get<std::string>(value_);
    }
    const std::vector<int64_t> &asIntArray() const
    {
        return std::get<std::vector<int64_t>>(value_);
    }
    Type asType() const { return std::get<Type>(value_); }

    bool operator==(const Attribute &other) const
    {
        return value_ == other.value_;
    }

    /** Render for the printer (e.g. "5", "2.5", "\"slt\""). */
    std::string str() const;

  private:
    std::variant<std::monostate, int64_t, double, std::string,
                 std::vector<int64_t>, Type>
        value_;
};

/** Ordered attribute dictionary (ordered for deterministic printing). */
using AttrMap = std::map<std::string, Attribute>;

} // namespace seer::ir

#endif // SEER_IR_ATTRIBUTE_H_
