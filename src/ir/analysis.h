/**
 * @file
 * Program analyses shared by the control-path passes, the HLS scheduler
 * and the SeerLang bridge.
 *
 * The affine analysis here is *deliberately strict*, modeling what the
 * paper says about polyhedral tooling: it understands constants, +, -, and
 * multiplication by constants, but refuses shifts and bitwise tricks. The
 * datapath rewrites' job (Figure 9) is to rewrite `(i << 1) + i` into
 * `3 * i` so that this analyzer succeeds.
 */
#ifndef SEER_IR_ANALYSIS_H_
#define SEER_IR_ANALYSIS_H_

#include <optional>

#include "ir/ops.h"

namespace seer::ir {

/**
 * A linear integer expression: constant + sum(coeff * base). Bases are SSA
 * values the analysis could not decompose further (loop ivs, arguments).
 */
struct LinearExpr
{
    int64_t constant = 0;
    std::map<ValueImpl *, int64_t> coeffs;

    bool isConstant() const { return coeffs.empty(); }

    /** Coefficient of `v` (0 if absent). */
    int64_t coeff(Value v) const;

    /** True if the only base (if any) is `iv`. */
    bool dependsOnlyOn(Value iv) const;

    LinearExpr operator+(const LinearExpr &other) const;
    LinearExpr operator-(const LinearExpr &other) const;
    LinearExpr scaled(int64_t factor) const;

    bool operator==(const LinearExpr &other) const
    {
        return constant == other.constant && coeffs == other.coeffs;
    }
};

/**
 * Strict affine analysis of an index expression. Returns nullopt when the
 * def chain contains anything a polyhedral analyzer would not interpret
 * (shifts, and/or/xor, multiplication of two variables, loads, selects...).
 */
std::optional<LinearExpr> analyzeAffine(Value v);

/**
 * Lenient variant modeling an SCEV-style scalar-evolution analysis (the
 * downstream HLS scheduler's view): additionally understands left shift
 * by a constant as multiplication by a power of two. The source-level
 * polyhedral passes must NOT use this — the gap between the two
 * analyses is the Figure 9 tension.
 */
std::optional<LinearExpr> analyzeAffineLenient(Value v);

/** A classified memory access inside some region. */
struct MemAccess
{
    Operation *op = nullptr; ///< the load or store
    Value memref;            ///< the accessed buffer (root operand)
    bool is_store = false;
    /** Per-dimension strict-affine index forms; nullopt = non-affine. */
    std::vector<std::optional<LinearExpr>> indices;

    bool
    allAffine() const
    {
        for (const auto &index : indices) {
            if (!index)
                return false;
        }
        return true;
    }
};

/** Collect all loads/stores nested under `root` (including nested loops).
 *  `lenient` selects the SCEV-style index analysis. */
std::vector<MemAccess> collectAccesses(Operation &root,
                                       bool lenient = false);

/** Collect loads/stores in `block` only at this nesting depth and below. */
std::vector<MemAccess> collectAccesses(Block &block,
                                       bool lenient = false);

/** True if `v` is defined outside of `loop` (i.e., loop-invariant). */
bool isDefinedOutside(Value v, const Operation &loop);

/** All top-level affine.for ops directly inside `block` in order. */
std::vector<Operation *> topLevelLoops(Block &block);

/**
 * Perfect-nest check: `loop` contains exactly one op besides its
 * terminator and that op is an affine.for. Returns the inner loop or null.
 */
Operation *perfectlyNestedInner(Operation &loop);

/**
 * Fusion legality for two adjacent sibling loops with identical constant
 * bounds and step. Checks every pair of conflicting accesses (same buffer,
 * at least one store): fusion is legal iff every dependence from loop1
 * iteration i1 to loop2 iteration i2 satisfies i1 <= i2, so the fused loop
 * still executes the producer before the consumer.
 *
 * Non-affine accesses to a shared buffer make the answer conservatively
 * "illegal" — this is the Figure 9 behaviour the datapath rewrites unlock.
 */
bool canFuseLoops(Operation &loop1, Operation &loop2);

/**
 * Interchange legality for a perfect 2-nest: requires rectangular bounds
 * (inner bounds invariant of the outer iv) and no loop-carried dependence
 * that interchange would reverse. Conservative.
 */
bool canInterchangeLoops(Operation &outer, Operation &inner);

/** True if the loop body carries a memory dependence across iterations
 *  (store in iteration i conflicting with an access in iteration j != i).
 *  Used by the HLS scheduler to derive the recurrence-constrained II. */
bool hasLoopCarriedDependence(Operation &loop, bool lenient = false);

/**
 * Distance of the tightest loop-carried store->load dependence (in
 * iterations), when it can be proven; nullopt = unknown/none provable.
 */
std::optional<int64_t> minCarriedDependenceDistance(Operation &loop,
                                                    bool lenient = false);

} // namespace seer::ir

#endif // SEER_IR_ANALYSIS_H_
