/**
 * @file
 * A reference interpreter for the IR.
 *
 * Serves three roles in the reproduction:
 *  - functional co-simulation (the paper's "HLS co-simulation" oracle),
 *  - the equivalence checker backing translation validation (stand-in for
 *    Synopsys VC Formal), and
 *  - the profiler that records loop trip counts and block execution counts
 *    consumed by the HLS performance model.
 */
#ifndef SEER_IR_INTERP_H_
#define SEER_IR_INTERP_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <variant>
#include <vector>

#include "ir/op.h"
#include "support/error.h"
#include "support/exec_context.h"

namespace seer::ir {

/**
 * Why an interpretation stopped abnormally. The distinction that
 * matters to callers is cancellation (Deadline: the *caller's* budget
 * expired, says nothing about the program) versus a genuine trap (the
 * *program* faulted). Everything else refines the trap taxonomy for
 * reporting (e.g. the corpus harness's failure buckets).
 */
enum class TrapKind
{
    Deadline,     ///< cooperative wall-clock cancellation, not a fault
    StepLimit,    ///< max_steps / iteration budget exhausted
    OutOfBounds,  ///< memref access outside the buffer
    DivideByZero, ///< integer division/remainder by zero
    BadCall,      ///< missing function / argument arity mismatch
    Unsupported,  ///< op or attribute the interpreter cannot execute
};

/** Stable lowercase name for a trap kind (report/JSON keys). */
const char *trapKindName(TrapKind kind);

/**
 * The error thrown for every interpreter trap. Derives from FatalError
 * so existing catch sites keep working and messages keep their
 * "interpret: ..." prefixes; callers that must distinguish cancellation
 * from a genuine fault catch InterpError and switch on kind() instead
 * of string-matching the message.
 */
class InterpError : public FatalError
{
  public:
    InterpError(TrapKind kind, const std::string &msg)
        : FatalError(msg), kind_(kind)
    {}

    TrapKind kind() const { return kind_; }

    /** True when the trap is cooperative cancellation, not a fault. */
    bool isCancellation() const { return kind_ == TrapKind::Deadline; }

  private:
    TrapKind kind_;
};

/** A runtime buffer backing one memref value. */
struct Buffer
{
    Type type; ///< the memref type
    std::vector<int64_t> ints;
    std::vector<double> floats;

    explicit Buffer(Type memref_type);

    int64_t size() const;
    bool isFloat() const { return type.elementType().isFloat(); }
};

/** A runtime value: integer scalar, float scalar, or buffer reference. */
using RtValue = std::variant<int64_t, double, Buffer *>;

/** Per-loop/per-block execution statistics gathered during a run. */
struct Profile
{
    /** Loop op -> (times entered, total iterations executed). */
    std::map<const Operation *, std::pair<uint64_t, uint64_t>> loops;
    /** Block -> times executed. */
    std::map<const Block *, uint64_t> blocks;
    /** Op -> times executed (ops only, not per-region bookkeeping). */
    std::map<const Operation *, uint64_t> ops;
};

/** Result of interpreting one function call. */
struct InterpResult
{
    std::vector<RtValue> results;
    uint64_t steps = 0;
    Profile profile;
};

/** Interpreter options. */
struct InterpOptions
{
    /** Abort with fatal() after this many op executions (runaway guard). */
    uint64_t max_steps = 500'000'000;
    /** Collect the Profile (slightly slower). */
    bool profile = false;
    /**
     * Cooperative cancellation: the context is polled every few
     * thousand steps, so a long-running simulation (e.g. an
     * equivalence check's co-execution) stops shortly after its
     * deadline/budget/SIGINT instead of running its full step budget.
     * Cancellation traps with an InterpError of kind
     * TrapKind::Deadline (message prefix "interpret: deadline" kept
     * for compatibility) — catch InterpError and test isCancellation()
     * to distinguish cancellation from a genuine trap.
     */
    ExecContext exec;
};

/**
 * Interpret `func_name` in `module` with the given arguments. Buffer
 * arguments are mutated in place (caller observes final memory state).
 * Throws InterpError (a FatalError carrying a TrapKind) on traps:
 * out-of-bounds access, division by zero, step-limit exhaustion,
 * deadline cancellation.
 */
InterpResult interpret(const Module &module, const std::string &func_name,
                       std::vector<RtValue> args,
                       const InterpOptions &options = {});

/** Wrap a signed value to `width` bits (two's complement, sign-extended). */
int64_t wrapToWidth(int64_t value, unsigned width);

} // namespace seer::ir

#endif // SEER_IR_INTERP_H_
