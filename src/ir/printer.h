/**
 * @file
 * Textual IR printing in a compact MLIR-like syntax.
 *
 * The printer and parser (parser.h) form a round-trip pair: printing a
 * module and re-parsing it yields structurally identical IR. This is the
 * format the benchmark programs are written in and the format emitted to
 * the user at the end of the SEER flow (standing in for the paper's emitC
 * SystemC back end).
 */
#ifndef SEER_IR_PRINTER_H_
#define SEER_IR_PRINTER_H_

#include <iosfwd>
#include <string>

#include "ir/op.h"

namespace seer::ir {

/** Print a whole module. */
void print(const Module &module, std::ostream &os);

/** Print one operation (and its regions) at the given indent level. */
void print(const Operation &op, std::ostream &os, int indent = 0);

/** Convenience: print to a string. */
std::string toString(const Module &module);
std::string toString(const Operation &op);

} // namespace seer::ir

#endif // SEER_IR_PRINTER_H_
