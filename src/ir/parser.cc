#include "ir/parser.h"

#include <cctype>
#include <map>
#include <vector>

#include "ir/builder.h"
#include "ir/ops.h"
#include "support/error.h"

namespace seer::ir {

namespace {

// --- Lexer --------------------------------------------------------------

enum class Tok {
    End,
    Ident,    // bare identifier, possibly with dots: arith.addi, to, else
    Percent,  // %name
    At,       // @name
    Int,      // 123
    Float,    // 1.5, 2e-3
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Less,
    Greater,
    Comma,
    Equal,
    Colon,
    Plus,
    Minus,
    Star,
    Arrow, // ->
};

struct Token
{
    Tok kind = Tok::End;
    std::string text;
    int64_t int_value = 0;
    double float_value = 0;
    int line = 0;
    int col = 0;
};

class Lexer
{
  public:
    explicit Lexer(std::string_view text) : text_(text) { advance(); }

    const Token &peek() const { return current_; }

    Token
    next()
    {
        Token t = current_;
        advance();
        return t;
    }

    [[noreturn]] void
    error(const std::string &msg) const
    {
        fatal(MsgBuilder() << "parse error at line " << current_.line
                           << ", col " << current_.col << ": " << msg
                           << " (got '" << current_.text << "')");
    }

  private:
    void
    skipSpace()
    {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == '\n') {
                ++line_;
                col_ = 1;
                ++pos_;
            } else if (std::isspace(static_cast<unsigned char>(c))) {
                ++col_;
                ++pos_;
            } else if (c == '/' && pos_ + 1 < text_.size() &&
                       text_[pos_ + 1] == '/') {
                while (pos_ < text_.size() && text_[pos_] != '\n')
                    ++pos_;
            } else {
                break;
            }
        }
    }

    char
    cur() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    void
    advance()
    {
        skipSpace();
        current_ = Token();
        current_.line = line_;
        current_.col = col_;
        if (pos_ >= text_.size()) {
            current_.kind = Tok::End;
            current_.text = "<eof>";
            return;
        }
        char c = cur();
        size_t start = pos_;
        auto take = [&](Tok kind, size_t n) {
            current_.kind = kind;
            current_.text = std::string(text_.substr(pos_, n));
            pos_ += n;
            col_ += static_cast<int>(n);
        };
        if (c == '%' || c == '@') {
            ++pos_;
            while (pos_ < text_.size() &&
                   (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                    text_[pos_] == '_')) {
                ++pos_;
            }
            current_.kind = c == '%' ? Tok::Percent : Tok::At;
            current_.text = std::string(text_.substr(start + 1,
                                                     pos_ - start - 1));
            col_ += static_cast<int>(pos_ - start);
            return;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            lexNumber();
            return;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            ++pos_;
            while (pos_ < text_.size() &&
                   (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                    text_[pos_] == '_' || text_[pos_] == '.')) {
                ++pos_;
            }
            current_.kind = Tok::Ident;
            current_.text = std::string(text_.substr(start, pos_ - start));
            col_ += static_cast<int>(pos_ - start);
            // memref<...> is lexed as one Ident token carrying the full
            // spelling, because shape syntax (8x8xi32) does not tokenize.
            if (current_.text == "memref" && cur() == '<') {
                size_t close = text_.find('>', pos_);
                if (close == std::string_view::npos)
                    fatal("unterminated memref<...> type");
                current_.text +=
                    std::string(text_.substr(pos_, close - pos_ + 1));
                col_ += static_cast<int>(close - pos_ + 1);
                pos_ = close + 1;
            }
            return;
        }
        switch (c) {
          case '(': take(Tok::LParen, 1); return;
          case ')': take(Tok::RParen, 1); return;
          case '[': take(Tok::LBracket, 1); return;
          case ']': take(Tok::RBracket, 1); return;
          case '{': take(Tok::LBrace, 1); return;
          case '}': take(Tok::RBrace, 1); return;
          case '<': take(Tok::Less, 1); return;
          case '>': take(Tok::Greater, 1); return;
          case ',': take(Tok::Comma, 1); return;
          case '=': take(Tok::Equal, 1); return;
          case ':': take(Tok::Colon, 1); return;
          case '+': take(Tok::Plus, 1); return;
          case '*': take(Tok::Star, 1); return;
          case '-':
            if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '>') {
                take(Tok::Arrow, 2);
            } else {
                take(Tok::Minus, 1);
            }
            return;
          default:
            fatal(MsgBuilder() << "unexpected character '" << c
                               << "' at line " << line_);
        }
    }

    void
    lexNumber()
    {
        size_t start = pos_;
        bool is_float = false;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
        if (pos_ < text_.size() && text_[pos_] == '.' &&
            pos_ + 1 < text_.size() &&
            std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
            is_float = true;
            ++pos_;
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
            }
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            size_t save = pos_;
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-')) {
                ++pos_;
            }
            if (pos_ < text_.size() &&
                std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                is_float = true;
                while (pos_ < text_.size() &&
                       std::isdigit(
                           static_cast<unsigned char>(text_[pos_]))) {
                    ++pos_;
                }
            } else {
                pos_ = save;
            }
        }
        std::string text(text_.substr(start, pos_ - start));
        current_.text = text;
        col_ += static_cast<int>(pos_ - start);
        // stod/stoll throw std::out_of_range on out-of-range literals
        // (e.g. fuzzer-generated 100-digit numbers); surface those as
        // ordinary parse errors, never as foreign exception types.
        try {
            if (is_float) {
                current_.kind = Tok::Float;
                current_.float_value = std::stod(text);
            } else {
                current_.kind = Tok::Int;
                current_.int_value = std::stoll(text);
            }
        } catch (const std::exception &) {
            fatal(MsgBuilder() << "numeric literal out of range at line "
                               << line_ << ": '" << text << "'");
        }
    }

    std::string_view text_;
    size_t pos_ = 0;
    int line_ = 1;
    int col_ = 1;
    Token current_;
};

// --- Type parsing ---------------------------------------------------------

Type
typeFromSpelling(const std::string &spelling)
{
    if (spelling == "index")
        return Type::index();
    if (spelling == "f64")
        return Type::f64();
    if (spelling == "none")
        return Type::none();
    if (spelling.size() >= 2 && spelling[0] == 'i' &&
        std::isdigit(static_cast<unsigned char>(spelling[1]))) {
        for (size_t i = 1; i < spelling.size(); ++i) {
            if (!std::isdigit(static_cast<unsigned char>(spelling[i])))
                fatal("unknown type '" + spelling + "'");
        }
        unsigned width = 0;
        try {
            width = static_cast<unsigned>(std::stoul(spelling.substr(1)));
        } catch (const std::exception &) {
            fatal("unsupported integer width in '" + spelling + "'");
        }
        if (width < 1 || width > 64)
            fatal("unsupported integer width in '" + spelling + "'");
        return Type::integer(width);
    }
    if (spelling.rfind("memref<", 0) == 0 && spelling.back() == '>') {
        std::string inner = spelling.substr(7, spelling.size() - 8);
        std::vector<int64_t> shape;
        size_t pos = 0;
        while (true) {
            size_t x = inner.find('x', pos);
            if (x == std::string::npos)
                break;
            std::string piece = inner.substr(pos, x - pos);
            bool all_digits = !piece.empty();
            for (char c : piece) {
                if (!std::isdigit(static_cast<unsigned char>(c)))
                    all_digits = false;
            }
            if (!all_digits)
                break;
            try {
                shape.push_back(std::stoll(piece));
            } catch (const std::exception &) {
                fatal("dimension out of range in '" + spelling + "'");
            }
            pos = x + 1;
        }
        if (shape.empty())
            fatal("memref type needs at least one dimension: " + spelling);
        Type elem = typeFromSpelling(inner.substr(pos));
        return Type::memref(std::move(shape), elem);
    }
    fatal("unknown type '" + spelling + "'");
}

// --- Parser -----------------------------------------------------------

class Parser
{
  public:
    explicit Parser(std::string_view text) : lexer_(text) {}

    Module
    parseModule()
    {
        Module module;
        while (lexer_.peek().kind != Tok::End) {
            if (lexer_.peek().kind != Tok::Ident ||
                lexer_.peek().text != "func.func") {
                lexer_.error("expected func.func at top level");
            }
            module.push_back(parseFunc());
        }
        return module;
    }

  private:
    // Scoped SSA value table.
    std::vector<std::map<std::string, Value>> scopes_;

    void pushScope() { scopes_.emplace_back(); }
    void popScope() { scopes_.pop_back(); }

    void
    define(const std::string &name, Value value)
    {
        value.impl()->setNameHint(name);
        scopes_.back()[name] = value;
    }

    Value
    lookup(const std::string &name)
    {
        for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
            auto found = it->find(name);
            if (found != it->end())
                return found->second;
        }
        fatal(MsgBuilder() << "use of undefined value %" << name);
    }

    Token
    expect(Tok kind, const char *what)
    {
        if (lexer_.peek().kind != kind)
            lexer_.error(MsgBuilder() << "expected " << what);
        return lexer_.next();
    }

    bool
    accept(Tok kind)
    {
        if (lexer_.peek().kind == kind) {
            lexer_.next();
            return true;
        }
        return false;
    }

    bool
    acceptKeyword(const char *kw)
    {
        if (lexer_.peek().kind == Tok::Ident && lexer_.peek().text == kw) {
            lexer_.next();
            return true;
        }
        return false;
    }

    Type
    parseTypeTok()
    {
        Token t = expect(Tok::Ident, "a type");
        return typeFromSpelling(t.text);
    }

    int64_t
    parseInt()
    {
        bool negative = accept(Tok::Minus);
        Token t = expect(Tok::Int, "an integer");
        return negative ? -t.int_value : t.int_value;
    }

    // --- Operations -----------------------------------------------

    Operation::Ptr
    parseFunc()
    {
        lexer_.next(); // func.func
        Token name = expect(Tok::At, "@function-name");
        auto op = std::make_unique<Operation>(Symbol(opnames::kFunc));
        op->setAttr("sym_name", Attribute(name.text));
        Block &body = op->addRegion().block();

        pushScope();
        expect(Tok::LParen, "'('");
        bool first = true;
        while (!accept(Tok::RParen)) {
            if (!first)
                expect(Tok::Comma, "','");
            first = false;
            Token arg = expect(Tok::Percent, "%argument");
            expect(Tok::Colon, "':'");
            Type type = parseTypeTok();
            define(arg.text, body.addArg(type, arg.text));
        }
        if (accept(Tok::Arrow))
            op->setAttr("result_type", Attribute(parseTypeTok()));
        parseBlockBody(body, opnames::kReturn);
        popScope();
        return op;
    }

    /**
     * Parse "{ ops... }" into `block`, inserting `terminator` if the block
     * does not end with one.
     */
    void
    parseBlockBody(Block &block, std::string_view terminator)
    {
        expect(Tok::LBrace, "'{'");
        pushScope();
        while (!accept(Tok::RBrace))
            parseStatement(block);
        popScope();
        if (block.empty() || !isTerminator(block.back())) {
            OpBuilder::atEnd(block).create(terminator, {}, {});
        }
    }

    void
    parseStatement(Block &block)
    {
        // Optional result list.
        std::vector<std::string> result_names;
        if (lexer_.peek().kind == Tok::Percent) {
            result_names.push_back(lexer_.next().text);
            while (accept(Tok::Comma))
                result_names.push_back(
                    expect(Tok::Percent, "%result").text);
            expect(Tok::Equal, "'='");
        }
        Token name = expect(Tok::Ident, "an operation name");
        const std::string &op_name = name.text;

        Operation *op = nullptr;
        OpBuilder builder = OpBuilder::atEnd(block);
        if (op_name == opnames::kAffineFor) {
            op = parseAffineFor(builder);
        } else if (op_name == opnames::kIf) {
            op = parseIf(builder, result_names.size());
        } else if (op_name == opnames::kWhile) {
            op = parseWhile(builder);
        } else if (op_name == opnames::kConstant) {
            op = parseConstant(builder);
        } else if (op_name == opnames::kLoad) {
            op = parseLoad(builder);
        } else if (op_name == opnames::kStore) {
            op = parseStore(builder);
        } else if (op_name == opnames::kAlloc) {
            op = parseAlloc(builder);
        } else if (op_name == opnames::kCmpI || op_name == opnames::kCmpF) {
            op = parseCmp(builder, op_name);
        } else if (op_name == opnames::kCall) {
            op = parseCallOp(builder);
        } else if (op_name == opnames::kCondition ||
                   op_name == opnames::kYield ||
                   op_name == opnames::kAffineYield ||
                   op_name == opnames::kReturn) {
            op = parseTerminatorOp(builder, op_name);
        } else if (isRegisteredOp(Symbol(op_name))) {
            op = parseGeneric(builder, op_name);
        } else {
            lexer_.error("unknown operation");
        }

        if (op->numResults() != result_names.size()) {
            lexer_.error(MsgBuilder()
                         << "op " << op_name << " produces "
                         << op->numResults() << " results but "
                         << result_names.size() << " names were bound");
        }
        for (size_t i = 0; i < result_names.size(); ++i)
            define(result_names[i], op->result(i));
    }

    AffineBound
    parseBound()
    {
        AffineBound bound;
        bool first = true;
        int64_t sign = 1;
        while (true) {
            if (!first) {
                if (accept(Tok::Plus)) {
                    sign = 1;
                } else if (accept(Tok::Minus)) {
                    sign = -1;
                } else {
                    break;
                }
            }
            first = false;
            if (lexer_.peek().kind == Tok::Percent) {
                Token v = lexer_.next();
                bound.terms.emplace_back(lookup(v.text), sign);
            } else if (lexer_.peek().kind == Tok::Int ||
                       lexer_.peek().kind == Tok::Minus) {
                int64_t value = parseInt() * sign;
                if (accept(Tok::Star)) {
                    Token v = expect(Tok::Percent, "%value after '*'");
                    bound.terms.emplace_back(lookup(v.text), value);
                } else {
                    bound.constant += value;
                }
            } else {
                lexer_.error("expected bound term");
            }
        }
        return bound;
    }

    Operation *
    parseAffineFor(OpBuilder &builder)
    {
        Token iv = expect(Tok::Percent, "%induction-variable");
        expect(Tok::Equal, "'='");
        AffineBound lb = parseBound();
        if (!acceptKeyword("to"))
            lexer_.error("expected 'to' in affine.for");
        AffineBound ub = parseBound();
        int64_t step = 1;
        if (acceptKeyword("step"))
            step = parseInt();
        Operation *op = builder.affineFor(lb, ub, step, iv.text);
        Block &body = op->region(0).block();
        pushScope();
        define(iv.text, body.arg(0));
        parseBlockBody(body, opnames::kAffineYield);
        popScope();
        return op;
    }

    Operation *
    parseIf(OpBuilder &builder, size_t num_results)
    {
        Token cond = expect(Tok::Percent, "%condition");
        std::vector<Type> result_types;
        if (accept(Tok::Arrow)) {
            expect(Tok::LParen, "'('");
            bool first = true;
            while (!accept(Tok::RParen)) {
                if (!first)
                    expect(Tok::Comma, "','");
                first = false;
                result_types.push_back(parseTypeTok());
            }
        }
        if (result_types.size() != num_results)
            lexer_.error("scf.if result count mismatch");
        Operation *op =
            builder.scfIf(lookup(cond.text), std::move(result_types));
        parseBlockBody(op->region(0).block(), opnames::kYield);
        if (acceptKeyword("else")) {
            parseBlockBody(op->region(1).block(), opnames::kYield);
        } else {
            OpBuilder::atEnd(op->region(1).block())
                .create(opnames::kYield, {}, {});
        }
        return op;
    }

    Operation *
    parseWhile(OpBuilder &builder)
    {
        Operation *op = builder.scfWhile();
        parseBlockBody(op->region(0).block(), opnames::kCondition);
        Block &cond_block = op->region(0).block();
        if (cond_block.empty() ||
            !isa(cond_block.back(), opnames::kCondition)) {
            lexer_.error("scf.while condition region must end in "
                         "scf.condition");
        }
        if (!acceptKeyword("do"))
            lexer_.error("expected 'do' after scf.while condition block");
        parseBlockBody(op->region(1).block(), opnames::kYield);
        return op;
    }

    Operation *
    parseConstant(OpBuilder &builder)
    {
        bool negative = accept(Tok::Minus);
        Token value = lexer_.next();
        expect(Tok::Colon, "':'");
        Type type = parseTypeTok();
        if (value.kind == Tok::Int) {
            int64_t v = negative ? -value.int_value : value.int_value;
            return builder.intConstant(type, v).definingOp();
        }
        if (value.kind == Tok::Float) {
            double v =
                negative ? -value.float_value : value.float_value;
            return builder.floatConstant(v).definingOp();
        }
        lexer_.error("expected constant literal");
    }

    std::vector<Value>
    parseIndexList()
    {
        std::vector<Value> indices;
        expect(Tok::LBracket, "'['");
        bool first = true;
        while (!accept(Tok::RBracket)) {
            if (!first)
                expect(Tok::Comma, "','");
            first = false;
            Token v = expect(Tok::Percent, "%index");
            indices.push_back(lookup(v.text));
        }
        return indices;
    }

    Operation *
    parseLoad(OpBuilder &builder)
    {
        Token mem = expect(Tok::Percent, "%memref");
        std::vector<Value> indices = parseIndexList();
        expect(Tok::Colon, "':'");
        parseTypeTok(); // memref type, re-derived from the operand
        return builder.load(lookup(mem.text), std::move(indices))
            .definingOp();
    }

    Operation *
    parseStore(OpBuilder &builder)
    {
        Token value = expect(Tok::Percent, "%value");
        expect(Tok::Comma, "','");
        Token mem = expect(Tok::Percent, "%memref");
        std::vector<Value> indices = parseIndexList();
        expect(Tok::Colon, "':'");
        parseTypeTok();
        Value v = lookup(value.text);
        Value m = lookup(mem.text);
        std::vector<Value> operands{v, m};
        operands.insert(operands.end(), indices.begin(), indices.end());
        return builder.create(opnames::kStore, std::move(operands), {});
    }

    Operation *
    parseAlloc(OpBuilder &builder)
    {
        expect(Tok::LParen, "'('");
        expect(Tok::RParen, "')'");
        expect(Tok::Colon, "':'");
        Type type = parseTypeTok();
        return builder.alloc(type).definingOp();
    }

    Operation *
    parseCmp(OpBuilder &builder, const std::string &op_name)
    {
        Token pred = expect(Tok::Ident, "a predicate");
        expect(Tok::Comma, "','");
        Token lhs = expect(Tok::Percent, "%lhs");
        expect(Tok::Comma, "','");
        Token rhs = expect(Tok::Percent, "%rhs");
        expect(Tok::Colon, "':'");
        parseTypeTok();
        Operation *op = builder.create(
            op_name, {lookup(lhs.text), lookup(rhs.text)}, {Type::i1()});
        op->setAttr("predicate", Attribute(pred.text));
        return op;
    }

    Operation *
    parseCallOp(OpBuilder &builder)
    {
        Token callee = expect(Tok::At, "@callee");
        std::vector<Value> operands;
        expect(Tok::LParen, "'('");
        bool first = true;
        while (!accept(Tok::RParen)) {
            if (!first)
                expect(Tok::Comma, "','");
            first = false;
            operands.push_back(
                lookup(expect(Tok::Percent, "%argument").text));
        }
        expect(Tok::Colon, "':'");
        expect(Tok::LParen, "'('");
        first = true;
        while (!accept(Tok::RParen)) {
            if (!first)
                expect(Tok::Comma, "','");
            first = false;
            parseTypeTok();
        }
        expect(Tok::Arrow, "'->'");
        expect(Tok::LParen, "'('");
        std::vector<Type> result_types;
        first = true;
        while (!accept(Tok::RParen)) {
            if (!first)
                expect(Tok::Comma, "','");
            first = false;
            result_types.push_back(parseTypeTok());
        }
        Operation *op = builder.create(opnames::kCall, std::move(operands),
                                       std::move(result_types));
        op->setAttr("callee", Attribute(callee.text));
        return op;
    }

    Operation *
    parseTerminatorOp(OpBuilder &builder, const std::string &op_name)
    {
        std::vector<Value> operands;
        if (lexer_.peek().kind == Tok::Percent) {
            operands.push_back(lookup(lexer_.next().text));
            while (accept(Tok::Comma))
                operands.push_back(
                    lookup(expect(Tok::Percent, "%value").text));
            if (accept(Tok::Colon)) {
                parseTypeTok();
                while (accept(Tok::Comma))
                    parseTypeTok();
            }
        }
        return builder.create(op_name, std::move(operands), {});
    }

    Operation *
    parseGeneric(OpBuilder &builder, const std::string &op_name)
    {
        std::vector<Value> operands;
        if (lexer_.peek().kind == Tok::Percent) {
            operands.push_back(lookup(lexer_.next().text));
            while (accept(Tok::Comma))
                operands.push_back(
                    lookup(expect(Tok::Percent, "%operand").text));
        }
        expect(Tok::Colon, "':'");
        Type type = parseTypeTok();
        Type result_type = type;
        if (acceptKeyword("to"))
            result_type = parseTypeTok();
        const OpInfo &info = opInfo(Symbol(op_name));
        std::vector<Type> result_types;
        if (info.numResults != 0)
            result_types.push_back(result_type);
        return builder.create(op_name, std::move(operands),
                              std::move(result_types));
    }

    Lexer lexer_;
};

} // namespace

Module
parseModule(std::string_view text)
{
    return Parser(text).parseModule();
}

Type
parseType(std::string_view text)
{
    return typeFromSpelling(std::string(text));
}

} // namespace seer::ir
