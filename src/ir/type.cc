#include "ir/type.h"

#include <sstream>

#include "support/error.h"

namespace seer::ir {

Type
Type::integer(unsigned width)
{
    SEER_ASSERT(width >= 1 && width <= 64, "bad integer width " << width);
    Type t;
    t.kind_ = Kind::Integer;
    t.width_ = width;
    return t;
}

Type
Type::index()
{
    Type t;
    t.kind_ = Kind::Index;
    t.width_ = 64;
    return t;
}

Type
Type::f64()
{
    Type t;
    t.kind_ = Kind::Float;
    t.width_ = 64;
    return t;
}

Type
Type::memref(std::vector<int64_t> shape, Type element)
{
    SEER_ASSERT(element.isScalar(), "memref element must be scalar");
    SEER_ASSERT(!shape.empty(), "memref must have at least one dimension");
    for (int64_t dim : shape)
        SEER_ASSERT(dim > 0, "memref dims must be positive, got " << dim);
    Type t;
    t.kind_ = Kind::MemRef;
    t.width_ = 0;
    auto info = std::make_shared<MemRefInfo>();
    info->shape = std::move(shape);
    info->elemKind = element.kind();
    info->elemWidth = element.width_;
    t.memref_ = std::move(info);
    return t;
}

unsigned
Type::bitwidth() const
{
    SEER_ASSERT(isScalar(), "bitwidth() on non-scalar type " << str());
    return width_;
}

const std::vector<int64_t> &
Type::shape() const
{
    SEER_ASSERT(isMemRef(), "shape() on non-memref type");
    return memref_->shape;
}

Type
Type::elementType() const
{
    SEER_ASSERT(isMemRef(), "elementType() on non-memref type");
    Type t;
    t.kind_ = memref_->elemKind;
    t.width_ = memref_->elemWidth;
    return t;
}

int64_t
Type::numElements() const
{
    int64_t n = 1;
    for (int64_t dim : shape())
        n *= dim;
    return n;
}

bool
Type::operator==(const Type &other) const
{
    if (kind_ != other.kind_)
        return false;
    if (kind_ == Kind::MemRef) {
        return memref_->shape == other.memref_->shape &&
               memref_->elemKind == other.memref_->elemKind &&
               memref_->elemWidth == other.memref_->elemWidth;
    }
    return width_ == other.width_;
}

std::string
Type::str() const
{
    switch (kind_) {
      case Kind::None:
        return "none";
      case Kind::Integer:
        return "i" + std::to_string(width_);
      case Kind::Index:
        return "index";
      case Kind::Float:
        return "f64";
      case Kind::MemRef: {
        std::ostringstream os;
        os << "memref<";
        for (int64_t dim : memref_->shape)
            os << dim << "x";
        os << elementType().str() << ">";
        return os.str();
      }
    }
    return "?";
}

} // namespace seer::ir
