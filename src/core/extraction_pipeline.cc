#include "core/extraction_pipeline.h"

#include <chrono>

#include "seerlang/encoding.h"
#include "support/error.h"

namespace seer::core {

using eg::TermPtr;

namespace {

using Clock = std::chrono::steady_clock;

eg::ExtractOptions
optionsFor(const ExtractionPhase &phase, eg::ExtractStats &stats)
{
    eg::ExtractOptions options;
    options.naive = phase.extractor == ExtractorKind::Naive;
    options.budget = phase.budget;
    options.stats = &stats;
    options.exec = phase.exec;
    return options;
}

std::optional<eg::Extraction>
extractOne(const eg::EGraph &egraph, eg::EClassId root,
           const ExtractionPhase &phase, eg::ExtractStats &stats)
{
    eg::ExtractOptions options = optionsFor(phase, stats);
    if (phase.extractor == ExtractorKind::Exact)
        return eg::extractExact(egraph, root, *phase.model, options);
    return eg::extractGreedy(egraph, root, *phase.model, options);
}

/**
 * Refinement walk: keep the statement skeleton of `term` pinned and
 * re-extract every maximal pure sub-expression under the phase's model.
 * Sub-expressions unknown to the e-graph (or infeasible under the
 * model) are kept as-is — refinement can only improve the term.
 */
TermPtr
refineTerm(const eg::EGraph &egraph, const TermPtr &term,
           const ExtractionPhase &phase, eg::ExtractStats &stats,
           ExtractionPhaseStats &phase_stats)
{
    if (sl::isStatementSymbol(term->op())) {
        std::vector<TermPtr> children;
        children.reserve(term->arity());
        bool changed = false;
        for (const auto &child : term->children()) {
            TermPtr refined =
                refineTerm(egraph, child, phase, stats, phase_stats);
            changed |= refined != child;
            children.push_back(std::move(refined));
        }
        return changed ? eg::makeTerm(term->op(), std::move(children))
                       : term;
    }
    // Pure expression: extract the best equivalent under this model.
    auto id = egraph.lookupTerm(term);
    if (!id)
        return term;
    ++phase_stats.extractions;
    eg::ExtractStats one;
    auto extraction = extractOne(egraph, *id, phase, one);
    stats.classes_visited += one.classes_visited;
    stats.classes_recomputed += one.classes_recomputed;
    stats.bound_prunes += one.bound_prunes;
    stats.expansions += one.expansions;
    stats.used_analysis = stats.used_analysis || one.used_analysis;
    if (one.budget_exhausted)
        ++phase_stats.budget_exhaustions;
    if (!extraction)
        return term;
    phase_stats.tree_cost += extraction->tree_cost;
    phase_stats.dag_cost += extraction->dag_cost;
    return extraction->term;
}

void
foldStats(ExtractionPhaseStats &phase_stats, const eg::ExtractStats &stats,
          Clock::time_point t0)
{
    phase_stats.classes_visited = stats.classes_visited;
    phase_stats.classes_recomputed = stats.classes_recomputed;
    phase_stats.bound_prunes = stats.bound_prunes;
    phase_stats.expansions = stats.expansions;
    phase_stats.used_analysis = stats.used_analysis;
    phase_stats.seconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
}

} // namespace

const char *
toString(ExtractorKind kind)
{
    switch (kind) {
    case ExtractorKind::Greedy:
        return "greedy";
    case ExtractorKind::Exact:
        return "exact";
    case ExtractorKind::Naive:
        return "naive";
    }
    return "unknown";
}

ExtractionReport
ExtractionPipeline::run(const eg::EGraph &egraph, eg::EClassId root,
                        const std::function<bool()> &should_stop) const
{
    SEER_ASSERT(!phases_.empty(), "extraction pipeline has no phases");
    SEER_ASSERT(!phases_.front().refine,
                "the first extraction phase cannot be a refinement");
    ExtractionReport report;
    for (const ExtractionPhase &phase : phases_) {
        SEER_ASSERT(phase.model != nullptr,
                    "extraction phase '" << phase.name
                                         << "' has no cost model");
        ExtractionPhaseStats phase_stats;
        phase_stats.name = phase.name;
        phase_stats.extractor = toString(phase.extractor);
        report.phases.push_back(std::move(phase_stats));
    }

    for (size_t i = 0; i < phases_.size(); ++i) {
        const ExtractionPhase &phase = phases_[i];
        ExtractionPhaseStats &phase_stats = report.phases[i];
        if (i > 0 && should_stop && should_stop())
            break; // remaining phases stay ran = false
        auto t0 = Clock::now();
        eg::ExtractStats stats;
        phase_stats.ran = true;
        if (!phase.refine) {
            ++phase_stats.extractions;
            auto extraction = extractOne(egraph, root, phase, stats);
            if (!extraction) {
                report.infeasible = true;
                report.term = nullptr;
                foldStats(phase_stats, stats, t0);
                phase_stats.budget_exhaustions =
                    stats.budget_exhausted ? 1 : 0;
                return report;
            }
            report.term = extraction->term;
            phase_stats.tree_cost = extraction->tree_cost;
            phase_stats.dag_cost = extraction->dag_cost;
            if (stats.budget_exhausted)
                phase_stats.budget_exhaustions = 1;
        } else {
            report.term =
                refineTerm(egraph, report.term, phase, stats, phase_stats);
        }
        foldStats(phase_stats, stats, t0);
    }
    return report;
}

} // namespace seer::core
