/**
 * @file
 * The seer-optd optimization server: a long-lived process sharing one
 * warm, sharded evaluation cache across every request.
 *
 * Architecture (one connection = one request = one session):
 *
 *   accept loop (1 thread) --> TaskQueue (N workers) --> runSession()
 *                                    |                       |
 *                                    |            per-request ExecContext
 *                                    |            (deadline, mem budget,
 *                                    |             disconnect watcher)
 *                                    +--> shared ExternalEvalCache
 *                                         (mutex-striped, LRU + byte
 *                                          budget, pinned to the server
 *                                          governor, periodically saved
 *                                          via the atomic persist path)
 *
 * Isolation riding the existing contracts: a request that faults is
 * contained by optimize()'s checkpoint/rollback + degraded-mode
 * machinery and cannot take the daemon down; a request that balloons
 * is canceled by its own ExecContext budget; a client that disconnects
 * mid-request cancels its session cooperatively (External reason) and
 * the partial result is simply discarded. SIGTERM/SIGINT raise the
 * process-wide cancel flag, which every active session's context
 * already observes — shutdown is: stop accepting, let active sessions
 * degrade out, drain the queue, save the cache, exit 0.
 *
 * The class is embeddable (tests run a real server in-process);
 * tools/seer_optd.cc is a thin CLI around it.
 */
#ifndef SEER_CORE_SERVER_H_
#define SEER_CORE_SERVER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "core/session.h"
#include "support/socket.h"
#include "support/worker_pool.h"

namespace seer::core {

struct ServerOptions
{
    /** Unix socket path to listen on. */
    std::string socket_path;
    /** Concurrent sessions (TaskQueue workers). */
    unsigned workers = 2;
    /** Stripes of the shared cache. */
    unsigned cache_shards = 16;
    /** Byte budget of the shared cache (0 = unlimited). */
    uint64_t cache_max_bytes = 256ull * 1024 * 1024;
    /** Persist the cache here (loaded at start, saved periodically
     *  and at shutdown via the atomic tmp+fsync+rename path). */
    std::string cache_file;
    /** Requests between periodic saves (0 = only at shutdown). */
    unsigned save_every = 32;
    /** Clamp client deadlines to this many seconds (0 = no clamp). */
    double max_deadline_seconds = 0;
    /** Server-wide memory budget (governor; 0 = accounting only). */
    uint64_t mem_budget_bytes = 0;
    /** Suppress per-request log lines. */
    bool quiet = false;
};

/** Lifetime counters of one server (the shutdown summary). */
struct ServerCounters
{
    uint64_t requests = 0;        ///< sessions completed
    uint64_t failures = 0;        ///< sessions with exit 1
    uint64_t degraded = 0;        ///< sessions with exit 3
    uint64_t client_gone = 0;     ///< disconnects observed mid-request
    uint64_t protocol_errors = 0; ///< unparsable/oversized frames
    uint64_t cache_saves = 0;     ///< successful persistence passes
};

class OptServer
{
  public:
    explicit OptServer(ServerOptions options);
    ~OptServer();

    OptServer(const OptServer &) = delete;
    OptServer &operator=(const OptServer &) = delete;

    /**
     * Bind the socket, load the persisted cache (a corrupt file
     * cold-starts and is reported, never fatal), and start the accept
     * loop + workers. False with *error on a bind/listen failure.
     */
    bool start(std::string *error);

    /**
     * Stop accepting, cancel active sessions (External), drain the
     * queue, join, and save the cache. Idempotent; called by the
     * destructor if needed.
     */
    void stop();

    /** True until stop() (or a fatal accept-loop error). */
    bool running() const { return running_.load(); }

    ServerCounters counters() const;
    const ServerOptions &options() const { return options_; }
    const EvalCachePtr &cache() const { return cache_; }

  private:
    void acceptLoop();
    void handleClient(std::shared_ptr<net::Fd> client);
    /** Persist the shared cache if configured; logs, never throws. */
    void saveCache();

    ServerOptions options_;
    EvalCachePtr cache_;
    ExecContext server_exec_;
    net::Fd listen_fd_;
    std::unique_ptr<TaskQueue> queue_;
    std::thread accept_thread_;
    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};

    mutable std::mutex counters_mutex_;
    ServerCounters counters_;
    unsigned requests_since_save_ = 0;
    std::mutex save_mutex_;
};

} // namespace seer::core

#endif // SEER_CORE_SERVER_H_
