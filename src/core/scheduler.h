/**
 * @file
 * The propose/evaluate seam of the optimization driver: phase objects
 * and the pluggable, budget-aware proposal scheduler.
 *
 * Every external rule generates (pass, site) proposals each runner
 * iteration. Pre-refactor, proposal generation, evaluation and merging
 * were fused inside the prepare hook and the serial apply fold; this
 * layer splits them into three explicit phase objects —
 *
 *  - ProposePhase: candidate enumeration bookkeeping. Owns the attempt
 *    memo (formerly ExternalRuleContext::attempted, reset per phase by
 *    the driver via implicit convention) and the iteration-boundary
 *    signal (staging flush + scheduler epoch), so the contract is
 *    enforced in one place.
 *  - EvaluatePhase: runs the scheduled batch on the worker pool. Pure
 *    fan-out into the thread-safe evaluation cache; no ordering
 *    decisions of its own.
 *  - MergePhase: the serial apply fold's view of the seam. Gates
 *    consult-time inline evaluation (a budgeted-out candidate must not
 *    be evaluated through the back door) and feeds outcome observations
 *    to the scheduler.
 *
 * — coordinated through a ProposalScheduler plugged between propose and
 * evaluate: `schedule(wave)` orders and truncates one iteration's
 * candidate wave, `observe(candidate, outcome)` feeds evaluation
 * results back.
 *
 * Determinism contract: schedule() runs on the runner thread (prepare
 * hooks are serial) and observe() runs only in the serial apply fold,
 * so scheduler state advances in canonical order regardless of the
 * worker-pool width — `-j1 ≡ -jN` holds for every scheduler. Decisions
 * may read only deterministic candidate features (pass id, structural
 * hash, term size) and seeded randomness; wall-clock measurements are
 * telemetry, never decision inputs, so a fixed seed replays exactly
 * across runs, processes, and job counts.
 */
#ifndef SEER_CORE_SCHEDULER_H_
#define SEER_CORE_SCHEDULER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/pass_eval.h"
#include "egraph/egraph.h"
#include "support/json.h"

namespace seer::core {

/** Which ProposalScheduler optimize() plugs into the seam. */
enum class ScheduleKind
{
    /** Evaluate every candidate, in enumeration order — the
     *  refactor-validation baseline (bit-identical to the pre-seam
     *  loop). */
    Exhaustive,
    /** Seeded contextual bandit: UCB over (pass, structural-hash
     *  bucket) arms with an epsilon exploration floor and a
     *  per-iteration eval budget. */
    Bandit,
};

/** Parse a --schedule value ("exhaustive" | "bandit"). */
bool parseScheduleKind(const std::string &text, ScheduleKind *kind);
/** Stable lowercase name (CLI values, wire fields, stats JSON). */
const char *scheduleKindName(ScheduleKind kind);

/** One cold (pass, site) proposal offered to the scheduler. */
struct ProposalCandidate
{
    /** Pass id (the rule name). */
    std::string rule;
    /** Content-addressed evaluation key (alpha-canonical snippet hash
     *  + rule + config). Doubles as the structural-hash feature. */
    uint64_t key = 0;
    /** The locally extracted snippet term. */
    eg::TermPtr term;
    /** Deterministic eval-cost proxy: node count of the snippet. */
    size_t term_size = 0;
};

/** Serial-fold feedback for one consulted candidate. */
struct ProposalOutcome
{
    PassOutcome::Status status = PassOutcome::Status::NotApplied;
    /** The outcome was memoized (no cold evaluation this consult). */
    bool from_cache = false;
    /** Consult had to evaluate inline (prepare-stage extraction
     *  drift); counted so budget accounting stays honest. */
    bool inline_eval = false;
    /** Deterministic reward signal: snippet nodes minus replacement
     *  nodes (Status::Replaced only). Never a wall-clock measurement —
     *  rewards drive decisions, and decisions must replay. */
    double cost_delta = 0;
};

/** Per-arm telemetry (stats JSON "scheduler.arms"). */
struct SchedulerArmStats
{
    std::string pass;     ///< rule name
    unsigned bucket = 0;  ///< structural-hash bucket
    size_t pulls = 0;     ///< times scheduled for cold evaluation
    size_t observations = 0;
    double reward_total = 0;
};

/** Counters of one scheduler's run — counts only, no timing, so the
 *  section is byte-identical across machines and job counts. */
struct SchedulerStats
{
    std::string name;     ///< "exhaustive" | "bandit"
    uint64_t seed = 0;    ///< replay seed (bandit)
    double eval_budget = 1.0;
    size_t waves = 0;      ///< schedule() calls (rule x iteration)
    size_t candidates = 0; ///< cold candidates offered
    size_t scheduled = 0;  ///< candidates allowed a cold evaluation
    size_t deferred = 0;   ///< candidates budgeted out (evals saved)
    size_t epsilon_promotions = 0; ///< coverage-floor promotions
    size_t observations = 0;       ///< serial-fold observe() calls
    size_t cached_observations = 0;
    size_t inline_evaluations = 0; ///< consult-time drift evaluations
    double reward_total = 0;
    /** Cumulative (best arm mean - chosen arm mean) over decisions —
     *  a deterministic regret proxy, not true regret. */
    double regret_proxy = 0;
    std::vector<SchedulerArmStats> arms; ///< canonical (pass, bucket) order
};

json::Value toJson(const SchedulerStats &stats);

/**
 * The pluggable policy between candidate enumeration and batch
 * evaluation. Contract:
 *
 *  - schedule() is called once per proposal wave (one rule, one runner
 *    iteration) with the wave's cold candidates in canonical
 *    enumeration order; it returns the ordered batch to evaluate.
 *    Candidates left out are "deferred": remembered until the next
 *    iteration boundary so the serial consult skips them without an
 *    inline evaluation, and never recorded in the attempt memo — they
 *    stay eligible for later waves.
 *  - observe() is called from the serial apply fold, once per
 *    consulted candidate, in canonical union order.
 *  - The only run state a scheduler may read is what these two calls
 *    hand it. Reads of the e-graph, the cache, or the clock would
 *    break replay and the -j1 ≡ -jN contract.
 */
class ProposalScheduler
{
  public:
    virtual ~ProposalScheduler() = default;

    virtual const char *name() const = 0;
    /** True when schedule() can ever defer a candidate (false lets the
     *  hot consult path skip deferral lookups entirely). */
    virtual bool mayDefer() const = 0;
    /** Driver phase boundary (rover rounds change class contents). */
    virtual void beginPhase() = 0;
    /** Runner iteration boundary: the deferred set resets — budgets
     *  are per iteration. */
    virtual void beginIteration() = 0;
    virtual std::vector<ProposalCandidate>
    schedule(std::vector<ProposalCandidate> wave) = 0;
    /** Is `key` deferred in the current iteration? */
    virtual bool deferred(uint64_t key) const = 0;
    virtual void observe(const ProposalCandidate &candidate,
                         const ProposalOutcome &outcome) = 0;
    virtual SchedulerStats stats() const = 0;
};

/** Bandit policy knobs (seer-opt --schedule=bandit). */
struct BanditConfig
{
    /** Replay seed of the epsilon-exploration stream. */
    uint64_t seed = 0x5EED;
    /** Per-wave cold-evaluation budget as a fraction of the wave
     *  (clamped to (0, 1]; every wave keeps at least one slot). */
    double eval_budget = 1.0;
    /** Per-wave probability that a parked (budgeted-out) candidate is
     *  promoted anyway, so every arm is eventually pulled (the
     *  coverage floor). Deferrals are sticky within a phase, so this
     *  compounds per wave: over a phase's W waves a parked candidate
     *  re-enters with probability 1 - (1 - epsilon)^W. */
    double epsilon = 0.05;
    /** UCB exploration constant. */
    double ucb_c = 0.5;
    /** Structural-hash buckets per pass (arm granularity). */
    unsigned buckets = 8;
};

std::unique_ptr<ProposalScheduler> makeExhaustiveScheduler();
std::unique_ptr<ProposalScheduler>
makeBanditScheduler(const BanditConfig &config);

/** Node count of a term — the deterministic eval-cost proxy. */
size_t proposalTermSize(const eg::TermPtr &term);

/**
 * Candidate-enumeration bookkeeping, owned here so every call site
 * shares one enforced contract (the memo was previously cleared per
 * phase by the driver by convention).
 */
class ProposePhase
{
  public:
    explicit ProposePhase(ProposalScheduler *scheduler)
        : scheduler_(scheduler)
    {
    }

    /** Driver phase boundary: the attempt memo resets here — rover
     *  rounds change class contents, so every rule retries freshly —
     *  and the scheduler observes the boundary. */
    void beginPhase();

    /**
     * Iteration-boundary probe, called from every prepare hook. The
     * e-graph is frozen from match through apply, so its tick only
     * moves between iterations — a cheap, rollback-safe boundary
     * signal. On a boundary: the scheduler's deferred set resets, and
     * ephemeral staging (cache-off mode) drops its outcomes.
     */
    void syncIteration(const eg::EGraph &egraph,
                       ExternalEvalCache *cache);

    /**
     * Attempt memo: (rule, canonical class) -> class node count at
     * attempt time, so re-matching the same class across runner
     * iterations does not re-run the snippet/pass machinery. Keys are
     * re-canonicalized and the node count re-checked at lookup time: a
     * class that absorbed new representatives since the last attempt
     * is retried, and stale (merged-away) ids can never alias a
     * surviving class (ids are not reused).
     *
     * peek answers without recording (the prepare stage must not make
     * the apply-time check skip itself); record marks the attempt.
     */
    bool attemptedPeek(const eg::EGraph &egraph, const char *rule,
                       eg::EClassId root) const;
    void recordAttempt(const eg::EGraph &egraph, const char *rule,
                       eg::EClassId root);

  private:
    ProposalScheduler *scheduler_;
    std::map<std::pair<std::string, uint32_t>, size_t> attempted_;
    uint64_t last_tick_ = ~uint64_t{0};
};

/** The worker-pool fan-out over one scheduled batch. */
class EvaluatePhase
{
  public:
    /**
     * Evaluate `batch` on `jobs` workers; outcomes land in `cache`.
     * Blocks the runner thread, so the elapsed span (wall clock, not
     * summed thread-seconds) is charged to *wall_seconds — the
     * paper's "Time in MLIR" figure.
     */
    void run(const std::vector<ProposalCandidate> &batch,
             const std::function<bool(ir::Operation &)> &transform,
             const SnippetEvalConfig &config, ExternalEvalCache &cache,
             unsigned jobs, const std::function<bool()> &cancelled,
             double *wall_seconds);
};

/** The serial apply fold's view of the seam. */
class MergePhase
{
  public:
    explicit MergePhase(ProposalScheduler *scheduler)
        : scheduler_(scheduler)
    {
    }

    /** False when any of `keys` was budgeted out this iteration: the
     *  match must be skipped *without* recording an attempt (the
     *  candidate stays eligible) and without an inline evaluation
     *  (which would defeat the budget). */
    bool admits(const std::vector<uint64_t> &keys) const;

    /** Serial-fold feedback. Runs only here — on the runner thread, in
     *  canonical union order — so scheduler history is identical under
     *  any worker-pool width. */
    void observe(const ProposalCandidate &candidate,
                 const ProposalOutcome &outcome);

  private:
    ProposalScheduler *scheduler_;
};

/**
 * The three seam phases plus their scheduler, wired together. Owned by
 * the driver (or default-constructed by ExternalRuleContext for
 * legacy/unit contexts, which keeps the exhaustive pre-seam behavior).
 */
class ProposalPipeline
{
  public:
    explicit ProposalPipeline(std::unique_ptr<ProposalScheduler> s)
        : scheduler_(std::move(s)), propose_(scheduler_.get()),
          merge_(scheduler_.get())
    {
    }

    /** Driver phase boundary (forwards to ProposePhase, the owner of
     *  the reset contract). */
    void beginPhase() { propose_.beginPhase(); }

    ProposePhase &propose() { return propose_; }
    EvaluatePhase &evaluate() { return evaluate_; }
    MergePhase &merge() { return merge_; }
    ProposalScheduler &scheduler() { return *scheduler_; }
    const ProposalScheduler &scheduler() const { return *scheduler_; }

  private:
    std::unique_ptr<ProposalScheduler> scheduler_;
    ProposePhase propose_;
    EvaluatePhase evaluate_;
    MergePhase merge_;
};

using PipelinePtr = std::shared_ptr<ProposalPipeline>;

/** Build the pipeline optimize() plugs into its rule context. */
PipelinePtr makePipeline(ScheduleKind kind, const BanditConfig &config);

} // namespace seer::core

#endif // SEER_CORE_SCHEDULER_H_
