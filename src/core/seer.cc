#include "core/seer.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <new>
#include <optional>

#include "ir/printer.h"
#include "ir/verifier.h"
#include "passes/passes.h"
#include "rover/rover.h"
#include "seerlang/encoding.h"
#include "seerlang/from_term.h"
#include "seerlang/to_term.h"
#include "support/error.h"
#include "support/fault_inject.h"
#include "support/hashing.h"

namespace seer::core {

using eg::EClassId;
using eg::EGraph;
using eg::TermPtr;

namespace {

/** Convert value-yielding ifs so SeerLang can express the program. */
void
preNormalize(ir::Operation &func)
{
    bool progress = true;
    while (progress) {
        progress = false;
        std::vector<ir::Operation *> ifs;
        ir::walk(func, [&](ir::Operation &op) {
            if (ir::isa(op, ir::opnames::kIf) && op.numResults() > 0)
                ifs.push_back(&op);
        });
        for (ir::Operation *if_op : ifs) {
            if (passes::convertIf(*if_op)) {
                progress = true;
                break;
            }
        }
    }
    passes::canonicalize(func);
}

/**
 * Per-run view of a (possibly shared, cross-run) evaluation cache:
 * counters report this run's delta; the disk fields describe the cache
 * itself and pass through.
 */
ExternalEvalStats
evalStatsDelta(const ExternalEvalStats &now, const ExternalEvalStats &base)
{
    ExternalEvalStats d = now;
    d.pass_cache_hits -= base.pass_cache_hits;
    d.pass_cache_misses -= base.pass_cache_misses;
    d.verify_cache_hits -= base.verify_cache_hits;
    d.verify_cache_misses -= base.verify_cache_misses;
    d.candidates_deduped -= base.candidates_deduped;
    d.evaluations -= base.evaluations;
    d.batches -= base.batches;
    d.batch_jobs -= base.batch_jobs;
    d.canceled -= base.canceled;
    d.emit_seconds -= base.emit_seconds;
    d.pass_seconds -= base.pass_seconds;
    d.translate_seconds -= base.translate_seconds;
    d.verify_seconds -= base.verify_seconds;
    d.schedule_seconds -= base.schedule_seconds;
    d.pass_evictions -= base.pass_evictions;
    d.verify_evictions -= base.verify_evictions;
    d.evicted_bytes -= base.evicted_bytes;
    // cache_shards / resident_* / disk_* are levels describing the
    // cache itself, not per-run counters: they pass through.
    return d;
}

/** Seed the registry from the initial HLS schedule (called once). */
LoopRegistry
seedRegistry(const sl::Translation &translation, ir::Operation &func,
             const hls::HlsOptions &hls_options)
{
    hls::OperatorLibrary lib;
    hls::ScheduleOptions options = hls_options.schedule;
    options.pipeline_loops = true; // SEER assumes pipelined loops
    hls::FuncSchedule schedule = hls::scheduleFunc(func, lib, options);
    LoopRegistry registry;
    for (const auto &[loop_id, op] : translation.loops) {
        auto it = schedule.loops.find(op);
        if (it == schedule.loops.end())
            continue;
        LoopRegistryEntry entry;
        entry.constraints = it->second;
        entry.coalesced = op->hasAttr("seer.coalesced");
        registry[loop_id] = entry;
    }
    return registry;
}

/** Fold one runner report's per-rule stats into the run-wide aggregate
 *  (keyed by rule name, since each phase constructs fresh runners). */
void
mergeRuleStats(std::vector<eg::RuleStats> &into,
               const std::vector<eg::RuleStats> &from)
{
    for (const eg::RuleStats &stats : from) {
        if (stats.matches == 0 && stats.bans == 0 &&
            stats.search_seconds == 0) {
            continue; // rule never even searched; keep the aggregate lean
        }
        auto it = std::find_if(into.begin(), into.end(),
                               [&](const eg::RuleStats &existing) {
                                   return existing.name == stats.name;
                               });
        if (it == into.end()) {
            into.push_back(stats);
            continue;
        }
        it->matches += stats.matches;
        it->applications += stats.applications;
        it->bans += stats.bans;
        it->times_banned = stats.times_banned;
        it->search_seconds += stats.search_seconds;
        it->apply_seconds += stats.apply_seconds;
    }
}

/** Apply trusted-coalesced markers to emitted loops. */
void
markTrustedLoops(ir::Module &module, const LoopRegistry &registry)
{
    ir::walk(module, [&](ir::Operation &op) {
        if (!ir::isa(op, ir::opnames::kAffineFor))
            return;
        if (!op.hasAttr("seer.loop_id"))
            return;
        auto it = registry.find(op.strAttr("seer.loop_id"));
        if (it != registry.end() && it->second.coalesced)
            op.setAttr("seer.coalesced", ir::Attribute(int64_t{1}));
    });
}

} // namespace

namespace {

/** Append a recovered-error note (bounded; degraded runs stay cheap). */
void
recordRecovered(SeerStats &stats, const std::string &what)
{
    constexpr size_t kCap = 64;
    if (stats.recovered_errors.size() < kCap)
        stats.recovered_errors.push_back(what);
    stats.degraded = true;
}

} // namespace

namespace {

/**
 * SaturatePhase: one transactional runner invocation — checkpoint →
 * run → validate-or-rollback. A phase that crashes, or leaves the
 * e-graph inconsistent or blown far past its node budget, is undone
 * wholesale; exploration continues with whatever the healthy phases
 * produced.
 */
class SaturatePhase
{
  public:
    SaturatePhase(EGraph &egraph, const eg::RunnerOptions &runner_options,
                  const SeerOptions &options, SeerResult &result)
        : egraph_(egraph), runner_options_(runner_options),
          options_(options), result_(result)
    {
    }

    void
    run(const char *label,
        const std::function<void(eg::Runner &)> &add_rules,
        size_t &applied_this_phase)
    {
        EGraph::Checkpoint cp = egraph_.checkpoint();
        std::optional<eg::RunnerReport> report;
        try {
            eg::Runner runner(egraph_, runner_options_);
            add_rules(runner);
            report = runner.run();
            // Chaos: a fault between exploration and commit — the
            // whole phase must roll back, leaving no partial e-graph.
            if (faultFire(FaultPoint::RollbackMidPhase))
                fatal("injected mid-phase fault");
            // Budget sanity: the runner stops *at* max_nodes, but one
            // pathological dynamic result can overshoot hugely.
            if (egraph_.numNodes() > 4 * runner_options_.max_nodes)
                fatal(MsgBuilder()
                      << "phase exploded to " << egraph_.numNodes()
                      << " nodes (budget " << runner_options_.max_nodes
                      << ")");
            std::string diag = egraph_.debugCheckInvariants();
            if (!diag.empty())
                fatal("e-graph invariants broken: " + diag);
            egraph_.commit(cp);
            absorb(*report, applied_this_phase);
        } catch (const FatalError &err) {
            if (options_.strict)
                throw;
            rollback(cp, report, label, err.what());
        } catch (const std::bad_alloc &) {
            // Allocation failure anywhere in the phase: the journal
            // checkpoint still holds, so the phase is undone wholesale
            // and optimize() keeps its no-throw contract.
            if (options_.strict)
                throw;
            rollback(cp, report, label,
                     "allocation failure (contained)");
        }
    }

    /** The health trail of a runner report (recovered errors,
     *  quarantined rules). Absorbed even from a phase that is later
     *  rolled back: the faults genuinely happened, only their e-graph
     *  effects are undone. */
    void
    absorbHealth(const eg::RunnerReport &report)
    {
        for (const std::string &error : report.recovered_errors)
            recordRecovered(result_.stats, error);
        for (const eg::RuleStats &rule : report.rules) {
            if (!rule.quarantined)
                continue;
            auto &names = result_.stats.quarantined_rules;
            if (std::find(names.begin(), names.end(), rule.name) ==
                names.end())
                names.push_back(rule.name);
            result_.stats.degraded = true;
        }
    }

  private:
    void
    absorb(eg::RunnerReport &report, size_t &applied_this_phase)
    {
        applied_this_phase += report.total_applied;
        result_.stats.unions_applied += report.total_applied;
        for (auto &record : report.records)
            result_.stats.records.push_back(std::move(record));
        mergeRuleStats(result_.stats.rule_stats, report.rules);
        for (const eg::IterationStats &stats : report.iterations)
            result_.stats.iterations.push_back(stats);
        eg::MatchPhaseStats &mp = result_.stats.match_phase;
        mp.candidates_visited += report.match_phase.candidates_visited;
        mp.skipped_clean += report.match_phase.skipped_clean;
        mp.cached_matches_reused +=
            report.match_phase.cached_matches_reused;
        mp.index_scans += report.match_phase.index_scans;
        mp.full_scans += report.match_phase.full_scans;
        mp.incremental_scans += report.match_phase.incremental_scans;
        mp.shards += report.match_phase.shards;
        mp.shard_seconds += report.match_phase.shard_seconds;
        mp.search_wall_seconds +=
            report.match_phase.search_wall_seconds;
        mp.jobs = std::max(mp.jobs, report.match_phase.jobs);
        absorbHealth(report);
    }

    void
    rollback(const EGraph::Checkpoint &cp,
             const std::optional<eg::RunnerReport> &report,
             const char *label, const std::string &why)
    {
        egraph_.rollback(cp);
        ++result_.stats.phase_rollbacks;
        if (report)
            absorbHealth(*report);
        recordRecovered(result_.stats, std::string(label) +
                                           " phase rolled back: " + why);
    }

    EGraph &egraph_;
    const eg::RunnerOptions &runner_options_;
    const SeerOptions &options_;
    SeerResult &result_;
};

/**
 * ExtractPhase: two-phase extraction (Section 4.6) as a composable
 * pipeline — phase 1 pins the control skeleton under the latency cost
 * (Eqn 3), phase 2 re-extracts every pure sub-expression of that
 * skeleton under the ROVER area cost (Eqn 4) — degrading to the
 * original term when the pipeline crashes or finds nothing.
 */
class ExtractPhase
{
  public:
    ExtractPhase(const SeerOptions &options, const ExecContext &exec,
                 SeerResult &result)
        : options_(options), exec_(exec), result_(result)
    {
    }

    /** Returns the term to emit (extracted, or the original on
     *  degrade). Throws only in strict mode. */
    TermPtr
    run(EGraph &egraph, EClassId root, LatencyCost &latency,
        rover::RoverAreaCost &area_cost, const TermPtr &original)
    {
        ExtractorKind control_kind = options_.naive_extract
                                         ? ExtractorKind::Naive
                                         : ExtractorKind::Greedy;
        ExtractorKind datapath_kind =
            options_.naive_extract
                ? ExtractorKind::Naive
                : (options_.exact_datapath ? ExtractorKind::Exact
                                           : ExtractorKind::Greedy);
        ExtractionPipeline pipeline;
        pipeline.addPhase({"control-latency", &latency, control_kind,
                           /*refine=*/false, /*budget=*/200000, exec_});
        pipeline.addPhase({"datapath-area", &area_cost, datapath_kind,
                           /*refine=*/true,
                           /*budget=*/200000, exec_});
        // Extraction under governance: a canceled context stops the
        // pipeline between phases and bounds the exact search from
        // inside (best-so-far, never optimal-or-nothing). A crash or
        // allocation failure degrades to emitting the original
        // program.
        ExtractionReport extraction;
        try {
            extraction = pipeline.run(
                egraph, root, [this] { return exec_.canceled(); });
        } catch (const FatalError &err) {
            if (options_.strict)
                throw;
            extraction.infeasible = true;
            recordRecovered(result_.stats,
                            std::string("extraction failed: ") +
                                err.what());
        } catch (const std::bad_alloc &) {
            if (options_.strict)
                throw;
            extraction.infeasible = true;
            recordRecovered(result_.stats,
                            "extraction failed: allocation failure "
                            "(contained)");
        }
        result_.stats.extraction = extraction.phases;
        if (!extraction.infeasible)
            return extraction.term;
        if (options_.strict)
            fatal("seer: extraction found no implementation");
        recordRecovered(result_.stats,
                        "extraction found no implementation; emitting "
                        "the original program");
        return original;
    }

  private:
    const SeerOptions &options_;
    const ExecContext &exec_;
    SeerResult &result_;
};

/**
 * OptimizeDriver: the slim coordinator of the optimization phases.
 * Setup (pre-normalize, translate, seed) runs once; exploration
 * interleaves SaturatePhase invocations whose external rules feed the
 * Propose/Evaluate/Merge seam (core/scheduler.h) through the proposal
 * scheduler selected by SeerOptions::schedule; ExtractPhase and the
 * emission ladder produce the result. Each stage degrades per the
 * robustness contract instead of throwing (non-strict mode).
 */
class OptimizeDriver
{
  public:
    OptimizeDriver(const ir::Module &input, const std::string &func_name,
                   const SeerOptions &options)
        : input_(input), func_name_(func_name), options_(options),
          start_(Clock::now())
    {
    }

    SeerResult
    run()
    {
        setupGovernance();
        if (!prenormalize() || !translateAndSeed() || !seedGraph()) {
            finish();
            return std::move(result_);
        }
        explore();
        extractAndEmit();
        finalize();
        finish();
        return std::move(result_);
    }

  private:
    using Clock = std::chrono::steady_clock;

    void
    setupGovernance()
    {
        // Unified governance: one context carries the wall-clock
        // deadline, the memory budget (via its ResourceGovernor) and
        // any external cancellation (SIGINT through the process-global
        // signal flag, or a caller-provided context). Everything
        // downstream — runner phases, external-pass evaluation, the
        // interpreter, extraction — polls this one object.
        exec_ = options_.exec.valid() ? options_.exec
                                      : ExecContext::make();
        if (options_.deadline_seconds > 0)
            exec_.setDeadlineIn(options_.deadline_seconds);
        if (!exec_.governor()) {
            // Always attach a governor: budget 0 means accounting
            // only, so the "resource" stats section is populated on
            // every run.
            exec_.setGovernor(std::make_shared<ResourceGovernor>(
                options_.mem_budget_bytes));
        }
    }

    bool
    prenormalize()
    {
        working_ = ir::cloneModule(input_);
        ir::Operation *func = working_.lookupFunc(func_name_);
        if (!func)
            fatal("seer: no function named '" + func_name_ + "'");
        // Pre-normalization. Failure here (or anywhere later, in
        // non-strict mode) degrades to the best module produced so far
        // — worst case the unmodified input. Invalid *input* IR stays
        // fatal in every mode: valid output cannot be conjured from an
        // invalid program.
        try {
            preNormalize(*func);
            ir::verifyOrDie(working_);
        } catch (const FatalError &err) {
            if (options_.strict)
                throw;
            result_.module = ir::cloneModule(input_);
            ir::verifyOrDie(result_.module);
            recordRecovered(result_.stats,
                            std::string("pre-normalization failed: ") +
                                err.what());
            return false;
        }
        return true;
    }

    bool
    translateAndSeed()
    {
        context_ = std::make_shared<ExternalRuleContext>();
        context_->use_laws = options_.use_laws;
        context_->analysis_friendly =
            options_.analysis_friendly_extraction;
        context_->unroll_max_trip = options_.unroll_max_trip;
        context_->hls = options_.hls;
        context_->validate_results = options_.validate_external;
        context_->validation_runs = options_.validation_runs;
        context_->validation_seed = options_.validation_seed;
        context_->exec = exec_;
        // The propose/evaluate seam: the scheduler selected by
        // --schedule, wired into the phase objects every external rule
        // shares.
        BanditConfig bandit;
        bandit.seed = options_.schedule_seed;
        bandit.eval_budget = options_.eval_budget;
        context_->pipeline = makePipeline(options_.schedule, bandit);
        // Memoized + parallel external-pass evaluation. A shared cache
        // (a sweep over one kernel) wins over per-run construction;
        // otherwise the cache is persistent (memoizing) or an
        // iteration-scoped staging buffer, per use_pass_cache. Either
        // way the exploration result is identical — the cache memoizes
        // a pure function and unions stay serial.
        eval_cache_ = options_.shared_eval_cache;
        if (!eval_cache_) {
            eval_cache_ = std::make_shared<ExternalEvalCache>(
                options_.use_pass_cache);
            if (options_.use_pass_cache &&
                !options_.pass_cache_file.empty()) {
                std::string cache_error;
                eval_cache_->loadFile(options_.pass_cache_file,
                                      &cache_error);
                if (!cache_error.empty()) {
                    // Corrupt persistence is recovered by a cold
                    // start; the run itself is unaffected.
                    recordRecovered(result_.stats, cache_error);
                }
            }
        }
        context_->eval_cache = eval_cache_;
        eval_cache_->setExecContext(exec_);
        context_->jobs = options_.jobs > 0 ? options_.jobs : 1;
        // Stats snapshots: a shared cache accumulates across
        // optimize() calls, so this run reports deltas against entry
        // values.
        eval_stats_base_ = eval_cache_->stats();

        // Deterministic run-level name scope: every fresh tag /
        // loop id drawn anywhere in this run (translation,
        // exploration, emission) comes from a stream seeded by the
        // *content* of the normalized input. Two runs over the same
        // function — in this process, another process, or against a
        // --pass-cache file from last week — generate identical names,
        // so snippet content hashes (and therefore cache keys) are
        // stable across runs instead of depending on how far the
        // process-global name counters happened to have advanced.
        run_scope_.emplace(hashString(func_name_) ^
                           hashString(ir::toString(working_)));
        try {
            translation_ = sl::funcToTerm(*working_.lookupFunc(func_name_));
            context_->registry = seedRegistry(
                translation_, *working_.lookupFunc(func_name_),
                options_.hls);
        } catch (const FatalError &err) {
            if (options_.strict)
                throw;
            result_.module =
                std::move(working_); // pre-normalized, verified
            recordRecovered(result_.stats,
                            std::string("translation failed: ") +
                                err.what());
            return false;
        }
        return true;
    }

    bool
    seedGraph()
    {
        // Phase cost models. Declared before the e-graph (they must
        // outlive it: registered cost-bound analyses hold references)
        // and registered below so per-class cost bounds are maintained
        // incrementally through the whole exploration instead of being
        // recomputed per extraction.
        latency_.emplace(context_->registry);
        static const eg::TermSizeCost term_size;

        egraph_.emplace(rover::roverAnalysisHooks());
        egraph_->setExecContext(exec_);
        if (!options_.naive_extract) {
            // Every cost model used anywhere in the run: the two
            // extraction phases, analysis-friendly local extraction
            // inside external rules, and the runner's record
            // extraction (term-size).
            eg::registerCostBound(*egraph_, *latency_);
            eg::registerCostBound(*egraph_, context_->area_cost);
            eg::registerCostBound(*egraph_, context_->friendly_cost);
            eg::registerCostBound(*egraph_, term_size);
        }
        try {
            root_ = egraph_->addTerm(translation_.term);
            egraph_->rebuild();
        } catch (const std::bad_alloc &) {
            // Cannot even seed the e-graph: degrade to the
            // pre-normalized (verified) input instead of propagating
            // the failure.
            if (options_.strict)
                throw;
            result_.module = std::move(working_);
            result_.original_term = translation_.term;
            recordRecovered(result_.stats,
                            "initial e-graph construction failed: "
                            "allocation failure (contained)");
            return false;
        }
        result_.original_term = translation_.term;

        runner_options_ = options_.runner;
        runner_options_.catch_rule_errors = !options_.strict;
        runner_options_.quarantine_after = options_.quarantine_after;
        runner_options_.exec = exec_;
        // One -j knob drives both parallel stages: e-matching and the
        // external-pass worker pool (both deterministic by
        // construction). --match-jobs decouples the search phase when
        // set.
        runner_options_.match_jobs = options_.match_jobs
                                         ? options_.match_jobs
                                         : context_->jobs;
        return true;
    }

    /** Interleaved exploration (Section 4.4). */
    void
    explore()
    {
        SaturatePhase saturate(*egraph_, runner_options_, options_,
                               result_);
        for (int phase = 0; phase < options_.max_phases; ++phase) {
            if (exec_.canceled())
                break; // reported by noteCancellation in finish()
            size_t applied_this_phase = 0;
            // Phase boundary: the attempt memo resets inside
            // ProposePhase (rover rounds change class contents, so
            // external rules retry freshly each phase).
            context_->pipeline->beginPhase();
            if (options_.use_control) {
                saturate.run(
                    "control",
                    [&](eg::Runner &runner) {
                        runner.addRules(seqRules());
                        runner.addRules(controlRules(context_));
                        runner.addRules(options_.extra_control_rules);
                    },
                    applied_this_phase);
            }
            if (options_.use_rover) {
                saturate.run(
                    "datapath",
                    [&](eg::Runner &runner) {
                        runner.addRules(rover::roverRules());
                    },
                    applied_this_phase);
            }
            if (applied_this_phase == 0)
                break; // joint saturation
        }
        result_.stats.rejected_externals = context_->rejected_results;
        result_.stats.rejection_details = context_->rejections;
    }

    void
    extractAndEmit()
    {
        ExtractPhase extract(options_, exec_, result_);
        TermPtr final_term =
            extract.run(*egraph_, root_, *latency_,
                        context_->area_cost, translation_.term);
        result_.extracted_term = final_term;

        // Emit, degrading stepwise on failure: extracted term →
        // original term → pre-normalized input module. The last rung
        // cannot fail (`working` was verified above), so optimize()
        // always returns valid IR in non-strict mode.
        auto emit = [&](const TermPtr &term) {
            sl::EmitSpec spec;
            spec.func_name = translation_.func_name;
            spec.args = translation_.args;
            ir::Module module = sl::termToFunc(term, spec);
            markTrustedLoops(module, context_->registry);
            passes::canonicalize(*module.firstFunc());
            ir::verifyOrDie(module);
            return module;
        };
        auto emit_guarded =
            [&](const TermPtr &term,
                std::string *why) -> std::optional<ir::Module> {
            try {
                return emit(term);
            } catch (const FatalError &err) {
                if (options_.strict)
                    throw;
                *why = err.what();
            } catch (const std::bad_alloc &) {
                if (options_.strict)
                    throw;
                *why = "allocation failure (contained)";
            }
            return std::nullopt;
        };
        std::string emit_why;
        if (auto module = emit_guarded(final_term, &emit_why)) {
            result_.module = std::move(*module);
        } else {
            recordRecovered(result_.stats,
                            "emission of the extracted term failed: " +
                                emit_why);
            if (auto module =
                    emit_guarded(translation_.term, &emit_why)) {
                result_.module = std::move(*module);
                result_.extracted_term = translation_.term;
            } else {
                recordRecovered(result_.stats,
                                "emission of the original term "
                                "failed: " +
                                    emit_why);
                result_.module = std::move(working_);
                result_.extracted_term = nullptr;
            }
        }
    }

    void
    finalize()
    {
        result_.registry = std::move(context_->registry);
        result_.stats.egraph_nodes = egraph_->numNodes();
        result_.stats.egraph_classes = egraph_->numClasses();
        // "Time in MLIR": wall-clock spent evaluating external passes
        // this run (batches block the main loop, so wall time is the
        // honest figure under -j; per-stage thread-seconds live in
        // external_eval).
        result_.stats.time_in_passes_seconds = context_->mlir_seconds;
        result_.stats.external_eval =
            evalStatsDelta(eval_cache_->stats(), eval_stats_base_);
        result_.stats.scheduler =
            context_->pipeline->scheduler().stats();
        if (!options_.shared_eval_cache && options_.use_pass_cache &&
            !options_.pass_cache_file.empty()) {
            std::string cache_error;
            if (!eval_cache_->saveFile(options_.pass_cache_file,
                                       &cache_error)) {
                recordRecovered(result_.stats, cache_error);
            }
        }
    }

    /** Map a cancellation onto the health report. A plain deadline
     *  keeps its historical meaning (deadline_hit, not degraded: the
     *  budget was honored, the result is simply the best found in
     *  time); a memory-budget breach or an external cancel degrades
     *  the run. */
    void
    noteCancellation()
    {
        CancelReason reason = exec_.reason();
        if (reason == CancelReason::None)
            return;
        bool first = result_.stats.cancel_reason.empty();
        result_.stats.cancel_reason = cancelReasonName(reason);
        if (reason == CancelReason::Deadline) {
            result_.stats.deadline_hit = true;
        } else if (first && reason == CancelReason::MemBudget) {
            recordRecovered(result_.stats,
                            "memory budget breached; degraded to the "
                            "best result found within budget");
        } else if (first && reason == CancelReason::External) {
            recordRecovered(result_.stats,
                            "canceled by external request (signal)");
        }
    }

    void
    finish()
    {
        noteCancellation();
        if (exec_.governor())
            result_.stats.resource = exec_.governor()->stats();
        result_.stats.total_seconds =
            std::chrono::duration<double>(Clock::now() - start_)
                .count();
        result_.stats.time_in_egraph_seconds =
            std::max(0.0, result_.stats.total_seconds -
                              result_.stats.time_in_passes_seconds);
    }

    const ir::Module &input_;
    const std::string func_name_;
    const SeerOptions &options_;
    Clock::time_point start_;

    ExecContext exec_;
    SeerResult result_;
    ir::Module working_;
    sl::Translation translation_;
    ContextPtr context_;
    EvalCachePtr eval_cache_;
    ExternalEvalStats eval_stats_base_;
    std::optional<sl::NameScope> run_scope_;
    std::optional<LatencyCost> latency_;
    std::optional<EGraph> egraph_;
    EClassId root_{};
    eg::RunnerOptions runner_options_;
};

} // namespace

SeerResult
optimize(const ir::Module &input, const std::string &func_name,
         const SeerOptions &options)
{
    return OptimizeDriver(input, func_name, options).run();
}

json::Value
toJson(const SeerStats &stats)
{
    json::Value out{json::Object{}};
    out.set("egraph_nodes", stats.egraph_nodes);
    out.set("egraph_classes", stats.egraph_classes);
    out.set("unions_applied", stats.unions_applied);
    out.set("time_in_passes_seconds", stats.time_in_passes_seconds);
    out.set("time_in_egraph_seconds", stats.time_in_egraph_seconds);
    out.set("total_seconds", stats.total_seconds);
    json::Value rules{json::Array{}};
    for (const eg::RuleStats &rule : stats.rule_stats)
        rules.push(eg::toJson(rule));
    out.set("rules", std::move(rules));
    json::Value iterations{json::Array{}};
    for (const eg::IterationStats &iteration : stats.iterations)
        iterations.push(eg::toJson(iteration));
    out.set("iterations", std::move(iterations));
    out.set("match_phase", eg::toJson(stats.match_phase));
    out.set("external_eval", toJson(stats.external_eval));
    out.set("scheduler", toJson(stats.scheduler));
    json::Value extraction{json::Array{}};
    for (const ExtractionPhaseStats &phase : stats.extraction) {
        json::Value p{json::Object{}};
        p.set("name", phase.name);
        p.set("extractor", phase.extractor);
        p.set("ran", phase.ran);
        p.set("extractions", phase.extractions);
        p.set("classes_visited", phase.classes_visited);
        p.set("classes_recomputed", phase.classes_recomputed);
        p.set("bound_prunes", phase.bound_prunes);
        p.set("expansions", phase.expansions);
        p.set("budget_exhaustions", phase.budget_exhaustions);
        p.set("used_analysis", phase.used_analysis);
        p.set("seconds", phase.seconds);
        p.set("tree_cost", phase.tree_cost);
        p.set("dag_cost", phase.dag_cost);
        extraction.push(std::move(p));
    }
    out.set("extraction", std::move(extraction));
    out.set("resource", toJson(stats.resource));
    out.set("degraded", stats.degraded);
    json::Value health{json::Object{}};
    health.set("degraded", stats.degraded);
    health.set("phase_rollbacks", stats.phase_rollbacks);
    health.set("deadline_hit", stats.deadline_hit);
    health.set("cancel_reason", stats.cancel_reason);
    health.set("rejected_externals", stats.rejected_externals);
    json::Value quarantined{json::Array{}};
    for (const std::string &name : stats.quarantined_rules)
        quarantined.push(json::Value{name});
    health.set("quarantined_rules", std::move(quarantined));
    json::Value recovered{json::Array{}};
    for (const std::string &error : stats.recovered_errors)
        recovered.push(json::Value{error});
    health.set("recovered_errors", std::move(recovered));
    json::Value rejections{json::Array{}};
    for (const std::string &rejection : stats.rejection_details)
        rejections.push(json::Value{rejection});
    health.set("rejections", std::move(rejections));
    out.set("health", std::move(health));
    return out;
}

} // namespace seer::core
