#include "core/seer.h"

#include <algorithm>
#include <chrono>

#include "ir/verifier.h"
#include "passes/passes.h"
#include "rover/rover.h"
#include "seerlang/encoding.h"
#include "seerlang/from_term.h"
#include "seerlang/to_term.h"
#include "support/error.h"

namespace seer::core {

using eg::EClassId;
using eg::EGraph;
using eg::TermPtr;

namespace {

/** Convert value-yielding ifs so SeerLang can express the program. */
void
preNormalize(ir::Operation &func)
{
    bool progress = true;
    while (progress) {
        progress = false;
        std::vector<ir::Operation *> ifs;
        ir::walk(func, [&](ir::Operation &op) {
            if (ir::isa(op, ir::opnames::kIf) && op.numResults() > 0)
                ifs.push_back(&op);
        });
        for (ir::Operation *if_op : ifs) {
            if (passes::convertIf(*if_op)) {
                progress = true;
                break;
            }
        }
    }
    passes::canonicalize(func);
}

/** Seed the registry from the initial HLS schedule (called once). */
LoopRegistry
seedRegistry(const sl::Translation &translation, ir::Operation &func,
             const hls::HlsOptions &hls_options)
{
    hls::OperatorLibrary lib;
    hls::ScheduleOptions options = hls_options.schedule;
    options.pipeline_loops = true; // SEER assumes pipelined loops
    hls::FuncSchedule schedule = hls::scheduleFunc(func, lib, options);
    LoopRegistry registry;
    for (const auto &[loop_id, op] : translation.loops) {
        auto it = schedule.loops.find(op);
        if (it == schedule.loops.end())
            continue;
        LoopRegistryEntry entry;
        entry.constraints = it->second;
        entry.coalesced = op->hasAttr("seer.coalesced");
        registry[loop_id] = entry;
    }
    return registry;
}

/**
 * Phase-2 datapath refinement: re-extract every pure sub-expression of
 * the control skeleton with the ROVER area model (Eqn 4).
 */
TermPtr
refineDatapath(const EGraph &egraph, const TermPtr &term,
               const eg::CostModel &area, bool exact)
{
    if (sl::isStatementSymbol(term->op())) {
        std::vector<TermPtr> children;
        children.reserve(term->arity());
        bool changed = false;
        for (const auto &child : term->children()) {
            TermPtr refined = refineDatapath(egraph, child, area, exact);
            changed |= refined != child;
            children.push_back(std::move(refined));
        }
        return changed ? eg::makeTerm(term->op(), std::move(children))
                       : term;
    }
    // Pure expression: extract the minimal-area equivalent.
    auto id = egraph.lookupTerm(term);
    if (!id)
        return term;
    std::optional<eg::Extraction> extraction =
        exact ? eg::extractExact(egraph, *id, area)
              : eg::extractGreedy(egraph, *id, area);
    if (!extraction)
        return term;
    return extraction->term;
}

/** Fold one runner report's per-rule stats into the run-wide aggregate
 *  (keyed by rule name, since each phase constructs fresh runners). */
void
mergeRuleStats(std::vector<eg::RuleStats> &into,
               const std::vector<eg::RuleStats> &from)
{
    for (const eg::RuleStats &stats : from) {
        if (stats.matches == 0 && stats.bans == 0 &&
            stats.search_seconds == 0) {
            continue; // rule never even searched; keep the aggregate lean
        }
        auto it = std::find_if(into.begin(), into.end(),
                               [&](const eg::RuleStats &existing) {
                                   return existing.name == stats.name;
                               });
        if (it == into.end()) {
            into.push_back(stats);
            continue;
        }
        it->matches += stats.matches;
        it->applications += stats.applications;
        it->bans += stats.bans;
        it->times_banned = stats.times_banned;
        it->search_seconds += stats.search_seconds;
        it->apply_seconds += stats.apply_seconds;
    }
}

/** Apply trusted-coalesced markers to emitted loops. */
void
markTrustedLoops(ir::Module &module, const LoopRegistry &registry)
{
    ir::walk(module, [&](ir::Operation &op) {
        if (!ir::isa(op, ir::opnames::kAffineFor))
            return;
        if (!op.hasAttr("seer.loop_id"))
            return;
        auto it = registry.find(op.strAttr("seer.loop_id"));
        if (it != registry.end() && it->second.coalesced)
            op.setAttr("seer.coalesced", ir::Attribute(int64_t{1}));
    });
}

} // namespace

SeerResult
optimize(const ir::Module &input, const std::string &func_name,
         const SeerOptions &options)
{
    using Clock = std::chrono::steady_clock;
    auto start = Clock::now();

    ir::Module working = ir::cloneModule(input);
    ir::Operation *func = working.lookupFunc(func_name);
    if (!func)
        fatal("seer: no function named '" + func_name + "'");
    preNormalize(*func);
    ir::verifyOrDie(working);

    // Translate and seed.
    sl::Translation translation = sl::funcToTerm(*func);
    auto context = std::make_shared<ExternalRuleContext>();
    context->use_laws = options.use_laws;
    context->analysis_friendly = options.analysis_friendly_extraction;
    context->unroll_max_trip = options.unroll_max_trip;
    context->hls = options.hls;
    context->registry =
        seedRegistry(translation, *func, options.hls);

    EGraph egraph(rover::roverAnalysisHooks());
    EClassId root = egraph.addTerm(translation.term);
    egraph.rebuild();

    SeerResult result;
    result.original_term = translation.term;

    // Interleaved exploration (Section 4.4).
    for (int phase = 0; phase < options.max_phases; ++phase) {
        size_t applied_this_phase = 0;
        // Rover rounds change class contents, so retry external rules
        // freshly each phase.
        context->attempted.clear();
        auto absorb = [&](eg::RunnerReport report) {
            applied_this_phase += report.total_applied;
            result.stats.unions_applied += report.total_applied;
            for (auto &record : report.records)
                result.stats.records.push_back(std::move(record));
            mergeRuleStats(result.stats.rule_stats, report.rules);
            for (const eg::IterationStats &stats : report.iterations)
                result.stats.iterations.push_back(stats);
        };
        if (options.use_control) {
            eg::Runner control(egraph, options.runner);
            control.addRules(seqRules());
            control.addRules(controlRules(context));
            absorb(control.run());
        }
        if (options.use_rover) {
            eg::Runner data(egraph, options.runner);
            data.addRules(rover::roverRules());
            absorb(data.run());
        }
        if (applied_this_phase == 0)
            break; // joint saturation
    }

    // Two-phase extraction (Section 4.6).
    LatencyCost latency(context->registry);
    auto control_choice = eg::extractGreedy(egraph, root, latency);
    SEER_ASSERT(control_choice.has_value(),
                "seer: extraction found no implementation");
    rover::RoverAreaCost area(&egraph);
    TermPtr final_term = refineDatapath(egraph, control_choice->term,
                                        area, options.exact_datapath);
    result.extracted_term = final_term;

    // Emit.
    sl::EmitSpec spec;
    spec.func_name = translation.func_name;
    spec.args = translation.args;
    result.module = sl::termToFunc(final_term, spec);
    markTrustedLoops(result.module, context->registry);
    passes::canonicalize(*result.module.firstFunc());
    ir::verifyOrDie(result.module);

    result.registry = std::move(context->registry);
    result.stats.egraph_nodes = egraph.numNodes();
    result.stats.egraph_classes = egraph.numClasses();
    result.stats.total_seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    result.stats.time_in_passes_seconds = context->mlir_seconds;
    result.stats.time_in_egraph_seconds = std::max(
        0.0,
        result.stats.total_seconds - result.stats.time_in_passes_seconds);
    return result;
}

json::Value
toJson(const SeerStats &stats)
{
    json::Value out{json::Object{}};
    out.set("egraph_nodes", stats.egraph_nodes);
    out.set("egraph_classes", stats.egraph_classes);
    out.set("unions_applied", stats.unions_applied);
    out.set("time_in_passes_seconds", stats.time_in_passes_seconds);
    out.set("time_in_egraph_seconds", stats.time_in_egraph_seconds);
    out.set("total_seconds", stats.total_seconds);
    json::Value rules{json::Array{}};
    for (const eg::RuleStats &rule : stats.rule_stats)
        rules.push(eg::toJson(rule));
    out.set("rules", std::move(rules));
    json::Value iterations{json::Array{}};
    for (const eg::IterationStats &iteration : stats.iterations)
        iterations.push(eg::toJson(iteration));
    out.set("iterations", std::move(iterations));
    return out;
}

} // namespace seer::core
