#include "core/seer.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <new>
#include <optional>

#include "ir/printer.h"
#include "ir/verifier.h"
#include "passes/passes.h"
#include "rover/rover.h"
#include "seerlang/encoding.h"
#include "seerlang/from_term.h"
#include "seerlang/to_term.h"
#include "support/error.h"
#include "support/fault_inject.h"
#include "support/hashing.h"

namespace seer::core {

using eg::EClassId;
using eg::EGraph;
using eg::TermPtr;

namespace {

/** Convert value-yielding ifs so SeerLang can express the program. */
void
preNormalize(ir::Operation &func)
{
    bool progress = true;
    while (progress) {
        progress = false;
        std::vector<ir::Operation *> ifs;
        ir::walk(func, [&](ir::Operation &op) {
            if (ir::isa(op, ir::opnames::kIf) && op.numResults() > 0)
                ifs.push_back(&op);
        });
        for (ir::Operation *if_op : ifs) {
            if (passes::convertIf(*if_op)) {
                progress = true;
                break;
            }
        }
    }
    passes::canonicalize(func);
}

/**
 * Per-run view of a (possibly shared, cross-run) evaluation cache:
 * counters report this run's delta; the disk fields describe the cache
 * itself and pass through.
 */
ExternalEvalStats
evalStatsDelta(const ExternalEvalStats &now, const ExternalEvalStats &base)
{
    ExternalEvalStats d = now;
    d.pass_cache_hits -= base.pass_cache_hits;
    d.pass_cache_misses -= base.pass_cache_misses;
    d.verify_cache_hits -= base.verify_cache_hits;
    d.verify_cache_misses -= base.verify_cache_misses;
    d.candidates_deduped -= base.candidates_deduped;
    d.evaluations -= base.evaluations;
    d.batches -= base.batches;
    d.batch_jobs -= base.batch_jobs;
    d.canceled -= base.canceled;
    d.emit_seconds -= base.emit_seconds;
    d.pass_seconds -= base.pass_seconds;
    d.translate_seconds -= base.translate_seconds;
    d.verify_seconds -= base.verify_seconds;
    d.schedule_seconds -= base.schedule_seconds;
    d.pass_evictions -= base.pass_evictions;
    d.verify_evictions -= base.verify_evictions;
    d.evicted_bytes -= base.evicted_bytes;
    // cache_shards / resident_* / disk_* are levels describing the
    // cache itself, not per-run counters: they pass through.
    return d;
}

/** Seed the registry from the initial HLS schedule (called once). */
LoopRegistry
seedRegistry(const sl::Translation &translation, ir::Operation &func,
             const hls::HlsOptions &hls_options)
{
    hls::OperatorLibrary lib;
    hls::ScheduleOptions options = hls_options.schedule;
    options.pipeline_loops = true; // SEER assumes pipelined loops
    hls::FuncSchedule schedule = hls::scheduleFunc(func, lib, options);
    LoopRegistry registry;
    for (const auto &[loop_id, op] : translation.loops) {
        auto it = schedule.loops.find(op);
        if (it == schedule.loops.end())
            continue;
        LoopRegistryEntry entry;
        entry.constraints = it->second;
        entry.coalesced = op->hasAttr("seer.coalesced");
        registry[loop_id] = entry;
    }
    return registry;
}

/** Fold one runner report's per-rule stats into the run-wide aggregate
 *  (keyed by rule name, since each phase constructs fresh runners). */
void
mergeRuleStats(std::vector<eg::RuleStats> &into,
               const std::vector<eg::RuleStats> &from)
{
    for (const eg::RuleStats &stats : from) {
        if (stats.matches == 0 && stats.bans == 0 &&
            stats.search_seconds == 0) {
            continue; // rule never even searched; keep the aggregate lean
        }
        auto it = std::find_if(into.begin(), into.end(),
                               [&](const eg::RuleStats &existing) {
                                   return existing.name == stats.name;
                               });
        if (it == into.end()) {
            into.push_back(stats);
            continue;
        }
        it->matches += stats.matches;
        it->applications += stats.applications;
        it->bans += stats.bans;
        it->times_banned = stats.times_banned;
        it->search_seconds += stats.search_seconds;
        it->apply_seconds += stats.apply_seconds;
    }
}

/** Apply trusted-coalesced markers to emitted loops. */
void
markTrustedLoops(ir::Module &module, const LoopRegistry &registry)
{
    ir::walk(module, [&](ir::Operation &op) {
        if (!ir::isa(op, ir::opnames::kAffineFor))
            return;
        if (!op.hasAttr("seer.loop_id"))
            return;
        auto it = registry.find(op.strAttr("seer.loop_id"));
        if (it != registry.end() && it->second.coalesced)
            op.setAttr("seer.coalesced", ir::Attribute(int64_t{1}));
    });
}

} // namespace

namespace {

/** Append a recovered-error note (bounded; degraded runs stay cheap). */
void
recordRecovered(SeerStats &stats, const std::string &what)
{
    constexpr size_t kCap = 64;
    if (stats.recovered_errors.size() < kCap)
        stats.recovered_errors.push_back(what);
    stats.degraded = true;
}

} // namespace

SeerResult
optimize(const ir::Module &input, const std::string &func_name,
         const SeerOptions &options)
{
    using Clock = std::chrono::steady_clock;
    auto start = Clock::now();

    // Unified governance: one context carries the wall-clock deadline,
    // the memory budget (via its ResourceGovernor) and any external
    // cancellation (SIGINT through the process-global signal flag, or a
    // caller-provided context). Everything downstream — runner phases,
    // external-pass evaluation, the interpreter, extraction — polls
    // this one object.
    ExecContext exec =
        options.exec.valid() ? options.exec : ExecContext::make();
    if (options.deadline_seconds > 0)
        exec.setDeadlineIn(options.deadline_seconds);
    if (!exec.governor()) {
        // Always attach a governor: budget 0 means accounting only, so
        // the "resource" stats section is populated on every run.
        exec.setGovernor(
            std::make_shared<ResourceGovernor>(options.mem_budget_bytes));
    }

    // Map a cancellation onto the health report. A plain deadline keeps
    // its historical meaning (deadline_hit, not degraded: the budget
    // was honored, the result is simply the best found in time); a
    // memory-budget breach or an external cancel degrades the run.
    auto note_cancellation = [&](SeerResult &result) {
        CancelReason reason = exec.reason();
        if (reason == CancelReason::None)
            return;
        bool first = result.stats.cancel_reason.empty();
        result.stats.cancel_reason = cancelReasonName(reason);
        if (reason == CancelReason::Deadline) {
            result.stats.deadline_hit = true;
        } else if (first && reason == CancelReason::MemBudget) {
            recordRecovered(result.stats,
                            "memory budget breached; degraded to the "
                            "best result found within budget");
        } else if (first && reason == CancelReason::External) {
            recordRecovered(result.stats,
                            "canceled by external request (signal)");
        }
    };
    auto finish = [&](SeerResult &result) {
        note_cancellation(result);
        if (exec.governor())
            result.stats.resource = exec.governor()->stats();
        result.stats.total_seconds =
            std::chrono::duration<double>(Clock::now() - start).count();
        result.stats.time_in_egraph_seconds =
            std::max(0.0, result.stats.total_seconds -
                              result.stats.time_in_passes_seconds);
    };

    ir::Module working = ir::cloneModule(input);
    ir::Operation *func = working.lookupFunc(func_name);
    if (!func)
        fatal("seer: no function named '" + func_name + "'");

    SeerResult result;

    // Pre-normalization. Failure here (or anywhere later, in non-strict
    // mode) degrades to the best module produced so far — worst case
    // the unmodified input. Invalid *input* IR stays fatal in every
    // mode: valid output cannot be conjured from an invalid program.
    try {
        preNormalize(*func);
        ir::verifyOrDie(working);
    } catch (const FatalError &err) {
        if (options.strict)
            throw;
        result.module = ir::cloneModule(input);
        ir::verifyOrDie(result.module);
        recordRecovered(result.stats,
                        std::string("pre-normalization failed: ") +
                            err.what());
        finish(result);
        return result;
    }

    // Translate and seed.
    sl::Translation translation;
    auto context = std::make_shared<ExternalRuleContext>();
    context->use_laws = options.use_laws;
    context->analysis_friendly = options.analysis_friendly_extraction;
    context->unroll_max_trip = options.unroll_max_trip;
    context->hls = options.hls;
    context->validate_results = options.validate_external;
    context->validation_runs = options.validation_runs;
    context->validation_seed = options.validation_seed;
    context->exec = exec;
    // Memoized + parallel external-pass evaluation. A shared cache (a
    // sweep over one kernel) wins over per-run construction; otherwise
    // the cache is persistent (memoizing) or an iteration-scoped
    // staging buffer, per use_pass_cache. Either way the exploration
    // result is identical — the cache memoizes a pure function and
    // unions stay serial.
    EvalCachePtr eval_cache = options.shared_eval_cache;
    if (!eval_cache) {
        eval_cache =
            std::make_shared<ExternalEvalCache>(options.use_pass_cache);
        if (options.use_pass_cache && !options.pass_cache_file.empty()) {
            std::string cache_error;
            eval_cache->loadFile(options.pass_cache_file, &cache_error);
            if (!cache_error.empty()) {
                // Corrupt persistence is recovered by a cold start; the
                // run itself is unaffected.
                recordRecovered(result.stats, cache_error);
            }
        }
    }
    context->eval_cache = eval_cache;
    eval_cache->setExecContext(exec);
    context->jobs = options.jobs > 0 ? options.jobs : 1;
    // Stats snapshots: a shared cache accumulates across optimize()
    // calls, so this run reports deltas against entry values.
    const ExternalEvalStats eval_stats_base = eval_cache->stats();

    // Deterministic run-level name scope: every fresh tag / loop id
    // drawn anywhere in this run (translation, exploration, emission)
    // comes from a stream seeded by the *content* of the normalized
    // input. Two runs over the same function — in this process, another
    // process, or against a --pass-cache file from last week — generate
    // identical names, so snippet content hashes (and therefore cache
    // keys) are stable across runs instead of depending on how far the
    // process-global name counters happened to have advanced.
    sl::NameScope run_scope(hashString(func_name) ^
                            hashString(ir::toString(working)));
    try {
        translation = sl::funcToTerm(*func);
        context->registry = seedRegistry(translation, *func, options.hls);
    } catch (const FatalError &err) {
        if (options.strict)
            throw;
        result.module = std::move(working); // pre-normalized, verified
        recordRecovered(result.stats,
                        std::string("translation failed: ") + err.what());
        finish(result);
        return result;
    }

    // Phase cost models. Declared before the e-graph (they must outlive
    // it: registered cost-bound analyses hold references) and registered
    // below so per-class cost bounds are maintained incrementally through
    // the whole exploration instead of being recomputed per extraction.
    LatencyCost latency(context->registry);
    static const eg::TermSizeCost term_size;

    EGraph egraph(rover::roverAnalysisHooks());
    egraph.setExecContext(exec);
    if (!options.naive_extract) {
        // Every cost model used anywhere in the run: the two extraction
        // phases, analysis-friendly local extraction inside external
        // rules, and the runner's record extraction (term-size).
        eg::registerCostBound(egraph, latency);
        eg::registerCostBound(egraph, context->area_cost);
        eg::registerCostBound(egraph, context->friendly_cost);
        eg::registerCostBound(egraph, term_size);
    }
    EClassId root{};
    try {
        root = egraph.addTerm(translation.term);
        egraph.rebuild();
    } catch (const std::bad_alloc &) {
        // Cannot even seed the e-graph: degrade to the pre-normalized
        // (verified) input instead of propagating the failure.
        if (options.strict)
            throw;
        result.module = std::move(working);
        result.original_term = translation.term;
        recordRecovered(result.stats,
                        "initial e-graph construction failed: "
                        "allocation failure (contained)");
        finish(result);
        return result;
    }

    result.original_term = translation.term;

    eg::RunnerOptions runner_options = options.runner;
    runner_options.catch_rule_errors = !options.strict;
    runner_options.quarantine_after = options.quarantine_after;
    runner_options.exec = exec;
    // One -j knob drives both parallel stages: e-matching and the
    // external-pass worker pool (both deterministic by construction).
    // --match-jobs decouples the search phase when set.
    runner_options.match_jobs =
        options.match_jobs ? options.match_jobs : context->jobs;

    // The health trail of a runner report (recovered errors, quarantined
    // rules). Absorbed even from a phase that is later rolled back: the
    // faults genuinely happened, only their e-graph effects are undone.
    auto absorb_health = [&](const eg::RunnerReport &report) {
        for (const std::string &error : report.recovered_errors)
            recordRecovered(result.stats, error);
        for (const eg::RuleStats &rule : report.rules) {
            if (!rule.quarantined)
                continue;
            auto &names = result.stats.quarantined_rules;
            if (std::find(names.begin(), names.end(), rule.name) ==
                names.end())
                names.push_back(rule.name);
            result.stats.degraded = true;
        }
    };

    auto absorb = [&](eg::RunnerReport &report,
                      size_t &applied_this_phase) {
        applied_this_phase += report.total_applied;
        result.stats.unions_applied += report.total_applied;
        for (auto &record : report.records)
            result.stats.records.push_back(std::move(record));
        mergeRuleStats(result.stats.rule_stats, report.rules);
        for (const eg::IterationStats &stats : report.iterations)
            result.stats.iterations.push_back(stats);
        eg::MatchPhaseStats &mp = result.stats.match_phase;
        mp.candidates_visited += report.match_phase.candidates_visited;
        mp.skipped_clean += report.match_phase.skipped_clean;
        mp.cached_matches_reused += report.match_phase.cached_matches_reused;
        mp.index_scans += report.match_phase.index_scans;
        mp.full_scans += report.match_phase.full_scans;
        mp.incremental_scans += report.match_phase.incremental_scans;
        mp.shards += report.match_phase.shards;
        mp.shard_seconds += report.match_phase.shard_seconds;
        mp.search_wall_seconds += report.match_phase.search_wall_seconds;
        mp.jobs = std::max(mp.jobs, report.match_phase.jobs);
        absorb_health(report);
    };

    // One transactional runner invocation: checkpoint → run →
    // validate-or-rollback. A phase that crashes, or leaves the e-graph
    // inconsistent or blown far past its node budget, is undone
    // wholesale; exploration continues with whatever the healthy phases
    // produced.
    auto run_transactional = [&](const char *label,
                                 const std::function<void(eg::Runner &)>
                                     &add_rules,
                                 size_t &applied_this_phase) {
        EGraph::Checkpoint cp = egraph.checkpoint();
        std::optional<eg::RunnerReport> report;
        try {
            eg::Runner runner(egraph, runner_options);
            add_rules(runner);
            report = runner.run();
            // Chaos: a fault between exploration and commit — the
            // whole phase must roll back, leaving no partial e-graph.
            if (faultFire(FaultPoint::RollbackMidPhase))
                fatal("injected mid-phase fault");
            // Budget sanity: the runner stops *at* max_nodes, but one
            // pathological dynamic result can overshoot hugely.
            if (egraph.numNodes() > 4 * runner_options.max_nodes)
                fatal(MsgBuilder()
                      << "phase exploded to " << egraph.numNodes()
                      << " nodes (budget " << runner_options.max_nodes
                      << ")");
            std::string diag = egraph.debugCheckInvariants();
            if (!diag.empty())
                fatal("e-graph invariants broken: " + diag);
            egraph.commit(cp);
            absorb(*report, applied_this_phase);
        } catch (const FatalError &err) {
            if (options.strict)
                throw;
            egraph.rollback(cp);
            ++result.stats.phase_rollbacks;
            if (report)
                absorb_health(*report);
            recordRecovered(result.stats,
                            std::string(label) +
                                " phase rolled back: " + err.what());
        } catch (const std::bad_alloc &) {
            // Allocation failure anywhere in the phase: the journal
            // checkpoint still holds, so the phase is undone wholesale
            // and optimize() keeps its no-throw contract.
            if (options.strict)
                throw;
            egraph.rollback(cp);
            ++result.stats.phase_rollbacks;
            if (report)
                absorb_health(*report);
            recordRecovered(result.stats,
                            std::string(label) +
                                " phase rolled back: allocation "
                                "failure (contained)");
        }
    };

    // Interleaved exploration (Section 4.4).
    for (int phase = 0; phase < options.max_phases; ++phase) {
        if (exec.canceled())
            break; // reason reported by note_cancellation in finish()
        size_t applied_this_phase = 0;
        // Rover rounds change class contents, so retry external rules
        // freshly each phase.
        context->attempted.clear();
        if (options.use_control) {
            run_transactional(
                "control",
                [&](eg::Runner &runner) {
                    runner.addRules(seqRules());
                    runner.addRules(controlRules(context));
                    runner.addRules(options.extra_control_rules);
                },
                applied_this_phase);
        }
        if (options.use_rover) {
            run_transactional(
                "datapath",
                [&](eg::Runner &runner) {
                    runner.addRules(rover::roverRules());
                },
                applied_this_phase);
        }
        if (applied_this_phase == 0)
            break; // joint saturation
    }
    result.stats.rejected_externals = context->rejected_results;
    result.stats.rejection_details = context->rejections;

    // Two-phase extraction (Section 4.6) as a composable pipeline:
    // phase 1 pins the control skeleton under the latency cost (Eqn 3),
    // phase 2 re-extracts every pure sub-expression of that skeleton
    // under the ROVER area cost (Eqn 4).
    ExtractorKind control_kind = options.naive_extract
                                     ? ExtractorKind::Naive
                                     : ExtractorKind::Greedy;
    ExtractorKind datapath_kind =
        options.naive_extract
            ? ExtractorKind::Naive
            : (options.exact_datapath ? ExtractorKind::Exact
                                      : ExtractorKind::Greedy);
    ExtractionPipeline pipeline;
    pipeline.addPhase({"control-latency", &latency, control_kind,
                       /*refine=*/false, /*budget=*/200000, exec});
    pipeline.addPhase({"datapath-area", &context->area_cost,
                       datapath_kind, /*refine=*/true,
                       /*budget=*/200000, exec});
    // Extraction under governance: a canceled context stops the
    // pipeline between phases and bounds the exact search from inside
    // (best-so-far, never optimal-or-nothing). A crash or allocation
    // failure degrades to emitting the original program.
    ExtractionReport extraction;
    try {
        extraction =
            pipeline.run(egraph, root, [&] { return exec.canceled(); });
    } catch (const FatalError &err) {
        if (options.strict)
            throw;
        extraction.infeasible = true;
        recordRecovered(result.stats,
                        std::string("extraction failed: ") + err.what());
    } catch (const std::bad_alloc &) {
        if (options.strict)
            throw;
        extraction.infeasible = true;
        recordRecovered(result.stats,
                        "extraction failed: allocation failure "
                        "(contained)");
    }
    result.stats.extraction = extraction.phases;
    TermPtr final_term;
    if (!extraction.infeasible) {
        final_term = extraction.term;
    } else {
        if (options.strict)
            fatal("seer: extraction found no implementation");
        recordRecovered(result.stats,
                        "extraction found no implementation; emitting "
                        "the original program");
        final_term = translation.term;
    }
    result.extracted_term = final_term;

    // Emit, degrading stepwise on failure: extracted term → original
    // term → pre-normalized input module. The last rung cannot fail
    // (`working` was verified above), so optimize() always returns
    // valid IR in non-strict mode.
    auto emit = [&](const TermPtr &term) {
        sl::EmitSpec spec;
        spec.func_name = translation.func_name;
        spec.args = translation.args;
        ir::Module module = sl::termToFunc(term, spec);
        markTrustedLoops(module, context->registry);
        passes::canonicalize(*module.firstFunc());
        ir::verifyOrDie(module);
        return module;
    };
    auto emit_guarded = [&](const TermPtr &term,
                            std::string *why) -> std::optional<ir::Module> {
        try {
            return emit(term);
        } catch (const FatalError &err) {
            if (options.strict)
                throw;
            *why = err.what();
        } catch (const std::bad_alloc &) {
            if (options.strict)
                throw;
            *why = "allocation failure (contained)";
        }
        return std::nullopt;
    };
    std::string emit_why;
    if (auto module = emit_guarded(final_term, &emit_why)) {
        result.module = std::move(*module);
    } else {
        recordRecovered(result.stats,
                        "emission of the extracted term failed: " +
                            emit_why);
        if (auto module = emit_guarded(translation.term, &emit_why)) {
            result.module = std::move(*module);
            result.extracted_term = translation.term;
        } else {
            recordRecovered(result.stats,
                            "emission of the original term failed: " +
                                emit_why);
            result.module = std::move(working);
            result.extracted_term = nullptr;
        }
    }

    result.registry = std::move(context->registry);
    result.stats.egraph_nodes = egraph.numNodes();
    result.stats.egraph_classes = egraph.numClasses();
    // "Time in MLIR": wall-clock spent evaluating external passes this
    // run (batches block the main loop, so wall time is the honest
    // figure under -j; per-stage thread-seconds live in external_eval).
    result.stats.time_in_passes_seconds = context->mlir_seconds;
    result.stats.external_eval =
        evalStatsDelta(eval_cache->stats(), eval_stats_base);
    if (!options.shared_eval_cache && options.use_pass_cache &&
        !options.pass_cache_file.empty()) {
        std::string cache_error;
        if (!eval_cache->saveFile(options.pass_cache_file,
                                  &cache_error)) {
            recordRecovered(result.stats, cache_error);
        }
    }
    finish(result);
    return result;
}

json::Value
toJson(const SeerStats &stats)
{
    json::Value out{json::Object{}};
    out.set("egraph_nodes", stats.egraph_nodes);
    out.set("egraph_classes", stats.egraph_classes);
    out.set("unions_applied", stats.unions_applied);
    out.set("time_in_passes_seconds", stats.time_in_passes_seconds);
    out.set("time_in_egraph_seconds", stats.time_in_egraph_seconds);
    out.set("total_seconds", stats.total_seconds);
    json::Value rules{json::Array{}};
    for (const eg::RuleStats &rule : stats.rule_stats)
        rules.push(eg::toJson(rule));
    out.set("rules", std::move(rules));
    json::Value iterations{json::Array{}};
    for (const eg::IterationStats &iteration : stats.iterations)
        iterations.push(eg::toJson(iteration));
    out.set("iterations", std::move(iterations));
    out.set("match_phase", eg::toJson(stats.match_phase));
    out.set("external_eval", toJson(stats.external_eval));
    json::Value extraction{json::Array{}};
    for (const ExtractionPhaseStats &phase : stats.extraction) {
        json::Value p{json::Object{}};
        p.set("name", phase.name);
        p.set("extractor", phase.extractor);
        p.set("ran", phase.ran);
        p.set("extractions", phase.extractions);
        p.set("classes_visited", phase.classes_visited);
        p.set("classes_recomputed", phase.classes_recomputed);
        p.set("bound_prunes", phase.bound_prunes);
        p.set("expansions", phase.expansions);
        p.set("budget_exhaustions", phase.budget_exhaustions);
        p.set("used_analysis", phase.used_analysis);
        p.set("seconds", phase.seconds);
        p.set("tree_cost", phase.tree_cost);
        p.set("dag_cost", phase.dag_cost);
        extraction.push(std::move(p));
    }
    out.set("extraction", std::move(extraction));
    out.set("resource", toJson(stats.resource));
    out.set("degraded", stats.degraded);
    json::Value health{json::Object{}};
    health.set("degraded", stats.degraded);
    health.set("phase_rollbacks", stats.phase_rollbacks);
    health.set("deadline_hit", stats.deadline_hit);
    health.set("cancel_reason", stats.cancel_reason);
    health.set("rejected_externals", stats.rejected_externals);
    json::Value quarantined{json::Array{}};
    for (const std::string &name : stats.quarantined_rules)
        quarantined.push(json::Value{name});
    health.set("quarantined_rules", std::move(quarantined));
    json::Value recovered{json::Array{}};
    for (const std::string &error : stats.recovered_errors)
        recovered.push(json::Value{error});
    health.set("recovered_errors", std::move(recovered));
    json::Value rejections{json::Array{}};
    for (const std::string &rejection : stats.rejection_details)
        rejections.push(json::Value{rejection});
    health.set("rejections", std::move(rejections));
    out.set("health", std::move(health));
    return out;
}

} // namespace seer::core
