#include "core/server.h"

#include <chrono>
#include <iostream>

#include <unistd.h>

#include "support/exec_context.h"

namespace seer::core {

namespace {

/** One-string writes keep concurrent workers' log lines whole. */
void
logLine(const std::string &line)
{
    std::cerr << line;
}

} // namespace

OptServer::OptServer(ServerOptions options)
    : options_(std::move(options))
{
    EvalCacheConfig config;
    config.shards = options_.cache_shards;
    config.max_bytes = options_.cache_max_bytes;
    cache_ = std::make_shared<ExternalEvalCache>(true, config);

    server_exec_ = ExecContext::make();
    if (options_.mem_budget_bytes > 0) {
        server_exec_.setGovernor(std::make_shared<ResourceGovernor>(
            options_.mem_budget_bytes));
    }
    // The shared cache always charges the *server* governor: a request
    // budget bounds the request's own working set, not the footprint
    // of a store every request shares.
    cache_->pinExecContext(server_exec_);
}

OptServer::~OptServer()
{
    stop();
}

bool
OptServer::start(std::string *error)
{
    listen_fd_ = net::listenUnix(options_.socket_path, error);
    if (!listen_fd_.valid())
        return false;

    if (!options_.cache_file.empty()) {
        std::string load_error;
        size_t loaded = cache_->loadFile(options_.cache_file,
                                         &load_error);
        if (!options_.quiet) {
            ExternalEvalStats stats = cache_->stats();
            if (loaded > 0) {
                logLine("; seer-optd: cache: " +
                        std::to_string(loaded) +
                        " entries loaded from " + options_.cache_file +
                        "\n");
            } else if (stats.disk_load_failed) {
                logLine("; seer-optd: cache: cold start (" +
                        load_error + "; " +
                        std::to_string(stats.disk_entries_rejected) +
                        " records rejected)\n");
            }
        }
    }

    queue_ = std::make_unique<TaskQueue>(options_.workers);
    running_.store(true);
    stopping_.store(false);
    accept_thread_ = std::thread([this] { acceptLoop(); });
    return true;
}

void
OptServer::acceptLoop()
{
    while (!stopping_.load()) {
        // SIGTERM/SIGINT end the accept loop; active sessions observe
        // the same flag through their ExecContexts and degrade out.
        if (signalCancelRequested())
            break;
        if (!net::waitReadable(listen_fd_.get(), 100))
            continue;
        if (stopping_.load() || signalCancelRequested())
            break;
        std::string error;
        net::Fd client = net::acceptClient(listen_fd_.get(), &error);
        if (!client.valid()) {
            if (!error.empty() && !options_.quiet)
                logLine("; seer-optd: " + error + "\n");
            continue;
        }
        auto shared =
            std::make_shared<net::Fd>(std::move(client));
        queue_->post([this, shared] { handleClient(shared); });
    }
    running_.store(false);
}

void
OptServer::handleClient(std::shared_ptr<net::Fd> client)
{
    int fd = client->get();
    std::string payload;
    std::string io_error;
    net::IoStatus status = net::recvFrame(fd, payload, &io_error);
    if (status == net::IoStatus::Eof)
        return; // health probe / connect-and-go: a non-event
    if (status != net::IoStatus::Ok) {
        {
            std::lock_guard<std::mutex> lock(counters_mutex_);
            ++counters_.protocol_errors;
        }
        ServeResponse bad;
        bad.exit_code = 1;
        bad.error = "bad request frame: " + io_error;
        net::sendFrame(fd, serializeResponse(bad), nullptr);
        return;
    }

    ServeRequest request;
    std::string parse_error;
    if (!parseRequest(payload, &request, &parse_error)) {
        {
            std::lock_guard<std::mutex> lock(counters_mutex_);
            ++counters_.protocol_errors;
        }
        ServeResponse bad;
        bad.exit_code = 1;
        bad.error = "bad request: " + parse_error;
        net::sendFrame(fd, serializeResponse(bad), nullptr);
        return;
    }

    // Session isolation: a fresh context per request. The disconnect
    // watcher cancels it (External) the moment the client hangs up, so
    // an orphaned request stops consuming the pool cooperatively.
    SessionEnv env;
    env.shared_cache = cache_;
    env.exec = ExecContext::make();
    env.max_deadline_seconds = options_.max_deadline_seconds;

    std::atomic<bool> done{false};
    std::atomic<bool> hung_up{false};
    std::thread watcher([fd, &done, &hung_up, &env] {
        while (!done.load(std::memory_order_relaxed)) {
            if (net::peerHungUp(fd)) {
                hung_up.store(true, std::memory_order_relaxed);
                env.exec.requestCancel(CancelReason::External);
                return;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
        }
    });

    auto begin = std::chrono::steady_clock::now();
    ServeResponse response = runSession(request, env);
    double seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - begin)
            .count();

    done.store(true, std::memory_order_relaxed);
    watcher.join();

    if (!hung_up.load())
        net::sendFrame(fd, serializeResponse(response), nullptr);

    uint64_t request_id;
    bool save_now = false;
    {
        std::lock_guard<std::mutex> lock(counters_mutex_);
        request_id = ++counters_.requests;
        if (response.exit_code == 1)
            ++counters_.failures;
        if (response.degraded)
            ++counters_.degraded;
        if (hung_up.load())
            ++counters_.client_gone;
        if (options_.save_every > 0 &&
            ++requests_since_save_ >= options_.save_every) {
            requests_since_save_ = 0;
            save_now = true;
        }
    }
    if (!options_.quiet) {
        // A non-default schedule is worth a note: the same kernel can
        // legitimately produce a different (still sound) optimum.
        std::string sched = request.schedule != "exhaustive"
                                ? ", schedule " + request.schedule
                                : "";
        logLine("; seer-optd: req #" + std::to_string(request_id) +
                ": exit " + std::to_string(response.exit_code) +
                ", " + std::to_string(response.pass_cache_hits) +
                " hits, " +
                std::to_string(response.pass_cache_misses) +
                " misses, " + std::to_string(response.evaluations) +
                " evals, " + std::to_string(seconds) + "s" + sched +
                (hung_up.load() ? " (client gone)" : "") + "\n");
    }
    if (save_now)
        saveCache();
}

void
OptServer::saveCache()
{
    if (options_.cache_file.empty())
        return;
    std::lock_guard<std::mutex> lock(save_mutex_);
    std::string error;
    if (cache_->saveFile(options_.cache_file, &error)) {
        std::lock_guard<std::mutex> counters(counters_mutex_);
        ++counters_.cache_saves;
    } else if (!options_.quiet) {
        logLine("; seer-optd: cache save failed: " + error + "\n");
    }
}

void
OptServer::stop()
{
    bool was_stopping = stopping_.exchange(true);
    if (accept_thread_.joinable())
        accept_thread_.join();
    if (queue_) {
        // Drain: accepted clients still get their response; active
        // sessions wind down through the signal/cancel flags.
        queue_->shutdown();
        queue_.reset();
    }
    if (!was_stopping)
        saveCache();
    if (listen_fd_.valid()) {
        listen_fd_.reset();
        ::unlink(options_.socket_path.c_str());
    }
    running_.store(false);
}

ServerCounters
OptServer::counters() const
{
    std::lock_guard<std::mutex> lock(counters_mutex_);
    return counters_;
}

} // namespace seer::core
