#include "core/scheduler.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <unordered_set>

#include "support/rng.h"

namespace seer::core {

using eg::TermPtr;

bool
parseScheduleKind(const std::string &text, ScheduleKind *kind)
{
    if (text == "exhaustive") {
        *kind = ScheduleKind::Exhaustive;
        return true;
    }
    if (text == "bandit") {
        *kind = ScheduleKind::Bandit;
        return true;
    }
    return false;
}

const char *
scheduleKindName(ScheduleKind kind)
{
    switch (kind) {
    case ScheduleKind::Exhaustive:
        return "exhaustive";
    case ScheduleKind::Bandit:
        return "bandit";
    }
    return "exhaustive";
}

json::Value
toJson(const SchedulerStats &stats)
{
    json::Value out{json::Object{}};
    out.set("name", stats.name);
    out.set("seed", stats.seed);
    out.set("eval_budget", stats.eval_budget);
    out.set("waves", stats.waves);
    out.set("candidates", stats.candidates);
    out.set("scheduled", stats.scheduled);
    out.set("deferred", stats.deferred);
    out.set("epsilon_promotions", stats.epsilon_promotions);
    out.set("observations", stats.observations);
    out.set("cached_observations", stats.cached_observations);
    out.set("inline_evaluations", stats.inline_evaluations);
    out.set("reward_total", stats.reward_total);
    out.set("regret_proxy", stats.regret_proxy);
    json::Value arms{json::Array{}};
    for (const SchedulerArmStats &arm : stats.arms) {
        json::Value a{json::Object{}};
        a.set("pass", arm.pass);
        a.set("bucket", static_cast<uint64_t>(arm.bucket));
        a.set("pulls", arm.pulls);
        a.set("observations", arm.observations);
        a.set("reward_total", arm.reward_total);
        arms.push(std::move(a));
    }
    out.set("arms", std::move(arms));
    return out;
}

size_t
proposalTermSize(const TermPtr &term)
{
    if (!term)
        return 0;
    size_t n = 1;
    for (const TermPtr &child : term->children())
        n += proposalTermSize(child);
    return n;
}

namespace {

/** Deterministic reward: a validated replacement is worth 1, plus a
 *  small size-improvement bonus normalized by the eval-cost proxy.
 *  Rejections and non-applications earn 0 (the eval was spent for
 *  nothing). Wall-clock never enters — rewards must replay. */
double
rewardOf(const ProposalCandidate &candidate,
         const ProposalOutcome &outcome)
{
    if (outcome.status != PassOutcome::Status::Replaced)
        return 0;
    double bonus = std::max(0.0, outcome.cost_delta) /
                   static_cast<double>(candidate.term_size + 1);
    return 1.0 + bonus;
}

/** Shared per-arm history, keyed (pass, bucket) in canonical order. */
class ArmTable
{
  public:
    explicit ArmTable(unsigned buckets) : buckets_(buckets ? buckets : 1)
    {
    }

    struct Arm
    {
        size_t pulls = 0;
        size_t observations = 0;
        double reward_total = 0;
    };

    unsigned
    bucketOf(uint64_t key) const
    {
        return static_cast<unsigned>(key % buckets_);
    }

    Arm &
    armFor(const ProposalCandidate &candidate)
    {
        return arms_[{candidate.rule, bucketOf(candidate.key)}];
    }

    const Arm *
    find(const ProposalCandidate &candidate) const
    {
        auto it = arms_.find({candidate.rule, bucketOf(candidate.key)});
        return it == arms_.end() ? nullptr : &it->second;
    }

    /** Mean reward; optimistic for unobserved arms so exploration
     *  starts from "worth trying". */
    double
    meanOf(const ProposalCandidate &candidate) const
    {
        const Arm *arm = find(candidate);
        if (!arm || arm->observations == 0)
            return 1.0;
        return arm->reward_total /
               static_cast<double>(arm->observations);
    }

    void
    render(SchedulerStats &stats) const
    {
        for (const auto &[key, arm] : arms_) {
            SchedulerArmStats out;
            out.pass = key.first;
            out.bucket = key.second;
            out.pulls = arm.pulls;
            out.observations = arm.observations;
            out.reward_total = arm.reward_total;
            stats.arms.push_back(std::move(out));
        }
    }

  private:
    unsigned buckets_;
    std::map<std::pair<std::string, unsigned>, Arm> arms_;
};

/** The refactor-validation baseline: every candidate, wave order. */
class ExhaustiveScheduler final : public ProposalScheduler
{
  public:
    ExhaustiveScheduler() : arms_(8) {}

    const char *name() const override { return "exhaustive"; }
    bool mayDefer() const override { return false; }
    void beginPhase() override {}
    void beginIteration() override {}

    std::vector<ProposalCandidate>
    schedule(std::vector<ProposalCandidate> wave) override
    {
        ++stats_.waves;
        stats_.candidates += wave.size();
        stats_.scheduled += wave.size();
        for (const ProposalCandidate &candidate : wave)
            ++arms_.armFor(candidate).pulls;
        return wave; // enumeration order, untouched
    }

    bool deferred(uint64_t) const override { return false; }

    void
    observe(const ProposalCandidate &candidate,
            const ProposalOutcome &outcome) override
    {
        ++stats_.observations;
        if (outcome.from_cache)
            ++stats_.cached_observations;
        if (outcome.inline_eval)
            ++stats_.inline_evaluations;
        double reward = rewardOf(candidate, outcome);
        stats_.reward_total += reward;
        ArmTable::Arm &arm = arms_.armFor(candidate);
        ++arm.observations;
        arm.reward_total += reward;
    }

    SchedulerStats
    stats() const override
    {
        SchedulerStats out = stats_;
        out.name = name();
        arms_.render(out);
        return out;
    }

  private:
    ArmTable arms_;
    SchedulerStats stats_;
};

/**
 * Seeded contextual bandit: UCB over (pass, structural-hash bucket)
 * arms, an epsilon coverage floor, and a per-wave cold-eval budget.
 * Every input is deterministic (candidate features + the seeded
 * stream), and both schedule() and observe() run serially, so a fixed
 * seed replays byte-identically at any -j.
 */
class BanditScheduler final : public ProposalScheduler
{
  public:
    explicit BanditScheduler(const BanditConfig &config)
        : config_(config), arms_(config.buckets), rng_(config.seed)
    {
        config_.eval_budget =
            std::min(1.0, std::max(0.0, config_.eval_budget));
        stats_.seed = config_.seed;
        stats_.eval_budget = config_.eval_budget;
    }

    const char *name() const override { return "bandit"; }
    bool mayDefer() const override { return config_.eval_budget < 1.0; }
    void beginPhase() override { deferred_.clear(); }
    // Deferrals are sticky across iterations WITHIN a phase: a parked
    // candidate recurs in later waves anyway (its attempt is never
    // recorded), so clearing here would let the full candidate set
    // creep back in over the iterations and erase most of the budget's
    // cold-evaluation savings. Re-entry goes through the epsilon floor
    // in schedule() instead; a new phase starts from a clean slate.
    void beginIteration() override {}

    std::vector<ProposalCandidate>
    schedule(std::vector<ProposalCandidate> wave) override
    {
        ++stats_.waves;
        stats_.candidates += wave.size();
        if (wave.empty())
            return wave;

        double best_mean = 0;
        for (const ProposalCandidate &c : wave)
            best_mean = std::max(best_mean, arms_.meanOf(c));

        std::vector<ProposalCandidate> batch;
        std::vector<ProposalCandidate> competing;
        competing.reserve(wave.size());
        for (ProposalCandidate &c : wave) {
            if (deferred_.count(c.key) != 0) {
                // Coverage floor: a parked candidate keeps an epsilon
                // chance per wave to be pulled anyway, so every arm is
                // eventually observed even under a tight budget.
                if (rng_.nextDouble() < config_.epsilon) {
                    deferred_.erase(c.key);
                    ++stats_.epsilon_promotions;
                    ++stats_.scheduled;
                    stats_.regret_proxy += best_mean - arms_.meanOf(c);
                    ++arms_.armFor(c).pulls;
                    batch.push_back(std::move(c));
                } else {
                    ++stats_.deferred;
                }
                continue;
            }
            competing.push_back(std::move(c));
        }

        // Rank by UCB score; ties (and the fresh-arm plateau) break on
        // the structural hash, so the order is a pure function of the
        // candidate set and the observation history.
        size_t total = std::max<size_t>(1, stats_.observations);
        auto score = [&](const ProposalCandidate &c) {
            const ArmTable::Arm *arm = arms_.find(c);
            size_t n = arm ? arm->observations : 0;
            return arms_.meanOf(c) +
                   config_.ucb_c *
                       std::sqrt(std::log(1.0 + static_cast<double>(
                                                    total)) /
                                 (1.0 + static_cast<double>(n)));
        };
        std::stable_sort(competing.begin(), competing.end(),
                         [&](const ProposalCandidate &a,
                             const ProposalCandidate &b) {
                             double sa = score(a), sb = score(b);
                             if (sa != sb)
                                 return sa > sb;
                             return a.key < b.key;
                         });

        size_t allowed = competing.size();
        if (config_.eval_budget < 1.0) {
            allowed = static_cast<size_t>(std::ceil(
                config_.eval_budget *
                static_cast<double>(competing.size())));
            allowed = std::max<size_t>(1, allowed);
        }

        batch.reserve(batch.size() + allowed);
        for (size_t i = 0; i < competing.size(); ++i) {
            if (i < allowed) {
                ++stats_.scheduled;
                stats_.regret_proxy +=
                    best_mean - arms_.meanOf(competing[i]);
                ++arms_.armFor(competing[i]).pulls;
                batch.push_back(std::move(competing[i]));
            } else {
                ++stats_.deferred;
                deferred_.insert(competing[i].key);
            }
        }
        return batch;
    }

    bool
    deferred(uint64_t key) const override
    {
        return deferred_.count(key) != 0;
    }

    void
    observe(const ProposalCandidate &candidate,
            const ProposalOutcome &outcome) override
    {
        ++stats_.observations;
        if (outcome.from_cache)
            ++stats_.cached_observations;
        if (outcome.inline_eval)
            ++stats_.inline_evaluations;
        double reward = rewardOf(candidate, outcome);
        stats_.reward_total += reward;
        ArmTable::Arm &arm = arms_.armFor(candidate);
        ++arm.observations;
        arm.reward_total += reward;
    }

    SchedulerStats
    stats() const override
    {
        SchedulerStats out = stats_;
        out.name = name();
        arms_.render(out);
        return out;
    }

  private:
    BanditConfig config_;
    ArmTable arms_;
    Rng rng_;
    std::unordered_set<uint64_t> deferred_;
    SchedulerStats stats_;
};

} // namespace

std::unique_ptr<ProposalScheduler>
makeExhaustiveScheduler()
{
    return std::make_unique<ExhaustiveScheduler>();
}

std::unique_ptr<ProposalScheduler>
makeBanditScheduler(const BanditConfig &config)
{
    return std::make_unique<BanditScheduler>(config);
}

// --- ProposePhase ---------------------------------------------------------

void
ProposePhase::beginPhase()
{
    attempted_.clear();
    scheduler_->beginPhase();
}

void
ProposePhase::syncIteration(const eg::EGraph &egraph,
                            ExternalEvalCache *cache)
{
    if (egraph.tick() == last_tick_)
        return;
    last_tick_ = egraph.tick();
    scheduler_->beginIteration();
    // Ephemeral staging (cache-off mode) drops outcomes at each
    // iteration boundary: nothing is ever reused across iterations.
    if (cache && !cache->persistent())
        cache->clearOutcomes();
}

bool
ProposePhase::attemptedPeek(const eg::EGraph &egraph, const char *rule,
                            eg::EClassId root) const
{
    eg::EClassId canon = egraph.find(root);
    auto it = attempted_.find(std::make_pair(std::string(rule), canon));
    return it != attempted_.end() &&
           it->second == egraph.eclass(canon).nodes.size();
}

void
ProposePhase::recordAttempt(const eg::EGraph &egraph, const char *rule,
                            eg::EClassId root)
{
    eg::EClassId canon = egraph.find(root);
    attempted_.insert_or_assign(
        std::make_pair(std::string(rule), canon),
        egraph.eclass(canon).nodes.size());
}

// --- EvaluatePhase --------------------------------------------------------

void
EvaluatePhase::run(const std::vector<ProposalCandidate> &batch,
                   const std::function<bool(ir::Operation &)> &transform,
                   const SnippetEvalConfig &config,
                   ExternalEvalCache &cache, unsigned jobs,
                   const std::function<bool()> &cancelled,
                   double *wall_seconds)
{
    if (batch.empty())
        return;
    cache.countBatch(batch.size());
    std::vector<EvalBatchItem> items;
    items.reserve(batch.size());
    for (const ProposalCandidate &candidate : batch)
        items.push_back({candidate.key, candidate.term});
    // "Time in MLIR" is wall-clock: the batch blocks the main loop, so
    // the elapsed span (not summed thread-seconds) is charged.
    auto t0 = std::chrono::steady_clock::now();
    evaluateBatch(items, transform, config, cache, jobs, cancelled);
    *wall_seconds += std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
}

// --- MergePhase -----------------------------------------------------------

bool
MergePhase::admits(const std::vector<uint64_t> &keys) const
{
    if (!scheduler_->mayDefer())
        return true;
    for (uint64_t key : keys) {
        if (scheduler_->deferred(key))
            return false;
    }
    return true;
}

void
MergePhase::observe(const ProposalCandidate &candidate,
                    const ProposalOutcome &outcome)
{
    scheduler_->observe(candidate, outcome);
}

// --- pipeline -------------------------------------------------------------

PipelinePtr
makePipeline(ScheduleKind kind, const BanditConfig &config)
{
    std::unique_ptr<ProposalScheduler> scheduler =
        kind == ScheduleKind::Bandit ? makeBanditScheduler(config)
                                     : makeExhaustiveScheduler();
    return std::make_shared<ProposalPipeline>(std::move(scheduler));
}

} // namespace seer::core
