#include "core/external_rules.h"

#include <chrono>
#include <cstring>
#include <new>
#include <set>

#include "core/verify.h"
#include "hls/pragmas.h"
#include "ir/analysis.h"
#include "ir/builder.h"
#include "ir/verifier.h"
#include "passes/passes.h"
#include "rover/rover.h"
#include "seerlang/canonical.h"
#include "seerlang/encoding.h"
#include "seerlang/from_term.h"
#include "seerlang/to_term.h"
#include "support/error.h"
#include "support/hashing.h"

namespace seer::core {

using eg::EClassId;
using eg::EGraph;
using eg::makeDynRewrite;
using eg::makeRewrite;
using eg::Match;
using eg::Rewrite;
using eg::TermPtr;

namespace {

using Clock = std::chrono::steady_clock;

using SymbolPred = bool (*)(Symbol);

bool
isForNode(Symbol symbol)
{
    return sl::opNameOf(symbol) == "affine.for";
}

bool
isIfNode(Symbol symbol)
{
    return sl::opNameOf(symbol) == "scf.if";
}

bool
isStatementRoot(Symbol symbol)
{
    std::string name = sl::opNameOf(symbol);
    return name == "seq" || name == "affine.for" || name == "scf.while";
}

bool
classHas(const EGraph &egraph, EClassId id, SymbolPred pred)
{
    for (const eg::ENode &node : egraph.eclass(id).nodes) {
        if (pred(node.op))
            return true;
    }
    return false;
}

/**
 * Local extraction (Section 4.5): pick nodes satisfying `pred` as the
 * root and extract children with the analysis-friendly cost, so the
 * external pass is handed polyhedral-analyzable index expressions.
 * Returns up to `max_candidates` candidate terms (a class may hold both
 * the original loop and, say, its unrolled chain; the pass may apply to
 * either representative).
 */
std::vector<TermPtr>
extractAllRooted(const EGraph &egraph, EClassId id, SymbolPred pred,
                 const ContextPtr &ctx, size_t max_candidates = 3)
{
    // Ablation: without the analysis-friendly cost, local extraction
    // hands the external pass the hardware-cheapest representative —
    // which for indices is the shift form no polyhedral analysis can
    // read (Figure 9's failure mode).
    const eg::CostModel &cost =
        ctx->analysis_friendly
            ? static_cast<const eg::CostModel &>(ctx->friendly_cost)
            : static_cast<const eg::CostModel &>(ctx->area_cost);
    std::vector<TermPtr> out;
    const eg::EClass &cls = egraph.eclass(id);
    for (const eg::ENode &node : cls.nodes) {
        if (out.size() >= max_candidates)
            break;
        if (!pred(node.op))
            continue;
        std::vector<TermPtr> children;
        bool feasible = true;
        for (EClassId child : node.children) {
            auto extraction = extractGreedy(egraph, child, cost);
            if (!extraction) {
                feasible = false;
                break;
            }
            children.push_back(extraction->term);
        }
        if (feasible)
            out.push_back(eg::makeTerm(node.op, std::move(children)));
    }
    return out;
}

std::optional<TermPtr>
extractRooted(const EGraph &egraph, EClassId id, SymbolPred pred,
              const ContextPtr &ctx)
{
    auto candidates = extractAllRooted(egraph, id, pred, ctx, 1);
    if (candidates.empty())
        return std::nullopt;
    return candidates[0];
}

// --- cache keys -----------------------------------------------------------

/** Bump when key semantics change: persisted caches must not alias. */
constexpr uint64_t kPassCacheKeyVersion = 1;

/** Evaluation-relevant context configuration, hashed into every key. */
uint64_t
configFingerprint(const ContextPtr &ctx)
{
    uint64_t h = hashValue(kPassCacheKeyVersion);
    h = hashValue(static_cast<uint64_t>(ctx->validate_results), h);
    h = hashValue(static_cast<uint64_t>(ctx->validation_runs), h);
    h = hashValue(ctx->validation_seed, h);
    h = hashValue(static_cast<uint64_t>(ctx->unroll_max_trip), h);
    uint64_t clock_bits = 0;
    static_assert(sizeof clock_bits ==
                  sizeof ctx->hls.schedule.clock_period_ns);
    std::memcpy(&clock_bits, &ctx->hls.schedule.clock_period_ns,
                sizeof clock_bits);
    h = hashValue(clock_bits, h);
    return h;
}

/**
 * Content-addressed key of one (snippet, rule, config) evaluation. The
 * snippet hashes alpha-canonically (bound loop names/ids abstracted,
 * memory tags kept — they are program-order payload), so renamed but
 * structurally identical candidates share an outcome. Schedule
 * overrides are keyed by concrete loop ids, so any override that names
 * a loop of this snippet is folded in.
 */
uint64_t
passKeyFor(const ContextPtr &ctx, const char *rule, const TermPtr &term)
{
    uint64_t h = sl::canonicalTermHash(term);
    h = hashCombine(h, hashString(rule));
    h = hashCombine(h, configFingerprint(ctx));
    const auto &overrides = ctx->hls.schedule.overrides;
    if (!overrides.empty()) {
        std::vector<std::string> ids;
        collectLoopIds(term, ids);
        for (const std::string &id : ids) {
            auto it = overrides.find(id);
            if (it == overrides.end())
                continue;
            h = hashCombine(h, hashString(id));
            const hls::LoopOverride &o = it->second;
            h = hashValue(o.ii ? static_cast<uint64_t>(*o.ii) + 1 : 0,
                          h);
            h = hashValue(
                o.latency ? static_cast<uint64_t>(*o.latency) + 1 : 0,
                h);
            h = hashValue(o.pipelined ? uint64_t(*o.pipelined) + 1 : 0,
                          h);
        }
    }
    return h;
}

SnippetEvalConfig
evalConfig(const ContextPtr &ctx)
{
    SnippetEvalConfig config;
    config.validate_results = ctx->validate_results;
    config.validation_runs = ctx->validation_runs;
    config.validation_seed = ctx->validation_seed;
    config.hls = ctx->hls;
    config.exec = ctx->exec;
    return config;
}

/**
 * Serial consult: fetch (or inline-evaluate) the outcome for `term`
 * and apply its effects — rejection accounting and loop-registry
 * maintenance happen *here*, at consult time, so they are identical
 * whether the outcome came from the worker pool, the cache, a disk
 * load, or a cold inline evaluation. `law` selects the paper's
 * approximation law ("fuse") or nullptr for the schedule oracle.
 */
std::optional<TermPtr>
consultSnippet(const ContextPtr &ctx, const char *rule,
               const TermPtr &term,
               const std::function<bool(ir::Operation &)> &transform,
               const char *law)
{
    // Cancellation propagation: once the driver's whole-run budget
    // (deadline, memory, signal) is spent, stop launching snippet/pass
    // work entirely.
    if (ctx->exec.canceled())
        return std::nullopt;

    uint64_t key = passKeyFor(ctx, rule, term);
    std::optional<PassOutcome> outcome;
    bool from_cache = false;
    bool inline_eval = false;
    if (ctx->eval_cache) {
        outcome = ctx->eval_cache->lookupPass(key);
        from_cache = outcome.has_value();
        if (!outcome) {
            // The prepare stage missed this candidate (extraction can
            // drift as earlier applications mutate the e-graph):
            // evaluate inline. Same key, same name scope — the result
            // is byte-identical to what the pool would have produced.
            ctx->eval_cache->countMiss();
            inline_eval = true;
            auto t0 = Clock::now();
            outcome = evaluateSnippet(term, key, transform,
                                      evalConfig(ctx), *ctx->eval_cache);
            ctx->mlir_seconds +=
                std::chrono::duration<double>(Clock::now() - t0).count();
            if (outcome)
                ctx->eval_cache->insertPass(key, *outcome);
        }
    } else {
        // Legacy/unit contexts without an attached cache: evaluate
        // through a throwaway staging cache and charge the context
        // directly, preserving the pre-layer behavior.
        ExternalEvalCache scratch(false);
        auto t0 = Clock::now();
        outcome =
            evaluateSnippet(term, key, transform, evalConfig(ctx),
                            scratch);
        ctx->mlir_seconds +=
            std::chrono::duration<double>(Clock::now() - t0).count();
    }
    if (!outcome)
        return std::nullopt; // evaluation canceled: not an outcome

    // Serial-fold feedback: consults happen on the runner thread in
    // canonical union order, so scheduler history replays identically
    // under any worker-pool width.
    {
        ProposalCandidate candidate;
        candidate.rule = rule;
        candidate.key = key;
        candidate.term = term;
        candidate.term_size = proposalTermSize(term);
        ProposalOutcome fed;
        fed.status = outcome->status;
        fed.from_cache = from_cache;
        fed.inline_eval = inline_eval;
        if (outcome->status == PassOutcome::Status::Replaced) {
            fed.cost_delta =
                static_cast<double>(candidate.term_size) -
                static_cast<double>(
                    proposalTermSize(outcome->replacement));
        }
        ctx->pipeline->merge().observe(candidate, fed);
    }

    switch (outcome->status) {
    case PassOutcome::Status::NotApplied:
        return std::nullopt;
    case PassOutcome::Status::Rejected:
        // Fault isolation: a rejected replacement leaves no trace
        // beyond its diagnostic.
        ++ctx->rejected_results;
        if (ctx->rejections.size() < 16)
            ctx->rejections.push_back(outcome->detail);
        return std::nullopt;
    case PassOutcome::Status::Replaced:
        break;
    }

    // Registry maintenance for loops in the transformed snippet.
    std::vector<std::string> input_ids;
    collectLoopIds(term, input_ids);
    std::vector<std::string> output_ids;
    collectLoopIds(outcome->replacement, output_ids);
    std::vector<std::string> new_ids;
    for (const std::string &id : output_ids) {
        if (!ctx->registry.count(id))
            new_ids.push_back(id);
    }
    bool law_applied = false;
    if (ctx->use_laws && law && std::string(law) == "fuse" &&
        input_ids.size() == 2 && output_ids.size() == 1 &&
        new_ids.size() == 1 && ctx->registry.count(input_ids[0]) &&
        ctx->registry.count(input_ids[1])) {
        ctx->registry[new_ids[0]] =
            fuseLaw(ctx->registry.at(input_ids[0]),
                    ctx->registry.at(input_ids[1]));
        law_applied = true;
    }
    if (!law_applied && (!new_ids.empty() || law == nullptr)) {
        // Oracle: adopt the schedule computed in the pure stage.
        for (const auto &[id, entry] : outcome->schedule)
            ctx->registry[id] = entry;
    }
    return outcome->replacement;
}

// --- spec-driven rule construction ---------------------------------------

/**
 * One external rule, split along the serial/parallel seam:
 * `precheck` + `extract` run serially (they read the e-graph);
 * `transform` runs in the pure evaluation stage (worker pool or
 * inline). The same spec builds both the dyn applier and the prepare
 * hook, so the two stages can never disagree about candidates.
 */
struct SnippetRuleSpec
{
    const char *name;
    const char *pattern;
    std::function<bool(const EGraph &, const Match &)> precheck;
    std::function<std::vector<TermPtr>(const EGraph &, const Match &)>
        extract;
    std::function<bool(ir::Operation &)> transform;
    const char *law = nullptr;
};

Rewrite
makeSnippetRule(ContextPtr ctx, SnippetRuleSpec spec)
{
    Rewrite rule = makeDynRewrite(
        spec.name, spec.pattern,
        [ctx, spec](EGraph &egraph,
                    const Match &match) -> std::optional<TermPtr> {
            if (!spec.precheck(egraph, match))
                return std::nullopt;
            ProposePhase &propose = ctx->pipeline->propose();
            MergePhase &merge = ctx->pipeline->merge();
            if (propose.attemptedPeek(egraph, spec.name, match.root))
                return std::nullopt;
            std::vector<TermPtr> terms = spec.extract(egraph, match);
            // Budget gate: a match whose candidate was deferred by the
            // scheduler this iteration is skipped wholesale — no
            // attempt recorded (it stays eligible for later waves) and
            // no inline evaluation (which would defeat the budget).
            if (ctx->pipeline->scheduler().mayDefer()) {
                std::vector<uint64_t> keys;
                keys.reserve(terms.size());
                for (const TermPtr &term : terms)
                    keys.push_back(passKeyFor(ctx, spec.name, term));
                if (!merge.admits(keys))
                    return std::nullopt;
            }
            propose.recordAttempt(egraph, spec.name, match.root);
            for (const TermPtr &term : terms) {
                auto result = consultSnippet(ctx, spec.name, term,
                                             spec.transform, spec.law);
                if (result)
                    return result;
            }
            return std::nullopt;
        });
    rule.prepare = [ctx, spec](const EGraph &egraph,
                               const std::vector<Match> &matches) {
        const EvalCachePtr &cache = ctx->eval_cache;
        if (!cache)
            return;
        ProposalPipeline &pipeline = *ctx->pipeline;
        // Iteration boundary (staging flush + scheduler epoch), probed
        // here because prepare hooks are the first serial code each
        // iteration runs.
        pipeline.propose().syncIteration(egraph, cache.get());
        auto past = [&ctx] { return ctx->exec.canceled(); };
        if (past())
            return;
        // Propose: this iteration's unique, uncached candidates, in
        // canonical enumeration order.
        std::vector<ProposalCandidate> wave;
        std::set<uint64_t> seen;
        for (const Match &match : matches) {
            if (!spec.precheck(egraph, match))
                continue;
            if (pipeline.propose().attemptedPeek(egraph, spec.name,
                                                 match.root))
                continue;
            for (const TermPtr &term : spec.extract(egraph, match)) {
                uint64_t key = passKeyFor(ctx, spec.name, term);
                if (!seen.insert(key).second) {
                    cache->countDeduped(1);
                    continue;
                }
                if (!cache->probePass(key)) {
                    ProposalCandidate candidate;
                    candidate.rule = spec.name;
                    candidate.key = key;
                    candidate.term = term;
                    candidate.term_size = proposalTermSize(term);
                    wave.push_back(std::move(candidate));
                }
            }
        }
        if (wave.empty())
            return;
        // Schedule, then evaluate the ordered batch on the pool.
        std::vector<ProposalCandidate> batch =
            pipeline.scheduler().schedule(std::move(wave));
        pipeline.evaluate().run(batch, spec.transform, evalConfig(ctx),
                                *cache, ctx->jobs, past,
                                &ctx->mlir_seconds);
    };
    return rule;
}

/** First top-level loop of a snippet function. */
ir::Operation *
firstLoop(ir::Operation &func)
{
    auto loops = ir::topLevelLoops(func.region(0).block());
    return loops.empty() ? nullptr : loops[0];
}

ir::Operation *
firstIf(ir::Operation &func)
{
    ir::Operation *found = nullptr;
    ir::walk(func, [&](ir::Operation &op) {
        if (!found && ir::isa(op, ir::opnames::kIf))
            found = &op;
    });
    return found;
}

} // namespace

std::vector<Rewrite>
seqRules()
{
    std::vector<Rewrite> rules;
    // One direction suffices: left-grouping a right-associated chain
    // already surfaces every adjacent statement pair as a (seq a b)
    // class; the reverse direction only multiplies class count.
    rules.push_back(makeRewrite("seq-assoc",
                                "(seq ?a (seq ?b ?c))",
                                "(seq (seq ?a ?b) ?c)"));
    rules.push_back(makeRewrite("seq-nop-l", "(seq nop ?a)", "?a"));
    rules.push_back(makeRewrite("seq-nop-r", "(seq ?a nop)", "?a"));
    return rules;
}

std::vector<Rewrite>
controlRules(ContextPtr context)
{
    std::vector<Rewrite> rules;
    Symbol var_a("a"), var_b("b");

    // --- loop fusion over adjacent statements --------------------------
    {
        SnippetRuleSpec spec;
        spec.name = "loop-fusion";
        spec.pattern = "(seq ?a ?b)";
        spec.precheck = [var_a, var_b](const EGraph &egraph,
                                       const Match &match) {
            return classHas(egraph, match.subst.at(var_a), isForNode) &&
                   classHas(egraph, match.subst.at(var_b), isForNode);
        };
        spec.extract = [context, var_a, var_b](const EGraph &egraph,
                                               const Match &match) {
            std::vector<TermPtr> out;
            auto ta = extractRooted(egraph, match.subst.at(var_a),
                                    isForNode, context);
            auto tb = extractRooted(egraph, match.subst.at(var_b),
                                    isForNode, context);
            if (ta && tb)
                out.push_back(eg::makeTerm(sl::seqSymbol(), {*ta, *tb}));
            return out;
        };
        spec.transform = [](ir::Operation &func) {
            auto loops = ir::topLevelLoops(func.region(0).block());
            if (loops.size() < 2)
                return false;
            return passes::fuseLoopPair(*loops[0], *loops[1]);
        };
        spec.law = "fuse";
        rules.push_back(makeSnippetRule(context, spec));
    }

    // --- single-class loop rules ------------------------------------
    auto add_loop_rule = [&](const char *name,
                             std::function<bool(ir::Operation &)>
                                 transform) {
        SnippetRuleSpec spec;
        spec.name = name;
        spec.pattern = "?x";
        spec.precheck = [](const EGraph &egraph, const Match &match) {
            return classHas(egraph, match.root, isForNode);
        };
        spec.extract = [context](const EGraph &egraph,
                                 const Match &match) {
            std::vector<TermPtr> out;
            auto term = extractRooted(egraph, match.root, isForNode,
                                      context);
            if (term)
                out.push_back(*term);
            return out;
        };
        spec.transform = std::move(transform);
        rules.push_back(makeSnippetRule(context, spec));
    };

    if (context->unroll_max_trip > 0) {
        int64_t max_trip = context->unroll_max_trip;
        add_loop_rule("loop-unroll", [max_trip](ir::Operation &func) {
            ir::Operation *loop = firstLoop(func);
            return loop && passes::unrollLoop(*loop, max_trip);
        });
        // Composite exploration (a pass *sequence*, which is exactly
        // what SEER searches over): unroll every small inner loop of a
        // nest, then forward memory through the unrolled bodies. This
        // surfaces the "pipelined outer loop with flattened inner
        // datapath" design point of the Intel case study.
        add_loop_rule("loop-unroll-inner",
                      [max_trip](ir::Operation &func) {
                          ir::Operation *outer = firstLoop(func);
                          if (!outer)
                              return false;
                          bool changed = false;
                          bool progress = true;
                          while (progress) {
                              progress = false;
                              std::vector<ir::Operation *> inner_loops;
                              ir::walk(*outer, [&](ir::Operation &op) {
                                  if (&op != outer &&
                                      ir::isa(op,
                                              ir::opnames::kAffineFor))
                                      inner_loops.push_back(&op);
                              });
                              for (ir::Operation *inner : inner_loops) {
                                  if (passes::unrollLoop(*inner,
                                                         max_trip)) {
                                      changed = true;
                                      progress = true;
                                      break;
                                  }
                              }
                          }
                          if (!changed)
                              return false;
                          // The case study's sequence: unroll, convert
                          // the now-replicated ifs to selects, then
                          // forward the scalar chain away.
                          bool if_progress = true;
                          while (if_progress) {
                              if_progress = false;
                              std::vector<ir::Operation *> ifs;
                              ir::walk(func, [&](ir::Operation &op) {
                                  if (ir::isa(op, ir::opnames::kIf))
                                      ifs.push_back(&op);
                              });
                              for (ir::Operation *if_op : ifs) {
                                  if (passes::convertIf(*if_op)) {
                                      if_progress = true;
                                      break;
                                  }
                              }
                          }
                          passes::forwardMemory(func);
                          passes::canonicalize(func);
                          return true;
                      });
    }
    add_loop_rule("loop-interchange", [](ir::Operation &func) {
        ir::Operation *loop = firstLoop(func);
        return loop && passes::interchangeLoops(*loop);
    });
    add_loop_rule("loop-flatten", [](ir::Operation &func) {
        // SEER's flatten handles perfect 2-nests; the commercial tool's
        // coalesce pragma (Figure 15) takes whole nests.
        ir::Operation *loop = firstLoop(func);
        return loop && hls::coalesceNest(*loop, 2);
    });
    add_loop_rule("loop-perfection", [](ir::Operation &func) {
        ir::Operation *loop = firstLoop(func);
        return loop && passes::perfectLoop(*loop);
    });
    add_loop_rule("memory-reuse", [](ir::Operation &func) {
        ir::Operation *loop = firstLoop(func);
        return loop && passes::reuseMemory(*loop);
    });

    // --- if rules ----------------------------------------------------
    // They fire on if-rooted classes and on loop-rooted classes (the
    // latter so speculation-safety checks can see the loop context that
    // bounds the indices).
    auto add_if_rule = [&](const char *name,
                           std::function<bool(ir::Operation &)>
                               transform) {
        SnippetRuleSpec spec;
        spec.name = name;
        spec.pattern = "?x";
        spec.precheck = [](const EGraph &egraph, const Match &match) {
            return classHas(egraph, match.root, isIfNode) ||
                   classHas(egraph, match.root, isForNode);
        };
        spec.extract = [context](const EGraph &egraph,
                                 const Match &match) {
            SymbolPred pred = classHas(egraph, match.root, isIfNode)
                                  ? isIfNode
                                  : isForNode;
            std::vector<TermPtr> out;
            auto term = extractRooted(egraph, match.root, pred,
                                      context);
            if (term)
                out.push_back(*term);
            return out;
        };
        spec.transform = std::move(transform);
        rules.push_back(makeSnippetRule(context, spec));
    };
    add_if_rule("if-conversion", [](ir::Operation &func) {
        ir::Operation *if_op = firstIf(func);
        return if_op && passes::convertIf(*if_op);
    });
    add_if_rule("cf-mux", [](ir::Operation &func) {
        ir::Operation *if_op = firstIf(func);
        return if_op && passes::muxControlFlow(*if_op);
    });

    // --- if correlation over adjacent statements ----------------------
    {
        SnippetRuleSpec spec;
        spec.name = "if-correlation";
        spec.pattern = "(seq ?a ?b)";
        spec.precheck = [var_a, var_b](const EGraph &egraph,
                                       const Match &match) {
            return classHas(egraph, match.subst.at(var_a), isIfNode) &&
                   classHas(egraph, match.subst.at(var_b), isIfNode);
        };
        spec.extract = [context, var_a, var_b](const EGraph &egraph,
                                               const Match &match) {
            std::vector<TermPtr> out;
            auto ta = extractRooted(egraph, match.subst.at(var_a),
                                    isIfNode, context);
            auto tb = extractRooted(egraph, match.subst.at(var_b),
                                    isIfNode, context);
            if (ta && tb)
                out.push_back(eg::makeTerm(sl::seqSymbol(), {*ta, *tb}));
            return out;
        };
        spec.transform = [](ir::Operation &func) {
            // Hoist interleaved constants first so replicated ifs
            // become adjacent.
            passes::canonicalize(func);
            std::vector<ir::Operation *> ifs;
            for (auto &op : func.region(0).block().ops()) {
                if (ir::isa(*op, ir::opnames::kIf))
                    ifs.push_back(op.get());
            }
            if (ifs.size() < 2)
                return false;
            return passes::correlateIfs(*ifs[0], *ifs[1]);
        };
        rules.push_back(makeSnippetRule(context, spec));
    }

    // --- memory forwarding over statement chains ------------------------
    {
        SnippetRuleSpec spec;
        spec.name = "memory-forward";
        spec.pattern = "?x";
        spec.precheck = [](const EGraph &egraph, const Match &match) {
            return classHas(egraph, match.root, isStatementRoot);
        };
        spec.extract = [context](const EGraph &egraph,
                                 const Match &match) {
            return extractAllRooted(egraph, match.root, isStatementRoot,
                                    context);
        };
        spec.transform = [](ir::Operation &func) {
            return passes::forwardMemory(func);
        };
        rules.push_back(makeSnippetRule(context, spec));
    }

    return rules;
}

} // namespace seer::core
