#include "core/external_rules.h"

#include <chrono>
#include <set>

#include "core/verify.h"
#include "hls/pragmas.h"
#include "ir/analysis.h"
#include "ir/builder.h"
#include "ir/verifier.h"
#include "passes/passes.h"
#include "rover/rover.h"
#include "seerlang/encoding.h"
#include "seerlang/from_term.h"
#include "seerlang/to_term.h"
#include "support/error.h"

namespace seer::core {

using eg::EClassId;
using eg::EGraph;
using eg::makeDynRewrite;
using eg::makeRewrite;
using eg::Match;
using eg::Rewrite;
using eg::TermPtr;

namespace {

using SymbolPred = bool (*)(Symbol);

bool
isForNode(Symbol symbol)
{
    return sl::opNameOf(symbol) == "affine.for";
}

bool
isIfNode(Symbol symbol)
{
    return sl::opNameOf(symbol) == "scf.if";
}

bool
isStatementRoot(Symbol symbol)
{
    std::string name = sl::opNameOf(symbol);
    return name == "seq" || name == "affine.for" || name == "scf.while";
}

bool
classHas(const EGraph &egraph, EClassId id, SymbolPred pred)
{
    for (const eg::ENode &node : egraph.eclass(id).nodes) {
        if (pred(node.op))
            return true;
    }
    return false;
}

/**
 * Local extraction (Section 4.5): pick nodes satisfying `pred` as the
 * root and extract children with the analysis-friendly cost, so the
 * external pass is handed polyhedral-analyzable index expressions.
 * Returns up to `max_candidates` candidate terms (a class may hold both
 * the original loop and, say, its unrolled chain; the pass may apply to
 * either representative).
 */
std::vector<TermPtr>
extractAllRooted(const EGraph &egraph, EClassId id, SymbolPred pred,
                 bool analysis_friendly = true, size_t max_candidates = 3)
{
    // Ablation: without the analysis-friendly cost, local extraction
    // hands the external pass the hardware-cheapest representative —
    // which for indices is the shift form no polyhedral analysis can
    // read (Figure 9's failure mode).
    rover::AnalysisFriendlyCost friendly;
    rover::RoverAreaCost area_cost(&egraph);
    const eg::CostModel &cost =
        analysis_friendly ? static_cast<const eg::CostModel &>(friendly)
                          : static_cast<const eg::CostModel &>(area_cost);
    std::vector<TermPtr> out;
    const eg::EClass &cls = egraph.eclass(id);
    for (const eg::ENode &node : cls.nodes) {
        if (out.size() >= max_candidates)
            break;
        if (!pred(node.op))
            continue;
        std::vector<TermPtr> children;
        bool feasible = true;
        for (EClassId child : node.children) {
            auto extraction = extractGreedy(egraph, child, cost);
            if (!extraction) {
                feasible = false;
                break;
            }
            children.push_back(extraction->term);
        }
        if (feasible)
            out.push_back(eg::makeTerm(node.op, std::move(children)));
    }
    return out;
}

std::optional<TermPtr>
extractRooted(const EGraph &egraph, EClassId id, SymbolPred pred,
              bool analysis_friendly = true)
{
    auto candidates = extractAllRooted(egraph, id, pred,
                                       analysis_friendly, 1);
    if (candidates.empty())
        return std::nullopt;
    return candidates[0];
}

void
collectLoopIds(const TermPtr &term, std::vector<std::string> &out)
{
    if (sl::isForSymbol(term->op()))
        out.push_back(sl::loopIdOf(term->op()));
    for (const auto &child : term->children())
        collectLoopIds(child, out);
}

void
collectArgNames(const TermPtr &term, std::set<std::string> &out)
{
    if (auto arg = sl::decodeArg(term->op()))
        out.insert(arg->first);
    for (const auto &child : term->children())
        collectArgNames(child, out);
}

/** Rewrite arg:<v>:index leaves back into var:<v> for snippet re-entry. */
TermPtr
renameArgsToVars(const TermPtr &term, const std::set<std::string> &vars)
{
    if (auto arg = sl::decodeArg(term->op())) {
        if (arg->second.isIndex() && vars.count(arg->first))
            return eg::makeTerm(sl::encodeVar(arg->first));
    }
    if (term->isLeaf())
        return term;
    std::vector<TermPtr> children;
    children.reserve(term->arity());
    bool changed = false;
    for (const auto &child : term->children()) {
        TermPtr renamed = renameArgsToVars(child, vars);
        changed |= renamed != child;
        children.push_back(std::move(renamed));
    }
    return changed ? eg::makeTerm(term->op(), std::move(children)) : term;
}

/**
 * Validation gate (fault isolation): before an external-pass result is
 * handed back for unioning, the transformed snippet must pass the
 * structural verifier and the before/after terms must co-simulate on
 * deterministic pseudo-random inputs. Returns true to accept; records
 * the rejection in the context otherwise.
 */
bool
validateReplacement(const ContextPtr &ctx, const ir::Module &snippet,
                    const TermPtr &before, const TermPtr &after)
{
    std::string diag = ir::verify(snippet);
    if (diag.empty()) {
        VerifyOptions verify_options;
        verify_options.runs = ctx->validation_runs;
        verify_options.seed = ctx->validation_seed;
        verify_options.max_steps = 2'000'000;
        std::string eq_diag;
        if (checkTermEquivalence(before, after, verify_options,
                                 &eq_diag)) {
            return true; // equivalent (or inconclusive: nothing falsified)
        }
        diag = "co-simulation mismatch: " + eq_diag;
    } else {
        diag = "verifier rejected pass output: " + diag;
    }
    ++ctx->rejected_results;
    if (ctx->rejections.size() < 16)
        ctx->rejections.push_back(diag);
    return false;
}

/**
 * Run `transform` on a snippet built from `term`; translate back and
 * derive registry entries for new loops. `law` selects the paper's
 * approximation law ("fuse") or nullptr for the schedule oracle.
 */
std::optional<TermPtr>
runOnSnippet(const ContextPtr &ctx, const TermPtr &term,
             const std::function<bool(ir::Operation &)> &transform,
             const char *law)
{
    using Clock = std::chrono::steady_clock;
    // Deadline propagation: once the driver's whole-run budget is
    // spent, stop launching snippet/pass work entirely.
    if (ctx->deadline && Clock::now() >= *ctx->deadline)
        return std::nullopt;
    auto start = Clock::now();
    auto charge = [&] {
        ctx->mlir_seconds +=
            std::chrono::duration<double>(Clock::now() - start).count();
    };

    std::optional<TermPtr> out;
    try {
        sl::EmitSpec spec = sl::inferSpec(term, "snippet");
        std::set<std::string> arg_names;
        collectArgNames(term, arg_names);
        std::set<std::string> var_args;
        for (const auto &[name, type] : spec.args) {
            if (!arg_names.count(name))
                var_args.insert(name);
        }
        ir::Module snippet = sl::termToFunc(term, spec);
        ir::Operation &func = *snippet.firstFunc();
        if (!transform(func)) {
            charge();
            return std::nullopt;
        }
        passes::runDce(func);
        // The pass may have rewritten loop bodies in place; stale
        // registry ids must not survive (a fused loop keeping loop1's
        // id would inherit loop1's scheduling constraints). Strip all
        // ids: back-translation assigns fresh ones and the law/oracle
        // below re-derives their constraints.
        ir::walk(func, [](ir::Operation &op) {
            if (ir::isa(op, ir::opnames::kAffineFor))
                op.removeAttr("seer.loop_id");
        });

        std::vector<std::string> input_ids;
        collectLoopIds(term, input_ids);

        sl::Translation translation = sl::funcToTerm(func);
        TermPtr replacement = translation.term->child(0);
        replacement = renameArgsToVars(replacement, var_args);

        // Gate the result before any registry state is touched: a
        // rejected replacement must leave no trace.
        if (ctx->validate_results &&
            !validateReplacement(ctx, snippet, term, replacement)) {
            charge();
            return std::nullopt;
        }

        // Registry maintenance for loops in the transformed snippet.
        std::vector<std::string> output_ids;
        collectLoopIds(replacement, output_ids);
        std::vector<std::string> new_ids;
        for (const std::string &id : output_ids) {
            if (!ctx->registry.count(id))
                new_ids.push_back(id);
        }
        bool law_applied = false;
        if (ctx->use_laws && law && std::string(law) == "fuse" &&
            input_ids.size() == 2 && output_ids.size() == 1 &&
            new_ids.size() == 1 &&
            ctx->registry.count(input_ids[0]) &&
            ctx->registry.count(input_ids[1])) {
            ctx->registry[new_ids[0]] =
                fuseLaw(ctx->registry[input_ids[0]],
                        ctx->registry[input_ids[1]]);
            law_applied = true;
        }
        if (!law_applied && (!new_ids.empty() || law == nullptr)) {
            // Oracle: schedule the snippet and refresh every loop in it.
            hls::OperatorLibrary lib;
            hls::ScheduleOptions sched_options = ctx->hls.schedule;
            sched_options.pipeline_loops = true;
            hls::FuncSchedule schedule =
                hls::scheduleFunc(func, lib, sched_options);
            for (const auto &[id, op] : translation.loops) {
                auto it = schedule.loops.find(op);
                if (it == schedule.loops.end())
                    continue;
                LoopRegistryEntry entry;
                entry.constraints = it->second;
                entry.coalesced = op->hasAttr("seer.coalesced");
                ctx->registry[id] = entry;
            }
        }
        out = replacement;
    } catch (const FatalError &) {
        out = std::nullopt; // untranslatable shape: rule does not apply
    }
    charge();
    return out;
}


/**
 * Per-phase memo: skip (rule, class) pairs that were already tried.
 * The key is re-canonicalized at lookup time and versioned by the
 * class's node count: a hit recorded before the class absorbed another
 * (or grew new representatives) must not skip a rule that never saw
 * the merged contents, and entries under merged-away ids can never
 * alias a surviving class (ids are not reused).
 */
bool
alreadyAttempted(const ContextPtr &ctx, const EGraph &egraph,
                 const char *rule, EClassId root)
{
    EClassId canon = egraph.find(root);
    size_t version = egraph.eclass(canon).nodes.size();
    auto [it, inserted] = ctx->attempted.emplace(
        std::make_pair(std::string(rule), canon), version);
    if (inserted)
        return false;
    if (it->second != version) {
        it->second = version; // class changed since the attempt: retry
        return false;
    }
    return true;
}

/** First top-level loop of a snippet function. */
ir::Operation *
firstLoop(ir::Operation &func)
{
    auto loops = ir::topLevelLoops(func.region(0).block());
    return loops.empty() ? nullptr : loops[0];
}

ir::Operation *
firstIf(ir::Operation &func)
{
    ir::Operation *found = nullptr;
    ir::walk(func, [&](ir::Operation &op) {
        if (!found && ir::isa(op, ir::opnames::kIf))
            found = &op;
    });
    return found;
}

} // namespace

std::vector<Rewrite>
seqRules()
{
    std::vector<Rewrite> rules;
    // One direction suffices: left-grouping a right-associated chain
    // already surfaces every adjacent statement pair as a (seq a b)
    // class; the reverse direction only multiplies class count.
    rules.push_back(makeRewrite("seq-assoc",
                                "(seq ?a (seq ?b ?c))",
                                "(seq (seq ?a ?b) ?c)"));
    rules.push_back(makeRewrite("seq-nop-l", "(seq nop ?a)", "?a"));
    rules.push_back(makeRewrite("seq-nop-r", "(seq ?a nop)", "?a"));
    return rules;
}

std::vector<Rewrite>
controlRules(ContextPtr context)
{
    std::vector<Rewrite> rules;
    Symbol var_a("a"), var_b("b");

    // --- loop fusion over adjacent statements --------------------------
    rules.push_back(makeDynRewrite(
        "loop-fusion", "(seq ?a ?b)",
        [context, var_a, var_b](
            EGraph &egraph,
            const Match &match) -> std::optional<TermPtr> {
            EClassId a = match.subst.at(var_a);
            EClassId b = match.subst.at(var_b);
            if (!classHas(egraph, a, isForNode) ||
                !classHas(egraph, b, isForNode)) {
                return std::nullopt;
            }
            if (alreadyAttempted(context, egraph, "loop-fusion",
                                 match.root)) {
                return std::nullopt;
            }
            auto ta = extractRooted(egraph, a, isForNode,
                                    context->analysis_friendly);
            auto tb = extractRooted(egraph, b, isForNode,
                                    context->analysis_friendly);
            if (!ta || !tb)
                return std::nullopt;
            TermPtr pair =
                eg::makeTerm(sl::seqSymbol(), {*ta, *tb});
            return runOnSnippet(
                context, pair,
                [](ir::Operation &func) {
                    auto loops =
                        ir::topLevelLoops(func.region(0).block());
                    if (loops.size() < 2)
                        return false;
                    return passes::fuseLoopPair(*loops[0], *loops[1]);
                },
                "fuse");
        }));

    // --- single-class loop rules ------------------------------------
    struct LoopRule
    {
        const char *name;
        std::function<bool(ir::Operation &)> transform;
    };
    auto add_loop_rule = [&](const char *name,
                             std::function<bool(ir::Operation &)>
                                 transform) {
        rules.push_back(makeDynRewrite(
            name, "?x",
            [context, transform, name](
                EGraph &egraph,
                const Match &match) -> std::optional<TermPtr> {
                if (!classHas(egraph, match.root, isForNode))
                    return std::nullopt;
                if (alreadyAttempted(context, egraph, name, match.root))
                    return std::nullopt;
                auto term =
                    extractRooted(egraph, match.root, isForNode,
                                  context->analysis_friendly);
                if (!term)
                    return std::nullopt;
                return runOnSnippet(context, *term, transform, nullptr);
            }));
    };

    if (context->unroll_max_trip > 0) {
        int64_t max_trip = context->unroll_max_trip;
        add_loop_rule("loop-unroll", [max_trip](ir::Operation &func) {
            ir::Operation *loop = firstLoop(func);
            return loop && passes::unrollLoop(*loop, max_trip);
        });
        // Composite exploration (a pass *sequence*, which is exactly
        // what SEER searches over): unroll every small inner loop of a
        // nest, then forward memory through the unrolled bodies. This
        // surfaces the "pipelined outer loop with flattened inner
        // datapath" design point of the Intel case study.
        add_loop_rule("loop-unroll-inner",
                      [max_trip](ir::Operation &func) {
                          ir::Operation *outer = firstLoop(func);
                          if (!outer)
                              return false;
                          bool changed = false;
                          bool progress = true;
                          while (progress) {
                              progress = false;
                              std::vector<ir::Operation *> inner_loops;
                              ir::walk(*outer, [&](ir::Operation &op) {
                                  if (&op != outer &&
                                      ir::isa(op,
                                              ir::opnames::kAffineFor))
                                      inner_loops.push_back(&op);
                              });
                              for (ir::Operation *inner : inner_loops) {
                                  if (passes::unrollLoop(*inner,
                                                         max_trip)) {
                                      changed = true;
                                      progress = true;
                                      break;
                                  }
                              }
                          }
                          if (!changed)
                              return false;
                          // The case study's sequence: unroll, convert
                          // the now-replicated ifs to selects, then
                          // forward the scalar chain away.
                          bool if_progress = true;
                          while (if_progress) {
                              if_progress = false;
                              std::vector<ir::Operation *> ifs;
                              ir::walk(func, [&](ir::Operation &op) {
                                  if (ir::isa(op, ir::opnames::kIf))
                                      ifs.push_back(&op);
                              });
                              for (ir::Operation *if_op : ifs) {
                                  if (passes::convertIf(*if_op)) {
                                      if_progress = true;
                                      break;
                                  }
                              }
                          }
                          passes::forwardMemory(func);
                          passes::canonicalize(func);
                          return true;
                      });
    }
    add_loop_rule("loop-interchange", [](ir::Operation &func) {
        ir::Operation *loop = firstLoop(func);
        return loop && passes::interchangeLoops(*loop);
    });
    add_loop_rule("loop-flatten", [](ir::Operation &func) {
        // SEER's flatten handles perfect 2-nests; the commercial tool's
        // coalesce pragma (Figure 15) takes whole nests.
        ir::Operation *loop = firstLoop(func);
        return loop && hls::coalesceNest(*loop, 2);
    });
    add_loop_rule("loop-perfection", [](ir::Operation &func) {
        ir::Operation *loop = firstLoop(func);
        return loop && passes::perfectLoop(*loop);
    });
    add_loop_rule("memory-reuse", [](ir::Operation &func) {
        ir::Operation *loop = firstLoop(func);
        return loop && passes::reuseMemory(*loop);
    });

    // --- if rules ----------------------------------------------------
    // They fire on if-rooted classes and on loop-rooted classes (the
    // latter so speculation-safety checks can see the loop context that
    // bounds the indices).
    auto add_if_rule = [&](const char *name,
                           std::function<bool(ir::Operation &)>
                               transform) {
        rules.push_back(makeDynRewrite(
            name, "?x",
            [context, transform, name](
                EGraph &egraph,
                const Match &match) -> std::optional<TermPtr> {
                if (alreadyAttempted(context, egraph, name, match.root))
                    return std::nullopt;
                SymbolPred pred = nullptr;
                if (classHas(egraph, match.root, isIfNode))
                    pred = isIfNode;
                else if (classHas(egraph, match.root, isForNode))
                    pred = isForNode;
                else
                    return std::nullopt;
                auto term = extractRooted(egraph, match.root, pred,
                                          context->analysis_friendly);
                if (!term)
                    return std::nullopt;
                return runOnSnippet(context, *term, transform, nullptr);
            }));
    };
    add_if_rule("if-conversion", [](ir::Operation &func) {
        ir::Operation *if_op = firstIf(func);
        return if_op && passes::convertIf(*if_op);
    });
    add_if_rule("cf-mux", [](ir::Operation &func) {
        ir::Operation *if_op = firstIf(func);
        return if_op && passes::muxControlFlow(*if_op);
    });

    // --- if correlation over adjacent statements ----------------------
    rules.push_back(makeDynRewrite(
        "if-correlation", "(seq ?a ?b)",
        [context, var_a, var_b](
            EGraph &egraph,
            const Match &match) -> std::optional<TermPtr> {
            EClassId a = match.subst.at(var_a);
            EClassId b = match.subst.at(var_b);
            if (!classHas(egraph, a, isIfNode) ||
                !classHas(egraph, b, isIfNode)) {
                return std::nullopt;
            }
            if (alreadyAttempted(context, egraph, "if-correlation",
                                 match.root)) {
                return std::nullopt;
            }
            auto ta = extractRooted(egraph, a, isIfNode,
                                    context->analysis_friendly);
            auto tb = extractRooted(egraph, b, isIfNode,
                                    context->analysis_friendly);
            if (!ta || !tb)
                return std::nullopt;
            TermPtr pair = eg::makeTerm(sl::seqSymbol(), {*ta, *tb});
            return runOnSnippet(
                context, pair,
                [](ir::Operation &func) {
                    // Hoist interleaved constants first so replicated
                    // ifs become adjacent.
                    passes::canonicalize(func);
                    std::vector<ir::Operation *> ifs;
                    for (auto &op :
                         func.region(0).block().ops()) {
                        if (ir::isa(*op, ir::opnames::kIf))
                            ifs.push_back(op.get());
                    }
                    if (ifs.size() < 2)
                        return false;
                    return passes::correlateIfs(*ifs[0], *ifs[1]);
                },
                nullptr);
        }));

    // --- memory forwarding over statement chains ------------------------
    rules.push_back(makeDynRewrite(
        "memory-forward", "?x",
        [context](EGraph &egraph,
                  const Match &match) -> std::optional<TermPtr> {
            if (!classHas(egraph, match.root, isStatementRoot))
                return std::nullopt;
            if (alreadyAttempted(context, egraph, "memory-forward",
                                 match.root)) {
                return std::nullopt;
            }
            for (const TermPtr &term : extractAllRooted(
                     egraph, match.root, isStatementRoot,
                     context->analysis_friendly)) {
                auto result = runOnSnippet(
                    context, term,
                    [](ir::Operation &func) {
                        return passes::forwardMemory(func);
                    },
                    nullptr);
                if (result)
                    return result;
            }
            return std::nullopt;
        }));

    return rules;
}

} // namespace seer::core
