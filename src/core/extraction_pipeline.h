/**
 * @file
 * The composable two-phase (or N-phase) extraction pipeline
 * (Section 4.6).
 *
 * SEER extracts in ordered phases, each pinning choices for the next:
 * phase 1 picks the control skeleton (latency cost, Eqn 3), phase 2
 * re-extracts every pure sub-expression of that fixed skeleton under the
 * area cost (Eqn 4). This file generalizes the previously hard-coded
 * latency→area sequence into an ExtractionPipeline: ordered phases, each
 * with its own cost model, extractor kind and budget, reporting per-phase
 * statistics (classes visited, bound prunes, budget exhaustions, wall
 * seconds) that surface in `seer-opt --stats` under "extraction".
 */
#ifndef SEER_CORE_EXTRACTION_PIPELINE_H_
#define SEER_CORE_EXTRACTION_PIPELINE_H_

#include <functional>
#include <string>
#include <vector>

#include "egraph/extract.h"
#include "support/exec_context.h"

namespace seer::core {

/** Which extractor a phase runs. */
enum class ExtractorKind
{
    /** Greedy, reading the incremental cost-bound analysis when the
     *  model is registered. */
    Greedy,
    /** Branch-and-bound exact DAG extraction ("ILP" stand-in). */
    Exact,
    /** Greedy with from-scratch bounds and no analysis — the reference
     *  arm (ExtractOptions::naive), for differential testing and as the
     *  pre-incremental baseline. */
    Naive,
};

const char *toString(ExtractorKind kind);

/** One pipeline phase. The model must outlive the pipeline run. */
struct ExtractionPhase
{
    std::string name;
    const eg::CostModel *model = nullptr;
    ExtractorKind extractor = ExtractorKind::Greedy;
    /**
     * Refinement phase: instead of extracting the root whole, walk the
     * previous phase's term, keep its statement skeleton pinned, and
     * re-extract every pure (non-statement) sub-expression under this
     * phase's model. The first phase must not be a refinement.
     */
    bool refine = false;
    /** Exact-extractor search budget (expansions). */
    size_t budget = 200000;
    /** Governance threaded into the extractors (memory accounting +
     *  cancellation mid-search); inert by default. */
    ExecContext exec;
};

/** Per-phase report (the "extraction" section of --stats). */
struct ExtractionPhaseStats
{
    std::string name;
    std::string extractor;
    /** False when the pipeline stopped (deadline) before this phase. */
    bool ran = false;
    /** Extraction calls (1 for a root phase, one per refined
     *  sub-expression for a refinement phase). */
    size_t extractions = 0;
    size_t classes_visited = 0;
    size_t classes_recomputed = 0;
    size_t bound_prunes = 0;
    size_t expansions = 0;
    /** Exact searches that ran out of budget (result then best-effort,
     *  not proven optimal). */
    size_t budget_exhaustions = 0;
    /** Bounds came from a registered cost-bound analysis. */
    bool used_analysis = false;
    double seconds = 0;
    /** Costs of this phase's result under its own model (root phase:
     *  the extraction's costs; refinement: summed over refined
     *  sub-expressions). */
    double tree_cost = 0;
    double dag_cost = 0;
};

/** Result of a pipeline run. */
struct ExtractionReport
{
    /** Null iff infeasible. */
    eg::TermPtr term;
    /** The first phase found no finite-cost implementation. */
    bool infeasible = false;
    std::vector<ExtractionPhaseStats> phases;
};

/**
 * An ordered sequence of extraction phases over one e-graph. Phases run
 * in order; each refinement phase rewrites the previous result. The
 * optional `should_stop` predicate is consulted before every phase after
 * the first — when it fires, remaining phases are skipped (ran = false)
 * and the best term so far is returned.
 */
class ExtractionPipeline
{
  public:
    ExtractionPipeline &
    addPhase(ExtractionPhase phase)
    {
        phases_.push_back(std::move(phase));
        return *this;
    }

    ExtractionReport run(const eg::EGraph &egraph, eg::EClassId root,
                         const std::function<bool()> &should_stop = {})
        const;

  private:
    std::vector<ExtractionPhase> phases_;
};

} // namespace seer::core

#endif // SEER_CORE_EXTRACTION_PIPELINE_H_
