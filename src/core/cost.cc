#include "core/cost.h"

#include <set>

#include "seerlang/encoding.h"

namespace seer::core {

std::vector<std::string>
LoopRegistry::touchedSince(uint64_t since) const
{
    std::vector<std::string> out;
    std::set<std::string> seen;
    for (size_t i = since; i < touches_.size(); ++i) {
        if (seen.insert(touches_[i]).second)
            out.push_back(touches_[i]);
    }
    return out;
}

double
loopLatency(const LoopRegistryEntry &entry)
{
    const hls::LoopConstraints &lc = entry.constraints;
    double trips = lc.trip ? static_cast<double>(*lc.trip)
                           : LatencyCost::kUnknownTrip;
    if (trips < 1)
        trips = 1;
    double body = static_cast<double>(
        std::max(lc.full_latency, lc.latency));
    double latency = lc.pipelined
                         ? (trips - 1) * static_cast<double>(lc.ii) + body
                         : trips * body;
    return std::max(1.0, latency);
}

double
LatencyCost::nodeCost(const eg::ENode &node) const
{
    std::string name = sl::opNameOf(node.op);
    if (name == "affine.for") {
        auto it = registry_.find(sl::loopIdOf(node.op));
        if (it != registry_.end())
            return loopLatency(it->second);
        // Unregistered loop: must never win against a registered
        // candidate (every rewrite registers the loops it creates).
        return 1e9;
    }
    if (name == "scf.while") {
        // Whiles never pipeline; a nominal dynamic cost keeps them
        // comparable without dominating.
        return kUnknownTrip * 4;
    }
    // Straight-line statements are not free: each memory op occupies a
    // cycle and each if a couple of FSM states. This plays the role of
    // the paper's "a completely unrolled loop is still a loop with
    // iteration count 1" rule — unrolled chains must not cost zero.
    if (name == "memref.load" || name == "memref.store")
        return 1;
    if (name == "scf.if")
        return 2;
    return 0; // Eqn 2: everything else is free in phase 1
}

std::optional<std::string>
LatencyCost::dependencyKey(const eg::ENode &node) const
{
    if (sl::opNameOf(node.op) == "affine.for")
        return sl::loopIdOf(node.op);
    return std::nullopt;
}

namespace {

std::map<std::string, int64_t>
unionAccesses(const hls::LoopConstraints &a, const hls::LoopConstraints &b)
{
    std::map<std::string, int64_t> out = a.accesses;
    for (const auto &[memref, count] : b.accesses)
        out[memref] += count;
    return out;
}

int64_t
maxSingleArray(const std::map<std::string, int64_t> &accesses)
{
    int64_t m = 1;
    for (const auto &[memref, count] : accesses)
        m = std::max(m, count);
    return m;
}

} // namespace

LoopRegistryEntry
fuseLaw(const LoopRegistryEntry &first, const LoopRegistryEntry &second)
{
    const hls::LoopConstraints &a = first.constraints;
    const hls::LoopConstraints &b = second.constraints;
    LoopRegistryEntry out;
    out.constraints.accesses = unionAccesses(a, b);
    out.constraints.latency = std::max(a.latency, b.latency);
    out.constraints.full_latency =
        std::max(a.full_latency, b.full_latency);
    if (a.trip && b.trip)
        out.constraints.trip = std::max(*a.trip, *b.trip);
    out.constraints.pipelined = a.pipelined && b.pipelined;
    int64_t port_ii = maxSingleArray(out.constraints.accesses);
    out.constraints.ii = std::max({a.ii, b.ii, port_ii});
    if (!out.constraints.pipelined)
        out.constraints.ii = out.constraints.latency;
    return out;
}

LoopRegistryEntry
flattenLaw(const LoopRegistryEntry &outer, const LoopRegistryEntry &inner)
{
    LoopRegistryEntry out;
    out.constraints = inner.constraints;
    if (outer.constraints.trip && inner.constraints.trip) {
        out.constraints.trip =
            *outer.constraints.trip * *inner.constraints.trip;
    } else {
        out.constraints.trip = std::nullopt;
    }
    out.coalesced = true;
    return out;
}

LoopRegistryEntry
unrollLaw(const LoopRegistryEntry &loop)
{
    const hls::LoopConstraints &a = loop.constraints;
    LoopRegistryEntry out;
    int64_t trips = a.trip.value_or(LatencyCost::kUnknownTripInt);
    out.constraints.ii = 1;
    out.constraints.latency = std::max<int64_t>(1, trips * a.latency);
    out.constraints.full_latency =
        std::max<int64_t>(1, trips * a.full_latency);
    out.constraints.trip = 1;
    out.constraints.pipelined = false;
    for (const auto &[memref, count] : a.accesses)
        out.constraints.accesses[memref] = count * trips;
    return out;
}

} // namespace seer::core
