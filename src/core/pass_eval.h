/**
 * @file
 * Memoized, parallel-ready evaluation of external-pass snippets.
 *
 * SEER's dominant exploration cost (Table 5's "Time in MLIR") is the
 * external rule pipeline: term -> IR snippet emission, an MLIR-style
 * pass, IR -> term back-translation, and a simulation-based equivalence
 * gate — repeated serially on structurally identical snippets across
 * runner iterations and phases. This layer makes that stage a *pure
 * function* of its inputs and exploits it twice over:
 *
 *  - a content-addressed, two-level cache: pass outcomes keyed by the
 *    alpha-canonical snippet hash (+ rule + evaluation config), and
 *    equivalence verdicts keyed by (before, after, seed, runs), with
 *    optional on-disk persistence so repeated benchmark runs start
 *    warm;
 *  - a deterministic worker pool: per runner iteration, candidate
 *    snippets are collected, deduped, and evaluated on N threads, then
 *    consumed serially in canonical candidate order.
 *
 * Purity is engineered, not assumed: evaluation runs under an
 * sl::NameScope seeded with the cache key, so the fresh memory tags and
 * loop ids drawn during back-translation are a deterministic function
 * of the snippet content. Re-evaluating a snippet — cold, warm, on any
 * thread, in any process — reproduces a byte-identical replacement
 * term. That is the determinism contract behind `-j 1` == `-j N` and
 * cache-on == cache-off explorations.
 */
#ifndef SEER_CORE_PASS_EVAL_H_
#define SEER_CORE_PASS_EVAL_H_

#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/cost.h"
#include "hls/hls.h"
#include "support/exec_context.h"
#include "support/json.h"
#include "support/striped_lru.h"

namespace seer::ir {
class Operation;
}

namespace seer::core {

/** Outcome of one pure snippet -> pass -> verify evaluation. */
struct PassOutcome
{
    enum class Status : uint8_t {
        NotApplied = 0, ///< pass declined / untranslatable shape
        Rejected = 1,   ///< pass applied but the validation gate refused
        Replaced = 2,   ///< validated replacement available
    };
    Status status = Status::NotApplied;
    /** Rejection diagnostic (Status::Rejected). */
    std::string detail;
    /** The validated replacement term (Status::Replaced). */
    eg::TermPtr replacement;
    /**
     * Schedule-oracle results for every loop of the transformed
     * snippet (loop id -> registry entry), computed in the pure stage
     * so the serial consult only has to pick law vs. oracle and write
     * the registry.
     */
    std::vector<std::pair<std::string, LoopRegistryEntry>> schedule;
};

/** Cached tri-state verdict of one equivalence check. */
struct VerifyVerdict
{
    enum class Result : uint8_t {
        Equivalent = 0,
        Inconclusive = 1, ///< nothing falsified (every run trapped)
        Mismatch = 2,
    };
    Result result = Result::Equivalent;
    std::string diag; ///< counterexample / trap diagnostic

    /** The validation gate accepts anything not falsified. */
    bool accepted() const { return result != Result::Mismatch; }
};

/** Counters and per-stage timing of the evaluation layer. */
struct ExternalEvalStats
{
    size_t pass_cache_hits = 0;
    size_t pass_cache_misses = 0;
    size_t verify_cache_hits = 0;
    size_t verify_cache_misses = 0;
    /** Structurally identical candidates folded within one batch. */
    size_t candidates_deduped = 0;
    /** Cold pipelines actually run (pass executions). */
    size_t evaluations = 0;
    /** Prepare-stage batches handed to the worker pool. */
    size_t batches = 0;
    /** Jobs evaluated inside those batches. */
    size_t batch_jobs = 0;
    /** Evaluations cut short by the cooperative deadline (uncached). */
    size_t canceled = 0;
    // Per-stage seconds, summed over evaluations (CPU-parallel stages
    // can sum to more than the wall clock).
    double emit_seconds = 0;      ///< term -> IR snippet emission
    double pass_seconds = 0;      ///< the external pass + cleanup
    double translate_seconds = 0; ///< IR -> term back-translation
    double verify_seconds = 0;    ///< validation-gate co-simulation
    double schedule_seconds = 0;  ///< oracle schedule of the result
    /** Entries adopted from --pass-cache at startup. */
    size_t disk_entries_loaded = 0;
    /** The persistence file existed but failed to parse (cold start). */
    bool disk_load_failed = false;
    /**
     * Records scanned but rejected when a persisted cache failed to
     * load (corrupt line, bad checksum, torn tail): the honest size of
     * what the cold start threw away, instead of a silent zero.
     */
    size_t disk_entries_rejected = 0;
    /** Why the persisted cache was rejected (empty: loaded or absent). */
    std::string disk_load_error;
    // Sharded-store telemetry (daemon mode shares one cache across
    // sessions; evictions are how the byte budget holds).
    size_t cache_shards = 0;         ///< stripe count of the store
    size_t pass_evictions = 0;       ///< pass outcomes evicted (LRU)
    size_t verify_evictions = 0;     ///< verdicts evicted (LRU)
    uint64_t evicted_bytes = 0;      ///< total bytes credited back
    uint64_t resident_entries = 0;   ///< entries currently held
    uint64_t resident_bytes = 0;     ///< estimated bytes currently held
};

json::Value toJson(const ExternalEvalStats &stats);

/** Sizing of the sharded concurrent store behind ExternalEvalCache. */
struct EvalCacheConfig
{
    /** Mutex stripes (rounded up to a power of two). */
    unsigned shards = 16;
    /**
     * Byte budget across pass outcomes + verdicts (0 = unlimited).
     * Outcomes dominate, so they get 3/4 of the budget and verdicts
     * the rest; each store evicts LRU entries per shard. Eviction can
     * only cost a recomputation — the memoized function is pure — so
     * results stay byte-identical under any budget.
     */
    uint64_t max_bytes = 0;
};

/**
 * The two-level evaluation cache, held in a mutex-striped concurrent
 * store (support/striped_lru.h). Thread-safe: the prepare stage's
 * worker pool inserts concurrently while stats accumulate, and in
 * daemon mode (`seer-optd`) many concurrent sessions share one
 * process-wide instance — lookups on distinct shards never contend.
 *
 * Persistent mode memoizes across iterations, phases, optimize() calls
 * and (via load/save) processes. Ephemeral mode (--no-pass-cache) is an
 * iteration-scoped staging buffer: the prepare stage still needs a
 * channel to hand parallel results to the serial consult, but entries
 * are dropped at the next iteration boundary so nothing is ever reused
 * across iterations.
 */
class ExternalEvalCache
{
  public:
    explicit ExternalEvalCache(bool persistent = true,
                               EvalCacheConfig config = {});

    bool persistent() const { return persistent_; }

    /** Attach a governance context: memoized entries are accounted
     *  against MemSubsystem::Caches on its governor (approximate
     *  per-entry byte estimates; credited back on clearOutcomes).
     *  Ignored once a context has been pinned. */
    void setExecContext(const ExecContext &exec);

    /**
     * Pin the governance context of a shared, cross-session cache (the
     * daemon): entries then always charge the *server* governor, and
     * the per-request contexts optimize() passes through
     * setExecContext are ignored — a request budget must not inherit
     * the whole shared cache's footprint.
     */
    void pinExecContext(const ExecContext &exec);

    /** Pass-outcome lookup. `count` tallies a hit in the stats. */
    std::optional<PassOutcome> lookupPass(uint64_t key,
                                          bool count = false);
    /** True when `key` has an outcome; counts a hit or a miss. */
    bool probePass(uint64_t key);
    void insertPass(uint64_t key, PassOutcome outcome);

    std::optional<VerifyVerdict> lookupVerify(uint64_t key);
    void insertVerify(uint64_t key, VerifyVerdict verdict);

    /** Drop memoized outcomes (ephemeral mode's iteration boundary). */
    void clearOutcomes();

    // --- stats ----------------------------------------------------------
    void countMiss();
    void countDeduped(size_t n);
    void countBatch(size_t jobs);
    struct EvalCharge
    {
        double emit_seconds = 0;
        double pass_seconds = 0;
        double translate_seconds = 0;
        double verify_seconds = 0;
        double schedule_seconds = 0;
        bool canceled = false;
    };
    void chargeEvaluation(const EvalCharge &charge);
    /** Total seconds across all evaluation stages so far. */
    double evalSeconds() const;
    ExternalEvalStats stats() const;

    // --- persistence ----------------------------------------------------
    /**
     * Load a persisted cache. Returns the number of entries adopted;
     * 0 with *error set when the file is unreadable or corrupt — the
     * cache is then left empty (cold start), never half-loaded. Files
     * must carry a valid trailing checksum line; a truncated or torn
     * file is rejected as corrupt, never partially adopted.
     */
    size_t loadFile(const std::string &path, std::string *error);
    /**
     * Persist atomically: the cache is serialized (with a trailing
     * whole-file checksum) to `path + ".tmp"`, flushed and fsync'd,
     * then renamed over `path`. A crash mid-save leaves the previous
     * file intact; readers never observe a torn cache.
     */
    bool saveFile(const std::string &path, std::string *error) const;

    /** Per-shard hit/miss/evict counters of the two stores (pass
     *  outcomes first, then verdicts) — the daemon's stats surface. */
    std::vector<LruMetrics> passShardMetrics() const;
    std::vector<LruMetrics> verifyShardMetrics() const;

  private:
    /** Account `delta` bytes to the Caches subsystem. */
    void charge(int64_t delta);

    bool persistent_;
    StripedLru<PassOutcome> pass_;
    StripedLru<VerifyVerdict> verify_;
    /** Guards the legacy counters + timing accumulators; the sharded
     *  stores carry their own per-shard counters. */
    mutable std::mutex stats_mutex_;
    ExternalEvalStats stats_;
    mutable std::mutex exec_mutex_;
    ExecContext exec_;
    bool exec_pinned_ = false;
};

using EvalCachePtr = std::shared_ptr<ExternalEvalCache>;

/** The pure-stage inputs of one snippet evaluation. */
struct SnippetEvalConfig
{
    bool validate_results = true;
    int validation_runs = 2;
    uint64_t validation_seed = 0x5EEE;
    /** Scheduling options for the oracle stage. */
    hls::HlsOptions hls;
    /** Cooperative cancellation: checked between stages and inside the
     *  co-simulation; a canceled evaluation is discarded, not cached. */
    ExecContext exec;
};

/**
 * Run the pure snippet -> pass -> verify -> schedule pipeline on
 * `term`. `key` seeds the deterministic name scope (pass the full
 * cache key so distinct rules/configs draw distinct name streams) and
 * `cache` serves the verification sub-cache and accumulates stats.
 *
 * Returns nullopt when the context was canceled mid-evaluation
 * (deadline, memory budget, signal): a truncated result is
 * budget-dependent, not content-dependent, and must never be cached.
 * Thread-safe; called from the worker pool.
 */
std::optional<PassOutcome>
evaluateSnippet(const eg::TermPtr &term, uint64_t key,
                const std::function<bool(ir::Operation &)> &transform,
                const SnippetEvalConfig &config,
                ExternalEvalCache &cache);

/** One cold candidate of a scheduled evaluation batch. */
struct EvalBatchItem
{
    uint64_t key = 0;
    eg::TermPtr term;
};

/**
 * Worker-pool fan-out over one scheduled batch: each item runs
 * evaluateSnippet on one of `jobs` threads and lands its outcome in
 * `cache`. Pure fan-out — each job touches only the thread-safe cache,
 * and union order is untouched (the apply phase stays serial), so any
 * jobs count produces bit-identical e-graphs. Jobs must not throw
 * (worker-thread contract): an evaluation that crashes or fails to
 * allocate is simply not cached — the serial consult re-evaluates
 * inline, where the runner's containment applies.
 */
void evaluateBatch(const std::vector<EvalBatchItem> &batch,
                   const std::function<bool(ir::Operation &)> &transform,
                   const SnippetEvalConfig &config,
                   ExternalEvalCache &cache, unsigned jobs,
                   const std::function<bool()> &cancelled);

/** Append the loop ids of every affine.for in `term`, pre-order. */
void collectLoopIds(const eg::TermPtr &term,
                    std::vector<std::string> &out);

/**
 * Equivalence-verdict key: alpha-canonical hashes of both sides plus
 * the simulation budget. Alpha-equivalent pairs share verdicts — a
 * bound-name renaming cannot change interpreter semantics.
 */
uint64_t verifyKey(const eg::TermPtr &lhs, const eg::TermPtr &rhs,
                   int runs, uint64_t seed, uint64_t max_steps);

} // namespace seer::core

#endif // SEER_CORE_PASS_EVAL_H_
