/**
 * @file
 * SEER's extraction cost functions (Section 4.6).
 *
 * Phase 1 minimizes total loop latency (Eqns 1-3): each affine.for
 * e-node costs L(n) = (N-1)*P + l using the scheduling-constraint
 * registry; everything else is free, with term size as tie-break.
 * Phase 2 (rover::RoverAreaCost) then minimizes datapath area over the
 * fixed control skeleton.
 */
#ifndef SEER_CORE_COST_H_
#define SEER_CORE_COST_H_

#include <map>
#include <string>
#include <vector>

#include "egraph/extract.h"
#include "hls/schedule.h"

namespace seer::core {

/** Registry entry: scheduling constraints plus transformation trust. */
struct LoopRegistryEntry
{
    hls::LoopConstraints constraints;
    /** Set when the loop came from a legality-checked coalescing. */
    bool coalesced = false;
};

/**
 * Loop id -> constraints, seeded from the initial HLS schedule and
 * extended by the approximation laws as rewrites create new loops.
 *
 * Mutable access goes through operator[], which records the key in a
 * touch log: a registered latency cost-bound analysis resyncs from the
 * log (LatencyCost::touchedSince) and invalidates only the classes whose
 * loops actually changed, instead of recomputing every bound.
 */
class LoopRegistry
{
  public:
    using Map = std::map<std::string, LoopRegistryEntry>;
    using const_iterator = Map::const_iterator;

    /** Mutable (inserting) access; records the key in the touch log. */
    LoopRegistryEntry &
    operator[](const std::string &id)
    {
        touches_.push_back(id);
        return map_[id];
    }

    const LoopRegistryEntry &
    at(const std::string &id) const
    {
        return map_.at(id);
    }
    const_iterator find(const std::string &id) const
    {
        return map_.find(id);
    }
    size_t count(const std::string &id) const { return map_.count(id); }
    const_iterator begin() const { return map_.begin(); }
    const_iterator end() const { return map_.end(); }
    size_t size() const { return map_.size(); }
    bool empty() const { return map_.empty(); }

    /** Monotone revision counter: one tick per mutable access. */
    uint64_t revision() const { return touches_.size(); }

    /** Keys mutably accessed after revision `since`, deduplicated. */
    std::vector<std::string> touchedSince(uint64_t since) const;

  private:
    Map map_;
    std::vector<std::string> touches_;
};

/** The control-path latency cost (Eqn 2/3). */
class LatencyCost : public eg::CostModel
{
  public:
    explicit LatencyCost(const LoopRegistry &registry)
        : registry_(registry)
    {}

    double nodeCost(const eg::ENode &node) const override;

    std::string name() const override { return "latency"; }
    uint64_t revision() const override { return registry_.revision(); }
    std::vector<std::string> touchedSince(uint64_t since) const override
    {
        return registry_.touchedSince(since);
    }
    /** affine.for nodes read their loop's registry entry. */
    std::optional<std::string>
    dependencyKey(const eg::ENode &node) const override;

    /** Trip-count estimate used when N is not statically known. */
    static constexpr int64_t kUnknownTripInt = 16;
    static constexpr double kUnknownTrip =
        static_cast<double>(kUnknownTripInt);

  private:
    const LoopRegistry &registry_;
};

/** L(n) for a registry entry: max(1, (N-1)*P + l). */
double loopLatency(const LoopRegistryEntry &entry);

// --- The paper's approximation laws (Section 4.6) -----------------------

/** Fused loop law: P' = max(P1, P2, M(A1 u A2)), l' = max, N' = max. */
LoopRegistryEntry fuseLaw(const LoopRegistryEntry &first,
                          const LoopRegistryEntry &second);

/** Flattened nest law: (P_in, l_in, N_out * N_in, A_in). */
LoopRegistryEntry flattenLaw(const LoopRegistryEntry &outer,
                             const LoopRegistryEntry &inner);

/** Unrolled loop law: (1, N*l, 1, N*A). */
LoopRegistryEntry unrollLaw(const LoopRegistryEntry &loop);

} // namespace seer::core

#endif // SEER_CORE_COST_H_
