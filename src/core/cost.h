/**
 * @file
 * SEER's extraction cost functions (Section 4.6).
 *
 * Phase 1 minimizes total loop latency (Eqns 1-3): each affine.for
 * e-node costs L(n) = (N-1)*P + l using the scheduling-constraint
 * registry; everything else is free, with term size as tie-break.
 * Phase 2 (rover::RoverAreaCost) then minimizes datapath area over the
 * fixed control skeleton.
 */
#ifndef SEER_CORE_COST_H_
#define SEER_CORE_COST_H_

#include <map>
#include <string>

#include "egraph/extract.h"
#include "hls/schedule.h"

namespace seer::core {

/** Registry entry: scheduling constraints plus transformation trust. */
struct LoopRegistryEntry
{
    hls::LoopConstraints constraints;
    /** Set when the loop came from a legality-checked coalescing. */
    bool coalesced = false;
};

/** Loop id -> constraints, seeded from the initial HLS schedule and
 *  extended by the approximation laws as rewrites create new loops. */
using LoopRegistry = std::map<std::string, LoopRegistryEntry>;

/** The control-path latency cost (Eqn 2/3). */
class LatencyCost : public eg::CostModel
{
  public:
    explicit LatencyCost(const LoopRegistry &registry)
        : registry_(registry)
    {}

    double nodeCost(const eg::ENode &node) const override;

    /** Trip-count estimate used when N is not statically known. */
    static constexpr double kUnknownTrip = 16.0;

  private:
    const LoopRegistry &registry_;
};

/** L(n) for a registry entry: max(1, (N-1)*P + l). */
double loopLatency(const LoopRegistryEntry &entry);

// --- The paper's approximation laws (Section 4.6) -----------------------

/** Fused loop law: P' = max(P1, P2, M(A1 u A2)), l' = max, N' = max. */
LoopRegistryEntry fuseLaw(const LoopRegistryEntry &first,
                          const LoopRegistryEntry &second);

/** Flattened nest law: (P_in, l_in, N_out * N_in, A_in). */
LoopRegistryEntry flattenLaw(const LoopRegistryEntry &outer,
                             const LoopRegistryEntry &inner);

/** Unrolled loop law: (1, N*l, 1, N*A). */
LoopRegistryEntry unrollLaw(const LoopRegistryEntry &loop);

} // namespace seer::core

#endif // SEER_CORE_COST_H_
