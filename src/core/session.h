/**
 * @file
 * One optimization request as a transactional session: the unit of
 * work the seer-optd daemon executes, and the serialized form it
 * travels in.
 *
 * A ServeRequest carries the input IR plus the *whitelisted* subset of
 * SeerOptions a client may set — knobs that reshape the server itself
 * (fault plans, injected rules, persistence paths) are not in the wire
 * format by construction, so a client cannot smuggle them in.
 * runSession() is the single execution path shared by `seer-opt`
 * (in-process) and the daemon: parse, verify, optimize under the
 * caller's ExecContext, print. Byte-identical results between the two
 * modes are therefore structural, not aspirational — both modes run
 * exactly this function; the only difference is which process it
 * happens in, and evaluation purity (content-seeded name scopes,
 * alpha-canonical cache keys) makes the process boundary invisible.
 *
 * The wire encoding is a line-oriented header followed by
 * length-prefixed byte sections, so IR text of any shape (including
 * embedded newlines) round-trips exactly. support/json stays
 * write-only: stats travel as an opaque pre-rendered JSON section
 * plus a few parsed-out counters for load generators.
 */
#ifndef SEER_CORE_SESSION_H_
#define SEER_CORE_SESSION_H_

#include <cstdint>
#include <string>

#include "core/seer.h"

namespace seer::core {

/** One optimization request (the client -> daemon payload). */
struct ServeRequest
{
    /** Function to optimize (empty: first function in the module). */
    std::string func;
    /** The textual IR module. */
    std::string ir_text;
    /** Render the stats JSON into the response. */
    bool want_stats = false;

    // Whitelisted SeerOptions subset (mirrors the seer-opt flags).
    bool use_rover = true;
    bool use_control = true;
    int max_phases = 3;
    bool exact_datapath = true;
    bool naive_extract = false;
    bool use_laws = true;
    int64_t unroll_max_trip = 0;
    unsigned jobs = 1;
    unsigned match_jobs = 0;
    /** false: this request runs on a private ephemeral cache instead
     *  of the shared store (the honest cold arm, even against a warm
     *  daemon). */
    bool use_pass_cache = true;
    bool strict = false;
    double deadline_seconds = 0;
    uint64_t mem_budget_bytes = 0;
    /** Co-simulation runs per validation (cache-keyed; the serve bench
     *  raises it to make external evaluation dominate). */
    int validation_runs = 2;
    /** Proposal scheduler ("exhaustive" or "bandit"; mirrors
     *  `seer-opt --schedule`). An unrecognized name fails the request
     *  at parse time rather than silently defaulting. */
    std::string schedule = "exhaustive";
    /** Bandit per-wave cold-evaluation budget (`--eval-budget`). */
    double eval_budget = 1.0;
    /** Bandit replay seed (`--schedule-seed`). */
    uint64_t schedule_seed = 0x5EED;
    /**
     * Egg-runner wall-clock limit per saturation (SeerOptions
     * default: 10). Time-limited exploration is *load-dependent* —
     * a warm cache reaches further in the same seconds, so repeated
     * requests may keep discovering work. Deterministic workloads
     * (the serve bench, differential tests) raise it so saturation
     * always runs to its iteration/node budget instead.
     */
    double time_limit_seconds = 10;

    /** Copy the whitelisted knobs out of a full options struct. */
    static ServeRequest fromOptions(const SeerOptions &options);
    /** Expand back into a full options struct (other fields default). */
    SeerOptions toOptions() const;
};

std::string serializeRequest(const ServeRequest &request);
bool parseRequest(const std::string &text, ServeRequest *request,
                  std::string *error);

/** The daemon -> client payload. */
struct ServeResponse
{
    /** seer-opt exit-code contract: 0 ok, 1 failed, 3 degraded. */
    int exit_code = 0;
    bool degraded = false;
    /** The optimized module, printed (empty on failure). */
    std::string output_ir;
    /** The `; ...` summary lines seer-opt prints to stderr. */
    std::string log;
    /** Fatal diagnostic (exit_code 1). */
    std::string error;
    /** Rendered stats JSON (when the request asked for it). */
    std::string stats_json;
    // Cache counters of this request (a delta, not the store level) —
    // parsed fields so load generators need no JSON parser.
    uint64_t pass_cache_hits = 0;
    uint64_t pass_cache_misses = 0;
    uint64_t verify_cache_hits = 0;
    uint64_t evaluations = 0;
};

std::string serializeResponse(const ServeResponse &response);
bool parseResponse(const std::string &text, ServeResponse *response,
                   std::string *error);

/** What the host (daemon or CLI) provides to a session. */
struct SessionEnv
{
    /** Shared warm cache (null: per-request private cache). */
    EvalCachePtr shared_cache;
    /**
     * Per-request governance context. The host owns it: the daemon
     * wires client-disconnect cancellation to it, the CLI its signal
     * handler. The request's deadline/mem budget are applied on top.
     */
    ExecContext exec;
    /** Clamp client deadlines to this many seconds (0 = no clamp). */
    double max_deadline_seconds = 0;
};

/**
 * Execute one request end to end. Never throws: fatal errors land in
 * response.error with exit_code 1; a canceled/degraded run returns
 * the degraded-mode result with exit_code 3, exactly like `seer-opt`.
 */
ServeResponse runSession(const ServeRequest &request,
                         const SessionEnv &env);

/** The `; ...` stderr summary of one optimize() run — shared by
 *  seer-opt (in-process) and runSession so both modes print the same
 *  bytes for the same run. */
std::string summarizeRun(const SeerResult &result);

} // namespace seer::core

#endif // SEER_CORE_SESSION_H_
