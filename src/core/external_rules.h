/**
 * @file
 * SEER's external rules: MLIR-style passes wrapped as dynamic e-graph
 * rewrites (Section 4.3/4.4).
 *
 * A dynamic rule matches a SeerLang pattern, locally extracts an
 * analysis-friendly representative (Section 4.5), emits it as a snippet
 * function, runs the corresponding pass, translates the result back and
 * unions it into the matched class. New loops created by a pass receive
 * scheduling constraints either through the paper's approximation laws
 * (fusion / flatten / unroll) or by re-invoking the schedule oracle
 * (ablation mode).
 */
#ifndef SEER_CORE_EXTERNAL_RULES_H_
#define SEER_CORE_EXTERNAL_RULES_H_

#include <memory>
#include <set>

#include "core/cost.h"
#include "egraph/rewrite.h"
#include "hls/hls.h"

namespace seer::core {

/** Shared state of the external rules. */
struct ExternalRuleContext
{
    LoopRegistry registry;
    /** Accumulated seconds spent inside passes + IR translation: the
     *  paper's "Time in MLIR" column of Table 5. */
    double mlir_seconds = 0;
    /** Use the Section 4.6 approximation laws for new loops; when
     *  false, re-run the scheduler oracle instead (ablation). */
    bool use_laws = true;
    /** Enable the loop-unroll rule for trip counts up to this bound
     *  (0 disables it — the paper's default). */
    int64_t unroll_max_trip = 0;
    /** Scheduling options for oracle re-runs. */
    hls::HlsOptions hls;
    /** Use the analysis-friendly cost for local extraction (Section
     *  4.5); false extracts smallest terms instead (ablation: the
     *  Figure 9 fusion then never finds the affine form). */
    bool analysis_friendly = true;
    /**
     * Attempt memo: (rule name, canonical class) pairs already tried, so
     * re-matching the same class across runner iterations does not
     * re-run the whole snippet/pass machinery. Cleared per phase by the
     * driver (rover rounds change class contents between phases).
     */
    std::set<std::pair<std::string, uint32_t>> attempted;
};

using ContextPtr = std::shared_ptr<ExternalRuleContext>;

/** The internal seq structural rules (associativity, nop elimination). */
std::vector<eg::Rewrite> seqRules();

/** All ten control-path rules, sharing `context`. */
std::vector<eg::Rewrite> controlRules(ContextPtr context);

} // namespace seer::core

#endif // SEER_CORE_EXTERNAL_RULES_H_
