/**
 * @file
 * SEER's external rules: MLIR-style passes wrapped as dynamic e-graph
 * rewrites (Section 4.3/4.4).
 *
 * A dynamic rule matches a SeerLang pattern, locally extracts an
 * analysis-friendly representative (Section 4.5), emits it as a snippet
 * function, runs the corresponding pass, translates the result back and
 * unions it into the matched class. New loops created by a pass receive
 * scheduling constraints either through the paper's approximation laws
 * (fusion / flatten / unroll) or by re-invoking the schedule oracle
 * (ablation mode).
 */
#ifndef SEER_CORE_EXTERNAL_RULES_H_
#define SEER_CORE_EXTERNAL_RULES_H_

#include <chrono>
#include <map>
#include <memory>
#include <optional>

#include "core/cost.h"
#include "core/pass_eval.h"
#include "core/scheduler.h"
#include "egraph/rewrite.h"
#include "hls/hls.h"
#include "rover/rover.h"

namespace seer::core {

/** Shared state of the external rules. */
struct ExternalRuleContext
{
    LoopRegistry registry;
    /** Accumulated seconds spent inside passes + IR translation: the
     *  paper's "Time in MLIR" column of Table 5. */
    double mlir_seconds = 0;
    /** Use the Section 4.6 approximation laws for new loops; when
     *  false, re-run the scheduler oracle instead (ablation). */
    bool use_laws = true;
    /** Enable the loop-unroll rule for trip counts up to this bound
     *  (0 disables it — the paper's default). */
    int64_t unroll_max_trip = 0;
    /** Scheduling options for oracle re-runs. */
    hls::HlsOptions hls;
    /** Use the analysis-friendly cost for local extraction (Section
     *  4.5); false extracts smallest terms instead (ablation: the
     *  Figure 9 fusion then never finds the affine form). */
    bool analysis_friendly = true;
    /** Local-extraction cost models, shared by every rule invocation
     *  (both are class-aware: extraction passes the e-graph itself, so
     *  one stateless instance serves any graph). */
    rover::AnalysisFriendlyCost friendly_cost;
    rover::RoverAreaCost area_cost;
    /**
     * The propose/evaluate seam: phase objects (attempt memo,
     * worker-pool fan-out, serial-fold feedback) plus the proposal
     * scheduler plugged between them. The driver builds it from
     * SeerOptions (--schedule/--eval-budget); the default keeps
     * legacy/unit contexts on the exhaustive pre-seam behavior. Never
     * null.
     */
    PipelinePtr pipeline =
        makePipeline(ScheduleKind::Exhaustive, BanditConfig{});

    /**
     * Fault isolation: gate every external-pass result through the
     * structural verifier and a before/after co-simulation on
     * deterministic pseudo-random inputs before it is unioned. A
     * semantics-breaking pass is contained — rejected and recorded —
     * instead of poisoning the e-graph (a union is irreversible within
     * a phase).
     */
    bool validate_results = true;
    /** Co-simulation budget for the validation gate. */
    int validation_runs = 2;
    uint64_t validation_seed = 0x5EEE;
    /** Pass results rejected by the validation gate. */
    size_t rejected_results = 0;
    /** Diagnostics for the first few rejections (health reporting). */
    std::vector<std::string> rejections;

    /** Whole-run governance context (deadline, memory budget, signal):
     *  once canceled, external rules stop launching new snippet/pass
     *  work and report "does not apply". Propagated into running
     *  evaluations as a cooperative cancel: long co-simulations stop
     *  shortly after cancellation instead of draining their full step
     *  budget, and a canceled evaluation is never cached. */
    ExecContext exec;

    /**
     * The memoized-evaluation layer. When set, every rule gains a
     * prepare hook that batches the iteration's candidate snippets,
     * dedupes them structurally, and evaluates cold ones on `jobs`
     * worker threads; the serial apply phase then only consults
     * recorded outcomes. Unset (legacy/unit contexts): rules evaluate
     * inline through a throwaway staging cache, exactly as before this
     * layer existed.
     */
    EvalCachePtr eval_cache;
    /** Worker threads for the prepare stage (1 = evaluate inline on
     *  the runner thread; results are identical either way). */
    unsigned jobs = 1;
};

using ContextPtr = std::shared_ptr<ExternalRuleContext>;

/** The internal seq structural rules (associativity, nop elimination). */
std::vector<eg::Rewrite> seqRules();

/** All ten control-path rules, sharing `context`. */
std::vector<eg::Rewrite> controlRules(ContextPtr context);

} // namespace seer::core

#endif // SEER_CORE_EXTERNAL_RULES_H_
