#include "core/pass_eval.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <set>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "core/verify.h"
#include "ir/analysis.h"
#include "ir/verifier.h"
#include "passes/passes.h"
#include "seerlang/canonical.h"
#include "seerlang/encoding.h"
#include "seerlang/from_term.h"
#include "seerlang/to_term.h"
#include "support/error.h"
#include "support/fault_inject.h"
#include "support/hashing.h"
#include "support/worker_pool.h"

namespace seer::core {

using eg::TermPtr;

namespace {

/** Interpreter budget of the validation gate (as before this layer). */
constexpr uint64_t kValidationMaxSteps = 2'000'000;

void
collectArgNames(const TermPtr &term, std::set<std::string> &out)
{
    if (auto arg = sl::decodeArg(term->op()))
        out.insert(arg->first);
    for (const auto &child : term->children())
        collectArgNames(child, out);
}

/** Rewrite arg:<v>:index leaves back into var:<v> for snippet re-entry. */
TermPtr
renameArgsToVars(const TermPtr &term, const std::set<std::string> &vars)
{
    if (auto arg = sl::decodeArg(term->op())) {
        if (arg->second.isIndex() && vars.count(arg->first))
            return eg::makeTerm(sl::encodeVar(arg->first));
    }
    if (term->isLeaf())
        return term;
    std::vector<TermPtr> children;
    children.reserve(term->arity());
    bool changed = false;
    for (const auto &child : term->children()) {
        TermPtr renamed = renameArgsToVars(child, vars);
        changed |= renamed != child;
        children.push_back(std::move(renamed));
    }
    return changed ? eg::makeTerm(term->op(), std::move(children)) : term;
}

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point &stamp)
{
    Clock::time_point now = Clock::now();
    double s = std::chrono::duration<double>(now - stamp).count();
    stamp = now;
    return s;
}

/**
 * The pipeline body. Runs inside the caller's NameScope; plain returns
 * for control flow, per-stage timing accumulated into `charge`.
 */
PassOutcome
evaluateImpl(const TermPtr &term,
             const std::function<bool(ir::Operation &)> &transform,
             const SnippetEvalConfig &config, ExternalEvalCache &cache,
             ExternalEvalCache::EvalCharge &charge)
{
    PassOutcome out;
    Clock::time_point stamp = Clock::now();
    auto expired = [&config] { return config.exec.canceled(); };

    sl::EmitSpec spec = sl::inferSpec(term, "snippet");
    std::set<std::string> arg_names;
    collectArgNames(term, arg_names);
    std::set<std::string> var_args;
    for (const auto &[name, type] : spec.args) {
        if (!arg_names.count(name))
            var_args.insert(name);
    }
    ir::Module snippet = sl::termToFunc(term, spec);
    ir::Operation &func = *snippet.firstFunc();
    charge.emit_seconds += secondsSince(stamp);

    if (!transform(func)) {
        charge.pass_seconds += secondsSince(stamp);
        return out; // NotApplied
    }
    passes::runDce(func);
    // The pass may have rewritten loop bodies in place; stale registry
    // ids must not survive (a fused loop keeping loop1's id would
    // inherit loop1's scheduling constraints). Strip all ids:
    // back-translation assigns fresh — and, under the NameScope,
    // content-determined — ones, and the consult-time law/oracle
    // re-derives their constraints.
    ir::walk(func, [](ir::Operation &op) {
        if (ir::isa(op, ir::opnames::kAffineFor))
            op.removeAttr("seer.loop_id");
    });
    charge.pass_seconds += secondsSince(stamp);

    sl::Translation translation = sl::funcToTerm(func);
    TermPtr replacement =
        renameArgsToVars(translation.term->child(0), var_args);
    charge.translate_seconds += secondsSince(stamp);

    // Chaos: a pass that "succeeded" but emitted nonsense. Fired before
    // the validation gate, which is exactly the layer whose job it is
    // to keep such output from ever reaching the e-graph; should the
    // gate wave it through as inconclusive, downstream emission falls
    // back to the original term — the degraded-mode contract holds
    // either way.
    if (faultFire(FaultPoint::PassEvalGarbage))
        replacement = eg::makeTerm("chaos.garbage");

    // Validation gate (fault isolation): the transformed snippet must
    // pass the structural verifier and the before/after terms must
    // co-simulate on deterministic pseudo-random inputs. Equivalence
    // verdicts are memoized: structurally identical (before, after)
    // pairs under the same simulation budget share one co-simulation.
    if (config.validate_results && !expired()) {
        std::string diag = ir::verify(snippet);
        if (!diag.empty()) {
            out.status = PassOutcome::Status::Rejected;
            out.detail = "verifier rejected pass output: " + diag;
            charge.verify_seconds += secondsSince(stamp);
            return out;
        }
        uint64_t vkey =
            verifyKey(term, replacement, config.validation_runs,
                      config.validation_seed, kValidationMaxSteps);
        std::optional<VerifyVerdict> verdict = cache.lookupVerify(vkey);
        if (!verdict) {
            VerifyOptions verify_options;
            verify_options.runs = config.validation_runs;
            verify_options.seed = config.validation_seed;
            verify_options.max_steps = kValidationMaxSteps;
            verify_options.exec = config.exec;
            std::string eq_diag;
            bool ok = checkTermEquivalence(term, replacement,
                                           verify_options, &eq_diag);
            VerifyVerdict fresh;
            fresh.result = !ok ? VerifyVerdict::Result::Mismatch
                          : eq_diag == "<inconclusive>"
                              ? VerifyVerdict::Result::Inconclusive
                              : VerifyVerdict::Result::Equivalent;
            fresh.diag = eq_diag;
            // A verdict reached under an expired deadline reflects the
            // budget, not the programs: never memoize it.
            if (!expired())
                cache.insertVerify(vkey, fresh);
            verdict = fresh;
        }
        if (!verdict->accepted()) {
            out.status = PassOutcome::Status::Rejected;
            out.detail = "co-simulation mismatch: " + verdict->diag;
            charge.verify_seconds += secondsSince(stamp);
            return out;
        }
    }
    charge.verify_seconds += secondsSince(stamp);

    // Schedule oracle over every loop of the transformed snippet,
    // computed here (in the pure, parallel stage) so the serial consult
    // only decides law-vs-oracle and writes the registry. Cheap next to
    // the co-simulation, and always needed when no law applies.
    hls::OperatorLibrary lib;
    hls::ScheduleOptions sched_options = config.hls.schedule;
    sched_options.pipeline_loops = true;
    hls::FuncSchedule schedule =
        hls::scheduleFunc(func, lib, sched_options);
    for (const auto &[id, op] : translation.loops) {
        auto it = schedule.loops.find(op);
        if (it == schedule.loops.end())
            continue;
        LoopRegistryEntry entry;
        entry.constraints = it->second;
        entry.coalesced = op->hasAttr("seer.coalesced");
        out.schedule.emplace_back(id, entry);
    }
    charge.schedule_seconds += secondsSince(stamp);

    out.status = PassOutcome::Status::Replaced;
    out.replacement = replacement;
    return out;
}

} // namespace

std::optional<PassOutcome>
evaluateSnippet(const TermPtr &term, uint64_t key,
                const std::function<bool(ir::Operation &)> &transform,
                const SnippetEvalConfig &config, ExternalEvalCache &cache)
{
    // Purity: all fresh names drawn below (back-translation tags, loop
    // ids, the equivalence checker's synthetic outputs) come from a
    // scope seeded with the cache key, so the outcome is a
    // deterministic function of (term, rule, config) — on any thread,
    // in any process.
    sl::NameScope scope(key);
    // Chaos: a pass binary that crashes outright. Thrown before any
    // pipeline work so it exercises the caller's containment (dynamic
    // rules quarantine a repeatedly crashing pass).
    if (faultFire(FaultPoint::PassEvalCrash))
        throw FatalError("injected pass-evaluation crash");
    ExternalEvalCache::EvalCharge charge;
    PassOutcome out;
    try {
        out = evaluateImpl(term, transform, config, cache, charge);
    } catch (const FatalError &) {
        out = PassOutcome{}; // untranslatable shape: rule does not apply
    } catch (const std::bad_alloc &) {
        out = PassOutcome{}; // allocation failure: contained, not cached
        charge.canceled = true;
        cache.chargeEvaluation(charge);
        return std::nullopt;
    }
    // Chaos: a pass that hangs until the watchdog gives up — modeled as
    // a cancellation, so the outcome is discarded and never cached.
    bool canceled = config.exec.canceled() ||
                    faultFire(FaultPoint::PassEvalTimeout);
    charge.canceled = canceled;
    cache.chargeEvaluation(charge);
    if (canceled)
        return std::nullopt; // budget-dependent: never cache or use
    return out;
}

void
evaluateBatch(const std::vector<EvalBatchItem> &batch,
              const std::function<bool(ir::Operation &)> &transform,
              const SnippetEvalConfig &config, ExternalEvalCache &cache,
              unsigned jobs, const std::function<bool()> &cancelled)
{
    parallelFor(
        batch.size(), jobs,
        [&](size_t i) {
            // Jobs must not throw (worker-thread contract): an
            // evaluation that crashes or fails to allocate is simply
            // not cached — the serial consult re-evaluates inline,
            // where the runner's containment applies.
            try {
                auto outcome =
                    evaluateSnippet(batch[i].term, batch[i].key,
                                    transform, config, cache);
                if (outcome) {
                    cache.insertPass(batch[i].key,
                                     std::move(*outcome));
                }
            } catch (const FatalError &) {
            } catch (const std::bad_alloc &) {
            }
        },
        cancelled);
}

void
collectLoopIds(const TermPtr &term, std::vector<std::string> &out)
{
    if (sl::isForSymbol(term->op()))
        out.push_back(sl::loopIdOf(term->op()));
    for (const auto &child : term->children())
        collectLoopIds(child, out);
}

uint64_t
verifyKey(const TermPtr &lhs, const TermPtr &rhs, int runs, uint64_t seed,
          uint64_t max_steps)
{
    uint64_t h = hashString("seer.verify");
    h = hashCombine(h, sl::canonicalTermHash(lhs));
    h = hashCombine(h, sl::canonicalTermHash(rhs));
    h = hashCombine(h, hashValue(static_cast<uint64_t>(runs)));
    h = hashCombine(h, hashValue(seed));
    h = hashCombine(h, hashValue(max_steps));
    return h;
}

// --- ExternalEvalCache ----------------------------------------------------

namespace {

/** Approximate retained bytes of one memoized pass outcome. */
int64_t
outcomeBytes(const PassOutcome &outcome)
{
    int64_t bytes = static_cast<int64_t>(sizeof(PassOutcome)) + 64;
    bytes += static_cast<int64_t>(outcome.detail.size());
    if (outcome.replacement)
        bytes += 256; // shared term DAG, order-of-magnitude estimate
    bytes += static_cast<int64_t>(outcome.schedule.size()) * 128;
    return bytes;
}

constexpr int64_t kVerdictBytes = 96;

int64_t
verdictBytes(const VerifyVerdict &verdict)
{
    return kVerdictBytes + static_cast<int64_t>(verdict.diag.size());
}

} // namespace

ExternalEvalCache::ExternalEvalCache(bool persistent,
                                     EvalCacheConfig config)
    : persistent_(persistent),
      pass_(config.shards,
            config.max_bytes == 0 ? 0 : config.max_bytes / 4 * 3,
            [this](int64_t delta) { charge(delta); }),
      verify_(config.shards,
              config.max_bytes == 0 ? 0 : config.max_bytes / 4,
              [this](int64_t delta) { charge(delta); })
{}

void
ExternalEvalCache::setExecContext(const ExecContext &exec)
{
    std::lock_guard<std::mutex> lock(exec_mutex_);
    if (!exec_pinned_)
        exec_ = exec;
}

void
ExternalEvalCache::pinExecContext(const ExecContext &exec)
{
    std::lock_guard<std::mutex> lock(exec_mutex_);
    exec_ = exec;
    exec_pinned_ = true;
}

void
ExternalEvalCache::charge(int64_t delta)
{
    std::lock_guard<std::mutex> lock(exec_mutex_);
    exec_.chargeMem(MemSubsystem::Caches, delta);
}

std::optional<PassOutcome>
ExternalEvalCache::lookupPass(uint64_t key, bool count)
{
    // Chaos: a corrupted cache read surfaces as a miss — the entry is
    // re-evaluated from scratch, never trusted.
    if (faultFire(FaultPoint::CacheRead))
        return std::nullopt;
    std::optional<PassOutcome> found = pass_.lookup(key, count);
    if (found && count) {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.pass_cache_hits;
    }
    return found;
}

bool
ExternalEvalCache::probePass(uint64_t key)
{
    bool present = pass_.contains(key);
    std::lock_guard<std::mutex> lock(stats_mutex_);
    if (present)
        ++stats_.pass_cache_hits;
    else
        ++stats_.pass_cache_misses;
    return present;
}

void
ExternalEvalCache::insertPass(uint64_t key, PassOutcome outcome)
{
    int64_t bytes = outcomeBytes(outcome);
    pass_.insert(key, std::move(outcome), bytes);
}

std::optional<VerifyVerdict>
ExternalEvalCache::lookupVerify(uint64_t key)
{
    std::optional<VerifyVerdict> found = verify_.lookup(key);
    std::lock_guard<std::mutex> lock(stats_mutex_);
    if (found)
        ++stats_.verify_cache_hits;
    else
        ++stats_.verify_cache_misses;
    return found;
}

void
ExternalEvalCache::insertVerify(uint64_t key, VerifyVerdict verdict)
{
    // Chaos: memoizing this verdict fails to allocate. Contained by
    // evaluateSnippet's allocation guard — the evaluation is discarded
    // (never half-cached) and the caller treats it as canceled.
    if (faultFire(FaultPoint::CacheAlloc))
        throw std::bad_alloc();
    int64_t bytes = verdictBytes(verdict);
    verify_.insert(key, std::move(verdict), bytes);
}

void
ExternalEvalCache::clearOutcomes()
{
    pass_.clear();
    verify_.clear();
}

void
ExternalEvalCache::countMiss()
{
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.pass_cache_misses;
}

void
ExternalEvalCache::countDeduped(size_t n)
{
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.candidates_deduped += n;
}

void
ExternalEvalCache::countBatch(size_t jobs)
{
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.batches;
    stats_.batch_jobs += jobs;
}

void
ExternalEvalCache::chargeEvaluation(const EvalCharge &charge)
{
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.evaluations;
    if (charge.canceled)
        ++stats_.canceled;
    stats_.emit_seconds += charge.emit_seconds;
    stats_.pass_seconds += charge.pass_seconds;
    stats_.translate_seconds += charge.translate_seconds;
    stats_.verify_seconds += charge.verify_seconds;
    stats_.schedule_seconds += charge.schedule_seconds;
}

double
ExternalEvalCache::evalSeconds() const
{
    std::lock_guard<std::mutex> lock(stats_mutex_);
    return stats_.emit_seconds + stats_.pass_seconds +
           stats_.translate_seconds + stats_.verify_seconds +
           stats_.schedule_seconds;
}

ExternalEvalStats
ExternalEvalCache::stats() const
{
    ExternalEvalStats out;
    {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        out = stats_;
    }
    LruMetrics pass_metrics = pass_.metrics();
    LruMetrics verify_metrics = verify_.metrics();
    out.cache_shards = pass_.shardCount();
    out.pass_evictions = pass_metrics.evictions;
    out.verify_evictions = verify_metrics.evictions;
    out.evicted_bytes =
        pass_metrics.evicted_bytes + verify_metrics.evicted_bytes;
    out.resident_entries = pass_metrics.entries + verify_metrics.entries;
    out.resident_bytes = pass_metrics.bytes + verify_metrics.bytes;
    return out;
}

std::vector<LruMetrics>
ExternalEvalCache::passShardMetrics() const
{
    return pass_.shardMetrics();
}

std::vector<LruMetrics>
ExternalEvalCache::verifyShardMetrics() const
{
    return verify_.shardMetrics();
}

// --- persistence ----------------------------------------------------------
//
// A deliberately boring line-oriented format (support/json is write-only
// by design — adding a JSON parser for this would mean a parser to keep
// sound). One record per line, space-separated fields, strings
// percent-escaped. Any malformed line discards the whole file: a pass
// cache is an optimization, so the only safe recovery is a cold start.

namespace {

constexpr const char *kCacheHeader = "seer-pass-cache v2";

/**
 * FNV-1a over the serialized body (header + records). Written as a
 * trailing "C <hex>" line and re-checked on load, so a torn or
 * truncated file — a crash mid-write, a partial copy — is rejected
 * whole instead of silently adopting a prefix.
 */
uint64_t
fnv1a(const std::string &text)
{
    uint64_t h = 14695981039346656037ull;
    for (unsigned char c : text) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

std::string
escapeField(const std::string &text)
{
    if (text.empty())
        return "%e";
    std::string out;
    out.reserve(text.size());
    for (unsigned char c : text) {
        if (c == '%' || c == ' ' || c < 0x20) {
            char buf[4];
            std::snprintf(buf, sizeof buf, "%%%02X", c);
            out += buf;
        } else {
            out += static_cast<char>(c);
        }
    }
    return out;
}

bool
unescapeField(const std::string &text, std::string *out)
{
    if (text == "%e") {
        out->clear();
        return true;
    }
    out->clear();
    out->reserve(text.size());
    for (size_t i = 0; i < text.size(); ++i) {
        if (text[i] != '%') {
            *out += text[i];
            continue;
        }
        if (i + 2 >= text.size())
            return false;
        auto hex = [](char c) -> int {
            if (c >= '0' && c <= '9')
                return c - '0';
            if (c >= 'A' && c <= 'F')
                return c - 'A' + 10;
            if (c >= 'a' && c <= 'f')
                return c - 'a' + 10;
            return -1;
        };
        int hi = hex(text[i + 1]), lo = hex(text[i + 2]);
        if (hi < 0 || lo < 0)
            return false;
        *out += static_cast<char>(hi * 16 + lo);
        i += 2;
    }
    return true;
}

std::string
keyHex(uint64_t key)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(key));
    return buf;
}

bool
parseU64Hex(const std::string &text, uint64_t *out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    *out = std::strtoull(text.c_str(), &end, 16);
    return end && *end == '\0';
}

bool
parseI64(const std::string &text, int64_t *out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    *out = std::strtoll(text.c_str(), &end, 10);
    return end && *end == '\0';
}

void
writeEntry(std::ostream &os, const std::string &id,
           const LoopRegistryEntry &entry)
{
    const hls::LoopConstraints &c = entry.constraints;
    os << "L " << escapeField(id) << ' ' << c.ii << ' ' << c.latency
       << ' ' << c.full_latency << ' '
       << (c.trip ? std::to_string(*c.trip) : std::string("-")) << ' '
       << (c.pipelined ? 1 : 0) << ' ' << (entry.coalesced ? 1 : 0)
       << ' ' << escapeField(c.loop_id) << ' ' << c.accesses.size();
    for (const auto &[name, count] : c.accesses)
        os << ' ' << escapeField(name) << ' ' << count;
    os << '\n';
}

bool
readEntry(std::istringstream &in, std::string *id,
          LoopRegistryEntry *entry)
{
    std::string id_field, trip_field, loop_id_field;
    int pipelined = 0, coalesced = 0;
    size_t naccess = 0;
    hls::LoopConstraints &c = entry->constraints;
    if (!(in >> id_field >> c.ii >> c.latency >> c.full_latency >>
          trip_field >> pipelined >> coalesced >> loop_id_field >>
          naccess))
        return false;
    if (!unescapeField(id_field, id))
        return false;
    if (trip_field == "-") {
        c.trip.reset();
    } else {
        int64_t trip = 0;
        if (!parseI64(trip_field, &trip))
            return false;
        c.trip = trip;
    }
    c.pipelined = pipelined != 0;
    entry->coalesced = coalesced != 0;
    if (!unescapeField(loop_id_field, &c.loop_id))
        return false;
    for (size_t i = 0; i < naccess; ++i) {
        std::string name_field, name;
        int64_t count = 0;
        if (!(in >> name_field >> count))
            return false;
        if (!unescapeField(name_field, &name))
            return false;
        c.accesses[name] = count;
    }
    return true;
}

} // namespace

size_t
ExternalEvalCache::loadFile(const std::string &path, std::string *error)
{
    if (error)
        error->clear();
    std::ifstream file(path, std::ios::binary);
    if (!file)
        return 0; // absent: a cold start, not an error

    std::string content{std::istreambuf_iterator<char>(file),
                        std::istreambuf_iterator<char>()};

    auto corrupt = [&](const std::string &why) -> size_t {
        pass_.clear();
        verify_.clear();
        // Honest cold-start accounting: count the record lines the
        // rejected file carried, so the stats section reports how much
        // memoized work was thrown away instead of a silent zero.
        size_t rejected = 0;
        size_t pos = 0;
        while (pos < content.size()) {
            if (content.compare(pos, 2, "P ") == 0 ||
                content.compare(pos, 2, "V ") == 0)
                ++rejected;
            size_t nl = content.find('\n', pos);
            if (nl == std::string::npos)
                break;
            pos = nl + 1;
        }
        std::lock_guard<std::mutex> lock(stats_mutex_);
        stats_.disk_load_failed = true;
        stats_.disk_entries_loaded = 0;
        stats_.disk_entries_rejected = rejected;
        stats_.disk_load_error = why;
        if (error)
            *error = "pass cache '" + path + "': " + why;
        return 0;
    };

    if (file.bad())
        return corrupt("read error");

    // The last line must be the whole-file checksum; everything before
    // it is the body the checksum covers. A file that lost its tail —
    // torn write, truncation — fails here before any entry is adopted.
    if (content.empty() || content.back() != '\n')
        return corrupt("truncated (missing trailing checksum)");
    size_t nl = content.rfind('\n', content.size() - 2);
    size_t tail = (nl == std::string::npos) ? 0 : nl + 1;
    std::string check_line =
        content.substr(tail, content.size() - 1 - tail);
    uint64_t stored = 0;
    if (check_line.size() < 3 || check_line.compare(0, 2, "C ") != 0 ||
        !parseU64Hex(check_line.substr(2), &stored))
        return corrupt("truncated (missing trailing checksum)");
    std::string body = content.substr(0, tail);
    if (fnv1a(body) != stored)
        return corrupt("checksum mismatch");

    std::istringstream in(body);
    std::string line;
    if (!std::getline(in, line) || line != kCacheHeader)
        return corrupt("bad header");

    std::unordered_map<uint64_t, PassOutcome> pass;
    std::unordered_map<uint64_t, VerifyVerdict> verify;
    size_t line_no = 1;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        std::istringstream fields(line);
        std::string tag;
        fields >> tag;
        auto bad = [&]() {
            return corrupt("malformed line " + std::to_string(line_no));
        };
        if (tag == "P") {
            std::string key_field, detail_field, term_field;
            int status = 0;
            size_t nsched = 0;
            if (!(fields >> key_field >> status >> detail_field >>
                  term_field >> nsched))
                return bad();
            uint64_t key = 0;
            if (!parseU64Hex(key_field, &key) || status < 0 ||
                status > 2)
                return bad();
            PassOutcome outcome;
            outcome.status = static_cast<PassOutcome::Status>(status);
            if (!unescapeField(detail_field, &outcome.detail))
                return bad();
            if (term_field != "-") {
                std::string term_text;
                if (!unescapeField(term_field, &term_text))
                    return bad();
                try {
                    outcome.replacement = eg::parseTerm(term_text);
                } catch (const FatalError &) {
                    return bad();
                }
            }
            if (outcome.status == PassOutcome::Status::Replaced &&
                !outcome.replacement)
                return bad();
            for (size_t i = 0; i < nsched; ++i) {
                if (!std::getline(in, line))
                    return bad();
                ++line_no;
                std::istringstream sched_fields(line);
                std::string sched_tag;
                sched_fields >> sched_tag;
                if (sched_tag != "L")
                    return bad();
                std::string id;
                LoopRegistryEntry entry;
                if (!readEntry(sched_fields, &id, &entry))
                    return bad();
                outcome.schedule.emplace_back(id, entry);
            }
            pass.insert_or_assign(key, std::move(outcome));
        } else if (tag == "V") {
            std::string key_field, diag_field;
            int result = 0;
            if (!(fields >> key_field >> result >> diag_field))
                return bad();
            uint64_t key = 0;
            if (!parseU64Hex(key_field, &key) || result < 0 ||
                result > 2)
                return bad();
            VerifyVerdict verdict;
            verdict.result = static_cast<VerifyVerdict::Result>(result);
            if (!unescapeField(diag_field, &verdict.diag))
                return bad();
            verify.insert_or_assign(key, verdict);
        } else {
            return bad();
        }
    }

    size_t loaded = pass.size() + verify.size();
    for (auto &[key, outcome] : pass) {
        int64_t bytes = outcomeBytes(outcome);
        pass_.insert(key, std::move(outcome), bytes);
    }
    for (auto &[key, verdict] : verify)
        verify_.insert(key, verdict, verdictBytes(verdict));
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.disk_entries_loaded = loaded;
    stats_.disk_load_error.clear();
    return loaded;
}

bool
ExternalEvalCache::saveFile(const std::string &path,
                            std::string *error) const
{
    if (error)
        error->clear();
    // Serialize the body in memory first: the checksum covers every
    // byte that will precede it, and the file is then written in one
    // stream without interleaved reads of mutable state. forEachSorted
    // snapshots each store and iterates in sorted key order, so the
    // artifact is byte-stable across runs — and across save → load →
    // save round trips, whatever LRU order the traffic left behind.
    std::ostringstream out;
    out << kCacheHeader << '\n';
    pass_.forEachSorted([&](uint64_t key, const PassOutcome &outcome) {
        out << "P " << keyHex(key) << ' '
            << static_cast<int>(outcome.status) << ' '
            << escapeField(outcome.detail) << ' '
            << (outcome.replacement
                    ? escapeField(outcome.replacement->str())
                    : std::string("-"))
            << ' ' << outcome.schedule.size() << '\n';
        for (const auto &[id, entry] : outcome.schedule)
            writeEntry(out, id, entry);
    });
    verify_.forEachSorted([&](uint64_t key,
                              const VerifyVerdict &verdict) {
        out << "V " << keyHex(key) << ' '
            << static_cast<int>(verdict.result) << ' '
            << escapeField(verdict.diag) << '\n';
    });
    std::string body = out.str();

    // Atomic persistence: write body + checksum to a sibling temp file,
    // fsync it, then rename over the target. A crash at any point
    // leaves either the old cache or the new one — never a torn file
    // (and a torn temp file can never pass the checksum anyway).
    std::string tmp = path + ".tmp";
    auto fail = [&](const std::string &why) {
        std::remove(tmp.c_str());
        if (error)
            *error = why + " '" + path + "'";
        return false;
    };
    {
        std::ofstream file(tmp, std::ios::trunc | std::ios::binary);
        if (!file)
            return fail("cannot write pass cache");
        file << body << "C " << keyHex(fnv1a(body)) << '\n';
        file.flush();
        if (!file)
            return fail("short write to pass cache");
    }
    int fd = ::open(tmp.c_str(), O_WRONLY);
    if (fd < 0)
        return fail("cannot reopen pass cache temp for");
    bool synced = ::fsync(fd) == 0;
    ::close(fd);
    if (!synced)
        return fail("fsync failed for pass cache");
    // Chaos: the process dies between writing the temp file and
    // publishing it — the visible cache must be the previous one.
    if (faultFire(FaultPoint::CacheSave))
        return fail("injected crash before pass cache rename");
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        return fail("cannot publish pass cache");
    return true;
}

json::Value
toJson(const ExternalEvalStats &stats)
{
    json::Value out{json::Object{}};
    out.set("pass_cache_hits", stats.pass_cache_hits);
    out.set("pass_cache_misses", stats.pass_cache_misses);
    out.set("verify_cache_hits", stats.verify_cache_hits);
    out.set("verify_cache_misses", stats.verify_cache_misses);
    out.set("candidates_deduped", stats.candidates_deduped);
    out.set("evaluations", stats.evaluations);
    out.set("batches", stats.batches);
    out.set("batch_jobs", stats.batch_jobs);
    out.set("canceled", stats.canceled);
    out.set("emit_seconds", stats.emit_seconds);
    out.set("pass_seconds", stats.pass_seconds);
    out.set("translate_seconds", stats.translate_seconds);
    out.set("verify_seconds", stats.verify_seconds);
    out.set("schedule_seconds", stats.schedule_seconds);
    out.set("disk_entries_loaded", stats.disk_entries_loaded);
    out.set("disk_load_failed", stats.disk_load_failed);
    out.set("disk_entries_rejected", stats.disk_entries_rejected);
    out.set("disk_load_error", stats.disk_load_error);
    out.set("cache_shards", stats.cache_shards);
    out.set("pass_evictions", stats.pass_evictions);
    out.set("verify_evictions", stats.verify_evictions);
    out.set("evicted_bytes", stats.evicted_bytes);
    out.set("resident_entries", stats.resident_entries);
    out.set("resident_bytes", stats.resident_bytes);
    return out;
}

} // namespace seer::core
