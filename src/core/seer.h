/**
 * @file
 * The SEER super-optimizer: the paper's end-to-end toolflow
 * (Figure 5).
 *
 *  1. pre-normalize the input (value-yielding ifs converted),
 *  2. call the HLS schedule oracle once to seed the loop registry,
 *  3. translate to SeerLang and grow an e-graph, interleaving control
 *     (external-pass) rounds with datapath (ROVER) rounds,
 *  4. extract in two phases: latency-greedy control flow, then
 *     exact-area datapath refinement,
 *  5. emit IR, with trusted-coalesced markers for the HLS back end.
 */
#ifndef SEER_CORE_SEER_H_
#define SEER_CORE_SEER_H_

#include "core/external_rules.h"
#include "egraph/runner.h"

namespace seer::core {

/** Configuration of one SEER run. */
struct SeerOptions
{
    /** Enable ROVER datapath rules (off = the paper's "SEER (C)"). */
    bool use_rover = true;
    /** Enable control-path rules (off = the paper's "ROVER" only). */
    bool use_control = true;
    /** Interleaved control/data phases (Section 4.4). */
    int max_phases = 3;
    /** Runner limits per phase. */
    eg::RunnerOptions runner;
    /** Exact (branch-and-bound "ILP") datapath extraction; greedy
     *  fallback when disabled (ablation). */
    bool exact_datapath = true;
    /** Use the Section 4.6 approximation laws (false = oracle mode). */
    bool use_laws = true;
    /** Analysis-friendly local extraction (Section 4.5); disable for
     *  the Figure 9 ablation. */
    bool analysis_friendly_extraction = true;
    /** Unrolling bound (0 = disabled, the paper's default; the Intel
     *  case study enables it). */
    int64_t unroll_max_trip = 0;
    /** HLS oracle options (clock period etc.). */
    hls::HlsOptions hls;

    SeerOptions()
    {
        // Budgets sized for the now-honest backoff scheduler: explosive
        // rules apply their first match_limit matches instead of being
        // silently discarded, so the graph genuinely reaches these caps.
        runner.max_iters = 4;
        runner.max_nodes = 16000;
        runner.time_limit_seconds = 10;
        runner.match_limit = 1000;
    }
};

/** Statistics of a run (the Table 5 columns). */
struct SeerStats
{
    size_t egraph_nodes = 0;
    size_t egraph_classes = 0;
    double time_in_passes_seconds = 0; ///< "Time in MLIR"
    double time_in_egraph_seconds = 0; ///< "Time in egg"
    double total_seconds = 0;
    size_t unions_applied = 0;
    /** Every applied rewrite, for translation validation. */
    std::vector<eg::RewriteRecord> records;
    /** Per-rule scheduler/profiling stats, aggregated by rule name over
     *  every runner invocation of the interleaved phases. */
    std::vector<eg::RuleStats> rule_stats;
    /** The concatenated iteration trajectory across all phases. */
    std::vector<eg::IterationStats> iterations;
};

/** JSON view of the statistics (records omitted; they carry terms). */
json::Value toJson(const SeerStats &stats);

/** Result of optimizing one function. */
struct SeerResult
{
    ir::Module module; ///< the optimized program
    SeerStats stats;
    /** Final loop registry (constraints for every loop id). */
    LoopRegistry registry;
    /** The original term and the extracted term (for verification). */
    eg::TermPtr original_term;
    eg::TermPtr extracted_term;
};

/**
 * Optimize `func_name` within `input`. The input module is cloned; on
 * untranslatable inputs a FatalError is thrown.
 */
SeerResult optimize(const ir::Module &input, const std::string &func_name,
                    const SeerOptions &options = {});

} // namespace seer::core

#endif // SEER_CORE_SEER_H_
