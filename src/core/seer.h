/**
 * @file
 * The SEER super-optimizer: the paper's end-to-end toolflow
 * (Figure 5).
 *
 *  1. pre-normalize the input (value-yielding ifs converted),
 *  2. call the HLS schedule oracle once to seed the loop registry,
 *  3. translate to SeerLang and grow an e-graph, interleaving control
 *     (external-pass) rounds with datapath (ROVER) rounds,
 *  4. extract in two phases: latency-greedy control flow, then
 *     exact-area datapath refinement,
 *  5. emit IR, with trusted-coalesced markers for the HLS back end.
 */
#ifndef SEER_CORE_SEER_H_
#define SEER_CORE_SEER_H_

#include "core/external_rules.h"
#include "core/extraction_pipeline.h"
#include "egraph/runner.h"

namespace seer::core {

/** Configuration of one SEER run. */
struct SeerOptions
{
    /** Enable ROVER datapath rules (off = the paper's "SEER (C)"). */
    bool use_rover = true;
    /** Enable control-path rules (off = the paper's "ROVER" only). */
    bool use_control = true;
    /** Interleaved control/data phases (Section 4.4). */
    int max_phases = 3;
    /** Runner limits per phase. */
    eg::RunnerOptions runner;
    /** Exact (branch-and-bound "ILP") datapath extraction; greedy
     *  fallback when disabled (ablation). */
    bool exact_datapath = true;
    /** Reference extraction: from-scratch bounds, no incremental
     *  cost-bound analyses, weak exact-search bound (`seer-opt
     *  --extract=naive`). The extracted terms are bit-identical to the
     *  incremental path — this is the differential/benchmark arm. */
    bool naive_extract = false;
    /** Use the Section 4.6 approximation laws (false = oracle mode). */
    bool use_laws = true;
    /** Analysis-friendly local extraction (Section 4.5); disable for
     *  the Figure 9 ablation. */
    bool analysis_friendly_extraction = true;
    /** Unrolling bound (0 = disabled, the paper's default; the Intel
     *  case study enables it). */
    int64_t unroll_max_trip = 0;
    /** HLS oracle options (clock period etc.). */
    hls::HlsOptions hls;

    // --- fault isolation -------------------------------------------------
    /**
     * Fail-fast mode: the first FatalError anywhere in the rewrite
     * stack propagates out of optimize() (the pre-fault-isolation
     * behavior). When false (default), errors are recovered: rules are
     * guarded and quarantined, phases roll back, and optimize() always
     * returns valid IR with stats.degraded set when it had to recover.
     */
    bool strict = false;
    /** Whole-run wall-clock budget in seconds (0 = none). Propagated
     *  into every runner phase and into external pass execution. */
    double deadline_seconds = 0;
    /**
     * Whole-run memory budget in bytes (0 = accounting only, no limit).
     * Tracked subsystems — e-graph storage, evaluation caches,
     * interpreter buffers, exact-extraction memos — charge a shared
     * ResourceGovernor; a breach cancels exploration cooperatively and
     * degrades to best-so-far extraction instead of dying of OOM.
     * Estimates are approximate (object-model bytes, not allocator
     * truth): budget a margin below the hard limit.
     */
    uint64_t mem_budget_bytes = 0;
    /**
     * External governance context. When valid, optimize() threads it
     * everywhere instead of making its own — the caller can share one
     * context (and its governor/cancellation) across runs, and SIGINT
     * handling installed by the CLI cancels mid-run. deadline_seconds
     * and mem_budget_bytes are still applied to it when set.
     */
    ExecContext exec;
    /** Gate every external-pass result through the verifier + a
     *  before/after co-simulation before unioning it. */
    bool validate_external = true;
    /** Co-simulation runs per validation (more runs = a stronger gate
     *  and more interpreter time; the verification cache is keyed on
     *  this, so changing it never reuses stale verdicts). */
    int validation_runs = 2;
    /** Seed of the validation input generator (cache-keyed). */
    uint64_t validation_seed = 0x5EEE;
    /** Consecutive recovered failures before a rule is quarantined for
     *  the rest of a phase (the runner's circuit breaker). */
    size_t quarantine_after = 3;
    /** Test/chaos hook: extra rules appended to every control phase
     *  (used to inject faulty rules in robustness tests). */
    std::vector<eg::Rewrite> extra_control_rules;

    // --- memoized + parallel external-pass evaluation --------------------
    /**
     * Worker threads for external-pass evaluation (and the runner's
     * match phase). Snippet evaluation is a pure function under a
     * content-seeded name scope and unions stay strictly serial in
     * canonical order, so any value of `jobs` produces bit-identical
     * results — e-graphs, stats, extracted terms (`seer-opt -j N`).
     */
    unsigned jobs = 1;
    /**
     * Worker threads for the runner's sharded e-matching phase alone
     * (`seer-opt --match-jobs`). 0 (default) inherits `jobs`, so one -j
     * knob drives both parallel stages; setting it decouples search
     * parallelism from pass-eval parallelism (e.g. for the bench
     * saturation arms). Determinism contract is the same: any value
     * produces bit-identical results.
     */
    unsigned match_jobs = 0;
    /**
     * Memoize pass outcomes and equivalence verdicts across iterations,
     * phases and optimize() calls. Off: outcomes are staged per
     * iteration only (the honest cold baseline). The exploration result
     * is identical either way — the cache is a transparent memo over a
     * pure function.
     */
    bool use_pass_cache = true;
    /** Load/save the pass-outcome cache here (empty = in-memory only;
     *  `seer-opt --pass-cache <path>`). A corrupt file cold-starts. */
    std::string pass_cache_file;
    /** Share one evaluation cache across optimize() calls (e.g. a
     *  design-space sweep over one kernel); overrides use_pass_cache
     *  and pass_cache_file when set. */
    EvalCachePtr shared_eval_cache;

    // --- proposal scheduling ---------------------------------------------
    /**
     * Which ProposalScheduler the driver plugs into the
     * propose/evaluate seam (`seer-opt --schedule`). Exhaustive (the
     * default) evaluates every candidate in enumeration order and is
     * bit-identical to the pre-seam loop; bandit prioritizes by learned
     * (pass, structural-hash bucket) value under an eval budget. A
     * bandit run may settle on a *different* optimum — every candidate
     * it does evaluate still passes the same validation gate, so
     * soundness is unaffected.
     */
    ScheduleKind schedule = ScheduleKind::Exhaustive;
    /**
     * Per-iteration cold-evaluation budget as a fraction of each
     * candidate wave, clamped to (0, 1] (`--eval-budget`; bandit only
     * — exhaustive ignores it). Every wave keeps at least one slot, so
     * exploration always progresses.
     */
    double eval_budget = 1.0;
    /** Replay seed of the bandit's epsilon-exploration stream
     *  (`--schedule-seed`). Same seed -> byte-identical exploration
     *  across runs, processes, and -j values. */
    uint64_t schedule_seed = 0x5EED;

    SeerOptions()
    {
        // Budgets sized for the now-honest backoff scheduler: explosive
        // rules apply their first match_limit matches instead of being
        // silently discarded, so the graph genuinely reaches these caps.
        runner.max_iters = 4;
        // Two orders of magnitude over the historical 16k cap: the flat
        // SoA storage (egraph/storage.h) holds million-node graphs, so
        // exploration depth is now bounded by time, not by node count.
        runner.max_nodes = 1600000;
        runner.time_limit_seconds = 10;
        runner.match_limit = 1000;
    }
};

/** Statistics of a run (the Table 5 columns). */
struct SeerStats
{
    size_t egraph_nodes = 0;
    size_t egraph_classes = 0;
    double time_in_passes_seconds = 0; ///< "Time in MLIR"
    double time_in_egraph_seconds = 0; ///< "Time in egg"
    double total_seconds = 0;
    size_t unions_applied = 0;
    /** Every applied rewrite, for translation validation. */
    std::vector<eg::RewriteRecord> records;
    /** Per-rule scheduler/profiling stats, aggregated by rule name over
     *  every runner invocation of the interleaved phases. */
    std::vector<eg::RuleStats> rule_stats;
    /** The concatenated iteration trajectory across all phases. */
    std::vector<eg::IterationStats> iterations;
    /** Match-phase counters (index hits, watermark skips, cache reuse)
     *  summed over every runner invocation. */
    eg::MatchPhaseStats match_phase;

    // --- health (fault isolation) ---------------------------------------
    /** True when the run had to recover from a fault (guarded-rule
     *  failure, quarantine, phase rollback, or fallback emission); the
     *  output is still valid, verified IR. */
    bool degraded = false;
    /** Phases whose e-graph changes were rolled back. */
    size_t phase_rollbacks = 0;
    /** True when the whole-run deadline cut exploration short. */
    bool deadline_hit = false;
    /** Why the run was canceled, if it was ("deadline", "mem-budget",
     *  "external"); empty for an uncanceled run. */
    std::string cancel_reason;
    /** Per-subsystem memory accounting (the "resource" stats section);
     *  budget breach implies degraded. */
    ResourceStats resource;
    /** Errors caught and recovered from, "rule: what" / phase notes. */
    std::vector<std::string> recovered_errors;
    /** Rules the circuit breaker quarantined in any phase. */
    std::vector<std::string> quarantined_rules;
    /** External-pass results rejected by the validation gate (not
     *  counted as degradation: the gate preserves semantics). */
    size_t rejected_externals = 0;
    /** Diagnostics for the first few rejected external results. */
    std::vector<std::string> rejection_details;

    /** Cache hit rates and per-stage timing of the memoized
     *  external-pass evaluation layer ("external_eval" in --stats). */
    ExternalEvalStats external_eval;

    /** Proposal-scheduler telemetry ("scheduler" in --stats): arms,
     *  pulls, regret proxy, budget spent/saved. Counts only — the
     *  section is byte-identical across machines and -j values. */
    SchedulerStats scheduler;

    /** Per-phase extraction telemetry ("extraction" in --stats). */
    std::vector<ExtractionPhaseStats> extraction;
};

/** JSON view of the statistics (records omitted; they carry terms). */
json::Value toJson(const SeerStats &stats);

/** Result of optimizing one function. */
struct SeerResult
{
    ir::Module module; ///< the optimized program
    SeerStats stats;
    /** Final loop registry (constraints for every loop id). */
    LoopRegistry registry;
    /** The original term and the extracted term (for verification). */
    eg::TermPtr original_term;
    eg::TermPtr extracted_term;
};

/**
 * Optimize `func_name` within `input`. The input module is cloned.
 *
 * Robustness contract: unless options.strict is set, optimize() always
 * returns verifier-clean IR. Faults inside the rewrite stack (a
 * crashing dynamic rule, a semantics-breaking external pass, a phase
 * blowing its budget, an inextractable e-graph) are contained —
 * quarantined, rolled back, or degraded to a weaker result, worst case
 * the pre-normalized input — and reported in stats (degraded flag +
 * health fields). Only unrecoverable user errors still throw: a missing
 * function, or input IR that does not verify. With options.strict, the
 * first FatalError propagates unchanged (fail-fast).
 */
SeerResult optimize(const ir::Module &input, const std::string &func_name,
                    const SeerOptions &options = {});

} // namespace seer::core

#endif // SEER_CORE_SEER_H_
