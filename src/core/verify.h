/**
 * @file
 * Translation validation (Section 4.7).
 *
 * The paper decomposes "original == optimized" into one equivalence
 * check per applied rewrite, each discharged by a commercial checker.
 * Here every recorded union (rule name + concrete lhs/rhs terms) is
 * checked by emitting both sides as snippet functions and co-executing
 * them on matched deterministic-random inputs; an end-to-end module
 * check closes the chain. A failing record names the offending rule.
 */
#ifndef SEER_CORE_VERIFY_H_
#define SEER_CORE_VERIFY_H_

#include <chrono>
#include <optional>

#include "core/seer.h"
#include "support/exec_context.h"
#include "support/rng.h"

namespace seer::core {

struct VerifyOptions
{
    int runs = 4;             ///< random input vectors per check
    uint64_t seed = 0x5EEE;   ///< base RNG seed
    uint64_t max_steps = 20'000'000; ///< interpreter budget per run
    size_t max_failures = 8;  ///< stop collecting after this many
    /**
     * Cooperative cancellation: checked before each run and polled
     * inside the interpreter, so a check never outlives the caller's
     * budget (deadline, memory, SIGINT) by more than a few thousand
     * interpreter steps. A canceled check can report acceptance with
     * zero conclusive runs ("<inconclusive>") — governed callers must
     * re-check the context before treating the verdict as meaningful
     * (and must never cache it). Runtime buffers are accounted against
     * MemSubsystem::Interp on the context's governor.
     */
    ExecContext exec;
};

struct VerifyReport
{
    size_t total_checks = 0;
    size_t passed = 0;
    /** Checks where one or both sides trapped on every input (treated
     *  as neither pass nor failure; reported for transparency). */
    size_t inconclusive = 0;
    std::vector<std::string> failures;

    bool ok() const { return failures.empty(); }
};

/** Check every recorded rewrite: the decomposed proof chain. */
VerifyReport verifyRecords(const std::vector<eg::RewriteRecord> &records,
                           const VerifyOptions &options = {});

/** Check two terms for input/output + memory-state equivalence. */
bool checkTermEquivalence(const eg::TermPtr &lhs, const eg::TermPtr &rhs,
                          const VerifyOptions &options = {},
                          std::string *diagnostic = nullptr);

/** Check two modules' functions on matched random workloads. */
bool checkModuleEquivalence(const ir::Module &lhs, const ir::Module &rhs,
                            const std::string &func_name,
                            const VerifyOptions &options = {},
                            std::string *diagnostic = nullptr);

/** Fills the argument buffers with a valid workload (e.g. in-range
 *  neighbour indices); used when plain random inputs would trap. */
using InputPreparer =
    std::function<void(std::vector<ir::Buffer> &, Rng &)>;

/** As above, but with a domain-aware input preparer. */
bool checkModuleEquivalence(const ir::Module &lhs, const ir::Module &rhs,
                            const std::string &func_name,
                            const InputPreparer &prepare,
                            const VerifyOptions &options = {},
                            std::string *diagnostic = nullptr);

} // namespace seer::core

#endif // SEER_CORE_VERIFY_H_
