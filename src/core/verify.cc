#include "core/verify.h"

#include "ir/interp.h"
#include "ir/parser.h"
#include "seerlang/encoding.h"
#include "seerlang/from_term.h"
#include "support/error.h"
#include "support/rng.h"

namespace seer::core {

using eg::TermPtr;

namespace {

/** Result type of a SeerLang value term; None for statement terms. */
ir::Type
typeOfValueTerm(const TermPtr &term)
{
    Symbol op = term->op();
    if (auto constant = sl::decodeIntConst(op))
        return constant->second;
    if (sl::decodeFloatConst(op))
        return ir::Type::f64();
    if (auto arg = sl::decodeArg(op))
        return arg->second;
    if (sl::decodeVar(op))
        return ir::Type::index();
    if (sl::isStatementSymbol(op))
        return ir::Type::none();
    std::string name = sl::opNameOf(op);
    auto fields = sl::fieldsOf(op);
    if (name == "arith.cmpi" || name == "arith.cmpf")
        return ir::Type::i1();
    if (fields.size() == 2)
        return ir::parseType(fields[1]); // cast: (from, to)
    if (fields.size() == 1)
        return ir::parseType(fields[0]);
    return ir::Type::none();
}

/** Wrap a value term as a statement storing into a synthetic output. */
TermPtr
wrapValueTerm(const TermPtr &term, ir::Type type)
{
    ir::Type out_type = ir::Type::memref({1}, type);
    TermPtr out_arg = eg::makeTerm(sl::encodeArg("__out", out_type));
    TermPtr zero =
        eg::makeTerm(sl::encodeIntConst(0, ir::Type::index()));
    return eg::makeTerm(sl::encodeStore(sl::freshTag()),
                        {term, out_arg, zero});
}

/** Deterministic random arguments for a spec; buffers owned by caller. */
std::vector<ir::RtValue>
buildArgs(const sl::EmitSpec &spec,
          std::vector<std::unique_ptr<ir::Buffer>> &buffers, Rng &rng)
{
    std::vector<ir::RtValue> args;
    for (const auto &[name, type] : spec.args) {
        if (type.isMemRef()) {
            buffers.push_back(std::make_unique<ir::Buffer>(type));
            ir::Buffer &buffer = *buffers.back();
            unsigned w = type.elementType().isScalar()
                             ? type.elementType().bitwidth()
                             : 32;
            for (auto &v : buffer.ints)
                v = ir::wrapToWidth(rng.nextRange(-40, 40), w);
            for (auto &v : buffer.floats)
                v = rng.nextDouble() * 4 - 2;
            args.push_back(&buffer);
        } else if (type.isIndex()) {
            args.push_back(rng.nextRange(0, 3));
        } else if (type.isInteger()) {
            args.push_back(ir::wrapToWidth(rng.nextRange(-40, 40),
                                           type.bitwidth()));
        } else {
            args.push_back(rng.nextDouble() * 4 - 2);
        }
    }
    return args;
}

/** Fingerprint of final buffer state. */
std::vector<int64_t>
fingerprint(const std::vector<std::unique_ptr<ir::Buffer>> &buffers)
{
    std::vector<int64_t> out;
    for (const auto &buffer : buffers) {
        out.insert(out.end(), buffer->ints.begin(), buffer->ints.end());
        for (double d : buffer->floats)
            out.push_back(static_cast<int64_t>(d * (1 << 20)));
    }
    return out;
}

/** Merge two specs by argument name with consistent types. */
std::optional<sl::EmitSpec>
unifySpecs(const sl::EmitSpec &a, const sl::EmitSpec &b)
{
    sl::EmitSpec out = a;
    for (const auto &[name, type] : b.args) {
        bool found = false;
        for (const auto &[existing_name, existing_type] : out.args) {
            if (existing_name == name) {
                if (!(existing_type == type))
                    return std::nullopt;
                found = true;
            }
        }
        if (!found)
            out.args.emplace_back(name, type);
    }
    return out;
}

enum class RunStatus { Ok, Trap, Canceled };

/** Approximate heap bytes of a set of runtime buffers. */
int64_t
bufferBytes(const std::vector<std::unique_ptr<ir::Buffer>> &buffers)
{
    int64_t total = 0;
    for (const auto &buffer : buffers) {
        total += static_cast<int64_t>(buffer->ints.size() * 8 +
                                      buffer->floats.size() * 8 + 64);
    }
    return total;
}

/** RAII charge of interpreter-heap bytes against the context. */
class ScopedInterpCharge
{
  public:
    ScopedInterpCharge(const ExecContext &exec, int64_t bytes)
        : exec_(exec), bytes_(bytes)
    {
        exec_.chargeMem(MemSubsystem::Interp, bytes_);
    }
    ~ScopedInterpCharge()
    {
        exec_.chargeMem(MemSubsystem::Interp, -bytes_);
    }

  private:
    const ExecContext &exec_;
    int64_t bytes_;
};

/** Execute a statement term on the given argument seed. */
RunStatus
runTerm(const TermPtr &statement, const sl::EmitSpec &spec, uint64_t seed,
        const VerifyOptions &verify_options, std::vector<int64_t> &state)
{
    ir::Module module;
    try {
        module = sl::termToFunc(statement, spec);
    } catch (const FatalError &) {
        return RunStatus::Trap;
    }
    std::vector<std::unique_ptr<ir::Buffer>> buffers;
    Rng rng(seed);
    ir::InterpOptions options;
    options.max_steps = verify_options.max_steps;
    options.exec = verify_options.exec;
    try {
        std::vector<ir::RtValue> args = buildArgs(spec, buffers, rng);
        ScopedInterpCharge charge(verify_options.exec,
                                  bufferBytes(buffers));
        ir::interpret(module, spec.func_name, std::move(args), options);
    } catch (const ir::InterpError &err) {
        // Cancellation is the *caller's* budget expiring, not evidence
        // about the program: never let it count as a trap verdict.
        return err.isCancellation() ? RunStatus::Canceled
                                    : RunStatus::Trap;
    } catch (const FatalError &) {
        return RunStatus::Trap;
    } catch (const std::bad_alloc &) {
        // Injected/genuine allocation failure while building buffers:
        // an infrastructure fault, not evidence about the program.
        return RunStatus::Trap;
    }
    state = fingerprint(buffers);
    return RunStatus::Ok;
}

} // namespace

bool
checkTermEquivalence(const TermPtr &lhs, const TermPtr &rhs,
                     const VerifyOptions &options, std::string *diagnostic)
{
    TermPtr lhs_statement = lhs, rhs_statement = rhs;
    if (!sl::isStatementSymbol(lhs->op())) {
        ir::Type type = typeOfValueTerm(lhs);
        if (type.isNone()) {
            if (diagnostic)
                *diagnostic = "cannot type lhs value term";
            return false;
        }
        lhs_statement = wrapValueTerm(lhs, type);
        rhs_statement = wrapValueTerm(rhs, type);
    }
    auto spec = unifySpecs(sl::inferSpec(lhs_statement, "check"),
                           sl::inferSpec(rhs_statement, "check"));
    if (!spec) {
        if (diagnostic)
            *diagnostic = "argument type mismatch between sides";
        return false;
    }

    int conclusive = 0;
    for (int run = 0; run < options.runs; ++run) {
        // Cooperative cancellation between runs (and, via
        // InterpOptions::exec, inside them).
        if (options.exec.canceled())
            break;
        uint64_t seed = options.seed + 7919 * run;
        std::vector<int64_t> lhs_state, rhs_state;
        RunStatus ls =
            runTerm(lhs_statement, *spec, seed, options, lhs_state);
        RunStatus rs =
            runTerm(rhs_statement, *spec, seed, options, rhs_state);
        if (ls == RunStatus::Canceled || rs == RunStatus::Canceled)
            break; // deadline expired mid-run: stop, stay inconclusive
        if (ls == RunStatus::Trap || rs == RunStatus::Trap)
            continue; // inconclusive input (e.g. a free index went OOB)
        ++conclusive;
        if (lhs_state != rhs_state) {
            if (diagnostic) {
                *diagnostic = MsgBuilder()
                              << "counterexample at seed " << seed
                              << "\n  lhs: " << lhs->str()
                              << "\n  rhs: " << rhs->str();
            }
            return false;
        }
    }
    if (conclusive == 0 && diagnostic)
        *diagnostic = "<inconclusive>";
    return true;
}

VerifyReport
verifyRecords(const std::vector<eg::RewriteRecord> &records,
              const VerifyOptions &options)
{
    VerifyReport report;
    for (const auto &record : records) {
        ++report.total_checks;
        std::string diagnostic;
        bool ok = checkTermEquivalence(record.lhs, record.rhs, options,
                                       &diagnostic);
        if (ok && diagnostic == "<inconclusive>") {
            ++report.inconclusive;
        } else if (ok) {
            ++report.passed;
        } else if (report.failures.size() < options.max_failures) {
            report.failures.push_back(
                MsgBuilder() << "rule '" << record.rule
                             << "' failed validation: " << diagnostic);
        }
    }
    return report;
}

bool
checkModuleEquivalence(const ir::Module &lhs, const ir::Module &rhs,
                       const std::string &func_name,
                       const VerifyOptions &options,
                       std::string *diagnostic)
{
    return checkModuleEquivalence(lhs, rhs, func_name, InputPreparer(),
                                  options, diagnostic);
}

bool
checkModuleEquivalence(const ir::Module &lhs, const ir::Module &rhs,
                       const std::string &func_name,
                       const InputPreparer &prepare,
                       const VerifyOptions &options,
                       std::string *diagnostic)
{
    ir::Operation *lhs_func = lhs.lookupFunc(func_name);
    ir::Operation *rhs_func = rhs.lookupFunc(func_name);
    if (!lhs_func || !rhs_func) {
        if (diagnostic)
            *diagnostic = "function missing in one module";
        return false;
    }
    // Signatures must match argument-for-argument.
    ir::Block &lhs_body = lhs_func->region(0).block();
    ir::Block &rhs_body = rhs_func->region(0).block();
    if (lhs_body.numArgs() != rhs_body.numArgs()) {
        if (diagnostic)
            *diagnostic = "argument count mismatch";
        return false;
    }
    sl::EmitSpec spec;
    spec.func_name = func_name;
    for (size_t i = 0; i < lhs_body.numArgs(); ++i) {
        if (!(lhs_body.arg(i).type() == rhs_body.arg(i).type())) {
            if (diagnostic)
                *diagnostic = "argument type mismatch";
            return false;
        }
        spec.args.emplace_back("a" + std::to_string(i),
                               lhs_body.arg(i).type());
    }

    for (int run = 0; run < options.runs; ++run) {
        // Same discipline as checkTermEquivalence: a canceled context
        // stops before the next run, even when every run so far was
        // too short to hit the interpreter's own cancellation poll.
        if (options.exec.canceled()) {
            if (diagnostic)
                *diagnostic = "<inconclusive>";
            return true;
        }
        uint64_t seed = options.seed + 104729 * run;
        std::vector<std::unique_ptr<ir::Buffer>> lhs_buffers,
            rhs_buffers;
        std::vector<ir::RtValue> lhs_args, rhs_args;
        try {
        if (prepare) {
            // Domain-aware workload: all arguments must be memrefs.
            std::vector<ir::Buffer> prepared;
            for (const auto &[name, type] : spec.args) {
                if (!type.isMemRef()) {
                    if (diagnostic)
                        *diagnostic = "preparer needs memref-only args";
                    return false;
                }
                prepared.emplace_back(type);
            }
            Rng rng(seed);
            prepare(prepared, rng);
            for (ir::Buffer &buffer : prepared) {
                lhs_buffers.push_back(
                    std::make_unique<ir::Buffer>(buffer));
                rhs_buffers.push_back(
                    std::make_unique<ir::Buffer>(std::move(buffer)));
                lhs_args.push_back(lhs_buffers.back().get());
                rhs_args.push_back(rhs_buffers.back().get());
            }
        } else {
            Rng lhs_rng(seed), rhs_rng(seed);
            lhs_args = buildArgs(spec, lhs_buffers, lhs_rng);
            rhs_args = buildArgs(spec, rhs_buffers, rhs_rng);
        }
        ir::InterpOptions interp_options;
        interp_options.max_steps = options.max_steps;
        interp_options.exec = options.exec;
        ScopedInterpCharge charge(options.exec,
                                  bufferBytes(lhs_buffers) +
                                      bufferBytes(rhs_buffers));
        try {
            ir::interpret(lhs, func_name, std::move(lhs_args),
                          interp_options);
            ir::interpret(rhs, func_name, std::move(rhs_args),
                          interp_options);
        } catch (const ir::InterpError &err) {
            if (err.isCancellation()) {
                // The caller's deadline expired, not a program fault:
                // report the documented inconclusive acceptance instead
                // of a spurious FAIL (callers with a deadline re-check
                // the clock before trusting the verdict).
                if (diagnostic)
                    *diagnostic = "<inconclusive>";
                return true;
            }
            if (diagnostic)
                *diagnostic = std::string("trap: ") + err.what();
            return false;
        } catch (const FatalError &err) {
            if (diagnostic)
                *diagnostic = std::string("trap: ") + err.what();
            return false;
        }
        } catch (const std::bad_alloc &) {
            // Allocation failure while building the workload or running
            // either side: contained as a trap, not a crash.
            if (diagnostic)
                *diagnostic = "trap: allocation failure (contained)";
            return false;
        }
        if (fingerprint(lhs_buffers) != fingerprint(rhs_buffers)) {
            if (diagnostic) {
                *diagnostic = MsgBuilder()
                              << "memory state diverges at seed "
                              << seed;
            }
            return false;
        }
    }
    return true;
}

} // namespace seer::core
