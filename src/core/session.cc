#include "core/session.h"

#include <cstdio>
#include <sstream>

#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "support/error.h"

namespace seer::core {

namespace {

/** Round-trip-exact double rendering (deadlines on the wire). */
std::string
formatDouble(double value)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    return buffer;
}

void
appendField(std::string &out, const char *key, const std::string &value)
{
    out += key;
    out += ' ';
    out += value;
    out += '\n';
}

void
appendSection(std::string &out, const char *key,
              const std::string &bytes)
{
    out += key;
    out += ' ';
    out += std::to_string(bytes.size());
    out += '\n';
    out += bytes;
}

/** Cursor over the line-oriented header + byte sections. */
struct Reader
{
    const std::string &text;
    size_t pos = 0;

    bool line(std::string &out)
    {
        if (pos >= text.size())
            return false;
        size_t end = text.find('\n', pos);
        if (end == std::string::npos)
            return false;
        out = text.substr(pos, end - pos);
        pos = end + 1;
        return true;
    }

    bool bytes(size_t count, std::string &out)
    {
        if (text.size() - pos < count)
            return false;
        out = text.substr(pos, count);
        pos += count;
        return true;
    }
};

bool
parseUint(const std::string &text, uint64_t *value)
{
    if (text.empty())
        return false;
    try {
        size_t used = 0;
        *value = std::stoull(text, &used);
        return used == text.size();
    } catch (const std::exception &) {
        return false;
    }
}

bool
parseInt(const std::string &text, int64_t *value)
{
    if (text.empty())
        return false;
    try {
        size_t used = 0;
        *value = std::stoll(text, &used);
        return used == text.size();
    } catch (const std::exception &) {
        return false;
    }
}

bool
parseDouble(const std::string &text, double *value)
{
    if (text.empty())
        return false;
    try {
        size_t used = 0;
        *value = std::stod(text, &used);
        return used == text.size();
    } catch (const std::exception &) {
        return false;
    }
}

bool
splitField(const std::string &line, std::string &key,
           std::string &value)
{
    size_t space = line.find(' ');
    if (space == std::string::npos) {
        key = line;
        value.clear();
        return !key.empty();
    }
    key = line.substr(0, space);
    value = line.substr(space + 1);
    return !key.empty();
}

bool
fail(std::string *error, const std::string &why)
{
    if (error)
        *error = why;
    return false;
}

constexpr const char *kRequestMagic = "seer-req/1";
constexpr const char *kResponseMagic = "seer-resp/1";

} // namespace

ServeRequest
ServeRequest::fromOptions(const SeerOptions &options)
{
    ServeRequest request;
    request.use_rover = options.use_rover;
    request.use_control = options.use_control;
    request.max_phases = options.max_phases;
    request.exact_datapath = options.exact_datapath;
    request.naive_extract = options.naive_extract;
    request.use_laws = options.use_laws;
    request.unroll_max_trip = options.unroll_max_trip;
    request.jobs = options.jobs;
    request.match_jobs = options.match_jobs;
    request.use_pass_cache = options.use_pass_cache;
    request.strict = options.strict;
    request.deadline_seconds = options.deadline_seconds;
    request.mem_budget_bytes = options.mem_budget_bytes;
    request.validation_runs = options.validation_runs;
    request.schedule = scheduleKindName(options.schedule);
    request.eval_budget = options.eval_budget;
    request.schedule_seed = options.schedule_seed;
    request.time_limit_seconds = options.runner.time_limit_seconds;
    return request;
}

SeerOptions
ServeRequest::toOptions() const
{
    SeerOptions options;
    options.use_rover = use_rover;
    options.use_control = use_control;
    options.max_phases = max_phases;
    options.exact_datapath = exact_datapath;
    options.naive_extract = naive_extract;
    options.use_laws = use_laws;
    options.unroll_max_trip = unroll_max_trip;
    options.jobs = jobs;
    options.match_jobs = match_jobs;
    options.use_pass_cache = use_pass_cache;
    options.strict = strict;
    options.deadline_seconds = deadline_seconds;
    options.mem_budget_bytes = mem_budget_bytes;
    options.validation_runs = validation_runs;
    // parseRequest validated the name; an unknown one here (a request
    // built by hand) falls back to the exhaustive default.
    parseScheduleKind(schedule, &options.schedule);
    options.eval_budget = eval_budget;
    options.schedule_seed = schedule_seed;
    options.runner.time_limit_seconds = time_limit_seconds;
    return options;
}

std::string
serializeRequest(const ServeRequest &request)
{
    std::string out;
    out += kRequestMagic;
    out += '\n';
    if (!request.func.empty())
        appendField(out, "func", request.func);
    appendField(out, "rover", request.use_rover ? "1" : "0");
    appendField(out, "control", request.use_control ? "1" : "0");
    appendField(out, "phases", std::to_string(request.max_phases));
    appendField(out, "exact", request.exact_datapath ? "1" : "0");
    appendField(out, "naive", request.naive_extract ? "1" : "0");
    appendField(out, "laws", request.use_laws ? "1" : "0");
    appendField(out, "unroll",
                std::to_string(request.unroll_max_trip));
    appendField(out, "jobs", std::to_string(request.jobs));
    appendField(out, "match_jobs",
                std::to_string(request.match_jobs));
    appendField(out, "pass_cache",
                request.use_pass_cache ? "1" : "0");
    appendField(out, "strict", request.strict ? "1" : "0");
    appendField(out, "deadline",
                formatDouble(request.deadline_seconds));
    appendField(out, "mem_budget",
                std::to_string(request.mem_budget_bytes));
    appendField(out, "validation_runs",
                std::to_string(request.validation_runs));
    appendField(out, "schedule", request.schedule);
    appendField(out, "eval_budget",
                formatDouble(request.eval_budget));
    appendField(out, "schedule_seed",
                std::to_string(request.schedule_seed));
    appendField(out, "time_limit",
                formatDouble(request.time_limit_seconds));
    appendField(out, "stats", request.want_stats ? "1" : "0");
    appendSection(out, "ir", request.ir_text);
    return out;
}

bool
parseRequest(const std::string &text, ServeRequest *request,
             std::string *error)
{
    Reader reader{text};
    std::string line;
    if (!reader.line(line) || line != kRequestMagic)
        return fail(error, "bad request magic");
    *request = ServeRequest();
    while (reader.line(line)) {
        std::string key, value;
        if (!splitField(line, key, value))
            return fail(error, "malformed request line");
        uint64_t u = 0;
        int64_t i = 0;
        double d = 0;
        if (key == "func") {
            request->func = value;
        } else if (key == "rover") {
            request->use_rover = value == "1";
        } else if (key == "control") {
            request->use_control = value == "1";
        } else if (key == "phases") {
            if (!parseInt(value, &i))
                return fail(error, "bad phases");
            request->max_phases = static_cast<int>(i);
        } else if (key == "exact") {
            request->exact_datapath = value == "1";
        } else if (key == "naive") {
            request->naive_extract = value == "1";
        } else if (key == "laws") {
            request->use_laws = value == "1";
        } else if (key == "unroll") {
            if (!parseInt(value, &i))
                return fail(error, "bad unroll");
            request->unroll_max_trip = i;
        } else if (key == "jobs") {
            if (!parseUint(value, &u))
                return fail(error, "bad jobs");
            request->jobs = static_cast<unsigned>(u);
        } else if (key == "match_jobs") {
            if (!parseUint(value, &u))
                return fail(error, "bad match_jobs");
            request->match_jobs = static_cast<unsigned>(u);
        } else if (key == "pass_cache") {
            request->use_pass_cache = value == "1";
        } else if (key == "strict") {
            request->strict = value == "1";
        } else if (key == "deadline") {
            if (!parseDouble(value, &d))
                return fail(error, "bad deadline");
            request->deadline_seconds = d;
        } else if (key == "mem_budget") {
            if (!parseUint(value, &u))
                return fail(error, "bad mem_budget");
            request->mem_budget_bytes = u;
        } else if (key == "validation_runs") {
            if (!parseInt(value, &i))
                return fail(error, "bad validation_runs");
            request->validation_runs = static_cast<int>(i);
        } else if (key == "schedule") {
            ScheduleKind kind{};
            if (!parseScheduleKind(value, &kind))
                return fail(error, "bad schedule");
            request->schedule = value;
        } else if (key == "eval_budget") {
            if (!parseDouble(value, &d))
                return fail(error, "bad eval_budget");
            request->eval_budget = d;
        } else if (key == "schedule_seed") {
            if (!parseUint(value, &u))
                return fail(error, "bad schedule_seed");
            request->schedule_seed = u;
        } else if (key == "time_limit") {
            if (!parseDouble(value, &d))
                return fail(error, "bad time_limit");
            request->time_limit_seconds = d;
        } else if (key == "stats") {
            request->want_stats = value == "1";
        } else if (key == "ir") {
            if (!parseUint(value, &u))
                return fail(error, "bad ir length");
            if (!reader.bytes(u, request->ir_text))
                return fail(error, "truncated ir section");
            if (reader.pos != text.size())
                return fail(error, "trailing bytes after ir");
            return true;
        } else {
            // Unknown keys are skipped: an older daemon tolerates a
            // newer client's additions.
        }
    }
    return fail(error, "request has no ir section");
}

std::string
serializeResponse(const ServeResponse &response)
{
    std::string out;
    out += kResponseMagic;
    out += '\n';
    appendField(out, "exit", std::to_string(response.exit_code));
    appendField(out, "degraded", response.degraded ? "1" : "0");
    appendField(out, "hits",
                std::to_string(response.pass_cache_hits));
    appendField(out, "misses",
                std::to_string(response.pass_cache_misses));
    appendField(out, "verify_hits",
                std::to_string(response.verify_cache_hits));
    appendField(out, "evals", std::to_string(response.evaluations));
    appendSection(out, "output", response.output_ir);
    appendSection(out, "log", response.log);
    appendSection(out, "stats", response.stats_json);
    appendSection(out, "error", response.error);
    return out;
}

bool
parseResponse(const std::string &text, ServeResponse *response,
              std::string *error)
{
    Reader reader{text};
    std::string line;
    if (!reader.line(line) || line != kResponseMagic)
        return fail(error, "bad response magic");
    *response = ServeResponse();
    size_t sections = 0;
    while (reader.line(line)) {
        std::string key, value;
        if (!splitField(line, key, value))
            return fail(error, "malformed response line");
        uint64_t u = 0;
        if (key == "exit") {
            int64_t i = 0;
            if (!parseInt(value, &i))
                return fail(error, "bad exit");
            response->exit_code = static_cast<int>(i);
        } else if (key == "degraded") {
            response->degraded = value == "1";
        } else if (key == "hits") {
            if (!parseUint(value, &response->pass_cache_hits))
                return fail(error, "bad hits");
        } else if (key == "misses") {
            if (!parseUint(value, &response->pass_cache_misses))
                return fail(error, "bad misses");
        } else if (key == "verify_hits") {
            if (!parseUint(value, &response->verify_cache_hits))
                return fail(error, "bad verify_hits");
        } else if (key == "evals") {
            if (!parseUint(value, &response->evaluations))
                return fail(error, "bad evals");
        } else if (key == "output" || key == "log" ||
                   key == "stats" || key == "error") {
            if (!parseUint(value, &u))
                return fail(error, "bad section length");
            std::string *dest = key == "output" ? &response->output_ir
                                : key == "log"  ? &response->log
                                : key == "stats"
                                    ? &response->stats_json
                                    : &response->error;
            if (!reader.bytes(u, *dest))
                return fail(error, "truncated " + key + " section");
            ++sections;
        } else {
            // Skip unknown fields (forward compatibility).
        }
    }
    if (sections < 4)
        return fail(error, "response missing sections");
    return true;
}

std::string
summarizeRun(const SeerResult &result)
{
    std::ostringstream out;
    if (result.stats.degraded) {
        out << "; DEGRADED: recovered from "
            << result.stats.recovered_errors.size() << " error(s), "
            << result.stats.phase_rollbacks << " phase rollback(s), "
            << result.stats.quarantined_rules.size()
            << " quarantined rule(s); output is still verified IR\n";
    }
    if (result.stats.deadline_hit)
        out << "; deadline hit: exploration cut short\n";
    if (!result.stats.cancel_reason.empty() &&
        result.stats.cancel_reason != "deadline") {
        out << "; canceled (" << result.stats.cancel_reason
            << "): degraded to the best result found\n";
    }
    size_t exhausted = 0;
    for (const ExtractionPhaseStats &phase : result.stats.extraction)
        exhausted += phase.budget_exhaustions;
    if (exhausted > 0) {
        out << "; datapath extraction hit its search budget "
            << exhausted
            << " time(s): result is best-effort, not proven exact\n";
    }
    out << "; e-graph: " << result.stats.egraph_nodes << " nodes, "
        << result.stats.egraph_classes << " classes, "
        << result.stats.unions_applied << " rewrites, "
        << result.stats.total_seconds << "s total ("
        << result.stats.time_in_passes_seconds << "s in passes)\n";
    const ExternalEvalStats &ev = result.stats.external_eval;
    out << "; pass cache: " << ev.pass_cache_hits << " hits, "
        << ev.pass_cache_misses << " misses, " << ev.evaluations
        << " evaluations (" << ev.candidates_deduped << " deduped, "
        << ev.verify_cache_hits << " verify hits)\n";
    return out.str();
}

ServeResponse
runSession(const ServeRequest &request, const SessionEnv &env)
{
    ServeResponse response;
    try {
        ir::Module input = ir::parseModule(request.ir_text);
        ir::verifyOrDie(input);
        std::string func = request.func;
        if (func.empty()) {
            ir::Operation *first = input.firstFunc();
            if (!first)
                fatal("no function in input");
            func = first->strAttr("sym_name");
        }

        SeerOptions options = request.toOptions();
        options.exec = env.exec;
        if (env.max_deadline_seconds > 0 &&
            (options.deadline_seconds <= 0 ||
             options.deadline_seconds > env.max_deadline_seconds))
            options.deadline_seconds = env.max_deadline_seconds;
        // --no-pass-cache means *cold*, even against a warm daemon:
        // such a request runs on its own ephemeral cache and neither
        // reads nor pollutes the shared store.
        if (request.use_pass_cache && env.shared_cache)
            options.shared_eval_cache = env.shared_cache;

        SeerResult result = optimize(input, func, options);

        std::ostringstream printed;
        ir::print(result.module, printed);
        response.output_ir = printed.str();
        response.log = summarizeRun(result);
        if (request.want_stats)
            response.stats_json = toJson(result.stats).dump(2) + "\n";
        const ExternalEvalStats &ev = result.stats.external_eval;
        response.pass_cache_hits = ev.pass_cache_hits;
        response.pass_cache_misses = ev.pass_cache_misses;
        response.verify_cache_hits = ev.verify_cache_hits;
        response.evaluations = ev.evaluations;
        response.degraded = result.stats.degraded;
        response.exit_code = response.degraded ? 3 : 0;
    } catch (const FatalError &err) {
        response.exit_code = 1;
        response.error = err.what();
    } catch (const std::exception &err) {
        response.exit_code = 1;
        response.error = std::string("internal error: ") + err.what();
    }
    return response;
}

} // namespace seer::core
