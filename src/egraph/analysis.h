/**
 * @file
 * Generic e-class analyses (egg's make/join/modify protocol).
 *
 * An Analysis maintains one datum per e-class, kept coherent with the
 * e-graph incrementally: it is told about every class creation (make),
 * every union (join), and every repaired parent node during rebuild, and
 * it may respond by mutating the graph (modify — e.g. constant folding
 * materializing a literal). Rollback coherence comes from the checkpoint
 * journal: an analysis that overwrites the datum of an existing class
 * while a checkpoint is open must first record the old datum through
 * EGraph::journalAnalysisDatum(), and rollback replays those records in
 * reverse (data of classes created after the checkpoint is simply
 * truncated away via onRollback()).
 *
 * The constant-folding analysis — previously hard-coded into EGraph via
 * AnalysisHooks — is the first client; the cost lower-bound analyses of
 * extract.h are the second.
 */
#ifndef SEER_EGRAPH_ANALYSIS_H_
#define SEER_EGRAPH_ANALYSIS_H_

#include <memory>

#include "egraph/egraph.h"

namespace seer::eg {

/**
 * Base class of a registered e-class analysis. All hooks receive the
 * e-graph; ids passed in are canonical at call time but hooks that
 * defer work must re-canonicalize (through EGraph::find) when they get
 * around to it.
 *
 * Invariant (analysis/journal coherence): any overwrite of the datum of
 * a class that existed before the mutation must be preceded by
 * EGraph::journalAnalysisDatum(*this, id) so rollback can restore it.
 * Data of the absorbed class of a merge must be left in place — after
 * rollback the loser is live again and still owns its slot.
 */
class Analysis
{
  public:
    virtual ~Analysis() = default;

    /** Stable identity used for lookup (EGraph::findAnalysis). */
    virtual std::string name() const = 0;

    /** Class `id` was just created holding exactly `node`. */
    virtual void onMake(EGraph &egraph, EClassId id, const ENode &node) = 0;

    /**
     * `from` was absorbed into `into` (union-find already updated, node
     * and parent lists not yet spliced). `from_parents` is the absorbed
     * class's parent list — the nodes whose value may change because a
     * child id now canonicalizes differently.
     */
    virtual void
    onMerge(EGraph &egraph, EClassId into, EClassId from,
            const std::vector<std::pair<ENode, EClassId>> &from_parents) = 0;

    /**
     * The modify hook of egg: called after make (on the new class) and
     * after join (on the winner); may mutate the graph, e.g. add a
     * folded literal and merge it in.
     */
    virtual void onModify(EGraph &egraph, EClassId id) { (void)egraph, (void)id; }

    /**
     * rebuild()'s repair re-canonicalized parent `node` belonging to
     * class `parent`: the analysis may now derive a better datum for it
     * (egg's analysis_pending worklist).
     */
    virtual void onRepairParent(EGraph &egraph, const ENode &node,
                                EClassId parent)
    {
        (void)egraph, (void)node, (void)parent;
    }

    /** Another registered analysis changed its datum of class `id`. */
    virtual void onPeerChanged(EGraph &egraph, EClassId id)
    {
        (void)egraph, (void)id;
    }

    /**
     * Called at the start of checkpoint(): bring lazily-maintained state
     * to a fixpoint, so the snapshot (and the journal restore replayed
     * against it) captures a quiescent analysis.
     */
    virtual void onCheckpoint(EGraph &egraph) { (void)egraph; }

    /**
     * rollback() finished undoing the journal and truncating the id
     * space to `live_ids`: drop per-id state past it and clear any
     * pending work queues (their entries may reference dead ids; a
     * quiescent state was restored by the journal).
     */
    virtual void onRollback(EGraph &egraph, size_t live_ids) = 0;

    /**
     * Late registration on a non-empty graph: initialize from existing
     * content (analyses registered at construction need not bother).
     */
    virtual void onAttach(EGraph &egraph) { (void)egraph; }

    /** Type-erased snapshot of one class's datum (journal support). */
    virtual std::shared_ptr<void> saveDatum(EClassId id) const = 0;
    virtual void restoreDatum(EClassId id,
                              const std::shared_ptr<void> &datum) = 0;

    /**
     * Debug self-check: recompute from scratch and compare with the
     * maintained data. Empty string when coherent, else a diagnostic.
     * O(graph); called from EGraph::debugCheckInvariants().
     */
    virtual std::string checkInvariants(const EGraph &egraph) const
    {
        (void)egraph;
        return "";
    }

    /** Registration slot (set by EGraph::registerAnalysis). */
    size_t index() const { return index_; }

  private:
    friend class EGraph;
    size_t index_ = 0;
};

/**
 * The constant-folding analysis, parameterized by the SeerLang symbol
 * hooks (AnalysisHooks). Maintains an optional int64 constant per class,
 * panics on contradiction (an unsound rewrite merged two distinct
 * constants), and materializes a literal node in every class whose
 * constant becomes known (the modify step).
 */
class ConstFoldAnalysis final : public Analysis
{
  public:
    explicit ConstFoldAnalysis(AnalysisHooks hooks)
        : hooks_(std::move(hooks))
    {}

    std::string name() const override { return "const-fold"; }

    /** Constant of (canonical) class `id`, when derived. */
    std::optional<int64_t> value(EClassId id) const
    {
        if (id >= values_.size())
            return std::nullopt;
        return values_[id];
    }

    void onMake(EGraph &egraph, EClassId id, const ENode &node) override;
    void onMerge(EGraph &egraph, EClassId into, EClassId from,
                 const std::vector<std::pair<ENode, EClassId>>
                     &from_parents) override;
    void onModify(EGraph &egraph, EClassId id) override;
    void onRepairParent(EGraph &egraph, const ENode &node,
                        EClassId parent) override;
    void onRollback(EGraph &egraph, size_t live_ids) override;
    std::shared_ptr<void> saveDatum(EClassId id) const override;
    void restoreDatum(EClassId id,
                      const std::shared_ptr<void> &datum) override;
    std::string checkInvariants(const EGraph &egraph) const override;

  private:
    /** Fold `node` from known child constants; nullopt when blocked. */
    std::optional<int64_t> foldNode(const EGraph &egraph,
                                    const ENode &node) const;
    void ensure(EClassId id)
    {
        if (id >= values_.size())
            values_.resize(id + 1);
    }

    AnalysisHooks hooks_;
    std::vector<std::optional<int64_t>> values_;
};

} // namespace seer::eg

#endif // SEER_EGRAPH_ANALYSIS_H_
