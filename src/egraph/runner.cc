#include "egraph/runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <new>

#include "egraph/extract.h"
#include "egraph/pattern.h"
#include "support/error.h"
#include "support/worker_pool.h"

namespace seer::eg {

namespace {

/**
 * Candidate classes per shard work item in the parallel search phase.
 * A fixed constant, deliberately NOT derived from the job count: shard
 * boundaries (and therefore per-shard match caps, stats, and the fold
 * order) must be identical for -j1 and -jN, or the determinism contract
 * would only hold for match lists and not for reports.
 */
constexpr size_t kMatchShardSize = 512;

} // namespace

std::string
stopReasonName(StopReason reason)
{
    switch (reason) {
      case StopReason::Saturated: return "saturated";
      case StopReason::IterLimit: return "iteration-limit";
      case StopReason::NodeLimit: return "node-limit";
      case StopReason::TimeLimit: return "time-limit";
      case StopReason::BannedOut: return "banned-out";
      case StopReason::Quarantined: return "quarantined";
      case StopReason::Canceled: return "canceled";
    }
    return "?";
}

json::Value
toJson(const RuleStats &stats)
{
    json::Value out{json::Object{}};
    out.set("name", stats.name);
    out.set("matches", stats.matches);
    out.set("applications", stats.applications);
    out.set("bans", stats.bans);
    out.set("times_banned", stats.times_banned);
    out.set("failures", stats.failures);
    out.set("quarantined", stats.quarantined);
    out.set("search_seconds", stats.search_seconds);
    out.set("apply_seconds", stats.apply_seconds);
    out.set("search_candidates", stats.search_candidates);
    out.set("search_skipped_clean", stats.search_skipped_clean);
    out.set("search_shards", stats.search_shards);
    return out;
}

json::Value
toJson(const MatchPhaseStats &stats)
{
    json::Value out{json::Object{}};
    out.set("candidates_visited", stats.candidates_visited);
    out.set("skipped_clean", stats.skipped_clean);
    out.set("cached_matches_reused", stats.cached_matches_reused);
    out.set("index_scans", stats.index_scans);
    out.set("full_scans", stats.full_scans);
    out.set("incremental_scans", stats.incremental_scans);
    size_t scans = stats.index_scans + stats.full_scans;
    out.set("index_hit_rate",
            scans == 0 ? 0.0
                       : static_cast<double>(stats.index_scans) / scans);
    out.set("shards", stats.shards);
    out.set("shard_seconds", stats.shard_seconds);
    out.set("search_wall_seconds", stats.search_wall_seconds);
    out.set("jobs", stats.jobs);
    double capacity =
        stats.search_wall_seconds * static_cast<double>(stats.jobs);
    out.set("match_parallel_efficiency",
            capacity > 0 ? stats.shard_seconds / capacity : 0.0);
    return out;
}

json::Value
toJson(const IterationStats &stats)
{
    json::Value out{json::Object{}};
    out.set("iter", stats.iter);
    out.set("matches", stats.matches);
    out.set("applied", stats.applied);
    out.set("banned_rules", stats.banned_rules);
    out.set("nodes", stats.nodes);
    out.set("classes", stats.classes);
    out.set("seconds", stats.seconds);
    return out;
}

json::Value
toJson(const RunnerReport &report)
{
    json::Value out{json::Object{}};
    out.set("stop", stopReasonName(report.stop));
    out.set("total_applied", report.total_applied);
    out.set("total_seconds", report.total_seconds);
    out.set("rules_quarantined", report.rules_quarantined);
    out.set("match_phase", toJson(report.match_phase));
    if (!report.recovered_errors.empty() ||
        report.recovered_errors_dropped > 0) {
        json::Value errors{json::Array{}};
        for (const std::string &error : report.recovered_errors)
            errors.push(error);
        out.set("recovered_errors", std::move(errors));
        out.set("recovered_errors_dropped",
                report.recovered_errors_dropped);
    }
    json::Value iterations{json::Array{}};
    for (const IterationStats &stats : report.iterations)
        iterations.push(toJson(stats));
    out.set("iterations", std::move(iterations));
    json::Value rules{json::Array{}};
    for (const RuleStats &stats : report.rules) {
        // Idle rules would drown the interesting ones in large rule sets.
        if (stats.matches > 0 || stats.bans > 0)
            rules.push(toJson(stats));
    }
    out.set("rules", std::move(rules));
    return out;
}

size_t
Runner::thresholdFor(const RuleState &state) const
{
    // Cap the shift: past 2^20x the budget is effectively unlimited and
    // further shifting would overflow.
    size_t shift = std::min<size_t>(state.times_banned, 20);
    return options_.match_limit << shift;
}

size_t
Runner::banSpanFor(const RuleState &state) const
{
    size_t shift = std::min<size_t>(state.times_banned, 20);
    return std::max<size_t>(1, options_.ban_length << shift);
}

RunnerReport
Runner::run()
{
    using Clock = std::chrono::steady_clock;
    auto start = Clock::now();
    auto elapsed = [&] {
        return std::chrono::duration<double>(Clock::now() - start).count();
    };
    auto since = [](Clock::time_point t0) {
        return std::chrono::duration<double>(Clock::now() - t0).count();
    };
    // The per-run time budget, tightened by the driver's whole-run
    // deadline when that expires sooner.
    double time_limit = options_.time_limit_seconds;
    if (auto deadline = options_.exec.deadline()) {
        double remaining =
            std::chrono::duration<double>(*deadline - start).count();
        time_limit = std::min(time_limit, std::max(0.0, remaining));
    }

    states_.assign(rules_.size(), RuleState{});
    RunnerReport report;
    report.rules.resize(rules_.size());
    for (size_t r = 0; r < rules_.size(); ++r)
        report.rules[r].name = rules_[r].name;
    egraph_.rebuild();

    // Proof records are resolved lazily at the end of the run: resolving
    // a concrete term per union *during* the run costs an extraction
    // fixpoint per union and dominated runtime.
    struct PendingRecord
    {
        size_t rule_index;
        Subst subst;
        TermPtr dyn_rhs; ///< dynamic rules carry their concrete rhs
    };
    std::vector<PendingRecord> pending_records;

    // Fault-isolation accounting shared by the search and apply guards.
    constexpr size_t kMaxRecoveredErrors = 32;
    size_t failures_this_iter = 0;
    auto record_failure = [&](size_t r, const std::string &what) {
        ++failures_this_iter;
        RuleState &state = states_[r];
        RuleStats &rule_stats = report.rules[r];
        ++rule_stats.failures;
        ++state.consecutive_failures;
        if (report.recovered_errors.size() < kMaxRecoveredErrors) {
            report.recovered_errors.push_back(rules_[r].name + ": " +
                                              what);
        } else {
            ++report.recovered_errors_dropped;
        }
        if (state.consecutive_failures >= options_.quarantine_after &&
            !state.quarantined) {
            state.quarantined = true;
            rule_stats.quarantined = true;
        }
    };

    // Per-rule match instrumentation, accumulated across iterations
    // (worker threads write disjoint slots) and folded into the report
    // at the end of the run.
    std::vector<MatchPhaseStats> phase_accum(rules_.size());
    // The persistent pool for the sharded search phase: threads spawn
    // once per run and park between iterations (support/worker_pool.h).
    // With match_jobs <= 1 every job runs inline on this thread — the
    // same code path minus the threads.
    WorkerPool pool(std::max(1u, options_.match_jobs));
    report.match_phase.jobs = pool.threads();
    // Incremental caches are only sound while no rollback happened:
    // a rollback can make matches disappear, which monotonic timestamps
    // cannot express. Any generation change forces a full rescan.
    uint64_t last_generation = egraph_.rollbackGeneration();

    bool timed_out = false;
    bool canceled = false;
    report.stop = StopReason::IterLimit;
    for (size_t iter = 1; iter <= options_.max_iters;) {
        auto iter_start = Clock::now();
        IterationStats stats;
        stats.iter = iter;
        failures_this_iter = 0;

        if (egraph_.rollbackGeneration() != last_generation) {
            last_generation = egraph_.rollbackGeneration();
            for (RuleState &state : states_) {
                state.cache_valid = false;
                state.cache.clear();
            }
        }

        std::vector<size_t> active;
        size_t banned_now = 0;
        size_t quarantined_now = 0;
        for (size_t r = 0; r < rules_.size(); ++r) {
            if (states_[r].quarantined)
                ++quarantined_now;
            else if (states_[r].banned_until_iter < iter)
                active.push_back(r);
            else
                ++banned_now;
        }
        stats.banned_rules = banned_now;

        if (active.empty()) {
            if (!rules_.empty() && quarantined_now == rules_.size()) {
                // Every rule tripped the circuit breaker.
                report.stop = StopReason::Quarantined;
                break;
            }
            if (banned_now == 0) {
                // No rules at all: trivially saturated.
                report.stop = StopReason::Saturated;
                break;
            }
            // Every runnable rule is banned. Fast-forward to the
            // earliest unban instead of spinning through empty
            // iterations; if that lies beyond the horizon, the run is
            // throttled out, which is *not* saturation.
            size_t next = SIZE_MAX;
            for (const RuleState &state : states_) {
                if (!state.quarantined)
                    next = std::min(next, state.banned_until_iter + 1);
            }
            if (next > options_.max_iters) {
                report.stop = StopReason::BannedOut;
                break;
            }
            iter = next;
            continue;
        }

        // Phase 1: read-only matching of every active rule, sharded
        // into (rule, candidate-chunk) work items across the worker
        // pool. Two passes: (A) per-rule candidate collection, then (B)
        // match machines over fixed-size candidate shards, each job
        // writing only its private result slot. All mutation — cache
        // merges, scheduler state, stats — happens in the strictly
        // serial fold below, in (rule, shard) order. Shard boundaries
        // are a fixed constant (kMatchShardSize) and the fold order is
        // deterministic, so match lists, reports, and stats are
        // bit-identical for any job count. Each rule searches up to its
        // budget + 1 so overflow is detectable without enumerating
        // every match of an explosive rule; time and cancellation are
        // polled *between* work items so one long e-match phase cannot
        // blow far past the budget.
        struct PendingApply
        {
            size_t rule_index;
            Match match;
        };
        std::vector<std::vector<Match>> per_rule(rules_.size());
        // Search failures are captured per slot (a worker thread must
        // never let an exception escape: that would terminate) and
        // accounted for on this thread during the fold; among a rule's
        // shards the lowest shard index wins, deterministically.
        std::vector<std::exception_ptr> search_errors(rules_.size());
        std::atomic<bool> out_of_time{false};
        std::atomic<bool> phase_canceled{false};
        // Every stamp written after this point is greater than
        // scan_tick, so it is a sound watermark for any cache refreshed
        // this iteration (phase 1 never mutates the e-graph).
        const uint64_t scan_tick = egraph_.tick();
        auto cancel_search = [&] {
            if (out_of_time.load(std::memory_order_relaxed) ||
                phase_canceled.load(std::memory_order_relaxed))
                return true;
            if (options_.exec.canceled()) {
                phase_canceled.store(true, std::memory_order_relaxed);
                return true;
            }
            if (elapsed() > time_limit) {
                out_of_time.store(true, std::memory_order_relaxed);
                return true;
            }
            return false;
        };

        auto phase_start = Clock::now();
        // Pass A: candidate collection (or, for the naive reference
        // matcher, the whole scan — it has no candidate phase).
        struct ScanTask
        {
            size_t rule = 0;
            bool naive = false;
            bool dirty = false; ///< watermark-filtered scan
            size_t limit = 0;
            uint64_t watermark = 0;
            std::vector<EClassId> candidates;
            std::vector<Match> naive_matches;
            EMatchStats stats;
            double seconds = 0;
            std::exception_ptr error;
        };
        std::vector<ScanTask> scans(active.size());
        for (size_t i = 0; i < active.size(); ++i) {
            ScanTask &task = scans[i];
            task.rule = active[i];
            task.naive = options_.naive_match;
            task.dirty = !task.naive && options_.incremental_match &&
                         states_[task.rule].cache_valid;
            task.watermark = states_[task.rule].watermark;
            task.limit = thresholdFor(states_[task.rule]) + 1;
        }
        pool.run(
            scans.size(),
            [&](size_t i) {
                ScanTask &task = scans[i];
                auto t0 = Clock::now();
                try {
                    if (task.naive) {
                        task.naive_matches = ematchNaive(
                            egraph_, *rules_[task.rule].lhs, task.limit);
                    } else {
                        task.candidates = ematchCandidates(
                            egraph_, *rules_[task.rule].lhs,
                            task.watermark, task.dirty, &task.stats);
                    }
                } catch (const FatalError &) {
                    task.error = std::current_exception();
                } catch (const std::bad_alloc &) {
                    // Allocation failure while searching one rule is
                    // that rule's failure, not the runner's: the
                    // e-graph was not mutated (phase 1 is read-only).
                    task.error = std::current_exception();
                }
                task.seconds = since(t0);
            },
            cancel_search);

        // Shard layout: contiguous kMatchShardSize chunks of each
        // rule's candidate list, in rule order.
        struct Shard
        {
            size_t task = 0; ///< index into `scans`
            size_t begin = 0;
            size_t count = 0;
            std::vector<Match> matches;
            EMatchStats stats;
            double seconds = 0;
            std::exception_ptr error;
        };
        std::vector<Shard> shards;
        std::vector<size_t> first_shard(scans.size() + 1, 0);
        if (!out_of_time.load() && !phase_canceled.load()) {
            for (size_t i = 0; i < scans.size(); ++i) {
                first_shard[i] = shards.size();
                const ScanTask &task = scans[i];
                if (task.naive || task.error)
                    continue;
                for (size_t begin = 0; begin < task.candidates.size();
                     begin += kMatchShardSize) {
                    Shard shard;
                    shard.task = i;
                    shard.begin = begin;
                    shard.count = std::min(kMatchShardSize,
                                           task.candidates.size() -
                                               begin);
                    shards.push_back(std::move(shard));
                }
            }
            first_shard[scans.size()] = shards.size();
            // Pass B: match every shard into its private buffer. Each
            // shard is capped at its rule's own limit, so an explosive
            // rule cannot make one shard enumerate unboundedly; the
            // fold trims the concatenation back to the limit, which
            // reproduces the serial prefix exactly (candidates are
            // sorted ascending and chunk results keep that order).
            pool.run(
                shards.size(),
                [&](size_t s) {
                    Shard &shard = shards[s];
                    const ScanTask &task = scans[shard.task];
                    auto t0 = Clock::now();
                    try {
                        shard.matches = ematchChunk(
                            egraph_, *rules_[task.rule].lhs,
                            task.candidates.data() + shard.begin,
                            shard.count, task.limit, &shard.stats);
                    } catch (const FatalError &) {
                        shard.error = std::current_exception();
                    } catch (const std::bad_alloc &) {
                        shard.error = std::current_exception();
                    }
                    shard.seconds = since(t0);
                },
                cancel_search);
        }

        if (!out_of_time.load() && !phase_canceled.load() &&
            !options_.exec.canceled()) {
            // Serial fold, in (rule, shard) order: concatenate shard
            // buffers, truncate to the budget, merge with the match
            // cache, and account every stat. This is the only place
            // RuleState or the report are touched for the search phase,
            // which keeps the parallel passes free of shared writes.
            for (size_t i = 0; i < scans.size(); ++i) {
                ScanTask &task = scans[i];
                const size_t r = task.rule;
                RuleState &state = states_[r];
                MatchPhaseStats &mp = phase_accum[r];
                double rule_seconds = task.seconds;
                std::exception_ptr error = task.error;
                std::vector<Match> fresh;
                const size_t shard_count =
                    first_shard[i + 1] - first_shard[i];
                for (size_t s = first_shard[i]; s < first_shard[i + 1];
                     ++s) {
                    Shard &shard = shards[s];
                    rule_seconds += shard.seconds;
                    mp.shard_seconds += shard.seconds;
                    mp.candidates_visited +=
                        shard.stats.candidates_visited;
                    if (!error && shard.error)
                        error = shard.error; // lowest shard wins
                    if (error)
                        continue;
                    for (Match &match : shard.matches) {
                        if (fresh.size() >= task.limit)
                            break;
                        fresh.push_back(std::move(match));
                    }
                }
                mp.shards += shard_count;
                report.rules[r].search_shards += shard_count;
                report.rules[r].search_seconds += rule_seconds;
                if (error) {
                    per_rule[r].clear();
                    state.cache_valid = false;
                    state.cache.clear();
                    search_errors[r] = error;
                    continue;
                }
                if (task.naive) {
                    ++mp.full_scans;
                    per_rule[r] = std::move(task.naive_matches);
                    continue;
                }
                task.stats.used_index ? ++mp.index_scans
                                      : ++mp.full_scans;
                if (!task.dirty) {
                    per_rule[r] = std::move(fresh);
                    if (options_.incremental_match &&
                        per_rule[r].size() < task.limit) {
                        // Untruncated: this is the complete match set.
                        state.cache = per_rule[r];
                        state.watermark = scan_tick;
                        state.cache_valid = true;
                    } else {
                        state.cache_valid = false;
                        state.cache.clear();
                    }
                    continue;
                }
                // Incremental scan. A class whose stamp is at or below
                // the watermark can neither gain nor lose matches
                // (rebuild stamps the whole ancestor cone of every
                // change), so cached matches rooted at still-canonical
                // clean classes are reused verbatim and only dirty
                // classes were re-searched. Both lists are ordered by
                // ascending root id and their root sets are disjoint
                // (clean vs. dirty), so the two-way merge reproduces
                // the full-scan order — and therefore backoff/ban
                // behavior — exactly.
                mp.skipped_clean += task.stats.skipped_clean;
                ++mp.incremental_scans;
                const bool fresh_complete = fresh.size() < task.limit;
                std::vector<Match> merged;
                merged.reserve(state.cache.size() + fresh.size());
                size_t fi = 0;
                for (const Match &cached : state.cache) {
                    if (egraph_.find(cached.root) != cached.root ||
                        egraph_.timestampOf(cached.root) >
                            state.watermark) {
                        // Dirty or absorbed root: re-found (or
                        // legitimately gone) in `fresh`.
                        continue;
                    }
                    while (fi < fresh.size() &&
                           fresh[fi].root < cached.root)
                        merged.push_back(std::move(fresh[fi++]));
                    merged.push_back(cached);
                    ++mp.cached_matches_reused;
                }
                while (fi < fresh.size())
                    merged.push_back(std::move(fresh[fi++]));
                if (fresh_complete) {
                    state.cache = merged;
                    state.watermark = scan_tick;
                } else {
                    // `fresh` was truncated at the budget: the merged
                    // prefix below is still exact, but the complete set
                    // is unknown — rescan next time.
                    state.cache_valid = false;
                    state.cache.clear();
                }
                if (merged.size() > task.limit)
                    merged.resize(task.limit);
                per_rule[r] = std::move(merged);
            }
        }
        report.match_phase.search_wall_seconds += since(phase_start);

        for (size_t r : active) {
            if (!search_errors[r])
                continue;
            if (!options_.catch_rule_errors)
                std::rethrow_exception(search_errors[r]);
            try {
                std::rethrow_exception(search_errors[r]);
            } catch (const FatalError &err) {
                record_failure(r, err.what());
            } catch (const std::bad_alloc &) {
                record_failure(r, "allocation failure during search "
                                  "(contained)");
            }
        }
        if (phase_canceled.load() || options_.exec.canceled())
            canceled = true;
        if (canceled) {
            // Same discipline as out_of_time below: a partial match
            // phase is never applied.
            report.stop = StopReason::Canceled;
            break;
        }
        if (out_of_time) {
            // Partial match phase: applying it would make the explored
            // graph depend on scheduling, so discard and stop here.
            timed_out = true;
            report.stop = StopReason::TimeLimit;
            break;
        }

        // Backoff scheduling (egg's BackoffScheduler semantics): an
        // over-budget rule still applies its first budget-many matches
        // and is banned *afterwards*; a clean streak decays the ban
        // level so the budget recovers.
        for (size_t r : active) {
            RuleState &state = states_[r];
            std::vector<Match> &matches = per_rule[r];
            size_t threshold = thresholdFor(state);
            if (matches.size() > threshold) {
                matches.resize(threshold);
                state.banned_until_iter = iter + banSpanFor(state);
                state.times_banned++;
                state.clean_streak = 0;
                report.rules[r].bans++;
            } else if (state.times_banned > 0 &&
                       ++state.clean_streak >= options_.ban_decay_iters) {
                state.times_banned--;
                state.clean_streak = 0;
            }
            stats.matches += matches.size();
            report.rules[r].matches += matches.size();
        }

        // Batch stage: after truncation the iteration's work-list is
        // final, and the e-graph is immutable until the apply phase
        // below. Each rule's prepare hook sees exactly the matches that
        // will be consumed — the external-pass layer uses this window
        // to evaluate deduped snippet candidates on a worker pool while
        // unions stay strictly serial. Guarded like an application: a
        // crashing hook is this rule's failure, not the runner's.
        for (size_t r : active) {
            if (!rules_[r].prepare || per_rule[r].empty() ||
                states_[r].quarantined)
                continue;
            auto t0 = Clock::now();
            try {
                rules_[r].prepare(egraph_, per_rule[r]);
            } catch (const FatalError &err) {
                if (!options_.catch_rule_errors)
                    throw;
                record_failure(r, err.what());
            } catch (const std::bad_alloc &) {
                if (!options_.catch_rule_errors)
                    throw;
                record_failure(r, "allocation failure in prepare hook "
                                  "(contained)");
            }
            report.rules[r].apply_seconds += since(t0);
        }

        std::vector<PendingApply> pending;
        for (size_t r : active) {
            for (Match &match : per_rule[r])
                pending.push_back({r, std::move(match)});
        }

        // Phase 2: apply. Each application runs inside a guard: a
        // FatalError from a (dynamic) rule is recovered and counted,
        // and the circuit breaker drops the rule's remaining matches
        // once it trips.
        for (PendingApply &pa : pending) {
            if (options_.exec.canceled()) {
                canceled = true;
                break;
            }
            if (elapsed() > time_limit) {
                timed_out = true;
                break;
            }
            RuleState &state = states_[pa.rule_index];
            if (state.quarantined)
                continue;
            auto t0 = Clock::now();
            const Rewrite &rule = rules_[pa.rule_index];
            RuleStats &rule_stats = report.rules[pa.rule_index];
            // Guarded dynamic applications are transactional: the
            // applier gets a mutable e-graph, so a crash mid-mutation
            // would otherwise leave half-added junk behind. A failed
            // application must leave no trace.
            std::optional<EGraph::Checkpoint> app_cp;
            try {
                if (rule.condition &&
                    !rule.condition(egraph_, pa.match)) {
                    rule_stats.apply_seconds += since(t0);
                    continue;
                }

                EClassId root = egraph_.find(pa.match.root);
                TermPtr rhs_term;
                EClassId rhs_id;
                if (rule.isDynamic()) {
                    if (options_.catch_rule_errors)
                        app_cp = egraph_.checkpoint();
                    auto produced = rule.dyn(egraph_, pa.match);
                    if (!produced) {
                        if (app_cp) {
                            egraph_.commit(*app_cp);
                            app_cp.reset();
                        }
                        state.consecutive_failures = 0;
                        rule_stats.apply_seconds += since(t0);
                        continue;
                    }
                    rhs_term = *produced;
                    rhs_id = egraph_.addTerm(rhs_term);
                    // Node-budget enforcement *inside* the apply loop:
                    // one dynamic application (an external pass can
                    // return an arbitrarily large term) must not blow
                    // far past max_nodes before the iteration-boundary
                    // check sees it. A guarded application that would
                    // land the graph over budget is rolled back and
                    // counted as that rule's failure — rules that
                    // repeatedly produce oversized terms quarantine out
                    // honestly instead of stopping the whole run.
                    if (app_cp &&
                        egraph_.numNodes() > options_.max_nodes) {
                        size_t nodes = egraph_.numNodes();
                        egraph_.rollback(*app_cp);
                        app_cp.reset();
                        record_failure(
                            pa.rule_index,
                            MsgBuilder()
                                << "application refused: would grow the "
                                   "e-graph to "
                                << nodes << " nodes (budget "
                                << options_.max_nodes << ")");
                        rule_stats.apply_seconds += since(t0);
                        continue;
                    }
                } else {
                    rhs_id =
                        instantiate(egraph_, *rule.rhs, pa.match.subst);
                }
                bool changed = egraph_.merge(root, rhs_id, rule.name);
                if (app_cp) {
                    egraph_.commit(*app_cp);
                    app_cp.reset();
                }
                state.consecutive_failures = 0;
                if (changed) {
                    ++stats.applied;
                    ++rule_stats.applications;
                    if (options_.record_proofs) {
                        pending_records.push_back({pa.rule_index,
                                                   pa.match.subst,
                                                   rhs_term});
                    }
                }
            } catch (const FatalError &err) {
                if (!options_.catch_rule_errors)
                    throw;
                if (app_cp) {
                    egraph_.rollback(*app_cp);
                    app_cp.reset();
                }
                record_failure(pa.rule_index, err.what());
            } catch (const std::bad_alloc &) {
                // The no-throw contract: an allocation failure inside
                // one application must not leak a partial e-graph. The
                // guard's checkpoint restores the pre-application
                // state exactly as for a FatalError.
                if (!options_.catch_rule_errors)
                    throw;
                if (app_cp) {
                    egraph_.rollback(*app_cp);
                    app_cp.reset();
                }
                record_failure(pa.rule_index,
                               "allocation failure during application "
                               "(contained)");
            }
            rule_stats.apply_seconds += since(t0);
            if (egraph_.numNodes() > options_.max_nodes)
                break;
        }

        egraph_.rebuild();

        stats.nodes = egraph_.numNodes();
        stats.classes = egraph_.numClasses();
        stats.seconds = since(iter_start);
        report.iterations.push_back(stats);
        report.total_applied += stats.applied;

        if (canceled) {
            report.stop = StopReason::Canceled;
            break;
        }
        if (timed_out || elapsed() > time_limit) {
            report.stop = StopReason::TimeLimit;
            break;
        }
        if (egraph_.numNodes() > options_.max_nodes) {
            report.stop = StopReason::NodeLimit;
            break;
        }
        if (stats.applied == 0) {
            // A quiet iteration only proves saturation when every rule
            // fully participated: none sat out banned (banned_now), none
            // was banned during the iteration with matches beyond its
            // budget dropped (banned_until >= iter + 1), and no
            // application failed and was recovered (a guarded rule that
            // crashed did match — its fate is quarantine, not a
            // saturation verdict).
            size_t banned_next = 0;
            for (const RuleState &state : states_) {
                if (state.banned_until_iter >= iter + 1)
                    ++banned_next;
            }
            if (banned_now == 0 && banned_next == 0 &&
                failures_this_iter == 0) {
                report.stop = StopReason::Saturated;
                break;
            }
        }
        ++iter;
    }

    for (size_t r = 0; r < rules_.size(); ++r) {
        report.rules[r].times_banned = states_[r].times_banned;
        if (states_[r].quarantined)
            ++report.rules_quarantined;
        const MatchPhaseStats &mp = phase_accum[r];
        report.rules[r].search_candidates = mp.candidates_visited;
        report.rules[r].search_skipped_clean = mp.skipped_clean;
        report.match_phase.candidates_visited += mp.candidates_visited;
        report.match_phase.skipped_clean += mp.skipped_clean;
        report.match_phase.cached_matches_reused +=
            mp.cached_matches_reused;
        report.match_phase.index_scans += mp.index_scans;
        report.match_phase.full_scans += mp.full_scans;
        report.match_phase.incremental_scans += mp.incremental_scans;
        report.match_phase.shards += mp.shards;
        report.match_phase.shard_seconds += mp.shard_seconds;
    }

    // Resolve proof records with a shared per-class memo.
    if (options_.record_proofs && !pending_records.empty()) {
        std::map<EClassId, TermPtr> memo;
        auto resolve = [&](EClassId id) {
            id = egraph_.find(id);
            auto it = memo.find(id);
            if (it != memo.end())
                return it->second;
            TermPtr term = extractSmallest(egraph_, id);
            memo.emplace(id, term);
            return term;
        };
        report.records.reserve(pending_records.size());
        for (const PendingRecord &pr : pending_records) {
            const Rewrite &rule = rules_[pr.rule_index];
            RewriteRecord record;
            record.rule = rule.name;
            record.lhs = instantiateTerm(*rule.lhs, pr.subst, resolve);
            record.rhs = pr.dyn_rhs
                             ? pr.dyn_rhs
                             : instantiateTerm(*rule.rhs, pr.subst,
                                               resolve);
            report.records.push_back(std::move(record));
        }
    }

    report.total_seconds = elapsed();
    return report;
}

} // namespace seer::eg
