#include "egraph/runner.h"

#include <atomic>
#include <chrono>
#include <map>
#include <thread>

#include "egraph/extract.h"
#include "support/error.h"

namespace seer::eg {

std::string
stopReasonName(StopReason reason)
{
    switch (reason) {
      case StopReason::Saturated: return "saturated";
      case StopReason::IterLimit: return "iteration-limit";
      case StopReason::NodeLimit: return "node-limit";
      case StopReason::TimeLimit: return "time-limit";
    }
    return "?";
}

RunnerReport
Runner::run()
{
    using Clock = std::chrono::steady_clock;
    auto start = Clock::now();
    auto elapsed = [&] {
        return std::chrono::duration<double>(Clock::now() - start).count();
    };

    states_.assign(rules_.size(), RuleState{});
    RunnerReport report;
    egraph_.rebuild();

    // Proof records are resolved lazily at the end of the run: resolving
    // a concrete term per union *during* the run costs an extraction
    // fixpoint per union and dominated runtime.
    struct PendingRecord
    {
        size_t rule_index;
        Subst subst;
        TermPtr dyn_rhs; ///< dynamic rules carry their concrete rhs
    };
    std::vector<PendingRecord> pending_records;

    for (size_t iter = 1; iter <= options_.max_iters; ++iter) {
        auto iter_start = Clock::now();
        IterationStats stats;

        // Phase 1: read-only matching of every active rule, optionally
        // spread across worker threads (the e-graph is not mutated).
        struct PendingApply
        {
            size_t rule_index;
            Match match;
        };
        std::vector<std::vector<Match>> per_rule(rules_.size());
        std::vector<size_t> active;
        for (size_t r = 0; r < rules_.size(); ++r) {
            if (states_[r].banned_until_iter < iter)
                active.push_back(r);
        }
        auto match_rule = [&](size_t r) {
            per_rule[r] = ematch(egraph_, *rules_[r].lhs,
                                 options_.match_limit + 1);
        };
        unsigned threads = std::max(1u, options_.match_threads);
        if (threads <= 1 || active.size() <= 1) {
            for (size_t r : active)
                match_rule(r);
        } else {
            std::atomic<size_t> cursor{0};
            std::vector<std::thread> workers;
            for (unsigned t = 0; t < threads; ++t) {
                workers.emplace_back([&] {
                    while (true) {
                        size_t slot = cursor.fetch_add(1);
                        if (slot >= active.size())
                            return;
                        match_rule(active[slot]);
                    }
                });
            }
            for (auto &worker : workers)
                worker.join();
        }
        std::vector<PendingApply> pending;
        for (size_t r : active) {
            RuleState &state = states_[r];
            std::vector<Match> &matches = per_rule[r];
            if (matches.size() > options_.match_limit) {
                // Backoff: exponential ban.
                state.times_banned++;
                state.banned_until_iter =
                    iter + (size_t{1} << state.times_banned);
                continue;
            }
            stats.matches += matches.size();
            for (Match &match : matches)
                pending.push_back({r, std::move(match)});
        }

        // Phase 2: apply.
        for (PendingApply &pa : pending) {
            const Rewrite &rule = rules_[pa.rule_index];
            if (rule.condition && !rule.condition(egraph_, pa.match))
                continue;

            EClassId root = egraph_.find(pa.match.root);
            TermPtr rhs_term;
            EClassId rhs_id;
            if (rule.isDynamic()) {
                auto produced = rule.dyn(egraph_, pa.match);
                if (!produced)
                    continue;
                rhs_term = *produced;
                rhs_id = egraph_.addTerm(rhs_term);
            } else {
                rhs_id = instantiate(egraph_, *rule.rhs, pa.match.subst);
            }
            bool changed = egraph_.merge(root, rhs_id, rule.name);
            if (changed) {
                ++stats.applied;
                if (options_.record_proofs) {
                    pending_records.push_back({pa.rule_index,
                                               pa.match.subst,
                                               rhs_term});
                }
            }
            if (egraph_.numNodes() > options_.max_nodes)
                break;
        }

        egraph_.rebuild();

        stats.nodes = egraph_.numNodes();
        stats.classes = egraph_.numClasses();
        stats.seconds =
            std::chrono::duration<double>(Clock::now() - iter_start)
                .count();
        report.iterations.push_back(stats);
        report.total_applied += stats.applied;

        if (stats.applied == 0) {
            report.stop = StopReason::Saturated;
            break;
        }
        if (egraph_.numNodes() > options_.max_nodes) {
            report.stop = StopReason::NodeLimit;
            break;
        }
        if (elapsed() > options_.time_limit_seconds) {
            report.stop = StopReason::TimeLimit;
            break;
        }
        if (iter == options_.max_iters)
            report.stop = StopReason::IterLimit;
    }

    // Resolve proof records with a shared per-class memo.
    if (options_.record_proofs && !pending_records.empty()) {
        std::map<EClassId, TermPtr> memo;
        auto resolve = [&](EClassId id) {
            id = egraph_.find(id);
            auto it = memo.find(id);
            if (it != memo.end())
                return it->second;
            TermPtr term = extractSmallest(egraph_, id);
            memo.emplace(id, term);
            return term;
        };
        report.records.reserve(pending_records.size());
        for (const PendingRecord &pr : pending_records) {
            const Rewrite &rule = rules_[pr.rule_index];
            RewriteRecord record;
            record.rule = rule.name;
            record.lhs = instantiateTerm(*rule.lhs, pr.subst, resolve);
            record.rhs = pr.dyn_rhs
                             ? pr.dyn_rhs
                             : instantiateTerm(*rule.rhs, pr.subst,
                                               resolve);
            report.records.push_back(std::move(record));
        }
    }

    report.total_seconds = elapsed();
    return report;
}

} // namespace seer::eg
