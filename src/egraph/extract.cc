#include "egraph/extract.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <new>
#include <set>

#include "support/error.h"
#include "support/fault_inject.h"

namespace seer::eg {

namespace {

/**
 * Exact lexicographic (cost, size) comparison — no epsilon. Used for
 * everything that must be identical between the incremental analysis
 * and the from-scratch path: both converge to the greatest fixpoint of
 * the class-cost equations under this order, with identical
 * floating-point operation order, so the maintained tables agree
 * bitwise. The epsilon tie-break lives only in the final choice scan
 * (below), which both paths share.
 */
bool
lexLess(const CostBoundAnalysis::Value &a,
        const CostBoundAnalysis::Value &b)
{
    if (a.cost != b.cost)
        return a.cost < b.cost;
    return a.size < b.size;
}

/**
 * Evaluate one node against a child-value lookup: self + sum of child
 * costs (left fold in child order — the FP summation order both the
 * incremental and the scratch path must share), size 1 + child sizes.
 * Infeasible (default Value) when any child is.
 */
template <typename Lookup>
CostBoundAnalysis::Value
evalNode(double self, const ENode &node, Lookup &&child_value)
{
    CostBoundAnalysis::Value value;
    if (self == CostModel::kInfinity)
        return value;
    value.cost = self;
    value.size = 1;
    for (EClassId child : node.children) {
        CostBoundAnalysis::Value cv = child_value(child);
        if (cv.cost == CostModel::kInfinity)
            return CostBoundAnalysis::Value{};
        value.cost += cv.cost;
        value.size += cv.size;
    }
    return value;
}

/**
 * From-scratch greatest-fixpoint computation of the per-class (min tree
 * cost, min size) values, restricted to the classes reachable from
 * `roots`. Chaotic iteration on a worklist seeded in ascending class-id
 * order, rippling through a child -> users adjacency. This is the
 * reference ("naive") path; the registered CostBoundAnalysis maintains
 * the same fixpoint incrementally.
 */
std::unordered_map<EClassId, CostBoundAnalysis::Value>
scratchBounds(const EGraph &egraph, const CostModel &cost,
              const std::vector<EClassId> &roots, ExtractStats &stats)
{
    using Value = CostBoundAnalysis::Value;
    std::vector<EClassId> ids;
    std::unordered_map<EClassId, uint32_t> slots;
    {
        std::vector<EClassId> stack;
        for (EClassId root : roots)
            stack.push_back(egraph.find(root));
        while (!stack.empty()) {
            EClassId id = stack.back();
            stack.pop_back();
            if (!slots.emplace(id, static_cast<uint32_t>(ids.size()))
                     .second)
                continue;
            ids.push_back(id);
            for (const ENode &node : egraph.eclass(id).nodes) {
                for (EClassId child : node.children)
                    stack.push_back(egraph.find(child));
            }
        }
    }
    const size_t n = ids.size();
    std::vector<Value> values(n);

    // Flatten the cone: per-node self costs and canonical child slots,
    // so the recompute loop touches no map and performs no find().
    std::vector<uint32_t> class_node_begin(n + 1, 0);
    std::vector<double> node_self;
    std::vector<uint32_t> node_child_begin{0};
    std::vector<uint32_t> child_slots;
    std::vector<std::vector<uint32_t>> users(n);
    for (size_t s = 0; s < n; ++s) {
        class_node_begin[s] = static_cast<uint32_t>(node_self.size());
        for (const ENode &node : egraph.eclass(ids[s]).nodes) {
            node_self.push_back(cost.nodeCostInClass(egraph, node));
            for (EClassId child : node.children) {
                uint32_t cs = slots.at(egraph.find(child));
                child_slots.push_back(cs);
                users[cs].push_back(static_cast<uint32_t>(s));
            }
            node_child_begin.push_back(
                static_cast<uint32_t>(child_slots.size()));
        }
    }
    class_node_begin[n] = static_cast<uint32_t>(node_self.size());
    for (std::vector<uint32_t> &u : users) {
        std::sort(u.begin(), u.end());
        u.erase(std::unique(u.begin(), u.end()), u.end());
    }

    // Fresh best-over-nodes scan of slot `s` (same arithmetic as
    // CostBoundAnalysis::recomputeClass); true when the value changed.
    auto recompute = [&](uint32_t s) {
        ++stats.classes_recomputed;
        Value best;
        for (uint32_t ni = class_node_begin[s];
             ni < class_node_begin[s + 1]; ++ni) {
            double self = node_self[ni];
            if (self == CostModel::kInfinity)
                continue;
            Value v;
            v.cost = self;
            v.size = 1;
            bool feasible = true;
            for (uint32_t ci = node_child_begin[ni];
                 ci < node_child_begin[ni + 1]; ++ci) {
                const Value &cv = values[child_slots[ci]];
                if (cv.cost == CostModel::kInfinity) {
                    feasible = false;
                    break;
                }
                v.cost += cv.cost;
                v.size += cv.size;
            }
            if (!feasible)
                continue;
            if (lexLess(v, best))
                best = v;
        }
        if (best == values[s])
            return false;
        values[s] = best;
        return true;
    };

    // Seed every class once in ascending-id order, then let changes
    // ripple upward through `users` until quiescent: the greatest
    // fixpoint, reached from above.
    std::vector<uint32_t> queue(n);
    for (size_t s = 0; s < n; ++s)
        queue[s] = static_cast<uint32_t>(s);
    std::sort(queue.begin(), queue.end(), [&](uint32_t a, uint32_t b) {
        return ids[a] < ids[b];
    });
    std::vector<char> queued(n, 1);
    for (size_t head = 0; head < queue.size(); ++head) {
        uint32_t s = queue[head];
        queued[s] = 0;
        if (!recompute(s))
            continue;
        for (uint32_t u : users[s]) {
            if (!queued[u]) {
                queued[u] = 1;
                queue.push_back(u);
            }
        }
    }
    std::unordered_map<EClassId, Value> out;
    out.reserve(n);
    for (size_t s = 0; s < n; ++s)
        out.emplace(ids[s], values[s]);
    return out;
}

/**
 * Bound lookup used by the extractors: either the registered analysis
 * (incremental) or a from-scratch table. Unknown ids are infeasible.
 */
struct BoundTable
{
    const CostBoundAnalysis *analysis = nullptr;
    std::unordered_map<EClassId, CostBoundAnalysis::Value> scratch;

    CostBoundAnalysis::Value
    at(EClassId canonical) const
    {
        if (analysis)
            return analysis->value(canonical);
        auto it = scratch.find(canonical);
        if (it == scratch.end())
            return CostBoundAnalysis::Value{};
        return it->second;
    }
};

/** Resolve the bound source for one extraction call. */
BoundTable
makeTable(const EGraph &egraph, const CostModel &cost, EClassId root,
          const ExtractOptions &options, ExtractStats &stats)
{
    BoundTable table;
    if (!options.naive && !cost.name().empty()) {
        if (const Analysis *analysis =
                egraph.findAnalysis("cost-bound:" + cost.name())) {
            const auto *bound =
                static_cast<const CostBoundAnalysis *>(analysis);
            uint64_t before = bound->recomputes();
            bound->ensureCurrent(egraph);
            stats.classes_recomputed += bound->recomputes() - before;
            stats.used_analysis = true;
            table.analysis = bound;
            return table;
        }
    }
    table.scratch = scratchBounds(egraph, cost, {root}, stats);
    return table;
}

struct ClassCost
{
    double cost = CostModel::kInfinity;
    double size = CostModel::kInfinity; // tie-break: term size
    int node_index = -1;
};

/**
 * Scale-aware float equality for cost comparison. Costs are sums of
 * per-node model values, so exact `==` ties depend on summation order
 * and platform FP contraction; treating near-equal costs as ties keeps
 * the greedy tie-break (smaller term size, then first node in class
 * order) deterministic across platforms.
 */
bool
approxEq(double a, double b)
{
    if (a == CostModel::kInfinity || b == CostModel::kInfinity)
        return a == b;
    double scale = std::max({1.0, std::abs(a), std::abs(b)});
    return std::abs(a - b) <= 1e-9 * scale;
}

/** Lexicographic (cost, size) improvement test with epsilon ties. */
bool
improves(double cost, double size, const ClassCost &best)
{
    if (best.cost == CostModel::kInfinity)
        return cost < CostModel::kInfinity;
    if (!approxEq(cost, best.cost))
        return cost < best.cost;
    return !approxEq(size, best.size) && size < best.size;
}

/**
 * The choice scan: pick the node of `id` minimizing self + child bound
 * costs under the epsilon tie-break (smaller size, then first in class
 * node order). A pure function of the *converged* bound table, shared
 * by the incremental and the naive path — the epsilon never feeds back
 * into maintained state, which is what keeps the two paths
 * bit-identical despite history-dependent epsilon comparisons.
 */
ClassCost
chooseNode(const EGraph &egraph, const CostModel &cost,
           const BoundTable &table, EClassId id)
{
    ClassCost best;
    const EClass &cls = egraph.eclass(id);
    for (size_t i = 0; i < cls.nodes.size(); ++i) {
        const ENode &node = cls.nodes[i];
        double self = cost.nodeCostInClass(egraph, node);
        CostBoundAnalysis::Value v = evalNode(
            self, node, [&](EClassId child) {
                return table.at(egraph.find(child));
            });
        if (v.cost == CostModel::kInfinity)
            continue;
        if (improves(v.cost, v.size, best)) {
            best.cost = v.cost;
            best.size = v.size;
            best.node_index = static_cast<int>(i);
        }
    }
    return best;
}

/** Memoized chooseNode over a term's support. */
int
chosenNodeOf(const EGraph &egraph, const CostModel &cost,
             const BoundTable &table, EClassId id,
             std::map<EClassId, int> &choice)
{
    auto it = choice.find(id);
    if (it != choice.end())
        return it->second;
    int n = chooseNode(egraph, cost, table, id).node_index;
    choice.emplace(id, n);
    return n;
}

TermPtr
buildGreedyTerm(const EGraph &egraph, const CostModel &cost,
                const BoundTable &table, EClassId id,
                std::map<EClassId, int> &choice,
                std::map<EClassId, TermPtr> &memo,
                std::set<EClassId> &visiting)
{
    id = egraph.find(id);
    auto done = memo.find(id);
    if (done != memo.end())
        return done->second;
    SEER_ASSERT(!visiting.count(id),
                "cyclic extraction at class " << id
                    << " (cost model allows a zero-cost cycle)");
    int n = chosenNodeOf(egraph, cost, table, id, choice);
    SEER_ASSERT(n >= 0, "extracting infeasible class");
    visiting.insert(id);
    const ENode &node = egraph.eclass(id).nodes[static_cast<size_t>(n)];
    std::vector<TermPtr> children;
    children.reserve(node.children.size());
    for (EClassId child : node.children)
        children.push_back(buildGreedyTerm(egraph, cost, table, child,
                                           choice, memo, visiting));
    visiting.erase(id);
    TermPtr term = makeTerm(node.op, std::move(children));
    memo[id] = term;
    return term;
}

/** DAG cost of a complete choice: each distinct class counted once. */
double
dagCostOf(const EGraph &egraph, EClassId root,
          const std::map<EClassId, int> &choice, const CostModel &cost)
{
    std::set<EClassId> seen;
    std::vector<EClassId> stack{egraph.find(root)};
    double total = 0;
    while (!stack.empty()) {
        EClassId id = stack.back();
        stack.pop_back();
        if (!seen.insert(id).second)
            continue;
        const ENode &node = egraph.eclass(id).nodes[static_cast<size_t>(
            choice.at(id))];
        total += cost.nodeCostInClass(egraph, node);
        for (EClassId child : node.children)
            stack.push_back(egraph.find(child));
    }
    return total;
}

/** Distinct classes in the support of a complete choice. */
size_t
supportSize(const EGraph &egraph, EClassId root,
            const std::map<EClassId, int> &choice)
{
    std::set<EClassId> seen;
    std::vector<EClassId> stack{egraph.find(root)};
    while (!stack.empty()) {
        EClassId id = stack.back();
        stack.pop_back();
        if (!seen.insert(id).second)
            continue;
        const ENode &node = egraph.eclass(id).nodes[static_cast<size_t>(
            choice.at(id))];
        for (EClassId child : node.children)
            stack.push_back(egraph.find(child));
    }
    return seen.size();
}

/** Check the chosen-node graph reachable from root is acyclic. */
bool
choiceAcyclic(const EGraph &egraph, EClassId root,
              const std::map<EClassId, int> &choice)
{
    enum State { White, Grey, Black };
    std::map<EClassId, State> state;
    std::function<bool(EClassId)> dfs = [&](EClassId id) {
        id = egraph.find(id);
        State &s = state[id];
        if (s == Grey)
            return false;
        if (s == Black)
            return true;
        s = Grey;
        const ENode &node = egraph.eclass(id).nodes[static_cast<size_t>(
            choice.at(id))];
        for (EClassId child : node.children) {
            if (!dfs(child))
                return false;
        }
        state[id] = Black;
        return true;
    };
    return dfs(root);
}

/** Build the term DAG for a complete acyclic choice (as a tree with
 *  structural sharing through shared_ptr reuse). */
TermPtr
buildChoiceTerm(const EGraph &egraph, EClassId id,
                const std::map<EClassId, int> &choice,
                std::map<EClassId, TermPtr> &memo)
{
    id = egraph.find(id);
    auto it = memo.find(id);
    if (it != memo.end())
        return it->second;
    const ENode &node =
        egraph.eclass(id).nodes[static_cast<size_t>(choice.at(id))];
    std::vector<TermPtr> children;
    children.reserve(node.children.size());
    for (EClassId child : node.children)
        children.push_back(buildChoiceTerm(egraph, child, choice, memo));
    TermPtr term = makeTerm(node.op, std::move(children));
    memo[id] = term;
    return term;
}

/** Branch-and-bound exact DAG extraction. */
class ExactSolver
{
  public:
    ExactSolver(const EGraph &egraph, const CostModel &cost,
                const ExtractOptions &options, ExtractStats &stats)
        : egraph_(egraph), cost_(cost), naive_(options.naive),
          budget_(options.budget), exec_(options.exec), stats_(stats)
    {}

    ~ExactSolver()
    {
        // Credit the search frontier/memo bytes back: extraction
        // memory is transient, only its peak matters to the governor.
        if (charged_ > 0)
            exec_.chargeMem(MemSubsystem::Extraction, -charged_);
    }

    std::optional<Extraction>
    solve(EClassId root)
    {
        root = egraph_.find(root);
        table_ = makeTable(egraph_, cost_, root, opts(), stats_);
        if (table_.at(root).cost == CostModel::kInfinity)
            return std::nullopt;

        // Seed the incumbent with the greedy choice evaluated as a DAG.
        std::map<EClassId, int> greedy_choice;
        collectGreedyChoice(root, greedy_choice);
        best_choice_ = greedy_choice;
        best_cost_ = dagCostOf(egraph_, root, greedy_choice, cost_);

        std::map<EClassId, int> choice;
        std::set<EClassId> pending{root};
        search(choice, pending, 0.0, root);

        stats_.expansions += expansions_;
        stats_.bound_prunes += prunes_;
        stats_.budget_exhausted =
            stats_.budget_exhausted || budget_exhausted_;
        stats_.classes_visited += supportSize(egraph_, root, best_choice_);

        std::map<EClassId, TermPtr> memo;
        Extraction out;
        out.term = buildChoiceTerm(egraph_, root, best_choice_, memo);
        out.dag_cost = best_cost_;
        out.tree_cost = treeCost(*out.term);
        return out;
    }

  private:
    ExtractOptions
    opts() const
    {
        ExtractOptions o;
        o.naive = naive_;
        o.budget = budget_;
        return o;
    }

    /** Greedy choices over the support of `id` (the incumbent). */
    void
    collectGreedyChoice(EClassId id, std::map<EClassId, int> &choice)
    {
        id = egraph_.find(id);
        if (choice.count(id))
            return;
        int n = chooseNode(egraph_, cost_, table_, id).node_index;
        SEER_ASSERT(n >= 0, "greedy incumbent hit infeasible class");
        choice.emplace(id, n);
        const ENode &node =
            egraph_.eclass(id).nodes[static_cast<size_t>(n)];
        for (EClassId child : node.children)
            collectGreedyChoice(child, choice);
    }

    double
    treeCost(const Term &term) const
    {
        ENode probe{term.op(), {}};
        double total = cost_.nodeCost(probe);
        for (const auto &child : term.children())
            total += treeCost(*child);
        return total;
    }

    /** Per-class search memo: self costs, min self cost, candidate
     *  order, and the classes every feasible node needs (for the
     *  inevitable-children bound). Computed once per class — the old
     *  code re-sorted candidates on every visit. */
    struct ClassMemo
    {
        std::vector<double> self;
        std::vector<int> order;
        double min_self = CostModel::kInfinity;
        /** Intersection of canonical child sets over feasible nodes:
         *  classes any completion through this class must also pay. */
        std::vector<EClassId> required;
    };

    const ClassMemo &
    classMemo(EClassId id)
    {
        auto [it, inserted] = memo_.try_emplace(id);
        ClassMemo &m = it->second;
        if (!inserted)
            return m;
        const EClass &cls = egraph_.eclass(id);
        // Account the memo before filling it: the per-class memos are
        // where exact-search memory actually accumulates.
        int64_t bytes = static_cast<int64_t>(
            sizeof(ClassMemo) + cls.nodes.size() * 16 + 64);
        charged_ += bytes;
        if (!exec_.chargeMem(MemSubsystem::Extraction, bytes))
            budget_exhausted_ = true; // breach: finish with best-so-far
        m.self.resize(cls.nodes.size());
        m.order.resize(cls.nodes.size());
        for (size_t i = 0; i < cls.nodes.size(); ++i) {
            m.self[i] = cost_.nodeCostInClass(egraph_, cls.nodes[i]);
            m.order[i] = static_cast<int>(i);
            m.min_self = std::min(m.min_self, m.self[i]);
        }
        std::sort(m.order.begin(), m.order.end(), [&](int a, int b) {
            return m.self[static_cast<size_t>(a)] <
                   m.self[static_cast<size_t>(b)];
        });
        bool first = true;
        std::set<EClassId> inter;
        for (size_t i = 0; i < cls.nodes.size(); ++i) {
            if (m.self[i] == CostModel::kInfinity)
                continue;
            std::set<EClassId> kids;
            bool feasible = true;
            for (EClassId child : cls.nodes[i].children) {
                EClassId c = egraph_.find(child);
                if (table_.at(c).cost == CostModel::kInfinity) {
                    feasible = false;
                    break;
                }
                kids.insert(c);
            }
            if (!feasible)
                continue;
            if (first) {
                inter = std::move(kids);
                first = false;
            } else {
                for (auto cur = inter.begin(); cur != inter.end();) {
                    if (!kids.count(*cur))
                        cur = inter.erase(cur);
                    else
                        ++cur;
                }
            }
        }
        m.required.assign(inter.begin(), inter.end());
        return m;
    }

    /**
     * Admissible lower bound on any completion of the current partial
     * choice. Base: every pending class costs at least its cheapest
     * node. Unless naive, additionally closes over *inevitable*
     * children — classes every feasible node of a pending (or already
     * counted) class must reference — which is what makes the bound
     * bite before the budget on shared-subexpression graphs.
     */
    double
    boundOf(double cost_so_far, const std::map<EClassId, int> &choice,
            const std::set<EClassId> &pending)
    {
        double bound = cost_so_far;
        for (EClassId id : pending)
            bound += classMemo(id).min_self;
        if (naive_)
            return bound;
        std::set<EClassId> counted;
        std::vector<EClassId> walk(pending.begin(), pending.end());
        while (!walk.empty()) {
            EClassId id = walk.back();
            walk.pop_back();
            for (EClassId req : classMemo(id).required) {
                if (choice.count(req) || pending.count(req))
                    continue;
                if (!counted.insert(req).second)
                    continue;
                bound += classMemo(req).min_self;
                walk.push_back(req);
            }
        }
        return bound;
    }

    void
    search(std::map<EClassId, int> &choice, std::set<EClassId> &pending,
           double cost_so_far, EClassId root)
    {
        if (expansions_++ > budget_) {
            budget_exhausted_ = true;
            return;
        }
        if (budget_exhausted_)
            return; // latched by a memory-budget breach below
        // Cooperative cancellation, amortized over 256 expansions:
        // treated exactly like budget exhaustion (best-so-far wins).
        if ((expansions_ & 0xff) == 0 && exec_.canceled()) {
            budget_exhausted_ = true;
            return;
        }
        if (boundOf(cost_so_far, choice, pending) >= best_cost_) {
            ++prunes_;
            return;
        }
        if (pending.empty()) {
            if (choiceAcyclic(egraph_, root, choice)) {
                best_cost_ = cost_so_far;
                best_choice_ = choice;
            }
            return;
        }
        EClassId id = *pending.begin();
        pending.erase(pending.begin());

        const EClass &cls = egraph_.eclass(id);
        const ClassMemo &m = classMemo(id);
        for (int n : m.order) {
            const ENode &node = cls.nodes[static_cast<size_t>(n)];
            double self = m.self[static_cast<size_t>(n)];
            if (self == CostModel::kInfinity)
                break;
            // Skip nodes with infeasible children.
            bool feasible = true;
            for (EClassId child : node.children) {
                if (table_.at(egraph_.find(child)).cost ==
                    CostModel::kInfinity) {
                    feasible = false;
                    break;
                }
            }
            if (!feasible)
                continue;
            choice[id] = n;
            std::vector<EClassId> added;
            for (EClassId child : node.children) {
                EClassId c = egraph_.find(child);
                if (!choice.count(c) && pending.insert(c).second)
                    added.push_back(c);
            }
            search(choice, pending, cost_so_far + self, root);
            for (EClassId c : added)
                pending.erase(c);
            choice.erase(id);
        }
        pending.insert(id);
    }

    const EGraph &egraph_;
    const CostModel &cost_;
    bool naive_;
    size_t budget_;
    ExecContext exec_;
    int64_t charged_ = 0;
    ExtractStats &stats_;
    size_t expansions_ = 0;
    size_t prunes_ = 0;
    bool budget_exhausted_ = false;
    BoundTable table_;
    std::unordered_map<EClassId, ClassMemo> memo_;
    std::map<EClassId, int> best_choice_;
    double best_cost_ = CostModel::kInfinity;
};

} // namespace

// ---------------------------------------------------------------------------
// CostBoundAnalysis

void
CostBoundAnalysis::push(EClassId id) const
{
    ensure(id);
    if (queued_[id])
        return;
    queued_[id] = 1;
    pending_.push_back(id);
}

void
CostBoundAnalysis::recomputeClass(const EGraph &egraph, EClassId id) const
{
    ensure(id);
    ++recomputes_;
    Value best;
    const EClass &cls = egraph.eclass(id);
    for (const ENode &node : cls.nodes) {
        if (auto key = model_.dependencyKey(node)) {
            std::vector<EClassId> &dependents = deps_[*key];
            if (std::find(dependents.begin(), dependents.end(), id) ==
                dependents.end())
                dependents.push_back(id);
        }
        double self = model_.nodeCostInClass(egraph, node);
        Value v = evalNode(self, node, [&](EClassId child) {
            EClassId c = egraph.find(child);
            return c < values_.size() ? values_[c] : Value{};
        });
        if (v.cost == CostModel::kInfinity)
            continue;
        if (lexLess(v, best))
            best = v;
    }
    if (best == values_[id])
        return;
    egraph.journalAnalysisDatum(*this, id);
    values_[id] = best;
    for (const auto &[node, parent] : cls.parents)
        push(parent);
}

void
CostBoundAnalysis::syncModel(const EGraph &egraph) const
{
    uint64_t revision = model_.revision();
    if (revision == model_revision_)
        return;
    std::vector<std::string> touched =
        model_.touchedSince(model_revision_);
    model_revision_ = revision;
    if (touched.empty())
        return;
    // Invalidate the parent cone of every class whose nodes read a
    // touched key: set to infeasible (journaled — these are raises, the
    // one move the monotone drain cannot make) and re-drain. Classes
    // outside the cones read none of the touched inputs and keep their
    // exact fixpoint values.
    std::vector<EClassId> stack;
    for (const std::string &key : touched) {
        auto it = deps_.find(key);
        if (it == deps_.end())
            continue;
        for (EClassId id : it->second) {
            if (id < egraph.numIds())
                stack.push_back(egraph.find(id));
        }
    }
    std::vector<uint8_t> visited(egraph.numIds(), 0);
    while (!stack.empty()) {
        EClassId id = stack.back();
        stack.pop_back();
        if (visited[id])
            continue;
        visited[id] = 1;
        ensure(id);
        if (!(values_[id] == Value{})) {
            egraph.journalAnalysisDatum(*this, id);
            values_[id] = Value{};
        }
        push(id);
        for (const auto &[node, parent] : egraph.eclass(id).parents)
            stack.push_back(egraph.find(parent));
    }
}

void
CostBoundAnalysis::ensureCurrent(const EGraph &egraph) const
{
    syncModel(egraph);
    while (!pending_.empty()) {
        EClassId raw = pending_.back();
        pending_.pop_back();
        if (raw < queued_.size())
            queued_[raw] = 0;
        if (raw >= egraph.numIds())
            continue; // stale entry past a rollback (defensive)
        recomputeClass(egraph, egraph.find(raw));
    }
}

void
CostBoundAnalysis::onMake(EGraph &egraph, EClassId id, const ENode &node)
{
    (void)egraph, (void)node;
    ensure(id);
    push(id); // value starts infeasible; the next drain computes it
}

void
CostBoundAnalysis::onMerge(
    EGraph &egraph, EClassId into, EClassId from,
    const std::vector<std::pair<ENode, EClassId>> &from_parents)
{
    ensure(std::max(into, from));
    Value winner = values_[into];
    Value loser = values_[from];
    // The union can only lower the class bound: seed the winner with
    // the lexicographic min so the maintained state stays pointwise >=
    // the new greatest fixpoint, then let the drain settle it.
    Value merged = lexLess(loser, winner) ? loser : winner;
    if (!(merged == winner)) {
        egraph.journalAnalysisDatum(*this, into);
        values_[into] = merged;
        // The winner's value improved: its current parents re-derive.
        for (const auto &[node, parent] : egraph.eclass(into).parents)
            push(parent);
    }
    // The absorbed side's parents now resolve this child to `into`
    // (and sibling analyses may have changed the merged class's data
    // during their own hooks): always requeue them. This is the
    // smaller parent list by the union-by-size rule.
    for (const auto &[node, parent] : from_parents)
        push(parent);
    push(into);
}

void
CostBoundAnalysis::onPeerChanged(EGraph &egraph, EClassId id)
{
    // Another analysis (e.g. constant folding) refined a fact nodes may
    // read through nodeCostInClass: self-costs of this class's parents
    // can change. Peer facts only become *more* defined as the graph
    // grows, so this stays a monotone (lowering) update.
    EClassId canonical = egraph.find(id);
    for (const auto &[node, parent] : egraph.eclass(canonical).parents)
        push(parent);
}

void
CostBoundAnalysis::onCheckpoint(EGraph &egraph)
{
    ensureCurrent(egraph);
}

void
CostBoundAnalysis::onRollback(EGraph &egraph, size_t live_ids)
{
    (void)egraph;
    if (values_.size() > live_ids) {
        values_.resize(live_ids);
        queued_.resize(live_ids);
    }
    // The journal restored the quiesced checkpoint-time values; pending
    // recomputes (which may reference dead ids) are moot.
    std::fill(queued_.begin(), queued_.end(), 0);
    pending_.clear();
    // External model inputs (e.g. the loop registry) do NOT roll back
    // with the e-graph: force a full resync so restored values are
    // re-based onto the current inputs. Dependency entries for dead ids
    // are filtered (or conservatively re-point to recycled ids, which
    // only costs a spurious recompute).
    model_revision_ = 0;
}

void
CostBoundAnalysis::onAttach(EGraph &egraph)
{
    for (EClassId id : egraph.classIds())
        push(id);
}

std::shared_ptr<void>
CostBoundAnalysis::saveDatum(EClassId id) const
{
    return std::make_shared<Value>(value(id));
}

void
CostBoundAnalysis::restoreDatum(EClassId id,
                                const std::shared_ptr<void> &datum)
{
    ensure(id);
    values_[id] = *std::static_pointer_cast<Value>(datum);
}

std::string
CostBoundAnalysis::checkInvariants(const EGraph &egraph) const
{
    ensureCurrent(egraph);
    ExtractStats scratch_stats;
    std::vector<EClassId> ids = egraph.classIds();
    auto scratch = scratchBounds(egraph, model_, ids, scratch_stats);
    for (EClassId id : ids) {
        Value maintained = value(id);
        Value derived = scratch.at(id);
        if (!(maintained == derived)) {
            return MsgBuilder()
                   << name() << " incoherent at class " << id
                   << ": maintained (" << maintained.cost << ", "
                   << maintained.size << "), from-scratch ("
                   << derived.cost << ", " << derived.size << ")";
        }
    }
    return "";
}

CostBoundAnalysis &
registerCostBound(EGraph &egraph, const CostModel &model)
{
    SEER_ASSERT(!model.name().empty(),
                "cost-bound analysis requires a named cost model");
    std::string name = "cost-bound:" + model.name();
    if (Analysis *existing = egraph.findAnalysis(name))
        return *static_cast<CostBoundAnalysis *>(existing);
    return static_cast<CostBoundAnalysis &>(egraph.registerAnalysis(
        std::make_unique<CostBoundAnalysis>(model)));
}

// ---------------------------------------------------------------------------
// Extractors

std::optional<Extraction>
extractGreedy(const EGraph &egraph, EClassId root, const CostModel &cost,
              const ExtractOptions &options)
{
    if (faultFire(FaultPoint::ExtractAlloc))
        throw std::bad_alloc();
    ExtractStats local;
    ExtractStats &stats = options.stats ? *options.stats : local;
    EClassId canonical = egraph.find(root);
    BoundTable table = makeTable(egraph, cost, canonical, options, stats);
    if (table.at(canonical).cost == CostModel::kInfinity)
        return std::nullopt;
    std::map<EClassId, int> choice;
    std::map<EClassId, TermPtr> memo;
    std::set<EClassId> visiting;
    Extraction out;
    out.term = buildGreedyTerm(egraph, cost, table, canonical, choice,
                               memo, visiting);
    out.tree_cost = table.at(canonical).cost;
    out.dag_cost = dagCostOf(egraph, canonical, choice, cost);
    stats.classes_visited += choice.size();
    return out;
}

std::optional<Extraction>
extractGreedy(const EGraph &egraph, EClassId root, const CostModel &cost)
{
    return extractGreedy(egraph, root, cost, ExtractOptions{});
}

TermPtr
extractSmallest(const EGraph &egraph, EClassId root)
{
    TermSizeCost cost;
    auto extraction = extractGreedy(egraph, root, cost);
    SEER_ASSERT(extraction.has_value(),
                "extractSmallest on infeasible class");
    return extraction->term;
}

std::optional<Extraction>
extractExact(const EGraph &egraph, EClassId root, const CostModel &cost,
             const ExtractOptions &options)
{
    if (faultFire(FaultPoint::ExtractAlloc))
        throw std::bad_alloc();
    ExtractStats local;
    ExtractStats &stats = options.stats ? *options.stats : local;
    return ExactSolver(egraph, cost, options, stats).solve(root);
}

std::optional<Extraction>
extractExact(const EGraph &egraph, EClassId root, const CostModel &cost,
             size_t budget)
{
    ExtractOptions options;
    options.budget = budget;
    return extractExact(egraph, root, cost, options);
}

} // namespace seer::eg
