#include "egraph/extract.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "support/error.h"

namespace seer::eg {

namespace {

struct ClassCost
{
    double cost = CostModel::kInfinity;
    double size = CostModel::kInfinity; // tie-break: term size
    int node_index = -1;
};

/**
 * Scale-aware float equality for cost comparison. Costs are sums of
 * per-node model values, so exact `==` ties depend on summation order
 * and platform FP contraction; treating near-equal costs as ties keeps
 * the greedy tie-break (smaller term size, then first node in class
 * order) deterministic across platforms.
 */
bool
approxEq(double a, double b)
{
    if (a == CostModel::kInfinity || b == CostModel::kInfinity)
        return a == b;
    double scale = std::max({1.0, std::abs(a), std::abs(b)});
    return std::abs(a - b) <= 1e-9 * scale;
}

/** Lexicographic (cost, size) improvement test with epsilon ties. */
bool
improves(double cost, double size, const ClassCost &best)
{
    if (best.cost == CostModel::kInfinity)
        return cost < CostModel::kInfinity;
    if (!approxEq(cost, best.cost))
        return cost < best.cost;
    return !approxEq(size, best.size) && size < best.size;
}

/**
 * Dense greedy cost table for the classes reachable from one root:
 * class ids map to contiguous slots so the fixpoint below runs on flat
 * vectors instead of a std::map per lookup.
 */
class GreedyCosts
{
  public:
    const ClassCost &
    at(EClassId id) const
    {
        return costs_[slots_.at(id)];
    }

    /** Reachable classes (the table's keys), root first. */
    const std::vector<EClassId> &ids() const { return ids_; }

  private:
    friend GreedyCosts computeGreedyCosts(const EGraph &egraph,
                                          const CostModel &cost,
                                          EClassId root);
    std::vector<EClassId> ids_;
    std::vector<ClassCost> costs_; ///< parallel to ids_
    std::unordered_map<EClassId, uint32_t> slots_;
};

/**
 * Greedy per-class costs, restricted to the classes reachable from
 * `root` (extraction never needs the rest). Instead of sweeping the
 * whole cone to a fixpoint, classes sit on a worklist and a class is
 * recomputed only when one of its children improved, driven through a
 * reverse (child -> users) adjacency — the standard chaotic-iteration
 * shortest-term computation.
 */
GreedyCosts
computeGreedyCosts(const EGraph &egraph, const CostModel &cost,
                   EClassId root)
{
    GreedyCosts table;
    {
        std::vector<EClassId> stack{egraph.find(root)};
        while (!stack.empty()) {
            EClassId id = stack.back();
            stack.pop_back();
            if (!table.slots_
                     .emplace(id,
                              static_cast<uint32_t>(table.ids_.size()))
                     .second)
                continue;
            table.ids_.push_back(id);
            for (const ENode &node : egraph.eclass(id).nodes) {
                for (EClassId child : node.children)
                    stack.push_back(egraph.find(child));
            }
        }
    }
    const size_t n = table.ids_.size();
    table.costs_.assign(n, ClassCost{});

    // Flatten the cone: per-node self costs and canonical child slots,
    // so the recompute loop touches no map and performs no find().
    std::vector<uint32_t> class_node_begin(n + 1, 0);
    std::vector<double> node_self;
    std::vector<uint32_t> node_child_begin{0};
    std::vector<uint32_t> child_slots;
    std::vector<std::vector<uint32_t>> users(n);
    for (size_t s = 0; s < n; ++s) {
        class_node_begin[s] = static_cast<uint32_t>(node_self.size());
        for (const ENode &node : egraph.eclass(table.ids_[s]).nodes) {
            node_self.push_back(cost.nodeCost(node));
            for (EClassId child : node.children) {
                uint32_t cs = table.slots_.at(egraph.find(child));
                child_slots.push_back(cs);
                users[cs].push_back(static_cast<uint32_t>(s));
            }
            node_child_begin.push_back(
                static_cast<uint32_t>(child_slots.size()));
        }
    }
    class_node_begin[n] = static_cast<uint32_t>(node_self.size());
    for (std::vector<uint32_t> &u : users) {
        std::sort(u.begin(), u.end());
        u.erase(std::unique(u.begin(), u.end()), u.end());
    }

    // Re-derive the best (cost, size, node) of class slot `s` from its
    // current child costs; true when it improved.
    auto recompute = [&](uint32_t s) {
        ClassCost &best = table.costs_[s];
        bool changed = false;
        for (uint32_t ni = class_node_begin[s];
             ni < class_node_begin[s + 1]; ++ni) {
            double self = node_self[ni];
            if (self == CostModel::kInfinity)
                continue;
            double total = self;
            double size = 1;
            bool feasible = true;
            for (uint32_t ci = node_child_begin[ni];
                 ci < node_child_begin[ni + 1]; ++ci) {
                const ClassCost &cc = table.costs_[child_slots[ci]];
                if (cc.cost == CostModel::kInfinity) {
                    feasible = false;
                    break;
                }
                total += cc.cost;
                size += cc.size;
            }
            if (!feasible)
                continue;
            if (improves(total, size, best)) {
                best.cost = total;
                best.size = size;
                best.node_index =
                    static_cast<int>(ni - class_node_begin[s]);
                changed = true;
            }
        }
        return changed;
    };

    // Seed every class once in ascending-id order (the sweep order of
    // the previous fixpoint, for deterministic epsilon-tie breaks),
    // then let improvements ripple upward through `users`.
    std::vector<uint32_t> queue(n);
    for (size_t s = 0; s < n; ++s)
        queue[s] = static_cast<uint32_t>(s);
    std::sort(queue.begin(), queue.end(), [&](uint32_t a, uint32_t b) {
        return table.ids_[a] < table.ids_[b];
    });
    std::vector<char> queued(n, 1);
    for (size_t head = 0; head < queue.size(); ++head) {
        uint32_t s = queue[head];
        queued[s] = 0;
        if (!recompute(s))
            continue;
        for (uint32_t u : users[s]) {
            if (!queued[u]) {
                queued[u] = 1;
                queue.push_back(u);
            }
        }
    }
    return table;
}

TermPtr
buildTerm(const EGraph &egraph, EClassId id, const GreedyCosts &costs,
          std::set<EClassId> &visiting)
{
    id = egraph.find(id);
    SEER_ASSERT(!visiting.count(id),
                "cyclic extraction at class " << id
                    << " (cost model allows a zero-cost cycle)");
    const ClassCost &best = costs.at(id);
    SEER_ASSERT(best.node_index >= 0, "extracting infeasible class");
    visiting.insert(id);
    const ENode &node =
        egraph.eclass(id).nodes[static_cast<size_t>(best.node_index)];
    std::vector<TermPtr> children;
    children.reserve(node.children.size());
    for (EClassId child : node.children)
        children.push_back(buildTerm(egraph, child, costs, visiting));
    visiting.erase(id);
    return makeTerm(node.op, std::move(children));
}

/** Classes reachable from the chosen node of each decided class. */
double
dagCostOf(const EGraph &egraph, EClassId root,
          const std::map<EClassId, int> &choice, const CostModel &cost)
{
    std::set<EClassId> seen;
    std::vector<EClassId> stack{egraph.find(root)};
    double total = 0;
    while (!stack.empty()) {
        EClassId id = stack.back();
        stack.pop_back();
        if (!seen.insert(id).second)
            continue;
        const ENode &node = egraph.eclass(id).nodes[static_cast<size_t>(
            choice.at(id))];
        total += cost.nodeCost(node);
        for (EClassId child : node.children)
            stack.push_back(egraph.find(child));
    }
    return total;
}

/** Check the chosen-node graph reachable from root is acyclic. */
bool
choiceAcyclic(const EGraph &egraph, EClassId root,
              const std::map<EClassId, int> &choice)
{
    enum State { White, Grey, Black };
    std::map<EClassId, State> state;
    std::function<bool(EClassId)> dfs = [&](EClassId id) {
        id = egraph.find(id);
        State &s = state[id];
        if (s == Grey)
            return false;
        if (s == Black)
            return true;
        s = Grey;
        const ENode &node = egraph.eclass(id).nodes[static_cast<size_t>(
            choice.at(id))];
        for (EClassId child : node.children) {
            if (!dfs(child))
                return false;
        }
        state[id] = Black;
        return true;
    };
    return dfs(root);
}

/** Build the term DAG for a complete acyclic choice (as a tree with
 *  structural sharing through shared_ptr reuse). */
TermPtr
buildChoiceTerm(const EGraph &egraph, EClassId id,
                const std::map<EClassId, int> &choice,
                std::map<EClassId, TermPtr> &memo)
{
    id = egraph.find(id);
    auto it = memo.find(id);
    if (it != memo.end())
        return it->second;
    const ENode &node =
        egraph.eclass(id).nodes[static_cast<size_t>(choice.at(id))];
    std::vector<TermPtr> children;
    children.reserve(node.children.size());
    for (EClassId child : node.children)
        children.push_back(buildChoiceTerm(egraph, child, choice, memo));
    TermPtr term = makeTerm(node.op, std::move(children));
    memo[id] = term;
    return term;
}

/** Branch-and-bound exact DAG extraction. */
class ExactSolver
{
  public:
    ExactSolver(const EGraph &egraph, const CostModel &cost, size_t budget)
        : egraph_(egraph), cost_(cost), budget_(budget)
    {}

    std::optional<Extraction>
    solve(EClassId root)
    {
        root = egraph_.find(root);
        greedy_ = computeGreedyCosts(egraph_, cost_, root);
        if (greedy_.at(root).node_index < 0)
            return std::nullopt;

        // Seed the incumbent with the greedy choice evaluated as a DAG.
        std::map<EClassId, int> greedy_choice;
        for (EClassId id : greedy_.ids()) {
            const ClassCost &cc = greedy_.at(id);
            if (cc.node_index >= 0)
                greedy_choice[id] = cc.node_index;
        }
        best_choice_ = greedy_choice;
        best_cost_ = dagCostOf(egraph_, root, greedy_choice, cost_);

        // Min self-cost per class: admissible bound contribution.
        for (EClassId id : greedy_.ids()) {
            double m = CostModel::kInfinity;
            for (const ENode &node : egraph_.eclass(id).nodes)
                m = std::min(m, cost_.nodeCost(node));
            min_self_[id] = m;
        }

        std::map<EClassId, int> choice;
        std::set<EClassId> pending{root};
        search(choice, pending, 0.0, root);

        std::map<EClassId, TermPtr> memo;
        Extraction out;
        out.term = buildChoiceTerm(egraph_, root, best_choice_, memo);
        out.dag_cost = best_cost_;
        out.tree_cost = treeCost(*out.term);
        return out;
    }

  private:
    double
    treeCost(const Term &term) const
    {
        ENode probe{term.op(), {}};
        double total = cost_.nodeCost(probe);
        for (const auto &child : term.children())
            total += treeCost(*child);
        return total;
    }

    void
    search(std::map<EClassId, int> &choice, std::set<EClassId> &pending,
           double cost_so_far, EClassId root)
    {
        if (expansions_++ > budget_)
            return;
        // Admissible lower bound: every pending class costs at least its
        // cheapest node.
        double bound = cost_so_far;
        for (EClassId id : pending)
            bound += min_self_.at(id);
        if (bound >= best_cost_)
            return;
        if (pending.empty()) {
            if (choiceAcyclic(egraph_, root, choice)) {
                best_cost_ = cost_so_far;
                best_choice_ = choice;
            }
            return;
        }
        EClassId id = *pending.begin();
        pending.erase(pending.begin());

        // Candidate nodes ordered by self cost.
        const EClass &cls = egraph_.eclass(id);
        std::vector<int> order(cls.nodes.size());
        for (size_t i = 0; i < order.size(); ++i)
            order[i] = static_cast<int>(i);
        std::sort(order.begin(), order.end(), [&](int a, int b) {
            return cost_.nodeCost(cls.nodes[static_cast<size_t>(a)]) <
                   cost_.nodeCost(cls.nodes[static_cast<size_t>(b)]);
        });

        for (int n : order) {
            const ENode &node = cls.nodes[static_cast<size_t>(n)];
            double self = cost_.nodeCost(node);
            if (self == CostModel::kInfinity)
                break;
            // Skip nodes with infeasible children.
            bool feasible = true;
            for (EClassId child : node.children) {
                if (greedy_.at(egraph_.find(child)).node_index < 0) {
                    feasible = false;
                    break;
                }
            }
            if (!feasible)
                continue;
            choice[id] = n;
            std::vector<EClassId> added;
            for (EClassId child : node.children) {
                EClassId c = egraph_.find(child);
                if (!choice.count(c) && pending.insert(c).second)
                    added.push_back(c);
            }
            search(choice, pending, cost_so_far + self, root);
            for (EClassId c : added)
                pending.erase(c);
            choice.erase(id);
        }
        pending.insert(id);
    }

    const EGraph &egraph_;
    const CostModel &cost_;
    size_t budget_;
    size_t expansions_ = 0;
    GreedyCosts greedy_;
    std::unordered_map<EClassId, double> min_self_;
    std::map<EClassId, int> best_choice_;
    double best_cost_ = CostModel::kInfinity;
};

} // namespace

std::optional<Extraction>
extractGreedy(const EGraph &egraph, EClassId root, const CostModel &cost)
{
    EClassId canonical = egraph.find(root);
    auto costs = computeGreedyCosts(egraph, cost, canonical);
    const ClassCost &best = costs.at(canonical);
    if (best.node_index < 0)
        return std::nullopt;
    std::set<EClassId> visiting;
    Extraction out;
    out.term = buildTerm(egraph, canonical, costs, visiting);
    out.tree_cost = best.cost;
    std::map<EClassId, int> choice;
    for (EClassId id : costs.ids()) {
        const ClassCost &cc = costs.at(id);
        if (cc.node_index >= 0)
            choice[id] = cc.node_index;
    }
    out.dag_cost = dagCostOf(egraph, canonical, choice, cost);
    return out;
}

TermPtr
extractSmallest(const EGraph &egraph, EClassId root)
{
    TermSizeCost cost;
    auto extraction = extractGreedy(egraph, root, cost);
    SEER_ASSERT(extraction.has_value(),
                "extractSmallest on infeasible class");
    return extraction->term;
}

std::optional<Extraction>
extractExact(const EGraph &egraph, EClassId root, const CostModel &cost,
             size_t budget)
{
    return ExactSolver(egraph, cost, budget).solve(root);
}

} // namespace seer::eg
