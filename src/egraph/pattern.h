/**
 * @file
 * Patterns and e-matching.
 *
 * Patterns are terms whose leaves may be variables, written "?x" in the
 * S-expression syntax. E-matching finds all substitutions (variable ->
 * e-class id) under which a pattern is present in the e-graph.
 *
 * The default matching path is indexed and allocation-lean: each pattern
 * is compiled once into a flat instruction program (an egg-style virtual
 * machine with pre-numbered variable slots and an explicit backtracking
 * stack), and root candidates come from the e-graph's (op, arity) index
 * instead of a whole-graph scan. A timestamp-filtered variant
 * (ematchDirty) supports the runner's incremental re-matching. The
 * pre-index recursive matcher is kept as ematchNaive: it is the
 * reference implementation differential tests compare against.
 */
#ifndef SEER_EGRAPH_PATTERN_H_
#define SEER_EGRAPH_PATTERN_H_

#include <memory>
#include <mutex>
#include <unordered_map>

#include "egraph/egraph.h"

namespace seer::eg {

class Pattern;
using PatternPtr = std::shared_ptr<const Pattern>;

/**
 * A pattern compiled to a flat program. Instructions bind the nodes of
 * a class into contiguous registers; variables are pre-numbered register
 * slots, so matching allocates nothing per candidate class beyond the
 * reusable machine buffers.
 */
class CompiledPattern
{
  public:
    explicit CompiledPattern(const Pattern &pattern);

    /** Head operator of the pattern, empty for a bare variable. */
    Symbol rootOp() const { return root_op_; }
    size_t rootArity() const { return root_arity_; }
    bool rootIsVar() const { return root_is_var_; }

    /** Distinct variables in first-occurrence (pre-order) order. */
    const std::vector<Symbol> &variables() const { return vars_; }

    size_t numRegisters() const { return num_regs_; }

  private:
    struct Instr
    {
        enum class Kind {
            /** Enumerate nodes of class regs[in] with (op, arity);
             *  write the children into regs[out..out+arity). */
            Bind,
            /** Require find(regs[in]) == find(regs[other]) (repeated
             *  variable consistency). */
            Compare,
        };
        Kind kind;
        Symbol op;
        uint32_t arity = 0;
        uint32_t in = 0;
        uint32_t out = 0;
        uint32_t other = 0;
    };

    void compile(const Pattern &pattern, uint32_t reg,
                 std::unordered_map<Symbol, uint32_t> &var_regs);

    std::vector<Instr> instrs_;
    std::vector<Symbol> vars_;
    std::vector<uint32_t> var_regs_; ///< parallel to vars_
    uint32_t num_regs_ = 1;
    Symbol root_op_;
    size_t root_arity_ = 0;
    bool root_is_var_ = false;

    friend class MatchMachine;
};

/** A pattern tree node: a variable or an operator over sub-patterns. */
class Pattern
{
  public:
    /** Variable pattern. */
    explicit Pattern(Symbol var) : is_var_(true), op_(var) {}

    /** Operator pattern. */
    Pattern(Symbol op, std::vector<PatternPtr> children)
        : is_var_(false), op_(op), children_(std::move(children))
    {}

    bool isVar() const { return is_var_; }
    Symbol var() const { return op_; }
    Symbol op() const { return op_; }
    const std::vector<PatternPtr> &children() const { return children_; }

    /** All distinct variables in this pattern (cached, first-occurrence
     *  order — the compiled pattern's slot order). */
    const std::vector<Symbol> &variables() const;

    /** The compiled form, built lazily once (thread-safe: the parallel
     *  match phase may race to first use). */
    const CompiledPattern &compiled() const;

    std::string str() const;

  private:
    bool is_var_;
    Symbol op_; // variable name (without '?') or operator symbol
    std::vector<PatternPtr> children_;
    mutable std::once_flag compile_once_;
    mutable std::unique_ptr<const CompiledPattern> compiled_;
};

/** Parse a pattern S-expression, e.g. "(arith.addi:i32 ?a ?b)". */
PatternPtr parsePattern(std::string_view text);

/** A substitution: pattern variable -> e-class id. */
using Subst = std::unordered_map<Symbol, EClassId>;

/** One match of a pattern: the matched class and the substitution. */
struct Match
{
    EClassId root;
    Subst subst;
};

/** Search-phase instrumentation for one ematch call. */
struct EMatchStats
{
    /** Candidate classes actually matched against. */
    size_t candidates_visited = 0;
    /** Candidates skipped because their stamp was at or below the
     *  watermark (ematchDirty only). */
    size_t skipped_clean = 0;
    /** True when the (op, arity) index pruned the candidate set (false
     *  for bare-variable patterns, which must scan every class). */
    bool used_index = false;
};

/**
 * E-matching: find every (class, substitution) where the pattern occurs.
 * `limit` caps the number of matches collected (0 = unlimited). Matches
 * are ordered by ascending canonical root id, and within a root by the
 * class's node enumeration order — the same order, and the same match
 * set, as ematchNaive.
 */
std::vector<Match> ematch(const EGraph &egraph, const Pattern &pattern,
                          size_t limit = 0, EMatchStats *stats = nullptr);

/**
 * Incremental e-matching: like ematch, but only candidate classes whose
 * modification stamp is strictly above `watermark` are searched. Sound
 * only on a rebuilt graph (rebuild() propagates dirtiness to ancestor
 * classes) and only while EGraph::rollbackGeneration() is unchanged
 * since the watermark was taken.
 */
std::vector<Match> ematchDirty(const EGraph &egraph,
                               const Pattern &pattern, uint64_t watermark,
                               size_t limit = 0,
                               EMatchStats *stats = nullptr);

/**
 * The pre-index reference matcher: walks every class and matches with a
 * continuation-passing recursive matcher. Kept for differential testing
 * (RunnerOptions::naive_match) and as executable documentation of the
 * match semantics.
 */
std::vector<Match> ematchNaive(const EGraph &egraph,
                               const Pattern &pattern, size_t limit = 0);

/**
 * Phase 1 of sharded e-matching: the candidate classes of `pattern`,
 * canonicalized, deduplicated and sorted ascending — exactly the
 * sequence ematch()/ematchDirty() iterate (with `use_watermark`, the
 * stamp filter runs first and `stats->skipped_clean`/`used_index` are
 * filled). Pure read; callers slice the result into chunks and match
 * each chunk independently (ematchChunk).
 */
std::vector<EClassId> ematchCandidates(const EGraph &egraph,
                                       const Pattern &pattern,
                                       uint64_t watermark,
                                       bool use_watermark,
                                       EMatchStats *stats = nullptr);

/**
 * Phase 2 of sharded e-matching: match a contiguous slice of an
 * ematchCandidates() list into a private buffer. `limit` caps this
 * chunk's matches (0 = unlimited). Read-only on the e-graph — safe to
 * run concurrently with other chunks of the same or other patterns.
 * Concatenating the per-chunk results in chunk order and truncating to
 * `limit` yields bit-identical matches to the serial ematch() walk of
 * the same candidate list, for any chunk size.
 */
std::vector<Match> ematchChunk(const EGraph &egraph,
                               const Pattern &pattern,
                               const EClassId *candidates, size_t count,
                               size_t limit,
                               EMatchStats *stats = nullptr);

/** Match a pattern against one specific class. */
std::vector<Subst> ematchAt(const EGraph &egraph, const Pattern &pattern,
                            EClassId root, size_t limit = 0);

/**
 * Instantiate a pattern under a substitution, adding new nodes to the
 * e-graph; returns the class of the instantiated term.
 */
EClassId instantiate(EGraph &egraph, const Pattern &pattern,
                     const Subst &subst);

/**
 * Instantiate a pattern as a ground term, resolving each variable with
 * `resolve` (typically an extractor). Used for proof logging.
 */
TermPtr instantiateTerm(const Pattern &pattern, const Subst &subst,
                        const std::function<TermPtr(EClassId)> &resolve);

} // namespace seer::eg

#endif // SEER_EGRAPH_PATTERN_H_
