/**
 * @file
 * Patterns and e-matching.
 *
 * Patterns are terms whose leaves may be variables, written "?x" in the
 * S-expression syntax. E-matching finds all substitutions (variable ->
 * e-class id) under which a pattern is present in the e-graph.
 */
#ifndef SEER_EGRAPH_PATTERN_H_
#define SEER_EGRAPH_PATTERN_H_

#include <memory>
#include <unordered_map>

#include "egraph/egraph.h"

namespace seer::eg {

class Pattern;
using PatternPtr = std::shared_ptr<const Pattern>;

/** A pattern tree node: a variable or an operator over sub-patterns. */
class Pattern
{
  public:
    /** Variable pattern. */
    explicit Pattern(Symbol var) : is_var_(true), op_(var) {}

    /** Operator pattern. */
    Pattern(Symbol op, std::vector<PatternPtr> children)
        : is_var_(false), op_(op), children_(std::move(children))
    {}

    bool isVar() const { return is_var_; }
    Symbol var() const { return op_; }
    Symbol op() const { return op_; }
    const std::vector<PatternPtr> &children() const { return children_; }

    /** All distinct variables in this pattern. */
    std::vector<Symbol> variables() const;

    std::string str() const;

  private:
    bool is_var_;
    Symbol op_; // variable name (without '?') or operator symbol
    std::vector<PatternPtr> children_;
};

/** Parse a pattern S-expression, e.g. "(arith.addi:i32 ?a ?b)". */
PatternPtr parsePattern(std::string_view text);

/** A substitution: pattern variable -> e-class id. */
using Subst = std::unordered_map<Symbol, EClassId>;

/** One match of a pattern: the matched class and the substitution. */
struct Match
{
    EClassId root;
    Subst subst;
};

/**
 * E-matching: find every (class, substitution) where the pattern occurs.
 * `limit` caps the number of matches collected (0 = unlimited).
 */
std::vector<Match> ematch(const EGraph &egraph, const Pattern &pattern,
                          size_t limit = 0);

/** Match a pattern against one specific class. */
std::vector<Subst> ematchAt(const EGraph &egraph, const Pattern &pattern,
                            EClassId root, size_t limit = 0);

/**
 * Instantiate a pattern under a substitution, adding new nodes to the
 * e-graph; returns the class of the instantiated term.
 */
EClassId instantiate(EGraph &egraph, const Pattern &pattern,
                     const Subst &subst);

/**
 * Instantiate a pattern as a ground term, resolving each variable with
 * `resolve` (typically an extractor). Used for proof logging.
 */
TermPtr instantiateTerm(const Pattern &pattern, const Subst &subst,
                        const std::function<TermPtr(EClassId)> &resolve);

} // namespace seer::eg

#endif // SEER_EGRAPH_PATTERN_H_
