/**
 * @file
 * The rewriting engine: repeatedly e-match all rules, apply the resulting
 * unions, and rebuild, until saturation or a limit is reached.
 *
 * Includes a backoff scheduler (egg's BackoffScheduler): a rule whose
 * match count explodes is banned for exponentially growing spans so one
 * explosive rule cannot starve the rest.
 *
 * Every applied union is recorded with concrete lhs/rhs terms; the
 * verification flow (core/verify.h) replays these records through the
 * equivalence checker — the paper's translation-validation decomposition.
 */
#ifndef SEER_EGRAPH_RUNNER_H_
#define SEER_EGRAPH_RUNNER_H_

#include "egraph/rewrite.h"

namespace seer::eg {

/** Why the runner stopped. */
enum class StopReason {
    Saturated, ///< no rule produced a new union
    IterLimit,
    NodeLimit,
    TimeLimit,
};

std::string stopReasonName(StopReason reason);

/** One applied union, with ground terms for translation validation. */
struct RewriteRecord
{
    std::string rule;
    TermPtr lhs;
    TermPtr rhs;
};

/** Per-iteration statistics. */
struct IterationStats
{
    size_t matches = 0;
    size_t applied = 0; ///< unions that changed the e-graph
    size_t nodes = 0;
    size_t classes = 0;
    double seconds = 0;
};

struct RunnerOptions
{
    size_t max_iters = 30;
    size_t max_nodes = 100000;
    double time_limit_seconds = 20.0;
    /** Per-rule per-iteration match budget before backoff banning. */
    size_t match_limit = 1000;
    /** Record lhs/rhs terms for each union (needed for verification). */
    bool record_proofs = true;
    /** Worker threads for the (read-only) e-matching phase. 1 =
     *  serial. Matching is embarrassingly parallel across rules; apply
     *  order stays deterministic (results are gathered in rule order),
     *  so the explored e-graph is identical to the serial run. This is
     *  the paper's "parallel e-graph exploration" future-work item. */
    unsigned match_threads = 1;
};

struct RunnerReport
{
    StopReason stop = StopReason::Saturated;
    std::vector<IterationStats> iterations;
    std::vector<RewriteRecord> records;
    double total_seconds = 0;
    size_t total_applied = 0;
};

/** Drives a rule set over an e-graph. */
class Runner
{
  public:
    Runner(EGraph &egraph, RunnerOptions options = {})
        : egraph_(egraph), options_(options)
    {}

    void addRule(Rewrite rule) { rules_.push_back(std::move(rule)); }

    void
    addRules(std::vector<Rewrite> rules)
    {
        for (auto &rule : rules)
            rules_.push_back(std::move(rule));
    }

    size_t numRules() const { return rules_.size(); }

    /** Run to saturation or limits. May be called repeatedly. */
    RunnerReport run();

  private:
    struct RuleState
    {
        size_t times_banned = 0;
        size_t banned_until_iter = 0;
    };

    EGraph &egraph_;
    RunnerOptions options_;
    std::vector<Rewrite> rules_;
    std::vector<RuleState> states_;
};

} // namespace seer::eg

#endif // SEER_EGRAPH_RUNNER_H_
