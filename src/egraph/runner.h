/**
 * @file
 * The rewriting engine: repeatedly e-match all rules, apply the resulting
 * unions, and rebuild, until saturation or a limit is reached.
 *
 * Includes a backoff scheduler (egg's BackoffScheduler): a rule whose
 * match count exceeds its budget still applies its first budget-many
 * matches, then sits out an exponentially growing ban span so one
 * explosive rule cannot starve the rest. The budget itself doubles with
 * every ban (match_limit << times_banned), and bans decay again after a
 * run of clean iterations. Saturation is only reported when zero unions
 * happened *and* no rule is banned — a quiet iteration with pending bans
 * keeps iterating (or stops as StopReason::BannedOut when every rule is
 * banned past the iteration horizon).
 *
 * Every applied union is recorded with concrete lhs/rhs terms; the
 * verification flow (core/verify.h) replays these records through the
 * equivalence checker — the paper's translation-validation decomposition.
 *
 * The runner also keeps per-rule statistics (matches, applications, bans,
 * search/apply seconds) for the bench harnesses; reports serialize to
 * JSON (support/json.h) so bench runs emit machine-readable trajectories.
 *
 * Fault isolation: every rule application runs inside a guard. A
 * FatalError thrown by a (dynamic) rule is recovered — logged in the
 * report, counted per rule — and a circuit breaker quarantines the rule
 * for the rest of the run after `quarantine_after` consecutive failures,
 * so one misbehaving external pass cannot take down the exploration.
 * Strict mode (catch_rule_errors = false) restores fail-fast semantics.
 */
#ifndef SEER_EGRAPH_RUNNER_H_
#define SEER_EGRAPH_RUNNER_H_

#include <chrono>
#include <optional>

#include "egraph/rewrite.h"
#include "support/exec_context.h"
#include "support/json.h"

namespace seer::eg {

/** Why the runner stopped. */
enum class StopReason {
    Saturated, ///< no rule produced a new union and no rule was banned
    IterLimit,
    NodeLimit,
    TimeLimit,
    /** Every rule is banned past the iteration horizon: exploration is
     *  throttled out, not saturated. */
    BannedOut,
    /** Every rule tripped the failure circuit breaker: nothing left to
     *  run. The e-graph is still consistent (failed applications never
     *  union). */
    Quarantined,
    /** The ExecContext was canceled (memory budget breach, SIGINT, or
     *  an explicit request — a plain deadline still reports TimeLimit,
     *  since it only tightens the per-run time budget). */
    Canceled,
};

std::string stopReasonName(StopReason reason);

/** One applied union, with ground terms for translation validation. */
struct RewriteRecord
{
    std::string rule;
    TermPtr lhs;
    TermPtr rhs;
};

/** Per-iteration statistics. */
struct IterationStats
{
    size_t iter = 0; ///< 1-based; gaps appear when banned spans are skipped
    size_t matches = 0;
    size_t applied = 0; ///< unions that changed the e-graph
    size_t banned_rules = 0; ///< rules sitting out this iteration
    size_t nodes = 0;
    size_t classes = 0;
    double seconds = 0;
};

/** Per-rule scheduler and profiling statistics for one run. */
struct RuleStats
{
    std::string name;
    size_t matches = 0;      ///< matches kept (after backoff truncation)
    size_t applications = 0; ///< unions that changed the e-graph
    size_t bans = 0;         ///< times the backoff scheduler banned it
    size_t times_banned = 0; ///< scheduler ban level at end of run
    size_t failures = 0;     ///< recovered FatalErrors while applying
    bool quarantined = false; ///< circuit breaker tripped this run
    double search_seconds = 0;
    double apply_seconds = 0;
    size_t search_candidates = 0; ///< classes actually matched against
    size_t search_skipped_clean = 0; ///< skipped via watermark
    size_t search_shards = 0; ///< shard work items this rule's searches split into
};

/**
 * Aggregate e-matching instrumentation for one run: how much work the
 * operator index, the watermarks, and the match cache saved.
 */
struct MatchPhaseStats
{
    /** Candidate classes actually run through the match machine. */
    size_t candidates_visited = 0;
    /** Candidates skipped because their class was unmodified since the
     *  rule's watermark. */
    size_t skipped_clean = 0;
    /** Previously found matches reused verbatim (clean roots). */
    size_t cached_matches_reused = 0;
    /** ematch calls where the (op, arity) index pruned candidates. */
    size_t index_scans = 0;
    /** ematch calls that had to scan every class (bare-variable
     *  patterns, or the naive reference matcher). */
    size_t full_scans = 0;
    /** Watermark-filtered (incremental) searches. */
    size_t incremental_scans = 0;
    /** Shard work items dispatched across the worker pool. Shard
     *  boundaries are a fixed candidate-count constant, independent of
     *  the job count, so this (like every non-timing field here) is
     *  identical for -j1 and -jN. */
    size_t shards = 0;
    /** Summed busy time of all shard jobs; exceeds wall time when the
     *  pool overlaps them on multiple cores. */
    double shard_seconds = 0;
    /** Wall-clock time spent inside the parallel search phases. */
    double search_wall_seconds = 0;
    /** Worker count the search phase ran with (match_jobs). */
    size_t jobs = 1;
};

struct RunnerOptions
{
    size_t max_iters = 30;
    /** Node budget. The flat SoA storage (storage.h) holds million-node
     *  graphs comfortably, so the default budget no longer caps
     *  exploration at toy sizes. */
    size_t max_nodes = 10000000;
    double time_limit_seconds = 20.0;
    /** Per-rule per-iteration match budget before backoff banning; the
     *  effective budget is match_limit << times_banned (egg). */
    size_t match_limit = 1000;
    /** Base ban span in iterations; a rule's n-th ban lasts
     *  ban_length << n iterations (egg's ban_length). */
    size_t ban_length = 5;
    /** Clean (under-budget) iterations after which a rule's ban level
     *  decays one step, restoring its original budget over time. */
    size_t ban_decay_iters = 3;
    /** Record lhs/rhs terms for each union (needed for verification). */
    bool record_proofs = true;
    /**
     * Worker count for the (read-only) e-matching phase. 1 = serial.
     * The search phase shards into (rule, candidate-chunk) work items
     * over a persistent pool (support/worker_pool.h); workers fill
     * disjoint result slots and the runner folds them in (rule, shard)
     * order, so match lists, reports, and stats are bit-identical for
     * any job count — `-j1 ≡ -jN` extends from pass eval to e-matching.
     * This is the paper's "parallel e-graph exploration" future-work
     * item.
     */
    unsigned match_jobs = 1;
    /**
     * Fault isolation: when true (default) a FatalError thrown while
     * searching or applying one rule is caught, logged in the report,
     * and counted against that rule instead of aborting the whole run.
     * Strict mode (seer-opt --strict) disables this and lets the first
     * error propagate.
     */
    bool catch_rule_errors = true;
    /** Circuit breaker: permanently quarantine a rule for the rest of
     *  the run after this many *consecutive* recovered failures
     *  (distinct from backoff bans, which always expire). */
    size_t quarantine_after = 3;
    /** Use the pre-index whole-graph reference matcher (ematchNaive)
     *  instead of the indexed compiled one. For differential testing;
     *  implies no incremental matching. */
    bool naive_match = false;
    /**
     * Reuse each rule's previous full match set and re-search only
     * classes modified since that rule's last scan (timestamp
     * watermarks). Produces exactly the same per-iteration match lists
     * as a full scan — clean classes can neither gain nor lose matches
     * — so scheduler behavior is unchanged. Falls back to a full rescan
     * whenever the e-graph's rollback generation changes (fault
     * isolation can make matches disappear, which watermarks cannot
     * see).
     */
    bool incremental_match = true;
    /** Unified governance: the context's deadline tightens
     *  time_limit_seconds when it expires sooner (the driver threads
     *  its --deadline through every phase this way), and cancellation
     *  (budget breach, SIGINT) stops the run between applications with
     *  StopReason::Canceled. The default (inert) context imposes
     *  nothing. */
    ExecContext exec;
};

struct RunnerReport
{
    StopReason stop = StopReason::Saturated;
    std::vector<IterationStats> iterations;
    std::vector<RuleStats> rules; ///< one entry per registered rule
    std::vector<RewriteRecord> records;
    double total_seconds = 0;
    size_t total_applied = 0;
    /** Errors caught and recovered from during the run, "rule: what"
     *  (capped; see recovered_errors_dropped). */
    std::vector<std::string> recovered_errors;
    /** Recovered errors beyond the log cap (counted, not stored). */
    size_t recovered_errors_dropped = 0;
    size_t rules_quarantined = 0;
    MatchPhaseStats match_phase;
};

/** JSON views of the statistics (records are deliberately omitted). */
json::Value toJson(const RuleStats &stats);
json::Value toJson(const IterationStats &stats);
json::Value toJson(const MatchPhaseStats &stats);
json::Value toJson(const RunnerReport &report);

/** Drives a rule set over an e-graph. */
class Runner
{
  public:
    Runner(EGraph &egraph, RunnerOptions options = {})
        : egraph_(egraph), options_(options)
    {}

    void addRule(Rewrite rule) { rules_.push_back(std::move(rule)); }

    void
    addRules(std::vector<Rewrite> rules)
    {
        for (auto &rule : rules)
            rules_.push_back(std::move(rule));
    }

    size_t numRules() const { return rules_.size(); }

    /** Run to saturation or limits. May be called repeatedly. */
    RunnerReport run();

  private:
    struct RuleState
    {
        size_t times_banned = 0;
        size_t banned_until_iter = 0;
        size_t clean_streak = 0; ///< consecutive under-budget iterations
        size_t consecutive_failures = 0; ///< recovered errors in a row
        bool quarantined = false; ///< circuit breaker tripped
        /** Incremental matching: the tick at which `cache` was last
         *  refreshed (valid only while cache_valid). */
        uint64_t watermark = 0;
        /** True when `cache` holds this rule's complete, untruncated
         *  match set as of `watermark`. */
        bool cache_valid = false;
        std::vector<Match> cache;
    };

    /** Effective match budget: match_limit << times_banned, saturating. */
    size_t thresholdFor(const RuleState &state) const;

    /** Ban span for the *next* ban: ban_length << times_banned. */
    size_t banSpanFor(const RuleState &state) const;

    EGraph &egraph_;
    RunnerOptions options_;
    std::vector<Rewrite> rules_;
    std::vector<RuleState> states_;
};

} // namespace seer::eg

#endif // SEER_EGRAPH_RUNNER_H_
