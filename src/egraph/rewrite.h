/**
 * @file
 * Rewrite rules over the e-graph.
 *
 * Two kinds, mirroring SEER's "internal" and "external" rules:
 *  - syntactic: lhs pattern -> rhs pattern, with an optional semantic
 *    guard (used for the ROVER datapath/gate-level rules, where validity
 *    is bitwidth- and signage-dependent);
 *  - dynamic: lhs pattern -> C++ callback that may locally extract the
 *    matched sub-expression, translate it to IR, run an MLIR-style pass
 *    and return the transformed term (SEER's orchestration of external
 *    compiler passes).
 */
#ifndef SEER_EGRAPH_REWRITE_H_
#define SEER_EGRAPH_REWRITE_H_

#include <functional>
#include <string>

#include "egraph/pattern.h"

namespace seer::eg {

/** A semantic guard: veto a match before it is applied. */
using Condition = std::function<bool(const EGraph &, const Match &)>;

/**
 * A dynamic applier: produce the replacement term for a match, or nullopt
 * when the external transformation does not apply. The returned term is
 * added to the e-graph and unioned with the matched class.
 */
using DynApplier =
    std::function<std::optional<TermPtr>(EGraph &, const Match &)>;

/**
 * A batching hook for dynamic rules: called once per runner iteration,
 * after scheduler truncation and before any match of this rule is
 * applied, with exactly the matches the apply phase will consume. The
 * e-graph is immutable at that point, so the hook may precompute
 * expensive per-match work — SEER's external-pass layer uses it to
 * collect, dedupe and evaluate candidate snippets on a worker pool, so
 * the (serial, order-preserving) apply phase only consults a cache.
 * The hook must not mutate the e-graph and must leave any shared state
 * it updates consistent even if it is skipped entirely: it is an
 * accelerator, never a semantic dependency.
 */
using PrepareHook =
    std::function<void(const EGraph &, const std::vector<Match> &)>;

/** A rewrite rule. */
struct Rewrite
{
    std::string name;
    PatternPtr lhs;
    PatternPtr rhs;     ///< set for syntactic rules
    Condition condition; ///< optional guard
    DynApplier dyn;      ///< set for dynamic rules
    PrepareHook prepare; ///< optional batch stage for dynamic rules

    bool isDynamic() const { return static_cast<bool>(dyn); }
};

/** Build a syntactic rewrite from S-expression patterns. */
inline Rewrite
makeRewrite(std::string name, std::string_view lhs, std::string_view rhs,
            Condition condition = nullptr)
{
    Rewrite rw;
    rw.name = std::move(name);
    rw.lhs = parsePattern(lhs);
    rw.rhs = parsePattern(rhs);
    rw.condition = std::move(condition);
    return rw;
}

/** Build a dynamic rewrite. */
inline Rewrite
makeDynRewrite(std::string name, std::string_view lhs, DynApplier applier,
               Condition condition = nullptr)
{
    Rewrite rw;
    rw.name = std::move(name);
    rw.lhs = parsePattern(lhs);
    rw.dyn = std::move(applier);
    rw.condition = std::move(condition);
    return rw;
}

} // namespace seer::eg

#endif // SEER_EGRAPH_REWRITE_H_
