/**
 * @file
 * Extraction: selecting a best term from an e-graph under a cost model.
 *
 * Two extractors are provided, mirroring the paper:
 *  - a greedy per-class extractor (egg's built-in method), used during
 *    rewriting (analysis-friendly local extraction) and for the control
 *    path cost (Eqn 3); ties are broken by term size so zero-cost cycles
 *    (e.g. x = x|x) can never be selected;
 *  - an exact DAG extractor with common-subexpression sharing, standing in
 *    for ROVER's ILP formulation (Eqn 4, solved with CBC in the paper),
 *    implemented as branch-and-bound with an admissible bound and a node
 *    budget, falling back to greedy when the budget is exhausted (the
 *    exhaustion is reported through ExtractStats::budget_exhausted).
 *
 * Both extractors read per-class (min tree cost, min term size) bounds.
 * When the cost model is *named* and a matching cost-bound analysis is
 * registered on the e-graph (registerCostBound), the bounds are
 * maintained incrementally through unions and rebuilds — repeated
 * extraction across runner iterations is amortized O(changed classes)
 * instead of a fresh fixpoint per call. Otherwise (or under
 * ExtractOptions::naive) they are recomputed from scratch. The two paths
 * compute the identical greatest fixpoint with identical floating-point
 * operation order, so extraction results are bit-identical — the
 * differential guarantee egraph_extract_test enforces.
 *
 * Threading: extraction may lazily drain a registered cost-bound
 * analysis (a logically-const cache update). It must only be called from
 * serial contexts — never from the concurrent read-only e-matching
 * phase, which by construction performs no extraction.
 */
#ifndef SEER_EGRAPH_EXTRACT_H_
#define SEER_EGRAPH_EXTRACT_H_

#include <limits>
#include <unordered_map>

#include "egraph/analysis.h"
#include "egraph/egraph.h"

namespace seer::eg {

/** A cost model assigns a non-negative self-cost to each e-node. */
class CostModel
{
  public:
    virtual ~CostModel() = default;

    /** Self cost of using this node (children costs are added). */
    virtual double nodeCost(const ENode &node) const = 0;

    /**
     * Class-aware refinement: self cost of `node` as a member of
     * `egraph` — e.g. an area model reading sibling analysis facts such
     * as shift-amount constants. Extraction always uses this form;
     * defaults to the context-free nodeCost().
     */
    virtual double nodeCostInClass(const EGraph &egraph,
                                   const ENode &node) const
    {
        (void)egraph;
        return nodeCost(node);
    }

    /**
     * Stable identity: a non-empty name lets extractors bind to a
     * registered cost-bound analysis ("cost-bound:<name>"). Binding is
     * by name, so two model instances sharing a name must be
     * behaviorally identical. The default (empty) never binds — ad-hoc
     * models silently take the from-scratch path.
     */
    virtual std::string name() const { return ""; }

    /**
     * Revision counter of the model's external inputs (e.g. the loop
     * registry's touch log). A registered cost-bound analysis resyncs
     * when this advances, invalidating only the dependent classes.
     */
    virtual uint64_t revision() const { return 0; }

    /** External-input keys touched since revision `since`. */
    virtual std::vector<std::string> touchedSince(uint64_t since) const
    {
        (void)since;
        return {};
    }

    /** The external-input key `node`'s self-cost reads, when any (e.g.
     *  the loop id of an affine.for node). */
    virtual std::optional<std::string>
    dependencyKey(const ENode &node) const
    {
        (void)node;
        return std::nullopt;
    }

    /** Cost used to forbid a node entirely. */
    static constexpr double kInfinity =
        std::numeric_limits<double>::infinity();
};

/** Cost model that counts one unit per node (smallest-term extraction). */
class TermSizeCost : public CostModel
{
  public:
    double nodeCost(const ENode &) const override { return 1.0; }
    std::string name() const override { return "term-size"; }
};

/**
 * The cost lower-bound e-class analysis: per class, the exact
 * lexicographic (min tree cost, min term size) pair under one cost
 * model, maintained incrementally as the greatest fixpoint of the
 * class-cost equations. Values only tighten while the graph grows;
 * merges seed the winner with the lexicographic min of both halves and
 * re-drain; external model-input updates (CostModel::revision) and
 * checkpoint rollbacks raise values through targeted invalidation and
 * the journal respectively. Quiescence at the greatest fixpoint — which
 * the from-scratch path computes too, with the same FP operation order —
 * is what makes incremental and naive extraction bit-identical.
 *
 * The bound is admissible for branch-and-bound: cost is the exact min
 * *tree* cost of the class, a lower bound on any DAG realization's
 * contribution.
 */
class CostBoundAnalysis final : public Analysis
{
  public:
    explicit CostBoundAnalysis(const CostModel &model) : model_(model) {}

    /** Per-class maintained value; kInfinity marks infeasible. */
    struct Value
    {
        double cost = CostModel::kInfinity;
        double size = CostModel::kInfinity;
        bool operator==(const Value &other) const
        {
            return cost == other.cost && size == other.size;
        }
    };

    std::string name() const override
    {
        return "cost-bound:" + model_.name();
    }
    const CostModel &model() const { return model_; }

    /**
     * Resync external model inputs and drain pending recomputes; after
     * this, value() holds the exact greatest fixpoint for the current
     * graph + model state. Logically const (cache maintenance); any
     * datum overwrite is journaled, so it is safe inside checkpoints.
     */
    void ensureCurrent(const EGraph &egraph) const;

    /** Maintained value of a *canonical* class id. Only meaningful
     *  after ensureCurrent(). */
    Value value(EClassId id) const
    {
        return id < values_.size() ? values_[id] : Value{};
    }

    /** Total class recomputations ever performed (telemetry: callers
     *  diff around ensureCurrent to cost one extraction). */
    uint64_t recomputes() const { return recomputes_; }

    void onMake(EGraph &egraph, EClassId id, const ENode &node) override;
    void onMerge(EGraph &egraph, EClassId into, EClassId from,
                 const std::vector<std::pair<ENode, EClassId>>
                     &from_parents) override;
    void onPeerChanged(EGraph &egraph, EClassId id) override;
    void onCheckpoint(EGraph &egraph) override;
    void onRollback(EGraph &egraph, size_t live_ids) override;
    void onAttach(EGraph &egraph) override;
    std::shared_ptr<void> saveDatum(EClassId id) const override;
    void restoreDatum(EClassId id,
                      const std::shared_ptr<void> &datum) override;
    std::string checkInvariants(const EGraph &egraph) const override;

  private:
    void ensure(EClassId id) const
    {
        if (id >= values_.size()) {
            values_.resize(id + 1);
            queued_.resize(id + 1, 0);
        }
    }
    void push(EClassId id) const;
    void recomputeClass(const EGraph &egraph, EClassId id) const;
    void syncModel(const EGraph &egraph) const;

    const CostModel &model_;
    // All state is mutable: the analysis is a lazily-maintained cache
    // drained from const read paths (see ensureCurrent).
    mutable std::vector<Value> values_;
    mutable std::vector<uint8_t> queued_; ///< dense pending flags
    mutable std::vector<EClassId> pending_;
    /** External-input key -> classes whose nodes read it (appended at
     *  recompute; stale/duplicate entries are tolerated). */
    mutable std::unordered_map<std::string, std::vector<EClassId>> deps_;
    mutable uint64_t model_revision_ = 0;
    mutable uint64_t recomputes_ = 0;
};

/**
 * Register (or fetch the already-registered) cost-bound analysis for
 * `model` on `egraph`. The model must be named and must outlive the
 * e-graph. Registration never changes how the graph evolves — only how
 * fast extraction reads it.
 */
CostBoundAnalysis &registerCostBound(EGraph &egraph,
                                     const CostModel &model);

/** Extraction result. */
struct Extraction
{
    TermPtr term;
    /** Tree cost (children counted at every use). */
    double tree_cost = 0;
    /** DAG cost (each distinct class counted once). */
    double dag_cost = 0;
};

/** Telemetry of one extraction call (all counters additive so one
 *  struct can aggregate several calls). */
struct ExtractStats
{
    /** Distinct classes in the extracted term's support. */
    size_t classes_visited = 0;
    /** Cost-bound recomputations this call triggered (incremental path:
     *  the amortized work; scratch path: the cone fixpoint size). */
    size_t classes_recomputed = 0;
    /** Branch-and-bound subtrees cut by the admissible bound. */
    size_t bound_prunes = 0;
    /** Branch-and-bound search-tree expansions. */
    size_t expansions = 0;
    /** The exact search ran out of budget: the result is the best
     *  solution found (at worst greedy), not proven optimal. */
    bool budget_exhausted = false;
    /** A registered cost-bound analysis served the bounds. */
    bool used_analysis = false;
};

/** Options shared by the extractors. */
struct ExtractOptions
{
    /**
     * Reference path: recompute bounds from scratch and (for the exact
     * extractor) use the weak pending-classes-only bound, ignoring any
     * registered analysis. Mirrors RunnerOptions::naive_match — the
     * differential-testing arm.
     */
    bool naive = false;
    /** Exact extractor search budget (expansions). */
    size_t budget = 200000;
    /** Optional telemetry sink (counters are added, not reset). */
    ExtractStats *stats = nullptr;
    /**
     * Governance: the exact search accounts its memo/frontier bytes
     * against MemSubsystem::Extraction and treats cancellation
     * (deadline, budget breach, SIGINT) like budget exhaustion — the
     * best solution found so far is returned. Inert by default.
     */
    ExecContext exec;
};

/**
 * Greedy extraction: per class, pick the node minimizing
 * self-cost + sum(child class costs), ties broken by smaller term size.
 * Returns nullopt if the root has no finite-cost derivation.
 */
std::optional<Extraction> extractGreedy(const EGraph &egraph,
                                        EClassId root,
                                        const CostModel &cost);
std::optional<Extraction> extractGreedy(const EGraph &egraph,
                                        EClassId root,
                                        const CostModel &cost,
                                        const ExtractOptions &options);

/** Smallest-term extraction (greedy under TermSizeCost). */
TermPtr extractSmallest(const EGraph &egraph, EClassId root);

/**
 * Exact DAG extraction: choose one node per needed class minimizing the
 * sum of chosen node self-costs with sharing. `budget` caps the search
 * tree; on exhaustion the best solution found so far (at worst the greedy
 * one) is returned — pass ExtractOptions::stats to detect this.
 */
std::optional<Extraction> extractExact(const EGraph &egraph, EClassId root,
                                       const CostModel &cost,
                                       size_t budget = 200000);
std::optional<Extraction> extractExact(const EGraph &egraph, EClassId root,
                                       const CostModel &cost,
                                       const ExtractOptions &options);

} // namespace seer::eg

#endif // SEER_EGRAPH_EXTRACT_H_
