/**
 * @file
 * Extraction: selecting a best term from an e-graph under a cost model.
 *
 * Two extractors are provided, mirroring the paper:
 *  - a greedy per-class extractor (egg's built-in method), used during
 *    rewriting (analysis-friendly local extraction) and for the control
 *    path cost (Eqn 3); ties are broken by term size so zero-cost cycles
 *    (e.g. x = x|x) can never be selected;
 *  - an exact DAG extractor with common-subexpression sharing, standing in
 *    for ROVER's ILP formulation (Eqn 4, solved with CBC in the paper),
 *    implemented as branch-and-bound with an admissible bound and a node
 *    budget, falling back to greedy when the budget is exhausted.
 */
#ifndef SEER_EGRAPH_EXTRACT_H_
#define SEER_EGRAPH_EXTRACT_H_

#include <limits>

#include "egraph/egraph.h"

namespace seer::eg {

/** A cost model assigns a non-negative self-cost to each e-node. */
class CostModel
{
  public:
    virtual ~CostModel() = default;

    /** Self cost of using this node (children costs are added). */
    virtual double nodeCost(const ENode &node) const = 0;

    /** Cost used to forbid a node entirely. */
    static constexpr double kInfinity =
        std::numeric_limits<double>::infinity();
};

/** Cost model that counts one unit per node (smallest-term extraction). */
class TermSizeCost : public CostModel
{
  public:
    double nodeCost(const ENode &) const override { return 1.0; }
};

/** Extraction result. */
struct Extraction
{
    TermPtr term;
    /** Tree cost (children counted at every use). */
    double tree_cost = 0;
    /** DAG cost (each distinct class counted once). */
    double dag_cost = 0;
};

/**
 * Greedy extraction: per class, pick the node minimizing
 * self-cost + sum(child class costs), ties broken by smaller term size.
 * Returns nullopt if the root has no finite-cost derivation.
 */
std::optional<Extraction> extractGreedy(const EGraph &egraph,
                                        EClassId root,
                                        const CostModel &cost);

/** Smallest-term extraction (greedy under TermSizeCost). */
TermPtr extractSmallest(const EGraph &egraph, EClassId root);

/**
 * Exact DAG extraction: choose one node per needed class minimizing the
 * sum of chosen node self-costs with sharing. `budget` caps the search
 * tree; on exhaustion the best solution found so far (at worst the greedy
 * one) is returned.
 */
std::optional<Extraction> extractExact(const EGraph &egraph, EClassId root,
                                       const CostModel &cost,
                                       size_t budget = 200000);

} // namespace seer::eg

#endif // SEER_EGRAPH_EXTRACT_H_
