/**
 * @file
 * Ground terms: immutable operator trees.
 *
 * Terms are the currency between the e-graph and the SeerLang bridge.
 * Operators are interned Symbols that may encode static attributes, e.g.
 * "arith.addi:i32", "const:42:i32", "var:i", "affine.for:L3:0:100:1".
 * The textual form is an S-expression: (op child child ...), with leaves
 * written as bare atoms.
 */
#ifndef SEER_EGRAPH_TERM_H_
#define SEER_EGRAPH_TERM_H_

#include <memory>
#include <string>
#include <vector>

#include "support/symbol.h"

namespace seer::eg {

class Term;
using TermPtr = std::shared_ptr<const Term>;

/** An immutable operator tree node. */
class Term
{
  public:
    Term(Symbol op, std::vector<TermPtr> children)
        : op_(op), children_(std::move(children))
    {}

    Symbol op() const { return op_; }
    const std::vector<TermPtr> &children() const { return children_; }
    size_t arity() const { return children_.size(); }
    bool isLeaf() const { return children_.empty(); }
    const TermPtr &child(size_t i) const { return children_[i]; }

    /** Total node count of the tree. */
    size_t size() const;

    /** Structural equality. */
    bool equals(const Term &other) const;

    /** Render as an S-expression. */
    std::string str() const;

  private:
    Symbol op_;
    std::vector<TermPtr> children_;
};

/** Build a term. */
TermPtr makeTerm(Symbol op, std::vector<TermPtr> children = {});
TermPtr makeTerm(std::string_view op, std::vector<TermPtr> children = {});

/** Parse an S-expression, e.g. "(arith.addi:i32 var:a const:1:i32)". */
TermPtr parseTerm(std::string_view text);

/** Split a symbol of the form "a:b:c" into fields. */
std::vector<std::string> splitSymbol(Symbol symbol);

/** Join fields into a symbol. */
Symbol joinSymbol(const std::vector<std::string> &fields);

} // namespace seer::eg

#endif // SEER_EGRAPH_TERM_H_
