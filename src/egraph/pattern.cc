#include "egraph/pattern.h"

#include <algorithm>
#include <sstream>

#include "support/error.h"

namespace seer::eg {

namespace {

PatternPtr
fromTerm(const TermPtr &term)
{
    const std::string &op = term->op().str();
    if (!op.empty() && op[0] == '?') {
        if (!term->isLeaf())
            fatal("pattern variable '" + op + "' cannot have children");
        return std::make_shared<Pattern>(Symbol(op.substr(1)));
    }
    std::vector<PatternPtr> children;
    children.reserve(term->arity());
    for (const auto &child : term->children())
        children.push_back(fromTerm(child));
    return std::make_shared<Pattern>(term->op(), std::move(children));
}

/**
 * Continuation-passing backtracking matcher: the pre-index reference
 * implementation (see ematchNaive). The compiled machine below must
 * produce exactly this match set in exactly this order.
 */
class Matcher
{
  public:
    Matcher(const EGraph &egraph, size_t limit)
        : egraph_(egraph), limit_(limit)
    {}

    std::vector<Subst>
    matchAt(const Pattern &pattern, EClassId root)
    {
        Subst subst;
        matchInto(pattern, egraph_.find(root), subst,
                  [&] { results_.push_back(subst); });
        return std::move(results_);
    }

  private:
    using Cont = std::function<void()>;

    bool
    full() const
    {
        return limit_ != 0 && results_.size() >= limit_;
    }

    void
    matchInto(const Pattern &pattern, EClassId id, Subst &subst,
              const Cont &k)
    {
        if (full())
            return;
        if (pattern.isVar()) {
            auto it = subst.find(pattern.var());
            if (it != subst.end()) {
                if (egraph_.find(it->second) == id)
                    k();
                return;
            }
            subst[pattern.var()] = id;
            k();
            subst.erase(pattern.var());
            return;
        }
        for (const ENode &node : egraph_.eclass(id).nodes) {
            if (full())
                return;
            if (node.op != pattern.op() ||
                node.children.size() != pattern.children().size()) {
                continue;
            }
            matchSeq(pattern.children(), node.children, 0, subst, k);
        }
    }

    void
    matchSeq(const std::vector<PatternPtr> &patterns,
             const ChildList &ids, size_t index, Subst &subst,
             const Cont &k)
    {
        if (full())
            return;
        if (index == patterns.size()) {
            k();
            return;
        }
        matchInto(*patterns[index], egraph_.find(ids[index]), subst, [&] {
            matchSeq(patterns, ids, index + 1, subst, k);
        });
    }

    const EGraph &egraph_;
    size_t limit_;
    std::vector<Subst> results_;
};

} // namespace

// --- Compiled pattern machine -----------------------------------------

CompiledPattern::CompiledPattern(const Pattern &pattern)
{
    if (pattern.isVar()) {
        root_is_var_ = true;
        vars_.push_back(pattern.var());
        var_regs_.push_back(0);
        return;
    }
    root_op_ = pattern.op();
    root_arity_ = pattern.children().size();
    std::unordered_map<Symbol, uint32_t> var_regs;
    compile(pattern, 0, var_regs);
}

void
CompiledPattern::compile(const Pattern &pattern, uint32_t reg,
                         std::unordered_map<Symbol, uint32_t> &var_regs)
{
    Instr bind;
    bind.kind = Instr::Kind::Bind;
    bind.op = pattern.op();
    bind.arity = static_cast<uint32_t>(pattern.children().size());
    bind.in = reg;
    bind.out = num_regs_;
    instrs_.push_back(bind);
    uint32_t base = num_regs_;
    num_regs_ += bind.arity;

    // Variable slots and consistency checks first: a repeated-variable
    // Compare only reads registers the Bind above already wrote, and
    // placing it before the sub-Binds prunes earlier. Sub-patterns are
    // then compiled in child order, so the backtracking stack enumerates
    // choices exactly like the reference matcher (later children vary
    // fastest).
    for (uint32_t i = 0; i < bind.arity; ++i) {
        const Pattern &child = *pattern.children()[i];
        if (!child.isVar())
            continue;
        auto it = var_regs.find(child.var());
        if (it == var_regs.end()) {
            var_regs.emplace(child.var(), base + i);
            vars_.push_back(child.var());
            var_regs_.push_back(base + i);
            continue;
        }
        Instr cmp;
        cmp.kind = Instr::Kind::Compare;
        cmp.in = base + i;
        cmp.other = it->second;
        instrs_.push_back(cmp);
    }
    for (uint32_t i = 0; i < bind.arity; ++i) {
        const Pattern &child = *pattern.children()[i];
        if (!child.isVar())
            compile(child, base + i, var_regs);
    }
}

/**
 * Executes a CompiledPattern against one class. The register file and
 * the backtracking stack live in the machine and are reused across
 * candidate classes, so matching a class allocates only when it yields
 * a match (the Subst of the emitted Match).
 */
class MatchMachine
{
  public:
    MatchMachine(const EGraph &egraph, const CompiledPattern &pattern)
        : egraph_(egraph), cp_(pattern)
    {
        regs_.resize(std::max<size_t>(1, cp_.num_regs_));
        stack_.reserve(cp_.instrs_.size());
    }

    /** Append all matches rooted at canonical class `root`; returns
     *  false once `limit` (0 = unlimited) is reached. */
    bool
    matchAt(EClassId root, std::vector<Match> &out, size_t limit)
    {
        auto full = [&] { return limit != 0 && out.size() >= limit; };
        if (cp_.root_is_var_) {
            if (full())
                return false;
            Match m;
            m.root = root;
            m.subst.emplace(cp_.vars_[0], root);
            out.push_back(std::move(m));
            return !full();
        }
        regs_[0] = root;
        stack_.clear();
        uint32_t pc = 0;
        uint32_t node_idx = 0;
        const auto &instrs = cp_.instrs_;
        while (true) {
            bool fail = false;
            if (pc == instrs.size()) {
                Match m;
                m.root = root;
                m.subst.reserve(cp_.vars_.size());
                for (size_t v = 0; v < cp_.vars_.size(); ++v)
                    m.subst.emplace(cp_.vars_[v],
                                    regs_[cp_.var_regs_[v]]);
                out.push_back(std::move(m));
                if (full())
                    return false;
                fail = true; // exhaust remaining choices
            } else if (instrs[pc].kind ==
                       CompiledPattern::Instr::Kind::Compare) {
                const auto &ins = instrs[pc];
                if (egraph_.find(regs_[ins.in]) ==
                    egraph_.find(regs_[ins.other])) {
                    ++pc;
                    node_idx = 0;
                } else {
                    fail = true;
                }
            } else {
                const auto &ins = instrs[pc];
                const NodeList &nodes =
                    egraph_.eclass(regs_[ins.in]).nodes;
                uint32_t i = node_idx;
                for (; i < nodes.size(); ++i) {
                    if (nodes[i].op == ins.op &&
                        nodes[i].children.size() == ins.arity)
                        break;
                }
                if (i < nodes.size()) {
                    const ENode &node = nodes[i];
                    for (uint32_t c = 0; c < ins.arity; ++c)
                        regs_[ins.out + c] =
                            egraph_.find(node.children[c]);
                    stack_.push_back({pc, i + 1});
                    ++pc;
                    node_idx = 0;
                } else {
                    fail = true;
                }
            }
            if (fail) {
                if (stack_.empty())
                    return true;
                pc = stack_.back().pc;
                node_idx = stack_.back().next_node;
                stack_.pop_back();
            }
        }
    }

  private:
    struct Choice
    {
        uint32_t pc;
        uint32_t next_node;
    };

    const EGraph &egraph_;
    const CompiledPattern &cp_;
    std::vector<EClassId> regs_;
    std::vector<Choice> stack_;
};

std::vector<EClassId>
ematchCandidates(const EGraph &egraph, const Pattern &pattern,
                 uint64_t watermark, bool use_watermark,
                 EMatchStats *stats)
{
    EMatchStats local;
    EMatchStats &st = stats ? *stats : local;
    const CompiledPattern &cp = pattern.compiled();
    std::vector<EClassId> candidates;

    if (cp.rootIsVar()) {
        // A bare variable matches every class: nothing to index by.
        // classIds() is already ascending and duplicate-free.
        for (EClassId id : egraph.classIds()) {
            if (use_watermark && egraph.timestampOf(id) <= watermark) {
                ++st.skipped_clean;
                continue;
            }
            candidates.push_back(id);
        }
        return candidates;
    }

    st.used_index = true;
    const OpBucket *raw =
        egraph.opCandidates(cp.rootOp(), cp.rootArity());
    if (!raw)
        return candidates;
    // Canonicalize, sort, and deduplicate the raw candidate entries so
    // iteration order (ascending canonical id) matches a full scan. On
    // incremental scans the watermark filter runs *before* the sort:
    // on a mostly-quiet graph that reduces the per-call cost from
    // sorting every entry ever added to sorting just the dirty few.
    candidates.reserve(raw->size());
    if (use_watermark) {
        for (EClassId entry : *raw) {
            EClassId id = egraph.find(entry);
            if (egraph.timestampOf(id) <= watermark) {
                ++st.skipped_clean;
                continue;
            }
            candidates.push_back(id);
        }
    } else {
        for (EClassId entry : *raw)
            candidates.push_back(egraph.find(entry));
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(
        std::unique(candidates.begin(), candidates.end()),
        candidates.end());
    return candidates;
}

std::vector<Match>
ematchChunk(const EGraph &egraph, const Pattern &pattern,
            const EClassId *candidates, size_t count, size_t limit,
            EMatchStats *stats)
{
    EMatchStats local;
    EMatchStats &st = stats ? *stats : local;
    std::vector<Match> out;
    MatchMachine machine(egraph, pattern.compiled());
    for (size_t i = 0; i < count; ++i) {
        ++st.candidates_visited;
        if (!machine.matchAt(candidates[i], out, limit))
            break;
    }
    return out;
}

namespace {

std::vector<Match>
ematchImpl(const EGraph &egraph, const Pattern &pattern,
           uint64_t watermark, bool use_watermark, size_t limit,
           EMatchStats *stats)
{
    std::vector<EClassId> candidates = ematchCandidates(
        egraph, pattern, watermark, use_watermark, stats);
    return ematchChunk(egraph, pattern, candidates.data(),
                       candidates.size(), limit, stats);
}

} // namespace

const std::vector<Symbol> &
Pattern::variables() const
{
    return compiled().variables();
}

const CompiledPattern &
Pattern::compiled() const
{
    std::call_once(compile_once_, [&] {
        compiled_ = std::make_unique<const CompiledPattern>(*this);
    });
    return *compiled_;
}

std::string
Pattern::str() const
{
    if (isVar())
        return "?" + op_.str();
    if (children_.empty())
        return op_.str();
    std::ostringstream os;
    os << "(" << op_.str();
    for (const auto &child : children_)
        os << " " << child->str();
    os << ")";
    return os.str();
}

PatternPtr
parsePattern(std::string_view text)
{
    return fromTerm(parseTerm(text));
}

std::vector<Match>
ematch(const EGraph &egraph, const Pattern &pattern, size_t limit,
       EMatchStats *stats)
{
    return ematchImpl(egraph, pattern, 0, false, limit, stats);
}

std::vector<Match>
ematchDirty(const EGraph &egraph, const Pattern &pattern,
            uint64_t watermark, size_t limit, EMatchStats *stats)
{
    return ematchImpl(egraph, pattern, watermark, true, limit, stats);
}

std::vector<Match>
ematchNaive(const EGraph &egraph, const Pattern &pattern, size_t limit)
{
    std::vector<Match> out;
    for (EClassId id : egraph.classIds()) {
        size_t remaining = limit == 0 ? 0 : limit - out.size();
        for (Subst &subst : ematchAt(egraph, pattern, id, remaining))
            out.push_back({id, std::move(subst)});
        if (limit != 0 && out.size() >= limit)
            break;
    }
    return out;
}

std::vector<Subst>
ematchAt(const EGraph &egraph, const Pattern &pattern, EClassId root,
         size_t limit)
{
    return Matcher(egraph, limit).matchAt(pattern, root);
}

EClassId
instantiate(EGraph &egraph, const Pattern &pattern, const Subst &subst)
{
    if (pattern.isVar()) {
        auto it = subst.find(pattern.var());
        SEER_ASSERT(it != subst.end(),
                    "unbound pattern variable ?" << pattern.var().str());
        return egraph.find(it->second);
    }
    ENode node;
    node.op = pattern.op();
    node.children.reserve(pattern.children().size());
    for (const auto &child : pattern.children())
        node.children.push_back(instantiate(egraph, *child, subst));
    return egraph.add(std::move(node));
}

TermPtr
instantiateTerm(const Pattern &pattern, const Subst &subst,
                const std::function<TermPtr(EClassId)> &resolve)
{
    if (pattern.isVar()) {
        auto it = subst.find(pattern.var());
        SEER_ASSERT(it != subst.end(),
                    "unbound pattern variable ?" << pattern.var().str());
        return resolve(it->second);
    }
    std::vector<TermPtr> children;
    children.reserve(pattern.children().size());
    for (const auto &child : pattern.children())
        children.push_back(instantiateTerm(*child, subst, resolve));
    return makeTerm(pattern.op(), std::move(children));
}

} // namespace seer::eg
