#include "egraph/pattern.h"

#include <sstream>

#include "support/error.h"

namespace seer::eg {

namespace {

PatternPtr
fromTerm(const TermPtr &term)
{
    const std::string &op = term->op().str();
    if (!op.empty() && op[0] == '?') {
        if (!term->isLeaf())
            fatal("pattern variable '" + op + "' cannot have children");
        return std::make_shared<Pattern>(Symbol(op.substr(1)));
    }
    std::vector<PatternPtr> children;
    children.reserve(term->arity());
    for (const auto &child : term->children())
        children.push_back(fromTerm(child));
    return std::make_shared<Pattern>(term->op(), std::move(children));
}

void
collectVars(const Pattern &pattern, std::vector<Symbol> &out)
{
    if (pattern.isVar()) {
        for (Symbol existing : out) {
            if (existing == pattern.var())
                return;
        }
        out.push_back(pattern.var());
        return;
    }
    for (const auto &child : pattern.children())
        collectVars(*child, out);
}

/**
 * Continuation-passing backtracking matcher. The continuation fires once
 * per complete extension of the working substitution.
 */
class Matcher
{
  public:
    Matcher(const EGraph &egraph, size_t limit)
        : egraph_(egraph), limit_(limit)
    {}

    std::vector<Subst>
    matchAt(const Pattern &pattern, EClassId root)
    {
        Subst subst;
        matchInto(pattern, egraph_.find(root), subst,
                  [&] { results_.push_back(subst); });
        return std::move(results_);
    }

  private:
    using Cont = std::function<void()>;

    bool
    full() const
    {
        return limit_ != 0 && results_.size() >= limit_;
    }

    void
    matchInto(const Pattern &pattern, EClassId id, Subst &subst,
              const Cont &k)
    {
        if (full())
            return;
        if (pattern.isVar()) {
            auto it = subst.find(pattern.var());
            if (it != subst.end()) {
                if (egraph_.find(it->second) == id)
                    k();
                return;
            }
            subst[pattern.var()] = id;
            k();
            subst.erase(pattern.var());
            return;
        }
        for (const ENode &node : egraph_.eclass(id).nodes) {
            if (full())
                return;
            if (node.op != pattern.op() ||
                node.children.size() != pattern.children().size()) {
                continue;
            }
            matchSeq(pattern.children(), node.children, 0, subst, k);
        }
    }

    void
    matchSeq(const std::vector<PatternPtr> &patterns,
             const std::vector<EClassId> &ids, size_t index, Subst &subst,
             const Cont &k)
    {
        if (full())
            return;
        if (index == patterns.size()) {
            k();
            return;
        }
        matchInto(*patterns[index], egraph_.find(ids[index]), subst, [&] {
            matchSeq(patterns, ids, index + 1, subst, k);
        });
    }

    const EGraph &egraph_;
    size_t limit_;
    std::vector<Subst> results_;
};

} // namespace

std::vector<Symbol>
Pattern::variables() const
{
    std::vector<Symbol> out;
    collectVars(*this, out);
    return out;
}

std::string
Pattern::str() const
{
    if (isVar())
        return "?" + op_.str();
    if (children_.empty())
        return op_.str();
    std::ostringstream os;
    os << "(" << op_.str();
    for (const auto &child : children_)
        os << " " << child->str();
    os << ")";
    return os.str();
}

PatternPtr
parsePattern(std::string_view text)
{
    return fromTerm(parseTerm(text));
}

std::vector<Match>
ematch(const EGraph &egraph, const Pattern &pattern, size_t limit)
{
    std::vector<Match> out;
    for (EClassId id : egraph.classIds()) {
        size_t remaining = limit == 0 ? 0 : limit - out.size();
        for (Subst &subst : ematchAt(egraph, pattern, id, remaining))
            out.push_back({id, std::move(subst)});
        if (limit != 0 && out.size() >= limit)
            break;
    }
    return out;
}

std::vector<Subst>
ematchAt(const EGraph &egraph, const Pattern &pattern, EClassId root,
         size_t limit)
{
    return Matcher(egraph, limit).matchAt(pattern, root);
}

EClassId
instantiate(EGraph &egraph, const Pattern &pattern, const Subst &subst)
{
    if (pattern.isVar()) {
        auto it = subst.find(pattern.var());
        SEER_ASSERT(it != subst.end(),
                    "unbound pattern variable ?" << pattern.var().str());
        return egraph.find(it->second);
    }
    ENode node;
    node.op = pattern.op();
    for (const auto &child : pattern.children())
        node.children.push_back(instantiate(egraph, *child, subst));
    return egraph.add(std::move(node));
}

TermPtr
instantiateTerm(const Pattern &pattern, const Subst &subst,
                const std::function<TermPtr(EClassId)> &resolve)
{
    if (pattern.isVar()) {
        auto it = subst.find(pattern.var());
        SEER_ASSERT(it != subst.end(),
                    "unbound pattern variable ?" << pattern.var().str());
        return resolve(it->second);
    }
    std::vector<TermPtr> children;
    children.reserve(pattern.children().size());
    for (const auto &child : pattern.children())
        children.push_back(instantiateTerm(*child, subst, resolve));
    return makeTerm(pattern.op(), std::move(children));
}

} // namespace seer::eg
