#include "egraph/egraph.h"

#include <algorithm>
#include <new>
#include <optional>
#include <unordered_map>

#include "egraph/analysis.h"
#include "support/error.h"
#include "support/fault_inject.h"

namespace seer::eg {

EGraph::EGraph() = default;
EGraph::~EGraph() = default;
EGraph::EGraph(EGraph &&) noexcept = default;
EGraph &EGraph::operator=(EGraph &&) noexcept = default;

EGraph::EGraph(AnalysisHooks hooks)
{
    if (hooks.parse_const)
        registerAnalysis(
            std::make_unique<ConstFoldAnalysis>(std::move(hooks)));
}

Analysis &
EGraph::registerAnalysis(std::unique_ptr<Analysis> analysis)
{
    SEER_ASSERT(!journaling(),
                "registerAnalysis inside an open checkpoint");
    SEER_ASSERT(findAnalysis(analysis->name()) == nullptr,
                "duplicate analysis '" << analysis->name() << "'");
    analysis->index_ = analyses_.size();
    analyses_.push_back(std::move(analysis));
    Analysis &registered = *analyses_.back();
    if (registered.name() == "const-fold")
        const_fold_ = static_cast<ConstFoldAnalysis *>(&registered);
    registered.onAttach(*this);
    return registered;
}

Analysis *
EGraph::findAnalysis(const std::string &name) const
{
    for (const auto &analysis : analyses_)
        if (analysis->name() == name)
            return analysis.get();
    return nullptr;
}

void
EGraph::journalAnalysisDatum(const Analysis &analysis, EClassId id) const
{
    if (!journaling())
        return;
    JournalEntry entry;
    entry.kind = JournalEntry::Kind::AnalysisSet;
    entry.id = id;
    entry.analysis_index = analysis.index();
    entry.analysis_datum = analysis.saveDatum(id);
    journal_.push_back(std::move(entry));
}

void
EGraph::notifyPeerAnalyses(const Analysis &source, EClassId id)
{
    for (auto &analysis : analyses_)
        if (analysis.get() != &source)
            analysis->onPeerChanged(*this, id);
}

void
EGraph::analysisRequeue(EClassId id)
{
    worklist_.push_back(id);
}

EClassId
EGraph::find(EClassId id) const
{
    SEER_ASSERT(id < parents_.size(), "find on invalid eclass id " << id);
    while (parents_[id] != id)
        id = parents_[id];
    return id;
}

EClassId
EGraph::find(EClassId id)
{
    SEER_ASSERT(id < parents_.size(), "find on invalid eclass id " << id);
    // Path halving: point every visited id at its grandparent. Each find
    // halves the chain it walks, so repeated finds flatten union chains
    // and canonicalization stays near-constant as the graph grows.
    while (parents_[id] != id) {
        parents_[id] = parents_[parents_[id]];
        id = parents_[id];
    }
    return id;
}

ENode
EGraph::canonicalize(ENode node) const
{
    for (EClassId &child : node.children)
        child = find(child);
    return node;
}

ENode
EGraph::canonicalize(ENode node)
{
    for (EClassId &child : node.children)
        child = find(child);
    return node;
}

size_t
EGraph::exactBytes() const
{
    size_t bytes =
        parents_.capacity() * sizeof(EClassId) +
        modified_.capacity() * sizeof(uint64_t) +
        worklist_.capacity() * sizeof(EClassId) +
        dirty_since_rebuild_.capacity() * sizeof(EClassId) +
        classes_.capacity() * sizeof(EClass) +
        journal_.capacity() * sizeof(JournalEntry) +
        memo_.storageBytes() + op_index_.storageBytes();
    for (const EClass &cls : classes_) {
        bytes += cls.nodes.heapBytes();
        for (const ENode &node : cls.nodes)
            bytes += node.children.heapBytes();
        bytes += cls.parents.capacity() *
                 sizeof(std::pair<ENode, EClassId>);
        for (const auto &[node, parent] : cls.parents)
            bytes += node.children.heapBytes();
    }
    bytes += proof_edges_.capacity() *
             sizeof(std::vector<std::pair<EClassId, std::string>>);
    for (const auto &edges : proof_edges_) {
        bytes += edges.capacity() *
                 sizeof(std::pair<EClassId, std::string>);
        for (const auto &[id, reason] : edges)
            bytes += reason.capacity();
    }
    return bytes;
}

size_t
EGraph::approxBytes() const
{
    return exact_bytes_ + est_bytes_pending_;
}

void
EGraph::syncMemCharge(bool force)
{
    int64_t now = static_cast<int64_t>(approxBytes());
    int64_t delta = now - charged_bytes_;
    if (!force && delta > -4096 && delta < 4096)
        return; // chunked: skip sub-page drift on the add() hot path
    if (delta == 0)
        return;
    exec_.chargeMem(MemSubsystem::EGraph, delta);
    charged_bytes_ = now;
}

EClassId
EGraph::add(ENode node)
{
    if (faultFire(FaultPoint::EGraphAlloc))
        throw std::bad_alloc();
    node = canonicalize(std::move(node));
    uint64_t hash = enodeHash(node);
    if (EClassId *hit = memo_.find(node, hash)) {
        // Hashcons canonicalization: refresh the stored id so the next
        // hit returns without any union-find walk at all.
        if (journaling() && *hit != find(*hit))
            journalMemoSet(node, hash);
        return *hit = find(*hit);
    }

    EClassId id = static_cast<EClassId>(parents_.size());
    parents_.push_back(id);
    modified_.push_back(++tick_);
    classes_.emplace_back();
    ++num_classes_;
    if (journaling()) {
        JournalEntry entry;
        entry.kind = JournalEntry::Kind::AddClass;
        entry.id = id;
        entry.node = node;
        journal_.push_back(std::move(entry));
    }
    classes_[id].nodes.push_back(node);
    ++num_nodes_;
    op_index_
        .getOrCreate(node.op.id(),
                     static_cast<uint32_t>(node.children.size()))
        .push_back(id);
    // Marginal storage estimate for this add, re-anchored to an exact
    // walk at every rebuild: the node copy in its class, a hashcons
    // slot at ~3/4 load, one parent entry per child, and the id's
    // union-find/stamp/class-slot/op-index overhead.
    est_bytes_pending_ +=
        sizeof(ENode) + 3 * node.children.heapBytes() +
        (sizeof(ENode) + 16) * 4 / 3 +
        node.children.size() * sizeof(std::pair<ENode, EClassId>) +
        sizeof(EClassId) + sizeof(uint64_t) + sizeof(EClass) +
        sizeof(EClassId);
    for (EClassId child : node.children)
        classes_[child].parents.emplace_back(node, id);
    memo_.insert(node, hash, id);
    for (auto &analysis : analyses_)
        analysis->onMake(*this, id, node);
    // Modify runs after every analysis made its datum: it may re-enter
    // add()/merge() (constant folding materializing a literal).
    for (auto &analysis : analyses_)
        analysis->onModify(*this, id);
    syncMemCharge();
    return id;
}

EClassId
EGraph::addTerm(const TermPtr &term)
{
    ENode node;
    node.op = term->op();
    for (const auto &child : term->children())
        node.children.push_back(addTerm(child));
    return add(std::move(node));
}

std::optional<EClassId>
EGraph::lookup(ENode node) const
{
    node = canonicalize(std::move(node));
    const EClassId *hit = memo_.find(node, enodeHash(node));
    if (hit == nullptr)
        return std::nullopt;
    return find(*hit);
}

std::optional<EClassId>
EGraph::lookupTerm(const TermPtr &term) const
{
    ENode node;
    node.op = term->op();
    for (const auto &child : term->children()) {
        auto child_id = lookupTerm(child);
        if (!child_id)
            return std::nullopt;
        node.children.push_back(*child_id);
    }
    return lookup(std::move(node));
}

bool
EGraph::merge(EClassId a, EClassId b, std::string reason)
{
    EClassId a_orig = a, b_orig = b;
    a = find(a);
    b = find(b);
    if (a == b)
        return false;
    // Record the union justification between the *claimed* ids (stable
    // across later merges); paths through these edges are explanations.
    if (proof_edges_.size() < parents_.size())
        proof_edges_.resize(parents_.size());
    if (reason.empty())
        reason = "congruence";
    proof_edges_[a_orig].emplace_back(b_orig, reason);
    proof_edges_[b_orig].emplace_back(a_orig, std::move(reason));
    // Union by size of parent list (fewer parents to repair on top).
    if (classes_[a].parents.size() < classes_[b].parents.size())
        std::swap(a, b);
    parents_[b] = a;

    // Detach the absorbed class into a stable local before any hook
    // runs: the dense class vector reallocates on re-entrant adds, so
    // neither a reference into it nor the hooks' from_parents view may
    // point at live storage.
    EClass from = std::move(classes_[b]);
    classes_[b] = EClass{};
    size_t into_nodes_size = classes_[a].nodes.size();
    size_t into_parents_size = classes_[a].parents.size();
    // Join while the absorbed class's parent list is still intact: the
    // hooks see exactly the nodes whose child ids re-canonicalize.
    for (auto &analysis : analyses_)
        analysis->onMerge(*this, a, b, from.parents);
    {
        EClass &into = classes_[a];
        into.nodes.insert(into.nodes.end(), from.nodes.begin(),
                          from.nodes.end());
        into.parents.insert(into.parents.end(), from.parents.begin(),
                            from.parents.end());
    }
    if (journaling()) {
        JournalEntry entry;
        entry.kind = JournalEntry::Kind::Merge;
        entry.id = a;
        entry.id2 = b;
        entry.orig_a = a_orig;
        entry.orig_b = b_orig;
        entry.nodes_size = into_nodes_size;
        entry.parents_size = into_parents_size;
        entry.saved_class = std::move(from);
        journal_.push_back(std::move(entry));
    }
    --num_classes_;
    // Stamp the winner now (it changed: it absorbed b's nodes); the
    // ancestor cone is stamped in bulk by propagateDirty() at rebuild.
    // The winner's pre-merge stamp is deliberately not journaled: after
    // rollback a stale-high stamp merely triggers a spurious re-scan.
    modified_[a] = ++tick_;
    dirty_since_rebuild_.push_back(a);
    worklist_.push_back(a);
    for (auto &analysis : analyses_)
        analysis->onModify(*this, a);
    return true;
}

void
EGraph::rebuild()
{
    while (!worklist_.empty()) {
        std::vector<EClassId> todo;
        todo.swap(worklist_);
        std::sort(todo.begin(), todo.end());
        todo.erase(std::unique(todo.begin(), todo.end()), todo.end());
        for (EClassId id : todo)
            repair(find(id));
    }
    propagateDirty();
    // Re-anchor the byte accounting on malloc truth (satisfying the
    // governor's honesty contract at million-node scale).
    exact_bytes_ = exactBytes();
    est_bytes_pending_ = 0;
    syncMemCharge(/*force=*/true);
}

void
EGraph::propagateDirty()
{
    // A pattern match rooted at class C depends on every class in C's
    // reachable child cone: a node added to, or a merge applied at, any
    // descendant can create a new match at C. Walking *up* the parent
    // lists from every merge winner and stamping the whole ancestor cone
    // makes "modified <= watermark" a sound reason to skip a class
    // during incremental e-matching. (Fresh adds need no propagation:
    // a new class sits above its children, never below an existing one.)
    if (dirty_since_rebuild_.empty())
        return;
    uint64_t stamp = ++tick_;
    std::vector<EClassId> queue;
    queue.reserve(dirty_since_rebuild_.size());
    for (EClassId id : dirty_since_rebuild_)
        queue.push_back(find(id));
    dirty_since_rebuild_.clear();
    while (!queue.empty()) {
        EClassId id = queue.back();
        queue.pop_back();
        if (modified_[id] == stamp)
            continue; // already visited this propagation
        modified_[id] = stamp;
        for (const auto &[node, parent] : classes_[id].parents) {
            EClassId canon = find(parent);
            if (modified_[canon] != stamp)
                queue.push_back(canon);
        }
    }
}

const OpBucket *
EGraph::opCandidates(Symbol op, size_t arity) const
{
    return op_index_.find(op.id(), static_cast<uint32_t>(arity));
}

void
EGraph::repair(EClassId id)
{
    // Re-canonicalize parent nodes; congruent parents get merged.
    auto parents = classes_[id].parents;
    if (journaling()) {
        JournalEntry entry;
        entry.kind = JournalEntry::Kind::ParentsClear;
        entry.id = id;
        entry.saved_parents = parents;
        journal_.push_back(std::move(entry));
    }
    classes_[id].parents.clear();
    std::unordered_map<ENode, EClassId, ENodeHash> seen;
    for (auto &[node, parent_id] : parents) {
        uint64_t hash = enodeHash(node);
        journalMemoErase(node, hash);
        memo_.erase(node, hash);
        ENode canon = canonicalize(node);
        uint64_t canon_hash = enodeHash(canon);
        EClassId parent_canon = find(parent_id);
        auto it = seen.find(canon);
        if (it != seen.end()) {
            // Congruence: two parents became identical.
            if (merge(it->second, parent_canon))
                parent_canon = find(parent_canon);
            it->second = find(it->second);
        } else {
            seen.emplace(canon, parent_canon);
        }
        journalMemoSet(canon, canon_hash);
        memo_.set(canon, canon_hash, find(parent_canon));
    }
    for (auto &[node, parent_id] : seen) {
        // Re-resolve the class inside the loop: propagateConstant may
        // fold a constant, add its literal, and merge — which can empty
        // this very class (invalidating any cached reference) and move
        // its parents to a new root.
        EClassId root = find(id);
        if (journaling()) {
            JournalEntry entry;
            entry.kind = JournalEntry::Kind::ParentsAppend;
            entry.id = root;
            journal_.push_back(std::move(entry));
        }
        classes_[root].parents.emplace_back(node, find(parent_id));
        // Analysis propagation: a child datum may now determine the
        // parent's datum (egg's analysis_pending worklist).
        for (auto &analysis : analyses_)
            analysis->onRepairParent(*this, node, find(parent_id));
    }
    // Deduplicate and canonicalize the class's own nodes. No reference
    // into classes_ survives a canonicalize (const; no reallocation),
    // but re-resolve after the loop above which may have merged.
    EClassId root = find(id);
    std::unordered_map<ENode, bool, ENodeHash> unique_nodes;
    NodeList nodes;
    for (ENode &node : classes_[root].nodes) {
        ENode canon = canonicalize(node);
        if (!unique_nodes.emplace(canon, true).second)
            continue;
        nodes.push_back(std::move(canon));
    }
    if (journaling()) {
        JournalEntry entry;
        entry.kind = JournalEntry::Kind::NodesReplace;
        entry.id = root;
        entry.saved_nodes = classes_[root].nodes;
        journal_.push_back(std::move(entry));
    }
    num_nodes_ -= classes_[root].nodes.size() - nodes.size();
    classes_[root].nodes = std::move(nodes);
}

const EClass &
EGraph::eclass(EClassId id) const
{
    EClassId canon = find(id);
    SEER_ASSERT(canon < classes_.size(),
                "eclass() on missing id " << id);
    return classes_[canon];
}

std::optional<int64_t>
EGraph::constantOf(EClassId id) const
{
    if (const_fold_ == nullptr)
        return std::nullopt;
    return const_fold_->value(find(id));
}

std::vector<EClassId>
EGraph::classIds() const
{
    std::vector<EClassId> ids;
    ids.reserve(num_classes_);
    for (EClassId id = 0; id < parents_.size(); ++id)
        if (parents_[id] == id)
            ids.push_back(id);
    return ids;
}

std::optional<std::vector<std::string>>
EGraph::explain(EClassId a, EClassId b) const
{
    if (a >= parents_.size() || b >= parents_.size())
        return std::nullopt;
    if (find(a) != find(b))
        return std::nullopt;
    if (a == b)
        return std::vector<std::string>{};
    // BFS over the proof graph.
    std::vector<int64_t> prev(parents_.size(), -1);
    std::vector<std::string> via(parents_.size());
    std::vector<EClassId> queue{a};
    prev[a] = static_cast<int64_t>(a);
    for (size_t head = 0; head < queue.size(); ++head) {
        EClassId id = queue[head];
        if (id == b)
            break;
        if (id >= proof_edges_.size())
            continue;
        for (const auto &[next, reason] : proof_edges_[id]) {
            if (prev[next] != -1)
                continue;
            prev[next] = static_cast<int64_t>(id);
            via[next] = reason;
            queue.push_back(next);
        }
    }
    if (prev[b] == -1)
        return std::nullopt; // same class but only via congruence of
                             // sub-ids: no direct edge path recorded
    std::vector<std::string> path;
    for (EClassId id = b; id != a;
         id = static_cast<EClassId>(prev[id])) {
        path.push_back(via[id]);
    }
    std::reverse(path.begin(), path.end());
    return path;
}

size_t
EGraph::numClasses() const
{
    return num_classes_;
}

size_t
EGraph::numNodes() const
{
    // Maintained incrementally: the runner consults this inside its
    // per-application node-limit check, so it must not walk the graph.
    return num_nodes_;
}

void
EGraph::journalMemoSet(const ENode &key, uint64_t hash)
{
    if (!journaling())
        return;
    JournalEntry entry;
    entry.kind = JournalEntry::Kind::MemoSet;
    entry.node = key;
    if (const EClassId *existing = memo_.find(key, hash))
        entry.memo_old = *existing;
    journal_.push_back(std::move(entry));
}

void
EGraph::journalMemoErase(const ENode &key, uint64_t hash)
{
    if (!journaling())
        return;
    const EClassId *existing = memo_.find(key, hash);
    if (existing == nullptr)
        return; // nothing will be erased: nothing to undo
    JournalEntry entry;
    entry.kind = JournalEntry::Kind::MemoErase;
    entry.node = key;
    entry.memo_old = *existing;
    journal_.push_back(std::move(entry));
}

EGraph::Checkpoint
EGraph::checkpoint()
{
    // Quiesce lazily-maintained analyses first so the snapshot (and the
    // journal replayed against it) captures them with empty work queues:
    // rollback restores data values, not pending recompute schedules.
    for (auto &analysis : analyses_)
        analysis->onCheckpoint(*this);
    Checkpoint cp;
    cp.token = ++checkpoint_serial_;
    cp.journal_mark = journal_.size();
    cp.proof_size = proof_edges_.size();
    cp.parents = parents_;
    cp.worklist = worklist_;
    cp.dirty = dirty_since_rebuild_;
    open_tokens_.push_back(cp.token);
    return cp;
}

void
EGraph::undo(JournalEntry &entry)
{
    switch (entry.kind) {
      case JournalEntry::Kind::AddClass: {
        memo_.erase(entry.node, enodeHash(entry.node));
        for (EClassId child : entry.node.children)
            classes_[child].parents.pop_back();
        SEER_ASSERT(entry.id + 1 == classes_.size(),
                    "class storage out of sync with journal on class "
                        << entry.id);
        num_nodes_ -= classes_[entry.id].nodes.size();
        classes_.pop_back();
        --num_classes_;
        // The add appended exactly one operator-index entry; undoing in
        // reverse journal order means it is still the last one.
        OpBucket *bucket = op_index_.find(
            entry.node.op.id(),
            static_cast<uint32_t>(entry.node.children.size()));
        SEER_ASSERT(bucket != nullptr && !bucket->empty() &&
                        bucket->back() == entry.id,
                    "op index out of sync with journal on class "
                        << entry.id);
        bucket->pop_back();
        break;
      }
      case JournalEntry::Kind::Merge: {
        EClass &into = classes_[entry.id];
        num_nodes_ -= into.nodes.size() - entry.nodes_size;
        num_nodes_ += entry.saved_class.nodes.size();
        into.nodes.resize(entry.nodes_size);
        into.parents.resize(entry.parents_size);
        classes_[entry.id2] = std::move(entry.saved_class);
        ++num_classes_;
        proof_edges_[entry.orig_a].pop_back();
        proof_edges_[entry.orig_b].pop_back();
        break;
      }
      case JournalEntry::Kind::MemoSet: {
        uint64_t hash = enodeHash(entry.node);
        if (entry.memo_old)
            memo_.set(entry.node, hash, *entry.memo_old);
        else
            memo_.erase(entry.node, hash);
        break;
      }
      case JournalEntry::Kind::MemoErase: {
        memo_.set(entry.node, enodeHash(entry.node), *entry.memo_old);
        break;
      }
      case JournalEntry::Kind::ParentsClear: {
        classes_[entry.id].parents = std::move(entry.saved_parents);
        break;
      }
      case JournalEntry::Kind::ParentsAppend: {
        classes_[entry.id].parents.pop_back();
        break;
      }
      case JournalEntry::Kind::NodesReplace: {
        num_nodes_ += entry.saved_nodes.size() -
                      classes_[entry.id].nodes.size();
        classes_[entry.id].nodes = std::move(entry.saved_nodes);
        break;
      }
      case JournalEntry::Kind::AnalysisSet: {
        analyses_[entry.analysis_index]->restoreDatum(
            entry.id, entry.analysis_datum);
        break;
      }
    }
}

void
EGraph::rollback(const Checkpoint &cp)
{
    SEER_ASSERT(!open_tokens_.empty() && open_tokens_.back() == cp.token,
                "e-graph rollback out of LIFO checkpoint order");
    // Undo in strict reverse order: each entry captured the exact prior
    // state at its mutation point, so by induction the graph passes
    // through every intermediate state back to the checkpoint.
    while (journal_.size() > cp.journal_mark) {
        undo(journal_.back());
        journal_.pop_back();
    }
    parents_ = cp.parents;
    SEER_ASSERT(classes_.size() == parents_.size(),
                "journal replay left class storage at "
                    << classes_.size() << " slots for "
                    << parents_.size() << " ids");
    modified_.resize(parents_.size());
    worklist_ = cp.worklist;
    dirty_since_rebuild_ = cp.dirty;
    proof_edges_.resize(cp.proof_size);
    for (auto &analysis : analyses_)
        analysis->onRollback(*this, parents_.size());
    open_tokens_.pop_back();
    // Timestamps are monotonic and deliberately not journaled, so a
    // rollback can only be signalled out-of-band: bump the generation so
    // incremental matchers drop their caches and fully re-scan.
    ++rollback_generation_;
    exact_bytes_ = exactBytes();
    est_bytes_pending_ = 0;
    syncMemCharge(/*force=*/true);
}

void
EGraph::commit(const Checkpoint &cp)
{
    SEER_ASSERT(!open_tokens_.empty() && open_tokens_.back() == cp.token,
                "e-graph commit out of LIFO checkpoint order");
    open_tokens_.pop_back();
    if (open_tokens_.empty()) {
        journal_.clear();
        journal_.shrink_to_fit();
    }
}

std::string
EGraph::debugCheckInvariants() const
{
    if (classes_.size() != parents_.size()) {
        return MsgBuilder()
               << "class storage holds " << classes_.size()
               << " slots for " << parents_.size() << " ids";
    }
    for (EClassId id = 0; id < parents_.size(); ++id) {
        if (parents_[id] >= parents_.size()) {
            return MsgBuilder() << "union-find entry " << id
                                << " points past the id space";
        }
        if (parents_[id] != id &&
            (!classes_[id].nodes.empty() ||
             !classes_[id].parents.empty())) {
            return MsgBuilder()
                   << "dead class slot " << id << " not empty";
        }
    }
    {
        std::string error;
        memo_.forEach([&](const ENode &node, EClassId id) {
            (void)node;
            if (error.empty() && id >= parents_.size())
                error = "hashcons value maps past the id space";
        });
        if (!error.empty())
            return error;
    }
    {
        size_t counted = 0;
        size_t live = 0;
        for (EClassId id = 0; id < parents_.size(); ++id) {
            if (parents_[id] != id)
                continue;
            ++live;
            counted += classes_[id].nodes.size();
        }
        if (counted != num_nodes_) {
            return MsgBuilder()
                   << "incremental node count " << num_nodes_
                   << " != actual " << counted;
        }
        if (live != num_classes_) {
            return MsgBuilder()
                   << "incremental class count " << num_classes_
                   << " != actual " << live;
        }
    }
    // Operator-index completeness: every live node must be reachable
    // through some (possibly stale) candidate entry for its (op, arity).
    for (EClassId id = 0; id < parents_.size(); ++id) {
        if (parents_[id] != id)
            continue;
        for (const ENode &node : classes_[id].nodes) {
            const OpBucket *bucket = op_index_.find(
                node.op.id(),
                static_cast<uint32_t>(node.children.size()));
            bool reachable = false;
            if (bucket != nullptr) {
                for (EClassId entry : *bucket) {
                    if (find(entry) == id) {
                        reachable = true;
                        break;
                    }
                }
            }
            if (!reachable) {
                return MsgBuilder()
                       << "node '" << node.op.str() << "' of class "
                       << id << " unreachable through the op index";
            }
        }
    }
    if (!worklist_.empty())
        return ""; // node-level checks need a rebuilt graph
    for (EClassId id = 0; id < parents_.size(); ++id) {
        if (parents_[id] != id)
            continue;
        for (const ENode &node : classes_[id].nodes) {
            auto found = lookup(node);
            if (!found) {
                return MsgBuilder() << "node of class " << id
                                    << " missing from the hashcons";
            }
            if (*found != id) {
                return MsgBuilder()
                       << "node of class " << id
                       << " hashconses to class " << *found;
            }
        }
    }
    // Analysis coherence: each registered analysis recomputes its data
    // from scratch and compares with the maintained state (clean graph
    // only — propagation pending on the worklist is not incoherence).
    for (const auto &analysis : analyses_) {
        std::string error = analysis->checkInvariants(*this);
        if (!error.empty())
            return error;
    }
    return "";
}

} // namespace seer::eg
