#include "egraph/egraph.h"

#include <algorithm>
#include <new>
#include <optional>

#include "egraph/analysis.h"
#include "support/error.h"
#include "support/fault_inject.h"

namespace seer::eg {

EGraph::EGraph() = default;
EGraph::~EGraph() = default;
EGraph::EGraph(EGraph &&) noexcept = default;
EGraph &EGraph::operator=(EGraph &&) noexcept = default;

EGraph::EGraph(AnalysisHooks hooks)
{
    if (hooks.parse_const)
        registerAnalysis(
            std::make_unique<ConstFoldAnalysis>(std::move(hooks)));
}

Analysis &
EGraph::registerAnalysis(std::unique_ptr<Analysis> analysis)
{
    SEER_ASSERT(!journaling(),
                "registerAnalysis inside an open checkpoint");
    SEER_ASSERT(findAnalysis(analysis->name()) == nullptr,
                "duplicate analysis '" << analysis->name() << "'");
    analysis->index_ = analyses_.size();
    analyses_.push_back(std::move(analysis));
    Analysis &registered = *analyses_.back();
    if (registered.name() == "const-fold")
        const_fold_ = static_cast<ConstFoldAnalysis *>(&registered);
    registered.onAttach(*this);
    return registered;
}

Analysis *
EGraph::findAnalysis(const std::string &name) const
{
    for (const auto &analysis : analyses_)
        if (analysis->name() == name)
            return analysis.get();
    return nullptr;
}

void
EGraph::journalAnalysisDatum(const Analysis &analysis, EClassId id) const
{
    if (!journaling())
        return;
    JournalEntry entry;
    entry.kind = JournalEntry::Kind::AnalysisSet;
    entry.id = id;
    entry.analysis_index = analysis.index();
    entry.analysis_datum = analysis.saveDatum(id);
    journal_.push_back(std::move(entry));
}

void
EGraph::notifyPeerAnalyses(const Analysis &source, EClassId id)
{
    for (auto &analysis : analyses_)
        if (analysis.get() != &source)
            analysis->onPeerChanged(*this, id);
}

void
EGraph::analysisRequeue(EClassId id)
{
    worklist_.push_back(id);
}

EClassId
EGraph::find(EClassId id) const
{
    SEER_ASSERT(id < parents_.size(), "find on invalid eclass id " << id);
    while (parents_[id] != id)
        id = parents_[id];
    return id;
}

EClassId
EGraph::find(EClassId id)
{
    SEER_ASSERT(id < parents_.size(), "find on invalid eclass id " << id);
    // Path halving: point every visited id at its grandparent. Each find
    // halves the chain it walks, so repeated finds flatten union chains
    // and canonicalization stays near-constant as the graph grows.
    while (parents_[id] != id) {
        parents_[id] = parents_[parents_[id]];
        id = parents_[id];
    }
    return id;
}

ENode
EGraph::canonicalize(ENode node) const
{
    for (EClassId &child : node.children)
        child = find(child);
    return node;
}

ENode
EGraph::canonicalize(ENode node)
{
    for (EClassId &child : node.children)
        child = find(child);
    return node;
}

size_t
EGraph::approxBytes() const
{
    // Estimated, not malloc truth: an e-node costs its struct plus a
    // hashcons entry, a parent-list entry per child, and an op-index
    // slot (~192 bytes on 64-bit); every id costs union-find, stamp,
    // and class-map overhead (~96 bytes). Good to within a small
    // factor, which is all budget governance needs.
    return num_nodes_ * 192 + parents_.size() * 96;
}

void
EGraph::syncMemCharge(bool force)
{
    int64_t now = static_cast<int64_t>(approxBytes());
    int64_t delta = now - charged_bytes_;
    if (!force && delta > -4096 && delta < 4096)
        return; // chunked: skip sub-page drift on the add() hot path
    if (delta == 0)
        return;
    exec_.chargeMem(MemSubsystem::EGraph, delta);
    charged_bytes_ = now;
}

EClassId
EGraph::add(ENode node)
{
    if (faultFire(FaultPoint::EGraphAlloc))
        throw std::bad_alloc();
    node = canonicalize(std::move(node));
    auto it = memo_.find(node);
    if (it != memo_.end()) {
        // Hashcons canonicalization: refresh the stored id so the next
        // hit returns without any union-find walk at all.
        if (journaling() && it->second != find(it->second))
            journalMemoSet(node);
        return it->second = find(it->second);
    }

    EClassId id = static_cast<EClassId>(parents_.size());
    parents_.push_back(id);
    modified_.push_back(++tick_);
    if (journaling()) {
        JournalEntry entry;
        entry.kind = JournalEntry::Kind::AddClass;
        entry.id = id;
        entry.node = node;
        journal_.push_back(std::move(entry));
    }
    EClass &cls = classes_[id];
    cls.nodes.push_back(node);
    ++num_nodes_;
    op_index_[opKeyOf(node)].push_back(id);
    for (EClassId child : node.children)
        classes_[child].parents.emplace_back(node, id);
    memo_.emplace(node, id);
    for (auto &analysis : analyses_)
        analysis->onMake(*this, id, node);
    // Modify runs after every analysis made its datum: it may re-enter
    // add()/merge() (constant folding materializing a literal).
    for (auto &analysis : analyses_)
        analysis->onModify(*this, id);
    syncMemCharge();
    return id;
}

EClassId
EGraph::addTerm(const TermPtr &term)
{
    ENode node;
    node.op = term->op();
    for (const auto &child : term->children())
        node.children.push_back(addTerm(child));
    return add(std::move(node));
}

std::optional<EClassId>
EGraph::lookup(ENode node) const
{
    node = canonicalize(std::move(node));
    auto it = memo_.find(node);
    if (it == memo_.end())
        return std::nullopt;
    return find(it->second);
}

std::optional<EClassId>
EGraph::lookupTerm(const TermPtr &term) const
{
    ENode node;
    node.op = term->op();
    for (const auto &child : term->children()) {
        auto child_id = lookupTerm(child);
        if (!child_id)
            return std::nullopt;
        node.children.push_back(*child_id);
    }
    return lookup(std::move(node));
}

bool
EGraph::merge(EClassId a, EClassId b, std::string reason)
{
    EClassId a_orig = a, b_orig = b;
    a = find(a);
    b = find(b);
    if (a == b)
        return false;
    // Record the union justification between the *claimed* ids (stable
    // across later merges); paths through these edges are explanations.
    if (proof_edges_.size() < parents_.size())
        proof_edges_.resize(parents_.size());
    if (reason.empty())
        reason = "congruence";
    proof_edges_[a_orig].emplace_back(b_orig, reason);
    proof_edges_[b_orig].emplace_back(a_orig, std::move(reason));
    // Union by size of parent list (fewer parents to repair on top).
    if (classes_[a].parents.size() < classes_[b].parents.size())
        std::swap(a, b);
    parents_[b] = a;

    EClass &into = classes_[a];
    EClass &from = classes_[b];
    JournalEntry entry;
    if (journaling()) {
        entry.kind = JournalEntry::Kind::Merge;
        entry.id = a;
        entry.id2 = b;
        entry.orig_a = a_orig;
        entry.orig_b = b_orig;
        entry.nodes_size = into.nodes.size();
        entry.parents_size = into.parents.size();
    }
    // Join while the absorbed class's parent list is still intact: the
    // hooks see exactly the nodes whose child ids re-canonicalize.
    for (auto &analysis : analyses_)
        analysis->onMerge(*this, a, b, from.parents);
    into.nodes.insert(into.nodes.end(), from.nodes.begin(),
                      from.nodes.end());
    into.parents.insert(into.parents.end(), from.parents.begin(),
                        from.parents.end());
    if (journaling()) {
        entry.saved_class = std::move(from);
        journal_.push_back(std::move(entry));
    }
    // Stamp the winner now (it changed: it absorbed b's nodes); the
    // ancestor cone is stamped in bulk by propagateDirty() at rebuild.
    // The winner's pre-merge stamp is deliberately not journaled: after
    // rollback a stale-high stamp merely triggers a spurious re-scan.
    modified_[a] = ++tick_;
    dirty_since_rebuild_.push_back(a);
    classes_.erase(b);
    worklist_.push_back(a);
    for (auto &analysis : analyses_)
        analysis->onModify(*this, a);
    return true;
}

void
EGraph::rebuild()
{
    while (!worklist_.empty()) {
        std::vector<EClassId> todo;
        todo.swap(worklist_);
        std::sort(todo.begin(), todo.end());
        todo.erase(std::unique(todo.begin(), todo.end()), todo.end());
        for (EClassId id : todo)
            repair(find(id));
    }
    propagateDirty();
    syncMemCharge(/*force=*/true);
}

void
EGraph::propagateDirty()
{
    // A pattern match rooted at class C depends on every class in C's
    // reachable child cone: a node added to, or a merge applied at, any
    // descendant can create a new match at C. Walking *up* the parent
    // lists from every merge winner and stamping the whole ancestor cone
    // makes "modified <= watermark" a sound reason to skip a class
    // during incremental e-matching. (Fresh adds need no propagation:
    // a new class sits above its children, never below an existing one.)
    if (dirty_since_rebuild_.empty())
        return;
    uint64_t stamp = ++tick_;
    std::vector<EClassId> queue;
    queue.reserve(dirty_since_rebuild_.size());
    for (EClassId id : dirty_since_rebuild_)
        queue.push_back(find(id));
    dirty_since_rebuild_.clear();
    while (!queue.empty()) {
        EClassId id = queue.back();
        queue.pop_back();
        if (modified_[id] == stamp)
            continue; // already visited this propagation
        modified_[id] = stamp;
        for (const auto &[node, parent] : classes_[id].parents) {
            EClassId canon = find(parent);
            if (modified_[canon] != stamp)
                queue.push_back(canon);
        }
    }
}

const std::vector<EClassId> *
EGraph::opCandidates(Symbol op, size_t arity) const
{
    auto it = op_index_.find(
        OpKey{op.id(), static_cast<uint32_t>(arity)});
    if (it == op_index_.end())
        return nullptr;
    return &it->second;
}

void
EGraph::repair(EClassId id)
{
    // Re-canonicalize parent nodes; congruent parents get merged.
    auto parents = classes_[id].parents;
    if (journaling()) {
        JournalEntry entry;
        entry.kind = JournalEntry::Kind::ParentsClear;
        entry.id = id;
        entry.saved_parents = parents;
        journal_.push_back(std::move(entry));
    }
    classes_[id].parents.clear();
    std::unordered_map<ENode, EClassId, ENodeHash> seen;
    for (auto &[node, parent_id] : parents) {
        journalMemoErase(node);
        memo_.erase(node);
        ENode canon = canonicalize(node);
        EClassId parent_canon = find(parent_id);
        auto it = seen.find(canon);
        if (it != seen.end()) {
            // Congruence: two parents became identical.
            if (merge(it->second, parent_canon))
                parent_canon = find(parent_canon);
            it->second = find(it->second);
        } else {
            seen.emplace(canon, parent_canon);
        }
        journalMemoSet(canon);
        memo_[canon] = find(parent_canon);
    }
    for (auto &[node, parent_id] : seen) {
        // Re-resolve the class inside the loop: propagateConstant may
        // fold a constant, add its literal, and merge — which can erase
        // this very class (invalidating any cached reference) and move
        // its parents to a new root.
        EClassId root = find(id);
        if (journaling()) {
            JournalEntry entry;
            entry.kind = JournalEntry::Kind::ParentsAppend;
            entry.id = root;
            journal_.push_back(std::move(entry));
        }
        classes_[root].parents.emplace_back(node, find(parent_id));
        // Analysis propagation: a child datum may now determine the
        // parent's datum (egg's analysis_pending worklist).
        for (auto &analysis : analyses_)
            analysis->onRepairParent(*this, node, find(parent_id));
    }
    // Deduplicate and canonicalize the class's own nodes.
    EClass &self = classes_[find(id)];
    std::unordered_map<ENode, bool, ENodeHash> unique_nodes;
    std::vector<ENode> nodes;
    for (ENode &node : self.nodes) {
        ENode canon = canonicalize(node);
        if (!unique_nodes.emplace(canon, true).second)
            continue;
        nodes.push_back(std::move(canon));
    }
    if (journaling()) {
        JournalEntry entry;
        entry.kind = JournalEntry::Kind::NodesReplace;
        entry.id = find(id);
        entry.saved_nodes = self.nodes;
        journal_.push_back(std::move(entry));
    }
    num_nodes_ -= self.nodes.size() - nodes.size();
    self.nodes = std::move(nodes);
}

const EClass &
EGraph::eclass(EClassId id) const
{
    auto it = classes_.find(find(id));
    SEER_ASSERT(it != classes_.end(), "eclass() on missing id " << id);
    return it->second;
}

std::optional<int64_t>
EGraph::constantOf(EClassId id) const
{
    if (const_fold_ == nullptr)
        return std::nullopt;
    return const_fold_->value(find(id));
}

std::vector<EClassId>
EGraph::classIds() const
{
    std::vector<EClassId> ids;
    ids.reserve(classes_.size());
    for (const auto &[id, cls] : classes_)
        ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    return ids;
}

std::optional<std::vector<std::string>>
EGraph::explain(EClassId a, EClassId b) const
{
    if (a >= parents_.size() || b >= parents_.size())
        return std::nullopt;
    if (find(a) != find(b))
        return std::nullopt;
    if (a == b)
        return std::vector<std::string>{};
    // BFS over the proof graph.
    std::vector<int64_t> prev(parents_.size(), -1);
    std::vector<std::string> via(parents_.size());
    std::vector<EClassId> queue{a};
    prev[a] = static_cast<int64_t>(a);
    for (size_t head = 0; head < queue.size(); ++head) {
        EClassId id = queue[head];
        if (id == b)
            break;
        if (id >= proof_edges_.size())
            continue;
        for (const auto &[next, reason] : proof_edges_[id]) {
            if (prev[next] != -1)
                continue;
            prev[next] = static_cast<int64_t>(id);
            via[next] = reason;
            queue.push_back(next);
        }
    }
    if (prev[b] == -1)
        return std::nullopt; // same class but only via congruence of
                             // sub-ids: no direct edge path recorded
    std::vector<std::string> path;
    for (EClassId id = b; id != a;
         id = static_cast<EClassId>(prev[id])) {
        path.push_back(via[id]);
    }
    std::reverse(path.begin(), path.end());
    return path;
}

size_t
EGraph::numClasses() const
{
    return classes_.size();
}

size_t
EGraph::numNodes() const
{
    // Maintained incrementally: the runner consults this inside its
    // per-application node-limit check, so it must not walk the graph.
    return num_nodes_;
}

void
EGraph::journalMemoSet(const ENode &key)
{
    if (!journaling())
        return;
    JournalEntry entry;
    entry.kind = JournalEntry::Kind::MemoSet;
    entry.node = key;
    auto it = memo_.find(key);
    if (it != memo_.end())
        entry.memo_old = it->second;
    journal_.push_back(std::move(entry));
}

void
EGraph::journalMemoErase(const ENode &key)
{
    if (!journaling())
        return;
    auto it = memo_.find(key);
    if (it == memo_.end())
        return; // nothing will be erased: nothing to undo
    JournalEntry entry;
    entry.kind = JournalEntry::Kind::MemoErase;
    entry.node = key;
    entry.memo_old = it->second;
    journal_.push_back(std::move(entry));
}

EGraph::Checkpoint
EGraph::checkpoint()
{
    // Quiesce lazily-maintained analyses first so the snapshot (and the
    // journal replayed against it) captures them with empty work queues:
    // rollback restores data values, not pending recompute schedules.
    for (auto &analysis : analyses_)
        analysis->onCheckpoint(*this);
    Checkpoint cp;
    cp.token = ++checkpoint_serial_;
    cp.journal_mark = journal_.size();
    cp.proof_size = proof_edges_.size();
    cp.parents = parents_;
    cp.worklist = worklist_;
    cp.dirty = dirty_since_rebuild_;
    open_tokens_.push_back(cp.token);
    return cp;
}

void
EGraph::undo(JournalEntry &entry)
{
    switch (entry.kind) {
      case JournalEntry::Kind::AddClass: {
        memo_.erase(entry.node);
        for (EClassId child : entry.node.children)
            classes_[child].parents.pop_back();
        num_nodes_ -= classes_[entry.id].nodes.size();
        classes_.erase(entry.id);
        // The add appended exactly one operator-index entry; undoing in
        // reverse journal order means it is still the last one.
        auto it = op_index_.find(opKeyOf(entry.node));
        SEER_ASSERT(it != op_index_.end() && !it->second.empty() &&
                        it->second.back() == entry.id,
                    "op index out of sync with journal on class "
                        << entry.id);
        it->second.pop_back();
        if (it->second.empty())
            op_index_.erase(it);
        break;
      }
      case JournalEntry::Kind::Merge: {
        EClass &into = classes_[entry.id];
        num_nodes_ -= into.nodes.size() - entry.nodes_size;
        num_nodes_ += entry.saved_class.nodes.size();
        into.nodes.resize(entry.nodes_size);
        into.parents.resize(entry.parents_size);
        classes_[entry.id2] = std::move(entry.saved_class);
        proof_edges_[entry.orig_a].pop_back();
        proof_edges_[entry.orig_b].pop_back();
        break;
      }
      case JournalEntry::Kind::MemoSet: {
        if (entry.memo_old)
            memo_[entry.node] = *entry.memo_old;
        else
            memo_.erase(entry.node);
        break;
      }
      case JournalEntry::Kind::MemoErase: {
        memo_[entry.node] = *entry.memo_old;
        break;
      }
      case JournalEntry::Kind::ParentsClear: {
        classes_[entry.id].parents = std::move(entry.saved_parents);
        break;
      }
      case JournalEntry::Kind::ParentsAppend: {
        classes_[entry.id].parents.pop_back();
        break;
      }
      case JournalEntry::Kind::NodesReplace: {
        num_nodes_ += entry.saved_nodes.size() -
                      classes_[entry.id].nodes.size();
        classes_[entry.id].nodes = std::move(entry.saved_nodes);
        break;
      }
      case JournalEntry::Kind::AnalysisSet: {
        analyses_[entry.analysis_index]->restoreDatum(
            entry.id, entry.analysis_datum);
        break;
      }
    }
}

void
EGraph::rollback(const Checkpoint &cp)
{
    SEER_ASSERT(!open_tokens_.empty() && open_tokens_.back() == cp.token,
                "e-graph rollback out of LIFO checkpoint order");
    // Undo in strict reverse order: each entry captured the exact prior
    // state at its mutation point, so by induction the graph passes
    // through every intermediate state back to the checkpoint.
    while (journal_.size() > cp.journal_mark) {
        undo(journal_.back());
        journal_.pop_back();
    }
    parents_ = cp.parents;
    modified_.resize(parents_.size());
    worklist_ = cp.worklist;
    dirty_since_rebuild_ = cp.dirty;
    proof_edges_.resize(cp.proof_size);
    for (auto &analysis : analyses_)
        analysis->onRollback(*this, parents_.size());
    open_tokens_.pop_back();
    // Timestamps are monotonic and deliberately not journaled, so a
    // rollback can only be signalled out-of-band: bump the generation so
    // incremental matchers drop their caches and fully re-scan.
    ++rollback_generation_;
    syncMemCharge(/*force=*/true);
}

void
EGraph::commit(const Checkpoint &cp)
{
    SEER_ASSERT(!open_tokens_.empty() && open_tokens_.back() == cp.token,
                "e-graph commit out of LIFO checkpoint order");
    open_tokens_.pop_back();
    if (open_tokens_.empty()) {
        journal_.clear();
        journal_.shrink_to_fit();
    }
}

std::string
EGraph::debugCheckInvariants() const
{
    for (EClassId id = 0; id < parents_.size(); ++id) {
        if (parents_[id] >= parents_.size()) {
            return MsgBuilder() << "union-find entry " << id
                                << " points past the id space";
        }
        if (!classes_.count(find(id))) {
            return MsgBuilder()
                   << "id " << id << " resolves to dead class "
                   << find(id);
        }
    }
    for (const auto &[id, cls] : classes_) {
        if (find(id) != id)
            return MsgBuilder() << "class key " << id << " not canonical";
    }
    for (const auto &[node, id] : memo_) {
        if (id >= parents_.size() || !classes_.count(find(id)))
            return "hashcons value maps to a dead class";
    }
    {
        size_t counted = 0;
        for (const auto &[id, cls] : classes_)
            counted += cls.nodes.size();
        if (counted != num_nodes_) {
            return MsgBuilder()
                   << "incremental node count " << num_nodes_
                   << " != actual " << counted;
        }
    }
    // Operator-index completeness: every live node must be reachable
    // through some (possibly stale) candidate entry for its (op, arity).
    for (const auto &[id, cls] : classes_) {
        for (const ENode &node : cls.nodes) {
            auto it = op_index_.find(opKeyOf(node));
            bool reachable = false;
            if (it != op_index_.end()) {
                for (EClassId entry : it->second) {
                    if (find(entry) == id) {
                        reachable = true;
                        break;
                    }
                }
            }
            if (!reachable) {
                return MsgBuilder()
                       << "node '" << node.op.str() << "' of class "
                       << id << " unreachable through the op index";
            }
        }
    }
    if (!worklist_.empty())
        return ""; // node-level checks need a rebuilt graph
    for (const auto &[id, cls] : classes_) {
        for (const ENode &node : cls.nodes) {
            auto found = lookup(node);
            if (!found) {
                return MsgBuilder() << "node of class " << id
                                    << " missing from the hashcons";
            }
            if (*found != id) {
                return MsgBuilder()
                       << "node of class " << id
                       << " hashconses to class " << *found;
            }
        }
    }
    // Analysis coherence: each registered analysis recomputes its data
    // from scratch and compares with the maintained state (clean graph
    // only — propagation pending on the worklist is not incoherence).
    for (const auto &analysis : analyses_) {
        std::string error = analysis->checkInvariants(*this);
        if (!error.empty())
            return error;
    }
    return "";
}

} // namespace seer::eg
