#include "egraph/term.h"

#include <cctype>
#include <sstream>

#include "support/error.h"

namespace seer::eg {

size_t
Term::size() const
{
    size_t n = 1;
    for (const auto &child : children_)
        n += child->size();
    return n;
}

bool
Term::equals(const Term &other) const
{
    if (op_ != other.op_ || children_.size() != other.children_.size())
        return false;
    for (size_t i = 0; i < children_.size(); ++i) {
        if (!children_[i]->equals(*other.children_[i]))
            return false;
    }
    return true;
}

std::string
Term::str() const
{
    if (isLeaf())
        return op_.str();
    std::ostringstream os;
    os << "(" << op_.str();
    for (const auto &child : children_)
        os << " " << child->str();
    os << ")";
    return os.str();
}

TermPtr
makeTerm(Symbol op, std::vector<TermPtr> children)
{
    return std::make_shared<Term>(op, std::move(children));
}

TermPtr
makeTerm(std::string_view op, std::vector<TermPtr> children)
{
    return makeTerm(Symbol(op), std::move(children));
}

namespace {

class SExprParser
{
  public:
    explicit SExprParser(std::string_view text) : text_(text) {}

    TermPtr
    parse()
    {
        TermPtr term = parseOne();
        skipSpace();
        if (pos_ != text_.size())
            fatal("trailing characters after S-expression");
        return term;
    }

  private:
    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    std::string
    atom()
    {
        size_t start = pos_;
        while (pos_ < text_.size() && text_[pos_] != '(' &&
               text_[pos_] != ')' &&
               !std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
        if (start == pos_)
            fatal("expected atom in S-expression");
        return std::string(text_.substr(start, pos_ - start));
    }

    TermPtr
    parseOne()
    {
        skipSpace();
        if (pos_ >= text_.size())
            fatal("unexpected end of S-expression");
        if (text_[pos_] != '(')
            return makeTerm(Symbol(atom()));
        ++pos_; // consume '('
        skipSpace();
        Symbol op(atom());
        std::vector<TermPtr> children;
        while (true) {
            skipSpace();
            if (pos_ >= text_.size())
                fatal("unterminated S-expression");
            if (text_[pos_] == ')') {
                ++pos_;
                break;
            }
            children.push_back(parseOne());
        }
        return makeTerm(op, std::move(children));
    }

    std::string_view text_;
    size_t pos_ = 0;
};

} // namespace

TermPtr
parseTerm(std::string_view text)
{
    return SExprParser(text).parse();
}

std::vector<std::string>
splitSymbol(Symbol symbol)
{
    std::vector<std::string> fields;
    const std::string &text = symbol.str();
    size_t pos = 0;
    while (true) {
        size_t colon = text.find(':', pos);
        if (colon == std::string::npos) {
            fields.push_back(text.substr(pos));
            break;
        }
        fields.push_back(text.substr(pos, colon - pos));
        pos = colon + 1;
    }
    return fields;
}

Symbol
joinSymbol(const std::vector<std::string> &fields)
{
    std::string text;
    for (size_t i = 0; i < fields.size(); ++i) {
        if (i)
            text += ":";
        text += fields[i];
    }
    return Symbol(text);
}

} // namespace seer::eg
