/**
 * @file
 * Flat storage primitives for the million-node e-graph.
 *
 * The e-graph's original containers (`std::unordered_map` hashcons,
 * per-class node maps, nested op-index maps) spend most of their bytes
 * and cache misses on allocator metadata once the graph passes ~100k
 * nodes. This header provides the storage-of-arrays replacements:
 *
 *  - ChildList: e-node children with up to four ids inline (SmallVec),
 *    eliminating one heap allocation per e-node and per hashcons key —
 *    the vast majority of HLS operators have arity <= 4.
 *  - enodeHash(): the node hash, computed once per add/canonicalize and
 *    threaded through lookup + insert (the old ENodeHash re-walked the
 *    children vector on every probe and on every container touch).
 *  - NodeTable: an open-addressing hashcons (linear probing, tombstone
 *    erase, power-of-two capacity) storing slots in one flat array.
 *  - OpIndex: the (op, arity) -> candidate-list index flattened to an
 *    open-addressing key table plus a dense bucket arena.
 *
 * All three are deterministic: probe order depends only on the stored
 * hashes, and no iteration order is ever exposed to exploration (the
 * e-graph only iterates them for invariant checks and byte accounting).
 */
#ifndef SEER_EGRAPH_STORAGE_H_
#define SEER_EGRAPH_STORAGE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "egraph/term.h"
#include "support/hashing.h"
#include "support/small_vector.h"

namespace seer::eg {

using EClassId = uint32_t;

/** E-node children; arity <= 4 stays inline (no heap). */
using ChildList = SmallVec<EClassId, 4>;

/**
 * An op-index bucket: class ids (at add time) whose head matches one
 * (op, arity) key. Most HLS workloads intern huge leaf alphabets —
 * constants, array cells, loop-carried names — whose buckets hold a
 * single id forever, so four inline slots remove one heap allocation
 * per distinct leaf at million-node scale.
 */
using OpBucket = SmallVec<EClassId, 4>;

/** An e-node: an operator applied to e-class ids. */
struct ENode
{
    Symbol op;
    ChildList children;

    bool
    operator==(const ENode &other) const
    {
        return op == other.op && children == other.children;
    }
};

/**
 * The e-node hash. Computed once on the add/lookup path and passed to
 * every NodeTable operation; splitmix-mixed per child so the low bits
 * (the open-addressing probe start) are well distributed even for the
 * sequential class ids real graphs produce.
 */
inline uint64_t
enodeHash(const ENode &node)
{
    uint64_t h =
        hashMix(static_cast<uint64_t>(node.op.id()) |
                (static_cast<uint64_t>(node.children.size()) << 32));
    for (EClassId child : node.children)
        h = hashMix(h ^ child);
    return h;
}

/** Adapter for the few remaining unordered_map uses (repair scratch
 *  tables); the hashcons itself uses NodeTable with a threaded hash. */
struct ENodeHash
{
    size_t
    operator()(const ENode &node) const noexcept
    {
        return static_cast<size_t>(enodeHash(node));
    }
};

/**
 * Open-addressing hashcons: ENode -> EClassId in one flat slot array.
 *
 * Linear probing over a power-of-two capacity; every slot stores its
 * full 64-bit hash so probes compare one integer before touching the
 * key, and rehashing never recomputes a node hash. erase() leaves a
 * tombstone (probe chains stay intact); tombstones are purged on the
 * next rehash. Callers supply the hash (enodeHash) to every operation —
 * the table itself never hashes a key.
 *
 * Pointers returned by find() are invalidated by insert/rehash, like
 * iterators of the unordered_map this replaces.
 */
class NodeTable
{
  public:
    size_t size() const { return size_; }

    EClassId *
    find(const ENode &key, uint64_t hash)
    {
        if (slots_.empty())
            return nullptr;
        size_t i = static_cast<size_t>(hash) & mask_;
        while (true) {
            Slot &slot = slots_[i];
            if (slot.state == kEmpty)
                return nullptr;
            if (slot.state == kFull && slot.hash == hash &&
                slot.key == key) {
                return &slot.value;
            }
            i = (i + 1) & mask_;
        }
    }

    const EClassId *
    find(const ENode &key, uint64_t hash) const
    {
        return const_cast<NodeTable *>(this)->find(key, hash);
    }

    /** Insert a key known to be absent. */
    void
    insert(const ENode &key, uint64_t hash, EClassId value)
    {
        if ((used_ + 1) * 4 > slots_.size() * 3)
            rehash();
        size_t i = static_cast<size_t>(hash) & mask_;
        while (slots_[i].state == kFull)
            i = (i + 1) & mask_;
        Slot &slot = slots_[i];
        if (slot.state == kEmpty)
            ++used_;
        slot.key = key;
        slot.hash = hash;
        slot.value = value;
        slot.state = kFull;
        ++size_;
    }

    /** Upsert: overwrite the mapping or insert a fresh one. */
    void
    set(const ENode &key, uint64_t hash, EClassId value)
    {
        if (EClassId *existing = find(key, hash))
            *existing = value;
        else
            insert(key, hash, value);
    }

    bool
    erase(const ENode &key, uint64_t hash)
    {
        if (slots_.empty())
            return false;
        size_t i = static_cast<size_t>(hash) & mask_;
        while (true) {
            Slot &slot = slots_[i];
            if (slot.state == kEmpty)
                return false;
            if (slot.state == kFull && slot.hash == hash &&
                slot.key == key) {
                slot.state = kTombstone;
                slot.key = ENode{}; // release any spilled child buffer
                --size_;
                return true;
            }
            i = (i + 1) & mask_;
        }
    }

    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const Slot &slot : slots_)
            if (slot.state == kFull)
                fn(slot.key, slot.value);
    }

    /** Exact owned bytes: the slot array plus spilled key children. */
    size_t
    storageBytes() const
    {
        size_t bytes = slots_.capacity() * sizeof(Slot);
        for (const Slot &slot : slots_)
            if (slot.state == kFull)
                bytes += slot.key.children.heapBytes();
        return bytes;
    }

  private:
    enum State : uint8_t { kEmpty = 0, kFull = 1, kTombstone = 2 };
    struct Slot
    {
        ENode key;
        uint64_t hash = 0;
        EClassId value = 0;
        uint8_t state = kEmpty;
    };

    void
    rehash()
    {
        // Size for the live count: growth doubles, while a table full
        // of tombstones is rebuilt at the same capacity (purge).
        size_t capacity = 16;
        while (capacity * 3 < (size_ + 1) * 4)
            capacity <<= 1;
        std::vector<Slot> old;
        old.swap(slots_);
        slots_.resize(capacity);
        mask_ = capacity - 1;
        used_ = size_;
        for (Slot &slot : old) {
            if (slot.state != kFull)
                continue;
            size_t i = static_cast<size_t>(slot.hash) & mask_;
            while (slots_[i].state == kFull)
                i = (i + 1) & mask_;
            slots_[i].key = std::move(slot.key);
            slots_[i].hash = slot.hash;
            slots_[i].value = slot.value;
            slots_[i].state = kFull;
        }
    }

    std::vector<Slot> slots_;
    size_t mask_ = 0;
    size_t size_ = 0; ///< live (kFull) slots
    size_t used_ = 0; ///< live + tombstone slots (probe-chain load)
};

/**
 * The flattened operator index: (op, arity) -> class ids at add time.
 *
 * An open-addressing key table maps the packed 64-bit key to an index
 * into a dense bucket arena. Keys are never removed — rolling back an
 * add pops the bucket's last entry and may leave the bucket empty,
 * which reads identically to "no candidates". Buckets are append-only
 * between rollbacks (the coherence contract opCandidates() documents).
 */
class OpIndex
{
  public:
    OpBucket *
    find(uint32_t op, uint32_t arity)
    {
        if (table_.empty())
            return nullptr;
        uint64_t key = keyOf(op, arity);
        size_t i = static_cast<size_t>(hashMix(key)) & mask_;
        while (true) {
            Entry &entry = table_[i];
            if (entry.key == kEmptyKey)
                return nullptr;
            if (entry.key == key)
                return &buckets_[entry.bucket];
            i = (i + 1) & mask_;
        }
    }

    const OpBucket *
    find(uint32_t op, uint32_t arity) const
    {
        return const_cast<OpIndex *>(this)->find(op, arity);
    }

    OpBucket &
    getOrCreate(uint32_t op, uint32_t arity)
    {
        if (OpBucket *bucket = find(op, arity))
            return *bucket;
        if ((buckets_.size() + 1) * 4 > table_.size() * 3)
            rehash();
        uint64_t key = keyOf(op, arity);
        size_t i = static_cast<size_t>(hashMix(key)) & mask_;
        while (table_[i].key != kEmptyKey)
            i = (i + 1) & mask_;
        table_[i].key = key;
        table_[i].bucket = static_cast<uint32_t>(buckets_.size());
        buckets_.emplace_back();
        return buckets_.back();
    }

    size_t
    storageBytes() const
    {
        size_t bytes = table_.capacity() * sizeof(Entry) +
                       buckets_.capacity() * sizeof(OpBucket);
        for (const auto &bucket : buckets_)
            bytes += bucket.heapBytes();
        return bytes;
    }

  private:
    static constexpr uint64_t kEmptyKey = ~uint64_t{0};
    struct Entry
    {
        uint64_t key = kEmptyKey;
        uint32_t bucket = 0;
    };

    static uint64_t
    keyOf(uint32_t op, uint32_t arity)
    {
        return (static_cast<uint64_t>(op) << 32) | arity;
    }

    void
    rehash()
    {
        size_t capacity = 16;
        while (capacity * 3 < (buckets_.size() + 1) * 4)
            capacity <<= 1;
        std::vector<Entry> old;
        old.swap(table_);
        table_.resize(capacity);
        mask_ = capacity - 1;
        for (const Entry &entry : old) {
            if (entry.key == kEmptyKey)
                continue;
            size_t i = static_cast<size_t>(hashMix(entry.key)) & mask_;
            while (table_[i].key != kEmptyKey)
                i = (i + 1) & mask_;
            table_[i] = entry;
        }
    }

    std::vector<Entry> table_;
    std::vector<OpBucket> buckets_;
    size_t mask_ = 0;
};

} // namespace seer::eg

#endif // SEER_EGRAPH_STORAGE_H_
