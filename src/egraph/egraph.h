/**
 * @file
 * An egg-style e-graph: union-find over equivalence classes of e-nodes,
 * with hash-consing, deferred rebuilding, and a pluggable constant-folding
 * analysis.
 *
 * This is the C++ stand-in for the Rust `egg` library the paper builds on.
 * The API mirrors egg's: add / union / rebuild / lookup, with e-matching
 * and extraction layered on top (pattern.h, extract.h).
 *
 * Storage is sized for million-node graphs (storage.h): a flat
 * open-addressing hashcons, a dense class vector indexed by EClassId,
 * small-vector children inline in every e-node, and a flattened op
 * index. The journal/checkpoint machinery is storage-agnostic — every
 * undo entry restores the same logical state it did under the original
 * map-based layout.
 */
#ifndef SEER_EGRAPH_EGRAPH_H_
#define SEER_EGRAPH_EGRAPH_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "egraph/storage.h"
#include "egraph/term.h"
#include "support/exec_context.h"

namespace seer::eg {

class Analysis;
class ConstFoldAnalysis;

/**
 * Constant-folding hooks (the symbol-encoding half of the constant
 * e-class analysis). The SeerLang layer supplies functions that
 * understand its symbol encoding; EGraph(AnalysisHooks) wraps them in a
 * registered ConstFoldAnalysis (analysis.h).
 */
struct AnalysisHooks
{
    /** If `op` denotes a literal leaf, return its integer value. */
    std::function<std::optional<int64_t>(Symbol)> parse_const;

    /**
     * Fold `op` applied to known child constants into a literal leaf
     * symbol; nullopt when not foldable (or folding would be unsound).
     */
    std::function<std::optional<Symbol>(
        Symbol, const std::vector<int64_t> &)>
        fold;
};

/**
 * An e-class's node list. A freshly hashconsed class holds exactly one
 * node and only grows when merges splice classes together, so a single
 * inline slot keeps the common case allocation-free.
 */
using NodeList = SmallVec<ENode, 1>;

/** One equivalence class. */
struct EClass
{
    NodeList nodes;
    /** (parent node as last canonicalized, parent class) for repair. */
    std::vector<std::pair<ENode, EClassId>> parents;
};

class EGraph
{
  public:
    EGraph();
    /** Convenience: registers a ConstFoldAnalysis over `hooks`. */
    explicit EGraph(AnalysisHooks hooks);
    ~EGraph();
    // Move-only (owns its registered analyses).
    EGraph(EGraph &&) noexcept;
    EGraph &operator=(EGraph &&) noexcept;

    /** Add an e-node (children must be existing class ids). */
    EClassId add(ENode node);

    /** Add a whole ground term bottom-up. */
    EClassId addTerm(const TermPtr &term);

    /**
     * Canonical representative of an id — read-only walk. This overload
     * never mutates the union-find, so it is safe from the concurrent
     * (read-only) e-matching phase and from proof code that must not
     * perturb ids while reconstructing explanations.
     */
    EClassId find(EClassId id) const;

    /**
     * Canonical representative with path compression (path halving).
     * Amortizes deep union chains away so canonicalize/rebuild stay
     * O(α) per lookup as the graph grows; the mutating hot path
     * (add/merge/rebuild) resolves to this overload automatically.
     */
    EClassId find(EClassId id);

    /** Union two classes; true if they were distinct. `reason` feeds
     *  proof production (egg's explanation feature, which the paper's
     *  translation-validation flow builds on). */
    bool merge(EClassId a, EClassId b, std::string reason = "");

    /** Restore congruence and hashcons invariants after merges. */
    void rebuild();

    /** Lookup a node (canonicalized); nullopt if absent. */
    std::optional<EClassId> lookup(ENode node) const;

    /** Lookup a ground term; nullopt if any subterm is absent. */
    std::optional<EClassId> lookupTerm(const TermPtr &term) const;

    /** The class data for a canonical id. */
    const EClass &eclass(EClassId id) const;

    /** Constant value of a class if the analysis derived one. */
    std::optional<int64_t> constantOf(EClassId id) const;

    /**
     * Register an e-class analysis. The analysis is told about all
     * existing content via Analysis::onAttach, then kept coherent with
     * every subsequent mutation (and with checkpoint rollback, through
     * the journal). Registration itself never alters graph evolution —
     * unless the analysis's modify hook adds nodes, exploration results
     * are bit-identical with and without it. Must not be called while a
     * checkpoint is open. Returns the registered analysis.
     */
    Analysis &registerAnalysis(std::unique_ptr<Analysis> analysis);

    /** Registered analysis by name; nullptr when absent. */
    Analysis *findAnalysis(const std::string &name) const;

    /** All registered analyses, in registration order. */
    const std::vector<std::unique_ptr<Analysis>> &analyses() const
    {
        return analyses_;
    }

    /** Size of the id space (live + merged-away ids); analyses size
     *  their dense per-id tables with this. */
    size_t numIds() const { return parents_.size(); }

    /**
     * Journal the current datum of (analysis, id) so rollback restores
     * it. Analyses must call this *before* overwriting the datum of a
     * pre-existing class. Const because lazily-maintained analyses
     * (cost bounds) drain from read paths; the journal is mutable.
     */
    void journalAnalysisDatum(const Analysis &analysis, EClassId id) const;

    /** Tell every other analysis that `source` changed its datum of
     *  class `id` (cross-analysis dependencies, e.g. an area model
     *  reading shift-amount constants). */
    void notifyPeerAnalyses(const Analysis &source, EClassId id);

    /** Schedule `id` for repair at the next rebuild — analyses use this
     *  when a datum change may unlock folds in parent classes. */
    void analysisRequeue(EClassId id);

    /** All canonical class ids, ascending. */
    std::vector<EClassId> classIds() const;

    size_t numClasses() const;
    size_t numNodes() const;

    /**
     * Operator index: the raw candidate list for nodes with this
     * (op, arity) head, or nullptr when no such node was ever added.
     * Entries are the class ids *at add time*: after merges they may be
     * non-canonical and may resolve to duplicate canonical classes, so
     * callers must canonicalize through find() and deduplicate. The list
     * is append-only between rollbacks (bounded by the number of adds),
     * which is what keeps it trivially coherent with the checkpoint
     * journal: rolling back an add pops its entry again.
     */
    const OpBucket *opCandidates(Symbol op, size_t arity) const;

    /**
     * Monotonic modification clock. Every structural change (class
     * creation, merge, dirty-cone propagation in rebuild) stamps the
     * affected classes with a fresh tick. Never decreases, not even
     * across rollback — a stale-high stamp only causes a spurious
     * re-scan, never a missed match.
     */
    uint64_t tick() const { return tick_; }

    /** Modification stamp of a class (canonical representative's). */
    uint64_t timestampOf(EClassId id) const { return modified_[find(id)]; }

    /**
     * Bumped by every rollback(). Incremental matchers must discard
     * watermark state and cached matches when this changes: rollback is
     * the one mutation that can make matches *disappear*, which
     * timestamps (monotonic) cannot express.
     */
    uint64_t rollbackGeneration() const { return rollback_generation_; }

    /** True when no merges are pending rebuild. */
    bool isClean() const { return worklist_.empty(); }

    /**
     * Attach the execution context whose governor accounts this
     * graph's storage (MemSubsystem::EGraph). Between rebuilds the
     * accounting is an incremental per-add estimate synced in chunks;
     * every rebuild/rollback replaces it with an exact storage walk
     * (exactBytes), so budget degradation stays honest at million-node
     * scale. A budget breach never throws here — it latches
     * cancellation on the context, and the runner winds down at its
     * next poll point.
     */
    void setExecContext(const ExecContext &exec) { exec_ = exec; }

    /**
     * Bytes of node/parent/hashcons/index storage: the exact walk from
     * the last rebuild/rollback plus a per-add marginal estimate for
     * mutations since. O(1); self-corrects at every rebuild.
     */
    size_t approxBytes() const;

    /**
     * Exact owned bytes of every storage structure (union-find, stamps,
     * classes with spilled children, hashcons, op index, journal and
     * proof arrays). O(graph) — rebuild/rollback call this to re-anchor
     * the incremental estimate; tests and benches may call it directly.
     */
    size_t exactBytes() const;

    /**
     * Proof production: the chain of union justifications connecting
     * two ids (e.g. the class a term was first added under and the
     * class of the final extraction). Ids are the *original* ids
     * returned by add/addTerm — they stay valid across merges. Returns
     * nullopt when the ids were never unioned into one class.
     */
    std::optional<std::vector<std::string>> explain(EClassId a,
                                                    EClassId b) const;

    /**
     * Transactional snapshot token for phase rollback. While at least
     * one checkpoint is open, every structural mutation (hashcons
     * insert/update, class creation, merge, repair rewrite, analysis
     * constant) is recorded in an undo journal; the flat union-find
     * array and the pending worklist are snapshotted wholesale (they
     * are small and mutate too often to journal profitably, e.g. on
     * every path-halving find). Treat the contents as opaque.
     */
    struct Checkpoint
    {
        uint64_t token = 0;
        size_t journal_mark = 0;
        size_t proof_size = 0;
        std::vector<EClassId> parents;
        std::vector<EClassId> worklist;
        std::vector<EClassId> dirty;
    };

    /** Open a checkpoint. Checkpoints nest with strict LIFO discipline:
     *  each must be resolved (rollback or commit) before any checkpoint
     *  opened earlier. */
    Checkpoint checkpoint();

    /**
     * Restore the e-graph to the exact state it had when `cp` was
     * opened: the journal is undone in reverse, then the union-find /
     * worklist snapshots are reinstated and the proof graph truncated.
     * Ids created after the checkpoint become invalid again.
     */
    void rollback(const Checkpoint &cp);

    /** Close `cp` keeping all changes; drops the undo state (and stops
     *  journaling once no checkpoint remains open). */
    void commit(const Checkpoint &cp);

    /** Number of open (unresolved) checkpoints. */
    size_t numOpenCheckpoints() const { return open_tokens_.size(); }

    /**
     * Self-check of the core invariants (canonical class keys, hashcons
     * consistency, live memo values, every id resolving to a live
     * class, dead class slots left empty). Returns an empty string when
     * consistent, else a diagnostic. Node-level hashcons checks require
     * a clean graph (rebuild first). Intended for tests — O(graph) per
     * call.
     */
    std::string debugCheckInvariants() const;

  private:
    /** One undoable mutation (see rollback()). */
    struct JournalEntry
    {
        enum class Kind {
            AddClass,    ///< add() created class `id` from `node`
            Merge,       ///< merge() absorbed `id2` into `id`
            MemoSet,     ///< memo_[node] written (old value or absent)
            MemoErase,   ///< memo_[node] erased (held `memo_old`)
            ParentsClear,   ///< classes_[id].parents cleared (repair)
            ParentsAppend,  ///< classes_[id].parents grew by one
            NodesReplace,   ///< classes_[id].nodes rewritten (repair)
            AnalysisSet,    ///< analysis datum of class `id` overwritten
        };
        Kind kind;
        EClassId id = 0;
        EClassId id2 = 0;
        /** Merge: the original (pre-find) ids whose proof adjacency
         *  lists received the union edge. */
        EClassId orig_a = 0, orig_b = 0;
        ENode node;
        std::optional<EClassId> memo_old;
        size_t nodes_size = 0;
        size_t parents_size = 0;
        /** AnalysisSet: which analysis, and its saved datum. */
        size_t analysis_index = 0;
        std::shared_ptr<void> analysis_datum;
        EClass saved_class;
        std::vector<std::pair<ENode, EClassId>> saved_parents;
        NodeList saved_nodes;
    };

    bool journaling() const { return !open_tokens_.empty(); }
    void undo(JournalEntry &entry);
    void journalMemoSet(const ENode &key, uint64_t hash);
    void journalMemoErase(const ENode &key, uint64_t hash);
    ENode canonicalize(ENode node) const;
    ENode canonicalize(ENode node); ///< compressing-find variant
    void repair(EClassId id);
    /** Stamp the ancestor cone of merge-dirtied classes (rebuild tail). */
    void propagateDirty();

    /** Registered analyses; const-fold (when hooked) is cached below. */
    std::vector<std::unique_ptr<Analysis>> analyses_;
    ConstFoldAnalysis *const_fold_ = nullptr;
    /** Mutable so lazily-maintained analyses can journal datum
     *  overwrites from const read paths (see journalAnalysisDatum). */
    mutable std::vector<JournalEntry> journal_;
    std::vector<uint64_t> open_tokens_;
    uint64_t checkpoint_serial_ = 0;
    std::vector<EClassId> parents_; // union-find
    /**
     * Modification stamps, indexed by class id in lockstep with
     * parents_ (see tick()): the tick at which the class last changed
     * in a way that can affect e-matching — creation, absorbing another
     * class, or (transitively, via rebuild's dirty-cone propagation)
     * any change in its reachable child cone. A dense array rather than
     * an EClass field so the incremental matcher's per-candidate
     * timestamp filter is an array read, not a hash lookup. Stamps are
     * monotonic and never journaled; rollback merely truncates to the
     * restored id space (re-added ids get fresh stamps anyway).
     */
    std::vector<uint64_t> modified_;
    /** Proof graph: one adjacency list entry per union, labelled with
     *  the justification. */
    std::vector<std::vector<std::pair<EClassId, std::string>>>
        proof_edges_;
    /** Flat open-addressing hashcons (storage.h); hashes are computed
     *  once per add/canonicalize and threaded through. */
    NodeTable memo_;
    /**
     * Dense class storage, indexed by EClassId in lockstep with
     * parents_. The slot of a merged-away (non-canonical) id is left
     * empty — liveness is `parents_[id] == id`, not slot presence.
     * Because the vector reallocates on growth, no reference into it
     * may be held across a call that can re-enter add()/merge()
     * (analysis hooks materializing constants).
     */
    std::vector<EClass> classes_;
    /** Live (canonical) class count; classes_.size() counts dead slots. */
    size_t num_classes_ = 0;
    std::vector<EClassId> worklist_;
    /** (op, arity) -> class ids at add time (see opCandidates()). */
    OpIndex op_index_;
    /** Winners of merges since the last rebuild: the seeds of the
     *  dirty-cone timestamp propagation. */
    std::vector<EClassId> dirty_since_rebuild_;
    uint64_t tick_ = 0;
    uint64_t rollback_generation_ = 0;
    /** Live node count across all classes, maintained incrementally so
     *  numNodes() is O(1) (the runner polls it per application). */
    size_t num_nodes_ = 0;
    /** Memory governance (see setExecContext). */
    ExecContext exec_;
    /** Bytes last reported to the governor (sync is chunked). */
    int64_t charged_bytes_ = 0;
    /** exactBytes() at the last rebuild/rollback... */
    size_t exact_bytes_ = 0;
    /** ...plus the marginal estimate of adds since (see approxBytes). */
    size_t est_bytes_pending_ = 0;
    void syncMemCharge(bool force = false);
};

} // namespace seer::eg

#endif // SEER_EGRAPH_EGRAPH_H_
