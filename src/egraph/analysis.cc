#include "egraph/analysis.h"

#include <unordered_map>

#include "support/error.h"

namespace seer::eg {

std::optional<int64_t>
ConstFoldAnalysis::foldNode(const EGraph &egraph, const ENode &node) const
{
    if (!hooks_.fold || !hooks_.parse_const || node.children.empty())
        return std::nullopt;
    std::vector<int64_t> child_values;
    child_values.reserve(node.children.size());
    for (EClassId child : node.children) {
        auto child_value = value(egraph.find(child));
        if (!child_value)
            return std::nullopt;
        child_values.push_back(*child_value);
    }
    auto folded = hooks_.fold(node.op, child_values);
    if (!folded)
        return std::nullopt;
    return hooks_.parse_const(*folded);
}

void
ConstFoldAnalysis::onMake(EGraph &egraph, EClassId id, const ENode &node)
{
    ensure(id);
    std::optional<int64_t> derived;
    if (node.children.empty()) {
        if (hooks_.parse_const)
            derived = hooks_.parse_const(node.op);
    } else {
        derived = foldNode(egraph, node);
    }
    if (!derived)
        return;
    // A freshly created class: no pre-existing datum to journal (the
    // AddClass rollback truncates its slot away wholesale).
    values_[id] = derived;
    egraph.notifyPeerAnalyses(*this, id);
}

void
ConstFoldAnalysis::onMerge(
    EGraph &egraph, EClassId into, EClassId from,
    const std::vector<std::pair<ENode, EClassId>> &from_parents)
{
    (void)from_parents;
    ensure(std::max(into, from));
    const std::optional<int64_t> &winner = values_[into];
    const std::optional<int64_t> &loser = values_[from];
    if (!winner) {
        if (loser) {
            egraph.journalAnalysisDatum(*this, into);
            values_[into] = loser;
            egraph.notifyPeerAnalyses(*this, into);
        }
    } else if (loser && *winner != *loser) {
        panic(MsgBuilder()
              << "e-graph analysis contradiction: class holds constants "
              << *winner << " and " << *loser
              << " (an unsound rewrite was applied)");
    }
    // The loser's slot keeps its datum: rollback revives the class and
    // expects it intact.
}

void
ConstFoldAnalysis::onModify(EGraph &egraph, EClassId id)
{
    // Materialize the constant as a literal node (egg's modify step) so
    // extraction can pick it and siblings fold through it.
    if (!hooks_.fold || !hooks_.parse_const)
        return;
    id = egraph.find(id);
    if (!value(id))
        return;
    const EClass &cls = egraph.eclass(id);
    // Find a node to derive the constant's spelling (type encoding) from.
    for (const ENode &node : cls.nodes) {
        if (node.children.empty() && hooks_.parse_const(node.op))
            return; // literal already present
    }
    for (const ENode &node : cls.nodes) {
        std::vector<int64_t> child_values;
        bool ok = !node.children.empty();
        for (EClassId child : node.children) {
            auto child_value = value(egraph.find(child));
            if (!child_value) {
                ok = false;
                break;
            }
            child_values.push_back(*child_value);
        }
        if (!ok)
            continue;
        if (auto folded = hooks_.fold(node.op, child_values)) {
            ENode literal{*folded, {}};
            EClassId lit_id = egraph.add(std::move(literal));
            egraph.merge(id, lit_id);
            return;
        }
    }
}

void
ConstFoldAnalysis::onRepairParent(EGraph &egraph, const ENode &node,
                                  EClassId parent)
{
    parent = egraph.find(parent);
    if (value(parent))
        return;
    auto derived = foldNode(egraph, node);
    if (!derived)
        return;
    ensure(parent);
    egraph.journalAnalysisDatum(*this, parent);
    values_[parent] = derived;
    egraph.notifyPeerAnalyses(*this, parent);
    onModify(egraph, parent);
    egraph.analysisRequeue(parent); // keep propagating upward
}

void
ConstFoldAnalysis::onRollback(EGraph &egraph, size_t live_ids)
{
    (void)egraph;
    if (values_.size() > live_ids)
        values_.resize(live_ids);
}

std::shared_ptr<void>
ConstFoldAnalysis::saveDatum(EClassId id) const
{
    return std::make_shared<std::optional<int64_t>>(value(id));
}

void
ConstFoldAnalysis::restoreDatum(EClassId id,
                                const std::shared_ptr<void> &datum)
{
    ensure(id);
    values_[id] =
        *std::static_pointer_cast<std::optional<int64_t>>(datum);
}

std::string
ConstFoldAnalysis::checkInvariants(const EGraph &egraph) const
{
    if (!egraph.isClean())
        return ""; // pending propagation is not incoherence
    // From-scratch least fixpoint of the folding equations, compared
    // with the maintained data for exact agreement.
    std::vector<std::optional<int64_t>> derived(egraph.numIds());
    std::vector<EClassId> ids = egraph.classIds();
    bool changed = true;
    while (changed) {
        changed = false;
        for (EClassId id : ids) {
            if (derived[id])
                continue;
            for (const ENode &node : egraph.eclass(id).nodes) {
                std::optional<int64_t> node_value;
                if (node.children.empty()) {
                    if (hooks_.parse_const)
                        node_value = hooks_.parse_const(node.op);
                } else if (hooks_.fold && hooks_.parse_const) {
                    std::vector<int64_t> child_values;
                    bool ok = true;
                    for (EClassId child : node.children) {
                        auto child_value = derived[egraph.find(child)];
                        if (!child_value) {
                            ok = false;
                            break;
                        }
                        child_values.push_back(*child_value);
                    }
                    if (ok) {
                        if (auto folded =
                                hooks_.fold(node.op, child_values))
                            node_value = hooks_.parse_const(*folded);
                    }
                }
                if (node_value) {
                    derived[id] = node_value;
                    changed = true;
                    break;
                }
            }
        }
    }
    for (EClassId id : ids) {
        if (derived[id] != value(id)) {
            MsgBuilder msg;
            msg << "const-fold analysis incoherent at class " << id
                << ": maintained ";
            if (auto v = value(id))
                msg << *v;
            else
                msg << "none";
            msg << ", derivable ";
            if (derived[id])
                msg << *derived[id];
            else
                msg << "none";
            return msg;
        }
    }
    return "";
}

} // namespace seer::eg
