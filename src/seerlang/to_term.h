/**
 * @file
 * IR -> SeerLang translation (the SEER front end of Section 4.2).
 *
 * Blocks become right-associated `seq` chains over the effectful
 * statements; pure arithmetic is reconstructed into expression trees
 * that consumers embed (hash-consing in the e-graph recovers sharing).
 * Memory operations are tagged so program order is preserved exactly —
 * the paper's "assume a dependence between every two memory operations".
 */
#ifndef SEER_SEERLANG_TO_TERM_H_
#define SEER_SEERLANG_TO_TERM_H_

#include <map>

#include "egraph/term.h"
#include "ir/op.h"

namespace seer::sl {

/** Result of translating a function to SeerLang. */
struct Translation
{
    eg::TermPtr term; ///< the func:<name> root term
    /** Loop id -> source loop op (borrowed; valid while the IR lives). */
    std::map<std::string, ir::Operation *> loops;
    /** Function signature in argument order. */
    std::vector<std::pair<std::string, ir::Type>> args;
    std::string func_name;
};

/**
 * Translate a func.func into a SeerLang term. Throws FatalError on
 * constructs SeerLang does not model (value-yielding scf.if — run
 * if-conversion first — function calls, or functions returning values).
 */
Translation funcToTerm(ir::Operation &func);

/** Translate a standalone statement op (loop/if/...) for tests. */
eg::TermPtr statementToTerm(ir::Operation &op);

} // namespace seer::sl

#endif // SEER_SEERLANG_TO_TERM_H_
